# Empty dependencies file for fig5_relative.
# This may be replaced when dependencies are built.
