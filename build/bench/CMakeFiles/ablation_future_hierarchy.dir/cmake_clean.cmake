file(REMOVE_RECURSE
  "CMakeFiles/ablation_future_hierarchy.dir/ablation_future_hierarchy.cc.o"
  "CMakeFiles/ablation_future_hierarchy.dir/ablation_future_hierarchy.cc.o.d"
  "ablation_future_hierarchy"
  "ablation_future_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_future_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
