# Empty compiler generated dependencies file for table3_runtimes.
# This may be replaced when dependencies are built.
