file(REMOVE_RECURSE
  "CMakeFiles/table3_runtimes.dir/table3_runtimes.cc.o"
  "CMakeFiles/table3_runtimes.dir/table3_runtimes.cc.o.d"
  "table3_runtimes"
  "table3_runtimes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_runtimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
