# Empty compiler generated dependencies file for table5_2way.
# This may be replaced when dependencies are built.
