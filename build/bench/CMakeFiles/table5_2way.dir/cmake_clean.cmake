file(REMOVE_RECURSE
  "CMakeFiles/table5_2way.dir/table5_2way.cc.o"
  "CMakeFiles/table5_2way.dir/table5_2way.cc.o.d"
  "table5_2way"
  "table5_2way.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_2way.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
