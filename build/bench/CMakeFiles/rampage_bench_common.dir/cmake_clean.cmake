file(REMOVE_RECURSE
  "CMakeFiles/rampage_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/rampage_bench_common.dir/bench_common.cc.o.d"
  "CMakeFiles/rampage_bench_common.dir/fig_breakdown_common.cc.o"
  "CMakeFiles/rampage_bench_common.dir/fig_breakdown_common.cc.o.d"
  "librampage_bench_common.a"
  "librampage_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rampage_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
