file(REMOVE_RECURSE
  "librampage_bench_common.a"
)
