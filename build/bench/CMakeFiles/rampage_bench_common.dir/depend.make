# Empty dependencies file for rampage_bench_common.
# This may be replaced when dependencies are built.
