file(REMOVE_RECURSE
  "CMakeFiles/ablation_victim_cache.dir/ablation_victim_cache.cc.o"
  "CMakeFiles/ablation_victim_cache.dir/ablation_victim_cache.cc.o.d"
  "ablation_victim_cache"
  "ablation_victim_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_victim_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
