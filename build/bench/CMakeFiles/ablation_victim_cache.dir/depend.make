# Empty dependencies file for ablation_victim_cache.
# This may be replaced when dependencies are built.
