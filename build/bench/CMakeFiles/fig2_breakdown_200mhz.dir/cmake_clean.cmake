file(REMOVE_RECURSE
  "CMakeFiles/fig2_breakdown_200mhz.dir/fig2_breakdown_200mhz.cc.o"
  "CMakeFiles/fig2_breakdown_200mhz.dir/fig2_breakdown_200mhz.cc.o.d"
  "fig2_breakdown_200mhz"
  "fig2_breakdown_200mhz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_breakdown_200mhz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
