# Empty compiler generated dependencies file for fig2_breakdown_200mhz.
# This may be replaced when dependencies are built.
