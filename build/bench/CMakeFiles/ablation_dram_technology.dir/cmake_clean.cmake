file(REMOVE_RECURSE
  "CMakeFiles/ablation_dram_technology.dir/ablation_dram_technology.cc.o"
  "CMakeFiles/ablation_dram_technology.dir/ablation_dram_technology.cc.o.d"
  "ablation_dram_technology"
  "ablation_dram_technology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dram_technology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
