# Empty compiler generated dependencies file for ablation_dram_technology.
# This may be replaced when dependencies are built.
