# Empty compiler generated dependencies file for fig3_breakdown_4ghz.
# This may be replaced when dependencies are built.
