file(REMOVE_RECURSE
  "CMakeFiles/fig3_breakdown_4ghz.dir/fig3_breakdown_4ghz.cc.o"
  "CMakeFiles/fig3_breakdown_4ghz.dir/fig3_breakdown_4ghz.cc.o.d"
  "fig3_breakdown_4ghz"
  "fig3_breakdown_4ghz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_breakdown_4ghz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
