file(REMOVE_RECURSE
  "CMakeFiles/table4_ctx_switch.dir/table4_ctx_switch.cc.o"
  "CMakeFiles/table4_ctx_switch.dir/table4_ctx_switch.cc.o.d"
  "table4_ctx_switch"
  "table4_ctx_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_ctx_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
