# Empty compiler generated dependencies file for table4_ctx_switch.
# This may be replaced when dependencies are built.
