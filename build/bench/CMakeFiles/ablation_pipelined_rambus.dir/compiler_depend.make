# Empty compiler generated dependencies file for ablation_pipelined_rambus.
# This may be replaced when dependencies are built.
