file(REMOVE_RECURSE
  "CMakeFiles/ablation_pipelined_rambus.dir/ablation_pipelined_rambus.cc.o"
  "CMakeFiles/ablation_pipelined_rambus.dir/ablation_pipelined_rambus.cc.o.d"
  "ablation_pipelined_rambus"
  "ablation_pipelined_rambus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pipelined_rambus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
