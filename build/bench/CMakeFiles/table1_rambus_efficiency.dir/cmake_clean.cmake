file(REMOVE_RECURSE
  "CMakeFiles/table1_rambus_efficiency.dir/table1_rambus_efficiency.cc.o"
  "CMakeFiles/table1_rambus_efficiency.dir/table1_rambus_efficiency.cc.o.d"
  "table1_rambus_efficiency"
  "table1_rambus_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_rambus_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
