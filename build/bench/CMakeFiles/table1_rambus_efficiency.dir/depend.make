# Empty dependencies file for table1_rambus_efficiency.
# This may be replaced when dependencies are built.
