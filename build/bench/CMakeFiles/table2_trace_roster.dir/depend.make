# Empty dependencies file for table2_trace_roster.
# This may be replaced when dependencies are built.
