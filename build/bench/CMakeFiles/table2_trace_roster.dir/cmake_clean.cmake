file(REMOVE_RECURSE
  "CMakeFiles/table2_trace_roster.dir/table2_trace_roster.cc.o"
  "CMakeFiles/table2_trace_roster.dir/table2_trace_roster.cc.o.d"
  "table2_trace_roster"
  "table2_trace_roster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_trace_roster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
