file(REMOVE_RECURSE
  "CMakeFiles/fig4_overheads.dir/fig4_overheads.cc.o"
  "CMakeFiles/fig4_overheads.dir/fig4_overheads.cc.o.d"
  "fig4_overheads"
  "fig4_overheads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
