# Empty compiler generated dependencies file for fig4_overheads.
# This may be replaced when dependencies are built.
