
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig4_overheads.cc" "bench/CMakeFiles/fig4_overheads.dir/fig4_overheads.cc.o" "gcc" "bench/CMakeFiles/fig4_overheads.dir/fig4_overheads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/rampage_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rampage_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rampage_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/rampage_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/rampage_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/rampage_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/rampage_os.dir/DependInfo.cmake"
  "/root/repo/build/src/tlb/CMakeFiles/rampage_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rampage_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
