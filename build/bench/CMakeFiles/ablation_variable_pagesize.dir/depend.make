# Empty dependencies file for ablation_variable_pagesize.
# This may be replaced when dependencies are built.
