file(REMOVE_RECURSE
  "CMakeFiles/ablation_variable_pagesize.dir/ablation_variable_pagesize.cc.o"
  "CMakeFiles/ablation_variable_pagesize.dir/ablation_variable_pagesize.cc.o.d"
  "ablation_variable_pagesize"
  "ablation_variable_pagesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_variable_pagesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
