# Empty dependencies file for hierarchy_compare.
# This may be replaced when dependencies are built.
