file(REMOVE_RECURSE
  "CMakeFiles/hierarchy_compare.dir/hierarchy_compare.cpp.o"
  "CMakeFiles/hierarchy_compare.dir/hierarchy_compare.cpp.o.d"
  "hierarchy_compare"
  "hierarchy_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hierarchy_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
