file(REMOVE_RECURSE
  "CMakeFiles/ctx_switch_demo.dir/ctx_switch_demo.cpp.o"
  "CMakeFiles/ctx_switch_demo.dir/ctx_switch_demo.cpp.o.d"
  "ctx_switch_demo"
  "ctx_switch_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctx_switch_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
