# Empty dependencies file for ctx_switch_demo.
# This may be replaced when dependencies are built.
