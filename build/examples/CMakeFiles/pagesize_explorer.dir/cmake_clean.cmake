file(REMOVE_RECURSE
  "CMakeFiles/pagesize_explorer.dir/pagesize_explorer.cpp.o"
  "CMakeFiles/pagesize_explorer.dir/pagesize_explorer.cpp.o.d"
  "pagesize_explorer"
  "pagesize_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pagesize_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
