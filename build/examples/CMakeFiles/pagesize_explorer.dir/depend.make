# Empty dependencies file for pagesize_explorer.
# This may be replaced when dependencies are built.
