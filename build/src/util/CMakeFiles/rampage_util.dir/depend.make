# Empty dependencies file for rampage_util.
# This may be replaced when dependencies are built.
