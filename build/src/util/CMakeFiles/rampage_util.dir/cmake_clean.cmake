file(REMOVE_RECURSE
  "CMakeFiles/rampage_util.dir/logging.cc.o"
  "CMakeFiles/rampage_util.dir/logging.cc.o.d"
  "CMakeFiles/rampage_util.dir/random.cc.o"
  "CMakeFiles/rampage_util.dir/random.cc.o.d"
  "CMakeFiles/rampage_util.dir/units.cc.o"
  "CMakeFiles/rampage_util.dir/units.cc.o.d"
  "librampage_util.a"
  "librampage_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rampage_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
