file(REMOVE_RECURSE
  "librampage_util.a"
)
