file(REMOVE_RECURSE
  "CMakeFiles/rampage_dram.dir/disk.cc.o"
  "CMakeFiles/rampage_dram.dir/disk.cc.o.d"
  "CMakeFiles/rampage_dram.dir/efficiency.cc.o"
  "CMakeFiles/rampage_dram.dir/efficiency.cc.o.d"
  "CMakeFiles/rampage_dram.dir/rambus.cc.o"
  "CMakeFiles/rampage_dram.dir/rambus.cc.o.d"
  "CMakeFiles/rampage_dram.dir/sdram.cc.o"
  "CMakeFiles/rampage_dram.dir/sdram.cc.o.d"
  "librampage_dram.a"
  "librampage_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rampage_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
