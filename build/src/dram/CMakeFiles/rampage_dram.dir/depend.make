# Empty dependencies file for rampage_dram.
# This may be replaced when dependencies are built.
