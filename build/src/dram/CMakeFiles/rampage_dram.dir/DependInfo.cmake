
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dram/disk.cc" "src/dram/CMakeFiles/rampage_dram.dir/disk.cc.o" "gcc" "src/dram/CMakeFiles/rampage_dram.dir/disk.cc.o.d"
  "/root/repo/src/dram/efficiency.cc" "src/dram/CMakeFiles/rampage_dram.dir/efficiency.cc.o" "gcc" "src/dram/CMakeFiles/rampage_dram.dir/efficiency.cc.o.d"
  "/root/repo/src/dram/rambus.cc" "src/dram/CMakeFiles/rampage_dram.dir/rambus.cc.o" "gcc" "src/dram/CMakeFiles/rampage_dram.dir/rambus.cc.o.d"
  "/root/repo/src/dram/sdram.cc" "src/dram/CMakeFiles/rampage_dram.dir/sdram.cc.o" "gcc" "src/dram/CMakeFiles/rampage_dram.dir/sdram.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rampage_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
