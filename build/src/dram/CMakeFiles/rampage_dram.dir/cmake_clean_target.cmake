file(REMOVE_RECURSE
  "librampage_dram.a"
)
