# Empty dependencies file for rampage_trace.
# This may be replaced when dependencies are built.
