file(REMOVE_RECURSE
  "librampage_trace.a"
)
