
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/benchmarks.cc" "src/trace/CMakeFiles/rampage_trace.dir/benchmarks.cc.o" "gcc" "src/trace/CMakeFiles/rampage_trace.dir/benchmarks.cc.o.d"
  "/root/repo/src/trace/file_format.cc" "src/trace/CMakeFiles/rampage_trace.dir/file_format.cc.o" "gcc" "src/trace/CMakeFiles/rampage_trace.dir/file_format.cc.o.d"
  "/root/repo/src/trace/handlers.cc" "src/trace/CMakeFiles/rampage_trace.dir/handlers.cc.o" "gcc" "src/trace/CMakeFiles/rampage_trace.dir/handlers.cc.o.d"
  "/root/repo/src/trace/interleaver.cc" "src/trace/CMakeFiles/rampage_trace.dir/interleaver.cc.o" "gcc" "src/trace/CMakeFiles/rampage_trace.dir/interleaver.cc.o.d"
  "/root/repo/src/trace/synthetic.cc" "src/trace/CMakeFiles/rampage_trace.dir/synthetic.cc.o" "gcc" "src/trace/CMakeFiles/rampage_trace.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rampage_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
