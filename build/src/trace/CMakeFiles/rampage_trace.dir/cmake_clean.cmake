file(REMOVE_RECURSE
  "CMakeFiles/rampage_trace.dir/benchmarks.cc.o"
  "CMakeFiles/rampage_trace.dir/benchmarks.cc.o.d"
  "CMakeFiles/rampage_trace.dir/file_format.cc.o"
  "CMakeFiles/rampage_trace.dir/file_format.cc.o.d"
  "CMakeFiles/rampage_trace.dir/handlers.cc.o"
  "CMakeFiles/rampage_trace.dir/handlers.cc.o.d"
  "CMakeFiles/rampage_trace.dir/interleaver.cc.o"
  "CMakeFiles/rampage_trace.dir/interleaver.cc.o.d"
  "CMakeFiles/rampage_trace.dir/synthetic.cc.o"
  "CMakeFiles/rampage_trace.dir/synthetic.cc.o.d"
  "librampage_trace.a"
  "librampage_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rampage_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
