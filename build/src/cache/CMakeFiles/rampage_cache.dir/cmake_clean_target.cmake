file(REMOVE_RECURSE
  "librampage_cache.a"
)
