# Empty compiler generated dependencies file for rampage_cache.
# This may be replaced when dependencies are built.
