file(REMOVE_RECURSE
  "CMakeFiles/rampage_cache.dir/cache.cc.o"
  "CMakeFiles/rampage_cache.dir/cache.cc.o.d"
  "CMakeFiles/rampage_cache.dir/column_assoc.cc.o"
  "CMakeFiles/rampage_cache.dir/column_assoc.cc.o.d"
  "CMakeFiles/rampage_cache.dir/victim_cache.cc.o"
  "CMakeFiles/rampage_cache.dir/victim_cache.cc.o.d"
  "librampage_cache.a"
  "librampage_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rampage_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
