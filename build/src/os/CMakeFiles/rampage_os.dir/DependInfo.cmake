
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/dram_directory.cc" "src/os/CMakeFiles/rampage_os.dir/dram_directory.cc.o" "gcc" "src/os/CMakeFiles/rampage_os.dir/dram_directory.cc.o.d"
  "/root/repo/src/os/inverted_page_table.cc" "src/os/CMakeFiles/rampage_os.dir/inverted_page_table.cc.o" "gcc" "src/os/CMakeFiles/rampage_os.dir/inverted_page_table.cc.o.d"
  "/root/repo/src/os/page_replacement.cc" "src/os/CMakeFiles/rampage_os.dir/page_replacement.cc.o" "gcc" "src/os/CMakeFiles/rampage_os.dir/page_replacement.cc.o.d"
  "/root/repo/src/os/pager.cc" "src/os/CMakeFiles/rampage_os.dir/pager.cc.o" "gcc" "src/os/CMakeFiles/rampage_os.dir/pager.cc.o.d"
  "/root/repo/src/os/scheduler.cc" "src/os/CMakeFiles/rampage_os.dir/scheduler.cc.o" "gcc" "src/os/CMakeFiles/rampage_os.dir/scheduler.cc.o.d"
  "/root/repo/src/os/var_pager.cc" "src/os/CMakeFiles/rampage_os.dir/var_pager.cc.o" "gcc" "src/os/CMakeFiles/rampage_os.dir/var_pager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rampage_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tlb/CMakeFiles/rampage_tlb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
