# Empty dependencies file for rampage_os.
# This may be replaced when dependencies are built.
