file(REMOVE_RECURSE
  "librampage_os.a"
)
