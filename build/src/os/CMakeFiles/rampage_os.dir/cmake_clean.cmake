file(REMOVE_RECURSE
  "CMakeFiles/rampage_os.dir/dram_directory.cc.o"
  "CMakeFiles/rampage_os.dir/dram_directory.cc.o.d"
  "CMakeFiles/rampage_os.dir/inverted_page_table.cc.o"
  "CMakeFiles/rampage_os.dir/inverted_page_table.cc.o.d"
  "CMakeFiles/rampage_os.dir/page_replacement.cc.o"
  "CMakeFiles/rampage_os.dir/page_replacement.cc.o.d"
  "CMakeFiles/rampage_os.dir/pager.cc.o"
  "CMakeFiles/rampage_os.dir/pager.cc.o.d"
  "CMakeFiles/rampage_os.dir/scheduler.cc.o"
  "CMakeFiles/rampage_os.dir/scheduler.cc.o.d"
  "CMakeFiles/rampage_os.dir/var_pager.cc.o"
  "CMakeFiles/rampage_os.dir/var_pager.cc.o.d"
  "librampage_os.a"
  "librampage_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rampage_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
