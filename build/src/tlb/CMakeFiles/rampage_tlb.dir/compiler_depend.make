# Empty compiler generated dependencies file for rampage_tlb.
# This may be replaced when dependencies are built.
