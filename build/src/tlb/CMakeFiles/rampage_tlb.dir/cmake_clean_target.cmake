file(REMOVE_RECURSE
  "librampage_tlb.a"
)
