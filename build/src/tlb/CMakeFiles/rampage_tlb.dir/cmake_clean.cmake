file(REMOVE_RECURSE
  "CMakeFiles/rampage_tlb.dir/tlb.cc.o"
  "CMakeFiles/rampage_tlb.dir/tlb.cc.o.d"
  "librampage_tlb.a"
  "librampage_tlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rampage_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
