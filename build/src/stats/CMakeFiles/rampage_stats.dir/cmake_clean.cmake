file(REMOVE_RECURSE
  "CMakeFiles/rampage_stats.dir/histogram.cc.o"
  "CMakeFiles/rampage_stats.dir/histogram.cc.o.d"
  "CMakeFiles/rampage_stats.dir/table.cc.o"
  "CMakeFiles/rampage_stats.dir/table.cc.o.d"
  "CMakeFiles/rampage_stats.dir/time_breakdown.cc.o"
  "CMakeFiles/rampage_stats.dir/time_breakdown.cc.o.d"
  "librampage_stats.a"
  "librampage_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rampage_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
