file(REMOVE_RECURSE
  "librampage_stats.a"
)
