# Empty compiler generated dependencies file for rampage_stats.
# This may be replaced when dependencies are built.
