file(REMOVE_RECURSE
  "librampage_core.a"
)
