
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/conventional.cc" "src/core/CMakeFiles/rampage_core.dir/conventional.cc.o" "gcc" "src/core/CMakeFiles/rampage_core.dir/conventional.cc.o.d"
  "/root/repo/src/core/cost_model.cc" "src/core/CMakeFiles/rampage_core.dir/cost_model.cc.o" "gcc" "src/core/CMakeFiles/rampage_core.dir/cost_model.cc.o.d"
  "/root/repo/src/core/hierarchy.cc" "src/core/CMakeFiles/rampage_core.dir/hierarchy.cc.o" "gcc" "src/core/CMakeFiles/rampage_core.dir/hierarchy.cc.o.d"
  "/root/repo/src/core/rampage.cc" "src/core/CMakeFiles/rampage_core.dir/rampage.cc.o" "gcc" "src/core/CMakeFiles/rampage_core.dir/rampage.cc.o.d"
  "/root/repo/src/core/rampage_var.cc" "src/core/CMakeFiles/rampage_core.dir/rampage_var.cc.o" "gcc" "src/core/CMakeFiles/rampage_core.dir/rampage_var.cc.o.d"
  "/root/repo/src/core/simulator.cc" "src/core/CMakeFiles/rampage_core.dir/simulator.cc.o" "gcc" "src/core/CMakeFiles/rampage_core.dir/simulator.cc.o.d"
  "/root/repo/src/core/sweep.cc" "src/core/CMakeFiles/rampage_core.dir/sweep.cc.o" "gcc" "src/core/CMakeFiles/rampage_core.dir/sweep.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rampage_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rampage_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/rampage_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/rampage_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/rampage_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/tlb/CMakeFiles/rampage_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/rampage_os.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
