# Empty compiler generated dependencies file for rampage_core.
# This may be replaced when dependencies are built.
