file(REMOVE_RECURSE
  "CMakeFiles/rampage_core.dir/conventional.cc.o"
  "CMakeFiles/rampage_core.dir/conventional.cc.o.d"
  "CMakeFiles/rampage_core.dir/cost_model.cc.o"
  "CMakeFiles/rampage_core.dir/cost_model.cc.o.d"
  "CMakeFiles/rampage_core.dir/hierarchy.cc.o"
  "CMakeFiles/rampage_core.dir/hierarchy.cc.o.d"
  "CMakeFiles/rampage_core.dir/rampage.cc.o"
  "CMakeFiles/rampage_core.dir/rampage.cc.o.d"
  "CMakeFiles/rampage_core.dir/rampage_var.cc.o"
  "CMakeFiles/rampage_core.dir/rampage_var.cc.o.d"
  "CMakeFiles/rampage_core.dir/simulator.cc.o"
  "CMakeFiles/rampage_core.dir/simulator.cc.o.d"
  "CMakeFiles/rampage_core.dir/sweep.cc.o"
  "CMakeFiles/rampage_core.dir/sweep.cc.o.d"
  "librampage_core.a"
  "librampage_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rampage_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
