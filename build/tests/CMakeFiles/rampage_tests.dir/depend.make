# Empty dependencies file for rampage_tests.
# This may be replaced when dependencies are built.
