
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bitops.cc" "tests/CMakeFiles/rampage_tests.dir/test_bitops.cc.o" "gcc" "tests/CMakeFiles/rampage_tests.dir/test_bitops.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/rampage_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/rampage_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_column_assoc.cc" "tests/CMakeFiles/rampage_tests.dir/test_column_assoc.cc.o" "gcc" "tests/CMakeFiles/rampage_tests.dir/test_column_assoc.cc.o.d"
  "/root/repo/tests/test_config_validation.cc" "tests/CMakeFiles/rampage_tests.dir/test_config_validation.cc.o" "gcc" "tests/CMakeFiles/rampage_tests.dir/test_config_validation.cc.o.d"
  "/root/repo/tests/test_cost_model.cc" "tests/CMakeFiles/rampage_tests.dir/test_cost_model.cc.o" "gcc" "tests/CMakeFiles/rampage_tests.dir/test_cost_model.cc.o.d"
  "/root/repo/tests/test_dram_directory.cc" "tests/CMakeFiles/rampage_tests.dir/test_dram_directory.cc.o" "gcc" "tests/CMakeFiles/rampage_tests.dir/test_dram_directory.cc.o.d"
  "/root/repo/tests/test_efficiency.cc" "tests/CMakeFiles/rampage_tests.dir/test_efficiency.cc.o" "gcc" "tests/CMakeFiles/rampage_tests.dir/test_efficiency.cc.o.d"
  "/root/repo/tests/test_handlers.cc" "tests/CMakeFiles/rampage_tests.dir/test_handlers.cc.o" "gcc" "tests/CMakeFiles/rampage_tests.dir/test_handlers.cc.o.d"
  "/root/repo/tests/test_hierarchy_conventional.cc" "tests/CMakeFiles/rampage_tests.dir/test_hierarchy_conventional.cc.o" "gcc" "tests/CMakeFiles/rampage_tests.dir/test_hierarchy_conventional.cc.o.d"
  "/root/repo/tests/test_hierarchy_rampage.cc" "tests/CMakeFiles/rampage_tests.dir/test_hierarchy_rampage.cc.o" "gcc" "tests/CMakeFiles/rampage_tests.dir/test_hierarchy_rampage.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/rampage_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/rampage_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_interleaver.cc" "tests/CMakeFiles/rampage_tests.dir/test_interleaver.cc.o" "gcc" "tests/CMakeFiles/rampage_tests.dir/test_interleaver.cc.o.d"
  "/root/repo/tests/test_invariants.cc" "tests/CMakeFiles/rampage_tests.dir/test_invariants.cc.o" "gcc" "tests/CMakeFiles/rampage_tests.dir/test_invariants.cc.o.d"
  "/root/repo/tests/test_ipt.cc" "tests/CMakeFiles/rampage_tests.dir/test_ipt.cc.o" "gcc" "tests/CMakeFiles/rampage_tests.dir/test_ipt.cc.o.d"
  "/root/repo/tests/test_page_replacement.cc" "tests/CMakeFiles/rampage_tests.dir/test_page_replacement.cc.o" "gcc" "tests/CMakeFiles/rampage_tests.dir/test_page_replacement.cc.o.d"
  "/root/repo/tests/test_pager.cc" "tests/CMakeFiles/rampage_tests.dir/test_pager.cc.o" "gcc" "tests/CMakeFiles/rampage_tests.dir/test_pager.cc.o.d"
  "/root/repo/tests/test_rambus.cc" "tests/CMakeFiles/rampage_tests.dir/test_rambus.cc.o" "gcc" "tests/CMakeFiles/rampage_tests.dir/test_rambus.cc.o.d"
  "/root/repo/tests/test_random.cc" "tests/CMakeFiles/rampage_tests.dir/test_random.cc.o" "gcc" "tests/CMakeFiles/rampage_tests.dir/test_random.cc.o.d"
  "/root/repo/tests/test_scheduler.cc" "tests/CMakeFiles/rampage_tests.dir/test_scheduler.cc.o" "gcc" "tests/CMakeFiles/rampage_tests.dir/test_scheduler.cc.o.d"
  "/root/repo/tests/test_simulator.cc" "tests/CMakeFiles/rampage_tests.dir/test_simulator.cc.o" "gcc" "tests/CMakeFiles/rampage_tests.dir/test_simulator.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/rampage_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/rampage_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_sweep.cc" "tests/CMakeFiles/rampage_tests.dir/test_sweep.cc.o" "gcc" "tests/CMakeFiles/rampage_tests.dir/test_sweep.cc.o.d"
  "/root/repo/tests/test_synthetic.cc" "tests/CMakeFiles/rampage_tests.dir/test_synthetic.cc.o" "gcc" "tests/CMakeFiles/rampage_tests.dir/test_synthetic.cc.o.d"
  "/root/repo/tests/test_tlb.cc" "tests/CMakeFiles/rampage_tests.dir/test_tlb.cc.o" "gcc" "tests/CMakeFiles/rampage_tests.dir/test_tlb.cc.o.d"
  "/root/repo/tests/test_trace_file.cc" "tests/CMakeFiles/rampage_tests.dir/test_trace_file.cc.o" "gcc" "tests/CMakeFiles/rampage_tests.dir/test_trace_file.cc.o.d"
  "/root/repo/tests/test_units.cc" "tests/CMakeFiles/rampage_tests.dir/test_units.cc.o" "gcc" "tests/CMakeFiles/rampage_tests.dir/test_units.cc.o.d"
  "/root/repo/tests/test_var_pager.cc" "tests/CMakeFiles/rampage_tests.dir/test_var_pager.cc.o" "gcc" "tests/CMakeFiles/rampage_tests.dir/test_var_pager.cc.o.d"
  "/root/repo/tests/test_victim_cache.cc" "tests/CMakeFiles/rampage_tests.dir/test_victim_cache.cc.o" "gcc" "tests/CMakeFiles/rampage_tests.dir/test_victim_cache.cc.o.d"
  "/root/repo/tests/test_workload_locality.cc" "tests/CMakeFiles/rampage_tests.dir/test_workload_locality.cc.o" "gcc" "tests/CMakeFiles/rampage_tests.dir/test_workload_locality.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rampage_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rampage_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/rampage_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/rampage_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/rampage_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/rampage_os.dir/DependInfo.cmake"
  "/root/repo/build/src/tlb/CMakeFiles/rampage_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rampage_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
