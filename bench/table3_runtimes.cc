/**
 * @file
 * Regenerates the paper's **Table 3**: elapsed simulated time for the
 * interleaved workload — the direct-mapped baseline on the top line
 * of each issue-rate row, RAMpage below — across SRAM block/page
 * sizes 128 B … 4 KB and issue rates 200 MHz … 4 GHz.
 *
 * One behavioural run per (system, size) suffices: hit/miss behaviour
 * is issue-rate independent, so each run is re-priced at every rate
 * (src/core/events.hh), exactly as the paper's cost model separates
 * CPU-scaled SRAM cycles from fixed DRAM nanoseconds.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/cost_model.hh"
#include "util/error.hh"
#include "util/units.hh"

using namespace rampage;

static int
runBench()
{
    benchBanner(
        "Table 3 - elapsed time (s): baseline (top) vs RAMpage (bottom)",
        "200MHz: best baseline 6.38s @128B vs best RAMpage 5.99s @1KB "
        "(6% win); 4GHz: RAMpage's best is 26% faster; RAMpage suffers "
        "at small pages from TLB overheads");
    benchScale();

    auto baseline = runBlockingSweep("baseline", 1'000'000'000ull);
    auto rampage_r = runBlockingSweep("rampage", 1'000'000'000ull);

    TextTable table;
    std::vector<std::string> header = {"issue rate", "system"};
    for (const std::string &label : blockSizeLabels())
        header.push_back(label);
    header.push_back("best");
    table.setHeader(header);

    for (std::uint64_t rate : issueRates()) {
        auto add_row = [&](const char *name,
                           const std::vector<SimResult> &results) {
            std::vector<std::string> row = {formatFrequency(rate), name};
            Tick best = bestTimePs(results, rate);
            for (const SimResult &result : results)
                row.push_back(formatSeconds(
                    totalTimePs(result.counts, rate)));
            row.push_back(formatSeconds(best));
            table.addRow(row);
        };
        add_row("baseline", baseline);
        add_row("RAMpage", rampage_r);

        Tick cache_best = bestTimePs(baseline, rate);
        Tick paged_best = bestTimePs(rampage_r, rate);
        double gain = 100.0 *
                      (static_cast<double>(cache_best) -
                       static_cast<double>(paged_best)) /
                      static_cast<double>(cache_best);
        table.addRow({"", cellf("RAMpage best vs baseline best: %+.1f%%",
                                gain)});
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}

int
main(int argc, char **argv)
{
    return rampage::benchMain(argc, argv, runBench);
}
