/**
 * @file
 * Ablation (paper §3.2): a victim cache behind the direct-mapped L2.
 * The paper lists Jouppi's victim cache as the cheap-hardware
 * alternative for reducing conflict misses; this bench measures how
 * much of the associativity gap (DM -> 2-way -> RAMpage) a small
 * victim buffer recovers.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/cost_model.hh"
#include "util/error.hh"
#include "util/units.hh"

using namespace rampage;

static int
runBench()
{
    benchBanner(
        "Ablation - victim cache behind the direct-mapped L2 (Sec 3.2)",
        "a small fully-associative buffer of recently replaced blocks "
        "reduces conflict misses without slowing hits; RAMpage's "
        "standby list is its software analogue");
    benchScale();

    SimConfig sim = defaultSimConfig();
    constexpr std::uint64_t rate = 4'000'000'000ull;
    constexpr std::uint64_t size = 2048;

    TextTable table;
    table.setHeader({"system", "L2 misses", "DRAM reads", "victim hits",
                     "time(s)@4GHz"});

    auto report = [&](const char *name, const SimResult &result) {
        benchRecordResult(name, result);
        table.addRow({
            name,
            cellf("%llu", static_cast<unsigned long long>(
                              result.counts.l2Misses)),
            cellf("%llu", static_cast<unsigned long long>(
                              result.counts.dramReads)),
            cellf("%llu", static_cast<unsigned long long>(
                              result.counts.victimCacheHits)),
            formatSeconds(result.elapsedPs),
        });
    };

    report("baseline (DM)",
           simulateSystem(baselineConfig(rate, size), sim));
    for (unsigned entries : {4u, 16u}) {
        ConventionalConfig cfg = baselineConfig(rate, size);
        cfg.victimEntries = entries;
        report(cellf("DM + %u-entry victim", entries).c_str(),
               simulateSystem(cfg, sim));
    }
    report("2-way L2",
           simulateSystem(twoWayConfig(rate, size), sim));
    report("RAMpage", simulateSystem(rampageConfig(rate, size), sim));

    std::printf("%s\n", table.render().c_str());
    return 0;
}

int
main(int argc, char **argv)
{
    return rampage::benchMain(argc, argv, runBench);
}
