/**
 * @file
 * Regenerates the paper's **Table 4**: run times for RAMpage with
 * context switches on misses, and the speedup over RAMpage without
 * them ("vs. no switch").
 *
 * Unlike every other table, these runs are timing-coupled — whether
 * a blocked process's page transfer has completed depends on absolute
 * time — so each (page size, issue rate) cell is simulated at that
 * rate rather than re-priced.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/cost_model.hh"
#include "util/error.hh"
#include "util/units.hh"

using namespace rampage;

static int
runBench()
{
    benchBanner(
        "Table 4 - RAMpage with context switches on misses",
        "up to 16% faster (4GHz) than the best RAMpage without "
        "switches; as CPU speed increases, larger page sizes become "
        "more viable and the value of switching on a miss grows");
    benchScale();

    // One behavioural sweep prices the no-switch comparison at every
    // rate.
    auto no_switch = runBlockingSweep("rampage", 1'000'000'000ull);

    TextTable table;
    std::vector<std::string> header = {"issue rate", "metric"};
    for (const std::string &label : blockSizeLabels())
        header.push_back(label);
    table.setHeader(header);

    SimConfig sim = defaultSimConfig(true);
    for (std::uint64_t rate : issueRates()) {
        std::vector<std::string> times = {formatFrequency(rate),
                                          "time(s)"};
        std::vector<std::string> speedups = {"", "vs. no switch"};
        Tick best_switch = ~Tick{0};
        Tick best_plain = bestTimePs(no_switch, rate);

        std::size_t i = 0;
        for (std::uint64_t size : blockSizeSweep()) {
            SimResult result =
                simulateSystem(rampageConfig(rate, size, true), sim);
            std::fprintf(stderr, "  [switch %s @%s done]\n",
                         formatByteSize(size).c_str(),
                         formatFrequency(rate).c_str());
            benchRecordResult("switch/" + formatFrequency(rate) + "/" +
                                  formatByteSize(size),
                              result);
            times.push_back(formatSeconds(result.elapsedPs));
            Tick plain = totalTimePs(no_switch[i].counts, rate);
            speedups.push_back(cellf(
                "%.3f", static_cast<double>(plain) /
                            static_cast<double>(result.elapsedPs)));
            if (result.elapsedPs < best_switch)
                best_switch = result.elapsedPs;
            ++i;
        }
        table.addRow(times);
        table.addRow(speedups);
        double gain = 100.0 *
                      (static_cast<double>(best_plain) -
                       static_cast<double>(best_switch)) /
                      static_cast<double>(best_plain);
        table.addRow({"", cellf("best-vs-best gain: %+.1f%%", gain)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("'vs. no switch' is the paper's metric: the speedup of "
                "each cell over RAMpage *at the same page size* without "
                "switches on misses.\n");
    return 0;
}

int
main(int argc, char **argv)
{
    return rampage::benchMain(argc, argv, runBench);
}
