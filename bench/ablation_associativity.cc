/**
 * @file
 * Ablation (paper §3.2): the full menu of associativity strategies —
 * direct-mapped, direct-mapped + victim cache, column-associative,
 * hardware 2-way, and RAMpage's full software associativity — at the
 * paper's comparison point.  This is the design-space table behind
 * the paper's framing: "conventional limited associativity
 * implemented in hardware ... is the standard against which RAMpage
 * is judged".
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/cost_model.hh"
#include "util/error.hh"
#include "util/units.hh"

using namespace rampage;

static int
runBench()
{
    benchBanner(
        "Ablation - associativity alternatives (Sec 3.2) at 1KB "
        "blocks/pages",
        "victim caches, column-associative caches and page placement "
        "are the cited cheap alternatives to full associativity; "
        "RAMpage gets full associativity in software");
    benchScale();

    SimConfig sim = defaultSimConfig();
    constexpr std::uint64_t rate = 4'000'000'000ull;
    constexpr std::uint64_t size = 1024;

    TextTable table;
    table.setHeader({"organisation", "L2 misses", "miss vs DM",
                     "time(s)@4GHz", "time vs DM"});

    std::uint64_t dm_misses = 0;
    Tick dm_time = 0;
    auto report = [&](const char *name, const SimResult &result) {
        benchRecordResult(name, result);
        const std::uint64_t misses = result.counts.l2Misses;
        if (dm_misses == 0) {
            dm_misses = misses;
            dm_time = result.elapsedPs;
        }
        table.addRow({
            name,
            cellf("%llu", static_cast<unsigned long long>(misses)),
            cellf("%+.1f%%", 100.0 * (static_cast<double>(misses) -
                                      static_cast<double>(dm_misses)) /
                                 static_cast<double>(dm_misses)),
            formatSeconds(result.elapsedPs),
            cellf("%+.1f%%",
                  100.0 * (static_cast<double>(result.elapsedPs) -
                           static_cast<double>(dm_time)) /
                      static_cast<double>(dm_time)),
        });
    };

    report("direct-mapped",
           simulateSystem(baselineConfig(rate, size), sim));
    std::fprintf(stderr, "  [DM done]\n");
    {
        ConventionalConfig cfg = baselineConfig(rate, size);
        cfg.victimEntries = 8;
        report("DM + 8-entry victim", simulateSystem(cfg, sim));
        std::fprintf(stderr, "  [victim done]\n");
    }
    {
        ConventionalConfig cfg = baselineConfig(rate, size);
        cfg.l2Style = ConventionalConfig::L2Style::ColumnAssoc;
        report("column-associative", simulateSystem(cfg, sim));
        std::fprintf(stderr, "  [column done]\n");
    }
    report("2-way (random)",
           simulateSystem(twoWayConfig(rate, size), sim));
    std::fprintf(stderr, "  [2-way done]\n");
    report("RAMpage (full, software)",
           simulateSystem(rampageConfig(rate, size), sim));
    std::fprintf(stderr, "  [RAMpage done]\n");

    std::printf("%s\n", table.render().c_str());
    return 0;
}

int
main(int argc, char **argv)
{
    return rampage::benchMain(argc, argv, runBench);
}
