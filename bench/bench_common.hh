/**
 * @file
 * Shared scaffolding for the experiment benches: every binary under
 * bench/ regenerates one table or figure from the paper, printing the
 * same rows/series the paper reports plus a short header restating
 * what the paper found, so runs can be compared shape-for-shape (see
 * EXPERIMENTS.md).
 */

#ifndef RAMPAGE_BENCH_COMMON_HH
#define RAMPAGE_BENCH_COMMON_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/sweep.hh"
#include "stats/table.hh"
#include "util/json.hh"

namespace rampage
{

/**
 * CLI entry point shared by every bench: parses the common flags,
 * runs `body` under cliMain() (typed errors map to fatal/panic with a
 * debug-ring post-mortem), and — when --json was given — writes the
 * machine-readable report on success.
 *
 * Flags:
 *   --json <path>          write results + full stats dumps as JSON
 *   --debug <channels>     enable RAMPAGE_DPRINTF channels (Debug builds)
 *   --audit <level>        model-integrity audits: off | boundaries |
 *                          paranoid (overrides RAMPAGE_AUDIT)
 *   --inject-fault <spec>  corrupt model state ("kind[:seed]", see
 *                          src/core/fault_injection.hh; overrides
 *                          RAMPAGE_INJECT_FAULT) to prove the audits
 *                          fire — an audited run then exits with
 *                          status 2 and a debug-ring post-mortem
 *   --jobs <n>             SweepRunner worker threads for the bench's
 *                          sweeps (overrides RAMPAGE_JOBS; default 1)
 *   --cores <n>            CPU cores per simulated hierarchy
 *                          (overrides RAMPAGE_CORES; default: the
 *                          hierarchy config's own setting, i.e. 1)
 *   --trace-out <base>     write a Chrome-trace JSON timeline per
 *                          simulation run, named <base>.<point>.trace.json
 *                          (overrides RAMPAGE_TRACE_OUT)
 *   --stats-interval <n>   sample the stats registry every n benchmark
 *                          references into <base>.<point>.intervals.jsonl
 *                          (overrides RAMPAGE_STATS_INTERVAL)
 *   --stats-filter <glob>  restrict the per-result "stats" dumps in the
 *                          JSON report to entries matching the glob
 *                          ('*' and '?'), e.g. 'dram.*'
 *
 * The human-readable table on stdout is unchanged byte-for-byte; all
 * telemetry goes to stderr or the JSON file.
 */
int benchMain(int argc, char **argv, const std::function<int()> &body);

/**
 * Record one simulation into the bench's JSON report ("results"
 * array: label, system, issue_hz, elapsed_ps, seconds, optional
 * wall_seconds / simulate_seconds / refs_per_sec, and the full stats
 * snapshot).  refs_per_sec is computed from `simulate_seconds` — host
 * time inside Simulator::run proper — when it was measured, so the
 * throughput gate is not diluted by trace generation, audits or
 * checkpoint I/O; it falls back to `wall_seconds` otherwise.  No-op
 * unless --json was given.
 */
void benchRecordResult(const std::string &label, const SimResult &result,
                       double wall_seconds = 0,
                       double simulate_seconds = 0);

/**
 * Record an arbitrary derived row (a table/figure cell) into the
 * bench's JSON report ("rows" array).  No-op unless --json was given.
 */
void benchRecordRow(JsonValue row);

/** @return true when --json was given (recording is active). */
bool benchJsonActive();

/** Print the standard bench banner. */
void benchBanner(const std::string &title, const std::string &paper_says);

/** Print the scale the run used (refs, quantum, rates). */
void benchScale();

/** "128B"-style labels for the block/page sweep. */
std::vector<std::string> blockSizeLabels();

/**
 * Run one behavioural (blocking) simulation per block size for a
 * system family and return the results in sweep order.  `family` is
 * "baseline", "2way" or "rampage".  Points execute on the SweepRunner
 * worker pool (--jobs / RAMPAGE_JOBS); results are returned and
 * recorded in sweep order regardless of the job count, and the first
 * failing point is rethrown exactly as a serial run would raise it.
 */
std::vector<SimResult> runBlockingSweep(const std::string &family,
                                        std::uint64_t issue_hz);

/** Minimum elapsed time across a row of results priced at a rate. */
Tick bestTimePs(const std::vector<SimResult> &results,
                std::uint64_t issue_hz);

} // namespace rampage

#endif // RAMPAGE_BENCH_COMMON_HH
