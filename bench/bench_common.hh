/**
 * @file
 * Shared scaffolding for the experiment benches: every binary under
 * bench/ regenerates one table or figure from the paper, printing the
 * same rows/series the paper reports plus a short header restating
 * what the paper found, so runs can be compared shape-for-shape (see
 * EXPERIMENTS.md).
 */

#ifndef RAMPAGE_BENCH_COMMON_HH
#define RAMPAGE_BENCH_COMMON_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/sweep.hh"
#include "stats/table.hh"

namespace rampage
{

/** Print the standard bench banner. */
void benchBanner(const std::string &title, const std::string &paper_says);

/** Print the scale the run used (refs, quantum, rates). */
void benchScale();

/** "128B"-style labels for the block/page sweep. */
std::vector<std::string> blockSizeLabels();

/**
 * Run one behavioural (blocking) simulation per block size for a
 * system family and return the results in sweep order.  `family` is
 * "baseline", "2way" or "rampage".
 */
std::vector<SimResult> runBlockingSweep(const std::string &family,
                                        std::uint64_t issue_hz);

/** Minimum elapsed time across a row of results priced at a rate. */
Tick bestTimePs(const std::vector<SimResult> &results,
                std::uint64_t issue_hz);

} // namespace rampage

#endif // RAMPAGE_BENCH_COMMON_HH
