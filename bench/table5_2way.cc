/**
 * @file
 * Regenerates the paper's **Table 5**: run times for the 2-way
 * set-associative L2 (random replacement) with the context-switch
 * trace inserted between time slices.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/cost_model.hh"
#include "util/error.hh"
#include "util/units.hh"

using namespace rampage;

static int
runBench()
{
    benchBanner(
        "Table 5 - run times (s), 2-way associative L2 with context "
        "switches",
        "the more realistic L2 narrows RAMpage's gap; adding the "
        "context-switch trace changes results by under 1%");
    benchScale();

    auto two_way = runBlockingSweep("2way", 1'000'000'000ull);

    TextTable table;
    std::vector<std::string> header = {"issue rate"};
    for (const std::string &label : blockSizeLabels())
        header.push_back(label);
    header.push_back("best");
    table.setHeader(header);

    for (std::uint64_t rate : issueRates()) {
        std::vector<std::string> row = {formatFrequency(rate)};
        for (const SimResult &result : two_way)
            row.push_back(formatSeconds(totalTimePs(result.counts, rate)));
        row.push_back(formatSeconds(bestTimePs(two_way, rate)));
        table.addRow(row);
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}

int
main(int argc, char **argv)
{
    return rampage::benchMain(argc, argv, runBench);
}
