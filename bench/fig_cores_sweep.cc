/**
 * @file
 * Beyond the paper: a **cores x page size** sweep of the RAMpage
 * hierarchy.  The paper's runs are single-CPU; this bench scales the
 * same Table 3 configuration to 1, 2 and 4 cores sharing one Direct
 * Rambus channel and reports the throughput speedup per SRAM page
 * size, plus how much aggregate core time is lost waiting for the
 * shared channel.  Large pages fault less but each fault monopolises
 * the channel longer, so their speedup saturates earlier.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/sweep.hh"
#include "stats/table.hh"
#include "util/debug.hh"
#include "util/error.hh"
#include "util/units.hh"

using namespace rampage;

namespace
{

constexpr unsigned coreCounts[] = {1, 2, 4};

/** One behavioural sweep over the page sizes at a fixed core count. */
std::vector<SimResult>
runCoresSweep(unsigned cores, std::uint64_t issue_hz)
{
    SimConfig sim = defaultSimConfig();
    sim.cores = cores;
    SweepRunner runner;
    for (std::uint64_t size : blockSizeSweep()) {
        std::string id = "cores" + std::to_string(cores) + "/" +
                         formatByteSize(size);
        RampageConfig config = rampageConfig(issue_hz, size);
        runner.add(id, [=] { return simulateSystem(config, sim); });
    }
    SweepReport report = runner.run();
    std::vector<SimResult> results;
    results.reserve(report.outcomes.size());
    for (const PointOutcome &outcome : report.outcomes) {
        if (outcome.status != PointStatus::Ok) {
            debugReplay(outcome.debugTail);
            if (outcome.exception)
                std::rethrow_exception(outcome.exception);
            throw InternalError("sweep point '%s' failed: %s",
                                outcome.id.c_str(),
                                outcome.error.c_str());
        }
        benchRecordResult(outcome.id, outcome.result,
                          outcome.wallSeconds,
                          outcome.simulateSeconds());
        results.push_back(outcome.result);
    }
    return results;
}

int
runBench()
{
    benchBanner(
        "Cores x page size - RAMpage on a shared Rambus channel",
        "beyond the paper: the single-CPU hierarchy split into "
        "per-core frontends over one shared memory backend; speedup "
        "per added core saturates earliest at large SRAM pages, whose "
        "long transfers serialize on the one channel");
    benchScale();

    constexpr std::uint64_t oneGhz = 1'000'000'000ull;
    TextTable table;
    std::vector<std::string> header = {"cores", "metric"};
    for (const std::string &label : blockSizeLabels())
        header.push_back(label);
    table.setHeader(header);

    std::vector<SimResult> single;
    for (unsigned cores : coreCounts) {
        std::vector<SimResult> row = runCoresSweep(cores, oneGhz);
        if (cores == 1)
            single = row;
        std::vector<std::string> times = {std::to_string(cores),
                                          "time(s)"};
        std::vector<std::string> speedups = {"", "vs. 1 core"};
        std::vector<std::string> stalls = {"", "bus stall %"};
        for (std::size_t i = 0; i < row.size(); ++i) {
            const SimResult &r = row[i];
            times.push_back(formatSeconds(r.elapsedPs));
            speedups.push_back(
                cellf("%.2fx", static_cast<double>(single[i].elapsedPs) /
                                   static_cast<double>(r.elapsedPs)));
            // Aggregate core time lost to the shared channel, as a
            // share of the cores' combined busy window.
            double busy = static_cast<double>(r.elapsedPs) * cores;
            stalls.push_back(
                cellf("%.2f", busy > 0
                                  ? 100.0 * static_cast<double>(r.stallPs) /
                                        busy
                                  : 0.0));
            std::fprintf(stderr, "  [cores %u %s done]\n", cores,
                         blockSizeLabels()[i].c_str());
        }
        table.addRow(times);
        table.addRow(speedups);
        table.addRow(stalls);
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return rampage::benchMain(argc, argv, runBench);
}
