/**
 * @file
 * Regenerates the paper's **Figure 4**: TLB-miss and page-fault
 * handling overheads — additional handler references as a ratio of
 * the benchmark-trace references — per block/page size.  The baseline
 * hierarchy's overhead is the same across block sizes (its TLB maps
 * fixed 4 KB DRAM pages); RAMpage's explodes at small SRAM pages.
 */

#include <cstdio>

#include "bench_common.hh"
#include "stats/table.hh"
#include "util/error.hh"

using namespace rampage;

static int
runBench()
{
    benchBanner(
        "Figure 4 - TLB miss + page fault handling overheads",
        "overhead is as high as 60% of trace references for small "
        "RAMpage SRAM pages (64-entry TLB); the baseline data is the "
        "same across all block sizes");
    benchScale();

    auto baseline = runBlockingSweep("baseline", 1'000'000'000ull);
    auto rampage_r = runBlockingSweep("rampage", 1'000'000'000ull);

    TextTable table;
    table.setHeader({"size", "baseline ovh%", "RAMpage ovh%",
                     "RAMpage tlbMiss/Kref", "RAMpage faults/Mref"});
    auto labels = blockSizeLabels();
    for (std::size_t i = 0; i < labels.size(); ++i) {
        const EventCounts &b = baseline[i].counts;
        const EventCounts &r = rampage_r[i].counts;
        table.addRow({
            labels[i],
            cellf("%.2f", 100.0 * b.overheadRatio()),
            cellf("%.2f", 100.0 * r.overheadRatio()),
            cellf("%.2f", 1000.0 * r.tlbMisses / r.traceRefs),
            cellf("%.1f", 1e6 * r.l2Misses / r.traceRefs),
        });
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}

int
main(int argc, char **argv)
{
    return rampage::benchMain(argc, argv, runBench);
}
