/**
 * @file
 * Ablation (paper §6.3 future work): pipelined Direct Rambus.  With
 * multiple references in flight, a dirty-victim write and the page
 * read overlap their access latencies, shaving up to 50 ns off every
 * dirty fault; the paper asks whether this makes smaller pages
 * viable.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/cost_model.hh"
#include "util/error.hh"
#include "util/units.hh"

using namespace rampage;

static int
runBench()
{
    benchBanner(
        "Ablation - pipelined Direct Rambus (Sec 6.3 future work)",
        "\"the effect of pipelined memory references would be worth "
        "investigating, particularly to see if smaller block or page "
        "sizes become viable in this case\"");
    benchScale();

    SimConfig sim = defaultSimConfig();

    TextTable table;
    std::vector<std::string> header = {"system"};
    for (const std::string &label : blockSizeLabels())
        header.push_back(label + " @4GHz");
    table.setHeader(header);

    for (unsigned depth : {1u, 8u}) {
        std::vector<std::string> row = {
            depth == 1 ? "RAMpage (no pipelining)"
                       : "RAMpage (pipelined channel)"};
        for (std::uint64_t size : blockSizeSweep()) {
            RampageConfig cfg = rampageConfig(4'000'000'000ull, size);
            cfg.common.rambus.pipelineDepth = depth;
            SimResult result = simulateSystem(cfg, sim);
            benchRecordResult(cellf("depth%u/", depth) +
                                  formatByteSize(size),
                              result);
            std::fprintf(stderr, "  [depth %u %s done]\n", depth,
                         formatByteSize(size).c_str());
            row.push_back(formatSeconds(result.elapsedPs));
        }
        table.addRow(row);
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("pipelining overlaps the access latency of the "
                "dirty-victim write-back with the page read; gains "
                "concentrate where faults are frequent and pages "
                "small.\n");
    return 0;
}

int
main(int argc, char **argv)
{
    return rampage::benchMain(argc, argv, runBench);
}
