#include "fig_breakdown_common.hh"

#include <cstdio>

#include "bench_common.hh"
#include "core/cost_model.hh"
#include "util/units.hh"

namespace rampage
{

namespace
{

void
printSystem(const char *figure, const char *name,
            const std::vector<SimResult> &results,
            std::uint64_t issue_hz, const std::string &l2_name)
{
    std::printf("(%s)\n", name);
    TextTable table;
    table.setHeader({"size", "L1i%", "L1d%",
                     l2_name + "%", "DRAM%", "total(s)"});
    auto labels = blockSizeLabels();
    auto sizes = blockSizeSweep();
    for (std::size_t i = 0; i < results.size(); ++i) {
        TimeBreakdown bd = priceEvents(results[i].counts, issue_hz);
        table.addRow({
            labels[i],
            cellf("%.1f", 100 * bd.fraction(TimeLevel::L1I)),
            cellf("%.1f", 100 * bd.fraction(TimeLevel::L1D)),
            cellf("%.1f", 100 * bd.fraction(TimeLevel::L2)),
            cellf("%.1f", 100 * bd.fraction(TimeLevel::Dram)),
            formatSeconds(bd.total()),
        });

        JsonValue row = JsonValue::object();
        row.set("figure", JsonValue::str(figure));
        row.set("system", JsonValue::str(results[i].systemName));
        row.set("size_bytes", JsonValue::integer(sizes[i]));
        row.set("l1i_fraction",
                JsonValue::number(bd.fraction(TimeLevel::L1I)));
        row.set("l1d_fraction",
                JsonValue::number(bd.fraction(TimeLevel::L1D)));
        row.set("l2_fraction",
                JsonValue::number(bd.fraction(TimeLevel::L2)));
        row.set("dram_fraction",
                JsonValue::number(bd.fraction(TimeLevel::Dram)));
        row.set("total_ps", JsonValue::integer(bd.total()));
        benchRecordRow(std::move(row));
    }
    std::printf("%s\n", table.render().c_str());
}

} // namespace

int
runBreakdownFigure(const char *figure, std::uint64_t issue_hz,
                   const char *paper_says)
{
    benchBanner(std::string(figure) +
                    " - fraction of run time per hierarchy level, " +
                    formatFrequency(issue_hz) + " issue rate",
                paper_says);
    benchScale();

    auto baseline = runBlockingSweep("baseline", issue_hz);
    auto rampage_r = runBlockingSweep("rampage", issue_hz);

    printSystem(figure, "a: direct-mapped L2", baseline, issue_hz,
                "L2");
    printSystem(figure, "b: RAMpage", rampage_r, issue_hz, "SRAM MM");

    std::printf("note: L1d counts only inclusion maintenance (data "
                "hits are fully pipelined); L1i includes instruction "
                "fetches and inclusion probes, per the paper's Fig 2 "
                "caption.\n");
    return 0;
}

} // namespace rampage
