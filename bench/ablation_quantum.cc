/**
 * @file
 * Ablation (paper §5.5/§6.2): time-slice sensitivity.  The paper
 * suspects Figure 5's large-block advantage "is an artifact of the
 * context switch interval used in simulations" — a short slice
 * favours spatial over temporal locality.  This bench sweeps the
 * quantum and reports how the best block/page size moves.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/cost_model.hh"
#include "util/error.hh"
#include "util/units.hh"

using namespace rampage;

static int
runBench()
{
    benchBanner(
        "Ablation - time-slice (quantum) sensitivity",
        "Sec 5.5: a short time slice favours larger blocks because "
        "they trade temporal for spatial locality; the optimal block "
        "size may depend on the context-switch interval");

    SimConfig sim = defaultSimConfig();
    constexpr std::uint64_t rate = 4'000'000'000ull;

    TextTable table;
    std::vector<std::string> header = {"quantum", "system"};
    for (const std::string &label : blockSizeLabels())
        header.push_back(label);
    header.push_back("best size");
    table.setHeader(header);

    for (std::uint64_t quantum : {30'000ull, 120'000ull, 480'000ull}) {
        sim.quantumRefs = quantum;
        for (const char *family : {"baseline", "rampage"}) {
            std::vector<std::string> row = {
                cellf("%lluK", static_cast<unsigned long long>(
                                   quantum / 1000)),
                family};
            Tick best = ~Tick{0};
            std::string best_label;
            auto labels = blockSizeLabels();
            std::size_t i = 0;
            for (std::uint64_t size : blockSizeSweep()) {
                SimResult result =
                    std::string(family) == "baseline"
                        ? simulateSystem(
                              baselineConfig(rate, size), sim)
                        : simulateSystem(rampageConfig(rate, size),
                                          sim);
                std::fprintf(stderr, "  [q=%llu %s %s done]\n",
                             static_cast<unsigned long long>(quantum),
                             family, formatByteSize(size).c_str());
                benchRecordResult(
                    cellf("q%lluK/", static_cast<unsigned long long>(
                                         quantum / 1000)) +
                        family + "/" + formatByteSize(size),
                    result);
                row.push_back(formatSeconds(result.elapsedPs));
                if (result.elapsedPs < best) {
                    best = result.elapsedPs;
                    best_label = labels[i];
                }
                ++i;
            }
            row.push_back(best_label);
            table.addRow(row);
        }
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}

int
main(int argc, char **argv)
{
    return rampage::benchMain(argc, argv, runBench);
}
