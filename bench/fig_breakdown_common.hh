/**
 * @file
 * Shared implementation of Figures 2 and 3: fraction of simulated
 * run time spent in each hierarchy level, per block/page size, for
 * the direct-mapped baseline and RAMpage at one issue rate.
 */

#ifndef RAMPAGE_BENCH_FIG_BREAKDOWN_COMMON_HH
#define RAMPAGE_BENCH_FIG_BREAKDOWN_COMMON_HH

#include <cstdint>

namespace rampage
{

/** Run and print the figure at the given issue rate. */
int runBreakdownFigure(const char *figure, std::uint64_t issue_hz,
                       const char *paper_says);

} // namespace rampage

#endif // RAMPAGE_BENCH_FIG_BREAKDOWN_COMMON_HH
