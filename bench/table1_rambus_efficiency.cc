/**
 * @file
 * Regenerates the paper's **Table 1**: bandwidth efficiency of a
 * 2-byte-wide Direct Rambus versus a 10 ms / 40 MB/s disk across
 * transfer sizes (no pipelining of Rambus references), plus the §3.5
 * "instructions lost per transfer" illustration.
 */

#include <cstdio>

#include "bench_common.hh"
#include "dram/disk.hh"
#include "dram/efficiency.hh"
#include "dram/rambus.hh"
#include "util/error.hh"
#include "util/units.hh"

using namespace rampage;

static int
runBench()
{
    benchBanner(
        "Table 1 - % bandwidth utilized: Direct Rambus vs disk",
        "RAM shares disk's property of being more efficient at large "
        "units; e.g. a 4KB disk transfer costs ~10M instructions at "
        "1GHz vs ~2,600 for Direct Rambus");

    TextTable table;
    table.setHeader({"bytes", "rambus%", "rambus-piped%", "disk%",
                     "rambus-instr@1GHz", "disk-instr@1GHz"});

    DirectRambus rambus;
    Disk disk;
    for (const EfficiencyRow &row : computeEfficiencyTable()) {
        JsonValue json_row = JsonValue::object();
        json_row.set("bytes", JsonValue::integer(row.bytes));
        json_row.set("rambus_efficiency",
                     JsonValue::number(row.rambusEfficiency));
        json_row.set("rambus_pipelined",
                     JsonValue::number(row.rambusPipelined));
        json_row.set("disk_efficiency",
                     JsonValue::number(row.diskEfficiency));
        benchRecordRow(std::move(json_row));
        table.addRow({
            formatByteSize(row.bytes),
            cellf("%.2f", 100.0 * row.rambusEfficiency),
            cellf("%.2f", 100.0 * row.rambusPipelined),
            cellf("%.4f", 100.0 * row.diskEfficiency),
            cellf("%.0f", instructionsPerTransfer(
                              rambus.readPs(row.bytes), 1'000'000'000)),
            cellf("%.0f", instructionsPerTransfer(
                              disk.readPs(row.bytes), 1'000'000'000)),
        });
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("note: the pipelined column is the paper's Sec 3.3 "
                "theoretical mode (~95%% of peak on 2-byte units), "
                "implemented as the Sec 6.3 future-work extension.\n");
    return 0;
}

int
main(int argc, char **argv)
{
    return rampage::benchMain(argc, argv, runBench);
}
