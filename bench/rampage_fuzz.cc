/**
 * @file
 * The differential fuzzing harness CLI (src/check/).
 *
 * Modes (mutually exclusive):
 *   --fuzz                     run a fuzzing campaign (the default)
 *   --fuzz-replay <file>       re-run one JSON repro's property suite
 *   --fuzz-replay-dir <dir>    re-run every *.json repro under <dir>
 *   --fuzz-coverage            detector-coverage meta-check: every
 *                              injectable model fault must be caught
 *                              by the audits or by the oracle
 *
 * Campaign flags:
 *   --fuzz-seed <n>            Rng seed (default 1)
 *   --fuzz-points <n>          points to fuzz (0 = until budget)
 *   --fuzz-budget-seconds <s>  wall-clock budget (0 = none; when both
 *                              budget and points are 0, 25 points)
 *   --fuzz-corpus <dir>        replay committed repros first
 *   --fuzz-out <dir>           where shrunk repros are written
 *                              (default results/fuzz)
 *   --inject-fault <spec>      inject "kind[:seed]" into every
 *                              generated point (seeded-bug drills)
 *   --verbose                  per-point progress lines
 *
 * Exit status: 0 when every check passed, 1 on findings (a failing
 * property, a still-failing repro, an uncovered fault kind).
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "check/fuzz_driver.hh"
#include "util/error.hh"

using namespace rampage;

namespace
{

std::uint64_t
parseCount(const std::string &text, const char *flag)
{
    char *end = nullptr;
    errno = 0;
    unsigned long long value = std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || end == text.c_str() || *end != '\0')
        throw ConfigError("%s: invalid count '%s'", flag,
                          text.c_str());
    return value;
}

double
parseSeconds(const std::string &text, const char *flag)
{
    char *end = nullptr;
    errno = 0;
    double value = std::strtod(text.c_str(), &end);
    if (errno != 0 || end == text.c_str() || *end != '\0' ||
        value < 0)
        throw ConfigError("%s: invalid seconds '%s'", flag,
                          text.c_str());
    return value;
}

int
runCampaign(const FuzzOptions &options)
{
    FuzzCampaignResult result = runFuzzCampaign(options);
    std::printf("fuzz: %llu point(s), %llu candidate config(s) drawn "
                "(%llu rejected by validation), %llu hostile "
                "probe(s)\n",
                static_cast<unsigned long long>(result.pointsRun),
                static_cast<unsigned long long>(
                    result.gen.candidates),
                static_cast<unsigned long long>(result.gen.rejected),
                static_cast<unsigned long long>(
                    result.hostileProbes));
    for (const std::string &finding : result.findings)
        std::printf("fuzz: FINDING: %s\n", finding.c_str());
    for (const std::string &path : result.reproPaths)
        std::printf("fuzz: repro written: %s\n", path.c_str());
    std::printf("fuzz: %s\n", result.ok() ? "PASS" : "FAIL");
    return result.ok() ? 0 : 1;
}

int
runCoverage()
{
    std::vector<CoverageOutcome> outcomes = runDetectorCoverage(true);
    int uncovered = 0;
    for (const CoverageOutcome &outcome : outcomes) {
        if (!outcome.caught()) {
            ++uncovered;
            std::printf("coverage: UNCAUGHT fault kind '%s': %s\n",
                        modelFaultName(outcome.kind),
                        outcome.detail.c_str());
        }
    }
    std::printf("coverage: %zu fault kind(s), %d uncaught: %s\n",
                outcomes.size(), uncovered,
                uncovered == 0 ? "PASS" : "FAIL");
    return uncovered == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    return cliMain([argc, argv] {
        FuzzOptions options;
        std::string replay_file;
        std::string replay_dir;
        bool coverage = false;

        auto need_value = [&](int &i, const char *flag) {
            if (i + 1 >= argc)
                throw ConfigError("%s requires a value", flag);
            return std::string(argv[++i]);
        };

        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg == "--fuzz") {
                // campaign mode (the default); nothing to record
            } else if (arg == "--fuzz-seed") {
                options.seed = parseCount(need_value(i, "--fuzz-seed"),
                                          "--fuzz-seed");
            } else if (arg == "--fuzz-points") {
                options.points = parseCount(
                    need_value(i, "--fuzz-points"), "--fuzz-points");
            } else if (arg == "--fuzz-budget-seconds") {
                options.budgetSeconds = parseSeconds(
                    need_value(i, "--fuzz-budget-seconds"),
                    "--fuzz-budget-seconds");
            } else if (arg == "--fuzz-corpus") {
                options.corpusDir = need_value(i, "--fuzz-corpus");
            } else if (arg == "--fuzz-out") {
                options.outDir = need_value(i, "--fuzz-out");
            } else if (arg == "--inject-fault") {
                options.faultSpec = need_value(i, "--inject-fault");
            } else if (arg == "--fuzz-replay") {
                replay_file = need_value(i, "--fuzz-replay");
            } else if (arg == "--fuzz-replay-dir") {
                replay_dir = need_value(i, "--fuzz-replay-dir");
            } else if (arg == "--fuzz-coverage") {
                coverage = true;
            } else if (arg == "--verbose") {
                options.verbose = true;
            } else {
                throw ConfigError("unknown flag '%s' (see the file "
                                  "comment in bench/rampage_fuzz.cc)",
                                  arg.c_str());
            }
        }

        if (coverage)
            return runCoverage();
        if (!replay_file.empty())
            return replayRepro(replay_file, true);
        if (!replay_dir.empty())
            return replayReproDir(replay_dir, true) == 0 ? 0 : 1;
        return runCampaign(options);
    });
}
