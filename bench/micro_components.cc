/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot paths: the
 * cache tag walk, TLB lookup, inverted-page-table lookup, synthetic
 * trace generation, Rambus pricing, and whole-hierarchy access.
 * These document the simulator's own performance (references per
 * second), which bounds how far RAMPAGE_FULL-scale runs can go.
 */

#include <benchmark/benchmark.h>

#include "cache/cache.hh"
#include "core/factory.hh"
#include "core/hierarchy.hh"
#include "core/sweep.hh"
#include "dram/rambus.hh"
#include "os/inverted_page_table.hh"
#include "tlb/tlb.hh"
#include "trace/benchmarks.hh"
#include "trace/synthetic.hh"
#include "util/random.hh"

namespace
{

using namespace rampage;

void
BM_CacheAccess(benchmark::State &state)
{
    CacheParams params;
    params.sizeBytes = 16 * kib;
    params.blockBytes = 32;
    params.assoc = static_cast<unsigned>(state.range(0));
    SetAssocCache cache(params);
    Rng rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(rng.below(1 << 18), false).hit);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess)->Arg(1)->Arg(2)->Arg(8);

void
BM_TlbLookup(benchmark::State &state)
{
    Tlb tlb;
    for (std::uint64_t vpn = 0; vpn < 64; ++vpn)
        tlb.insert(0, vpn, vpn);
    Rng rng(2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(tlb.lookup(0, rng.below(96)).hit);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TlbLookup);

void
BM_IptLookup(benchmark::State &state)
{
    InvertedPageTable ipt(4096, 0);
    for (std::uint64_t f = 0; f < 4096; ++f)
        ipt.insert(f, 0, f * 3);
    Rng rng(3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            ipt.lookup(0, rng.below(4096) * 3).found);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IptLookup);

void
BM_SyntheticGeneration(benchmark::State &state)
{
    SyntheticProgram prog(benchmarkProfile("gcc"), 0);
    MemRef ref;
    for (auto _ : state) {
        prog.next(ref);
        benchmark::DoNotOptimize(ref.vaddr);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SyntheticGeneration);

void
BM_RambusPricing(benchmark::State &state)
{
    DirectRambus rambus;
    std::uint64_t bytes = 2;
    for (auto _ : state) {
        benchmark::DoNotOptimize(rambus.readPs(bytes));
        bytes = bytes >= 4096 ? 2 : bytes * 2;
    }
}
BENCHMARK(BM_RambusPricing);

void
BM_ConventionalAccess(benchmark::State &state)
{
    auto hier = makeHierarchy(
        baselineConfig(1'000'000'000ull, state.range(0)));
    SyntheticProgram prog(benchmarkProfile("gcc"), 0);
    MemRef ref;
    for (auto _ : state) {
        prog.next(ref);
        benchmark::DoNotOptimize(hier->access(ref).cpuPs);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConventionalAccess)->Arg(128)->Arg(4096);

void
BM_RampageAccess(benchmark::State &state)
{
    auto hier = makeHierarchy(
        rampageConfig(1'000'000'000ull, state.range(0)));
    SyntheticProgram prog(benchmarkProfile("gcc"), 0);
    MemRef ref;
    for (auto _ : state) {
        prog.next(ref);
        benchmark::DoNotOptimize(hier->access(ref).cpuPs);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RampageAccess)->Arg(128)->Arg(1024)->Arg(4096);

} // namespace

BENCHMARK_MAIN();
