/**
 * @file
 * Ablation (DESIGN.md §5): RAMpage page-replacement policy.  The
 * paper uses the clock algorithm (§4.5) and suggests the standby
 * page list — the software analogue of a victim cache (§3.2) — as a
 * refinement; this bench quantifies clock against FIFO, random, true
 * LRU and clock+standby at the paper's best page size.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/cost_model.hh"
#include "util/error.hh"
#include "util/units.hh"

using namespace rampage;

static int
runBench()
{
    benchBanner(
        "Ablation - RAMpage page replacement policy (1KB pages)",
        "the paper uses clock (Sec 4.5) and proposes a standby page "
        "list as the victim-cache analogue (Sec 3.2); 'varying the "
        "complexity of the replacement strategy' is a claimed benefit "
        "of software management (Sec 6.4)");
    benchScale();

    TextTable table;
    table.setHeader({"policy", "faults", "dirty-wb", "time(s)@1GHz",
                     "time(s)@4GHz", "vs clock @4GHz"});

    SimConfig sim = defaultSimConfig();
    Tick clock_time = 0;
    for (PageReplKind kind :
         {PageReplKind::Clock, PageReplKind::Fifo, PageReplKind::Random,
          PageReplKind::Lru, PageReplKind::Standby}) {
        RampageConfig cfg = rampageConfig(1'000'000'000ull, 1024);
        cfg.pager.repl = kind;
        cfg.pager.standbyPages = 32;
        SimResult result = simulateSystem(cfg, sim);
        std::fprintf(stderr, "  [%s done]\n", pageReplKindName(kind));
        benchRecordResult(pageReplKindName(kind), result);
        Tick fast = totalTimePs(result.counts, 4'000'000'000ull);
        if (kind == PageReplKind::Clock)
            clock_time = fast;
        table.addRow({
            pageReplKindName(kind),
            cellf("%llu", static_cast<unsigned long long>(
                              result.counts.l2Misses)),
            cellf("%llu", static_cast<unsigned long long>(
                              result.counts.dramWrites)),
            formatSeconds(totalTimePs(result.counts, 1'000'000'000ull)),
            formatSeconds(fast),
            cellf("%+.2f%%", 100.0 *
                                 (static_cast<double>(fast) -
                                  static_cast<double>(clock_time)) /
                                 static_cast<double>(clock_time)),
        });
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}

int
main(int argc, char **argv)
{
    return rampage::benchMain(argc, argv, runBench);
}
