/**
 * @file
 * Regenerates the paper's **Figure 3**: per-level time fractions at a
 * 4 GHz issue rate — scaling the CPU without scaling DRAM pushes time
 * into the DRAM level; RAMpage tolerates the gap better.
 */

#include "bench_common.hh"
#include "fig_breakdown_common.hh"
#include "util/error.hh"

static int
runBench()
{
    return rampage::runBreakdownFigure(
        "Figure 3", 4'000'000'000ull,
        "scaling CPU speed without DRAM speed inflates the DRAM share; "
        "the RAMpage system is more tolerant of the increased DRAM "
        "latency");
}

int
main(int argc, char **argv)
{
    return rampage::benchMain(argc, argv, runBench);
}
