/**
 * @file
 * Regenerates the paper's **Figure 5**: RAMpage (context switches on
 * misses) versus the 2-way associative L2, as a relative measure —
 * "n means 1.n times slower than the best time for each CPU speed" —
 * per block/page size and issue rate.
 */

#include <algorithm>
#include <cstdio>

#include "bench_common.hh"
#include "core/cost_model.hh"
#include "util/error.hh"
#include "util/units.hh"

using namespace rampage;

static int
runBench()
{
    benchBanner(
        "Figure 5 - RAMpage (switch-on-miss) vs 2-way L2, relative "
        "slowdown vs best-per-rate",
        "the two systems are close; larger block sizes become "
        "favourable for the 2-way hierarchy as the CPU-DRAM gap grows "
        "(possibly an artifact of the fixed context-switch interval)");
    benchScale();

    auto two_way = runBlockingSweep("2way", 1'000'000'000ull);

    SimConfig sim = defaultSimConfig(true);
    auto labels = blockSizeLabels();

    TextTable table;
    std::vector<std::string> header = {"issue rate", "system"};
    for (const std::string &label : labels)
        header.push_back(label);
    table.setHeader(header);

    for (std::uint64_t rate : issueRates()) {
        // Simulate the timing-coupled switch-on-miss runs at this
        // rate; price the 2-way runs from the behavioural sweep.
        std::vector<Tick> switch_times;
        for (std::uint64_t size : blockSizeSweep()) {
            SimResult result =
                simulateSystem(rampageConfig(rate, size, true), sim);
            std::fprintf(stderr, "  [switch %s @%s done]\n",
                         formatByteSize(size).c_str(),
                         formatFrequency(rate).c_str());
            benchRecordResult("switch/" + formatFrequency(rate) + "/" +
                                  formatByteSize(size),
                              result);
            switch_times.push_back(result.elapsedPs);
        }
        std::vector<Tick> two_way_times;
        for (const SimResult &result : two_way)
            two_way_times.push_back(totalTimePs(result.counts, rate));

        Tick best = ~Tick{0};
        for (Tick t : switch_times)
            best = std::min(best, t);
        for (Tick t : two_way_times)
            best = std::min(best, t);

        auto relative = [&](Tick t) {
            return cellf("%.3f", static_cast<double>(t) /
                                     static_cast<double>(best) -
                                 1.0);
        };
        std::vector<std::string> row = {formatFrequency(rate),
                                        "RAMpage+switch"};
        for (Tick t : switch_times)
            row.push_back(relative(t));
        table.addRow(row);
        row = {"", "2-way L2"};
        for (Tick t : two_way_times)
            row.push_back(relative(t));
        table.addRow(row);
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("each cell is n where the system is 1.n times slower "
                "than the best time for that CPU speed (0 = the best "
                "configuration).\n");
    return 0;
}

int
main(int argc, char **argv)
{
    return rampage::benchMain(argc, argv, runBench);
}
