/**
 * @file
 * Regenerates the paper's **Figure 2**: per-level time fractions at a
 * 200 MHz issue rate for the baseline and RAMpage.
 */

#include "bench_common.hh"
#include "fig_breakdown_common.hh"
#include "util/error.hh"

static int
runBench()
{
    return rampage::runBreakdownFigure(
        "Figure 2", 200'000'000ull,
        "at 200MHz the SRAM levels dominate; RAMpage already spends a "
        "visibly smaller fraction of time in DRAM than the baseline");
}

int
main(int argc, char **argv)
{
    return rampage::benchMain(argc, argv, runBench);
}
