/**
 * @file
 * Ablation (paper §6.2/§6.3): per-process SRAM page sizes.  The paper
 * argues software management permits "choosing the SRAM page size on
 * the fly" and reports work in progress on "the value of a variable
 * SRAM page size; initial results show that variation can make a
 * difference in individual programs but that a single page size may
 * be optimal for most programs".
 *
 * Procedure: (1) probe each Table 2 program alone to pick its best
 * page size; (2) run the multiprogrammed workload under (a) each
 * fixed page size and (b) the variable pager giving every process its
 * own best size; compare.
 */

#include <cstdio>
#include <memory>

#include "bench_common.hh"
#include "core/cost_model.hh"
#include "core/factory.hh"
#include "core/hierarchy.hh"
#include "core/simulator.hh"
#include "trace/benchmarks.hh"
#include "util/error.hh"
#include "util/units.hh"

using namespace rampage;

namespace
{

constexpr std::uint64_t rate = 4'000'000'000ull;

/** Best page size for one program running alone. */
std::uint64_t
probeBestSize(const ProgramProfile &profile, std::uint64_t refs)
{
    Tick best = ~Tick{0};
    std::uint64_t best_size = 1024;
    for (std::uint64_t size : blockSizeSweep()) {
        auto hier = makeHierarchy(rampageConfig(rate, size));
        std::vector<std::unique_ptr<TraceSource>> workload;
        workload.push_back(
            std::make_unique<SyntheticProgram>(profile, 0));
        SimConfig sim = armedSimConfig(refs, refs);
        sim.insertSwitchTrace = false;
        Simulator driver(*hier, std::move(workload), sim);
        Tick t = driver.run().elapsedPs;
        if (t < best) {
            best = t;
            best_size = size;
        }
    }
    return best_size;
}

} // namespace

static int
runBench()
{
    benchBanner(
        "Ablation - variable (per-process) SRAM page size (Sec 6.2)",
        "\"variation can make a difference in individual programs but "
        "... a single page size may be optimal for most programs\"; "
        "the only hardware support needed is a MIPS-style "
        "variable-page TLB");
    benchScale();

    ExperimentScale scale = experimentScale();
    std::uint64_t probe_refs = scale.refs / 24;

    // Step 1: per-program best sizes.
    PageStoreParams var_params;
    var_params.pageBytes = 128;      // base frame size
    var_params.defaultPageBytes = 1024;
    std::printf("per-program best page sizes (solo probes):\n  ");
    Pid pid = 0;
    for (const ProgramProfile &profile : benchmarkRoster()) {
        std::uint64_t best = probeBestSize(profile, probe_refs);
        var_params.pageBytesByPid[pid] = best;
        std::printf("%s=%s ", profile.name.c_str(),
                    formatByteSize(best).c_str());
        ++pid;
    }
    std::printf("\n\n");

    // Step 2: multiprogrammed comparison.
    SimConfig sim = defaultSimConfig();
    TextTable table;
    table.setHeader({"configuration", "faults", "time(s)@4GHz"});

    Tick best_fixed = ~Tick{0};
    std::string best_fixed_label;
    for (std::uint64_t size : blockSizeSweep()) {
        SimResult result = simulateSystem(rampageConfig(rate, size), sim);
        std::fprintf(stderr, "  [fixed %s done]\n",
                     formatByteSize(size).c_str());
        benchRecordResult("fixed/" + formatByteSize(size), result);
        table.addRow({"fixed " + formatByteSize(size),
                      cellf("%llu", static_cast<unsigned long long>(
                                        result.counts.l2Misses)),
                      formatSeconds(result.elapsedPs)});
        if (result.elapsedPs < best_fixed) {
            best_fixed = result.elapsedPs;
            best_fixed_label = formatByteSize(size);
        }
    }

    PagedConfig var_cfg;
    var_cfg.common = defaultCommon(rate);
    var_cfg.pager = var_params;
    auto var_hier = makeHierarchy(var_cfg);
    Simulator var_driver(*var_hier, makeWorkload(), sim);
    SimResult var_result = var_driver.run();
    benchRecordResult("variable/per-process-best", var_result);
    table.addRow({"variable (per-process best)",
                  cellf("%llu", static_cast<unsigned long long>(
                                    var_result.counts.l2Misses)),
                  formatSeconds(var_result.elapsedPs)});

    std::printf("%s\n", table.render().c_str());
    double delta = 100.0 *
                   (static_cast<double>(best_fixed) -
                    static_cast<double>(var_result.elapsedPs)) /
                   static_cast<double>(best_fixed);
    std::printf("variable vs best fixed (%s): %+.1f%%\n",
                best_fixed_label.c_str(), delta);
    return 0;
}

int
main(int argc, char **argv)
{
    return rampage::benchMain(argc, argv, runBench);
}
