#include "bench_common.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "core/audit.hh"
#include "core/cost_model.hh"
#include "core/fault_injection.hh"
#include "obs/obs_config.hh"
#include "obs/phase_profiler.hh"
#include "util/debug.hh"
#include "util/error.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace rampage
{

namespace
{

/** State of the per-process JSON report (empty path = disabled). */
struct BenchReport
{
    std::string path;
    std::string name;
    std::string statsFilter;
    std::vector<JsonValue> results;
    std::vector<JsonValue> rows;
};

BenchReport &
benchReport()
{
    static BenchReport report;
    return report;
}

std::string
baseName(const char *path)
{
    std::string text = path ? path : "bench";
    std::size_t slash = text.find_last_of('/');
    return slash == std::string::npos ? text : text.substr(slash + 1);
}

void
writeJsonReport()
{
    BenchReport &report = benchReport();
    if (report.path.empty())
        return;

    JsonValue doc = JsonValue::object();
    doc.set("bench", JsonValue::str(report.name));

    ExperimentScale scale = experimentScale();
    JsonValue scale_obj = JsonValue::object();
    scale_obj.set("refs", JsonValue::integer(scale.refs));
    scale_obj.set("quantum_refs", JsonValue::integer(scale.quantumRefs));
    doc.set("scale", std::move(scale_obj));

    // Host-side phase rollup: where this process (plus any --isolate
    // children, whose totals the sweep parent folded back in) spent
    // its wall clock.  Always emitted, zeros included, so report
    // consumers can diff the breakdown across runs.
    PhaseSeconds phases = phaseGlobalTotals();
    JsonValue phases_obj = JsonValue::object();
    for (std::size_t i = 0; i < sweepPhaseCount; ++i)
        phases_obj.set(sweepPhaseName(static_cast<SweepPhase>(i)),
                       JsonValue::number(phases[i]));
    doc.set("phases", std::move(phases_obj));

    JsonValue rows = JsonValue::array();
    for (JsonValue &row : report.rows)
        rows.push(std::move(row));
    doc.set("rows", std::move(rows));

    JsonValue results = JsonValue::array();
    for (JsonValue &entry : report.results)
        results.push(std::move(entry));
    doc.set("results", std::move(results));

    errno = 0;
    std::ofstream out(report.path);
    if (!out.is_open()) {
        int err = errno;
        if (err == ENOSPC || err == EIO)
            warnOnce("JSON report '%s': %s (host I/O failure, "
                     "category %s)",
                     report.path.c_str(), std::strerror(err),
                     errorCategoryName(ErrorCategory::Io));
        else
            warn("cannot write JSON report to '%s'",
                 report.path.c_str());
        return;
    }
    out << doc.dump() << "\n";
    out.flush();
    if (!out) {
        // A full or failing disk surfaces here, after buffering: the
        // stream goes bad and errno carries the write(2) error.
        int err = errno;
        if (err == ENOSPC || err == EIO)
            warnOnce("JSON report '%s': %s (host I/O failure, "
                     "category %s); report is incomplete",
                     report.path.c_str(), std::strerror(err),
                     errorCategoryName(ErrorCategory::Io));
        else
            warn("short write to JSON report '%s'; report is "
                 "incomplete",
                 report.path.c_str());
        return;
    }
    std::fprintf(stderr, "[json report written to %s]\n",
                 report.path.c_str());
}

} // namespace

int
benchMain(int argc, char **argv, const std::function<int()> &body)
{
    return cliMain([&]() -> int {
        benchReport().name = baseName(argc > 0 ? argv[0] : nullptr);
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg == "--json" && i + 1 < argc) {
                benchReport().path = argv[++i];
            } else if (arg == "--debug" && i + 1 < argc) {
                setDebugChannels(argv[++i]);
            } else if (arg == "--audit" && i + 1 < argc) {
                setAuditLevelOverride(parseAuditLevel(argv[++i]));
            } else if (arg == "--inject-fault" && i + 1 < argc) {
                setFaultPlanOverride(argv[++i]);
            } else if (arg == "--jobs" && i + 1 < argc) {
                setJobsOverride(parseJobs(argv[++i]));
            } else if (arg == "--cores" && i + 1 < argc) {
                setCoresOverride(parseCores(argv[++i]));
            } else if (arg == "--point-deadline" && i + 1 < argc) {
                setPointDeadlineOverride(
                    parsePointDeadline(argv[++i]));
            } else if (arg == "--retries" && i + 1 < argc) {
                setRetriesOverride(
                    static_cast<int>(parseRetries(argv[++i])));
            } else if (arg == "--isolate") {
                setIsolateOverride(1);
            } else if (arg == "--trace-out" && i + 1 < argc) {
                setTraceOutOverride(argv[++i]);
            } else if (arg == "--stats-interval" && i + 1 < argc) {
                setStatsIntervalOverride(
                    parseStatsInterval(argv[++i]));
            } else if (arg == "--stats-filter" && i + 1 < argc) {
                benchReport().statsFilter = argv[++i];
            } else {
                throw ConfigError(
                    "unknown argument '%s'\nusage: %s [--json <path>] "
                    "[--debug <%s|all>] "
                    "[--audit <off|boundaries|paranoid>] "
                    "[--inject-fault <kind[:seed]>] "
                    "[--jobs <n>] [--cores <n>] "
                    "[--point-deadline <seconds>] "
                    "[--retries <n>] [--isolate] "
                    "[--trace-out <base>] [--stats-interval <refs>] "
                    "[--stats-filter <glob>]",
                    arg.c_str(), benchReport().name.c_str(),
                    debugChannelList().c_str());
            }
        }
        if (!benchReport().path.empty()) {
            // Interval files with tracing off land next to the JSON
            // report: "out/fig.json" yields "out/fig.<point>....".
            std::string base = benchReport().path;
            if (base.size() > 5 &&
                base.compare(base.size() - 5, 5, ".json") == 0)
                base.resize(base.size() - 5);
            setObsFileBaseOverride(base);
        }
        int status = body();
        if (status == 0)
            writeJsonReport();
        return status;
    });
}

bool
benchJsonActive()
{
    return !benchReport().path.empty();
}

void
benchRecordResult(const std::string &label, const SimResult &result,
                  double wall_seconds, double simulate_seconds)
{
    if (!benchJsonActive())
        return;
    JsonValue entry = JsonValue::object();
    entry.set("label", JsonValue::str(label));
    entry.set("system", JsonValue::str(result.systemName));
    entry.set("issue_hz", JsonValue::integer(result.issueHz));
    entry.set("elapsed_ps", JsonValue::integer(result.elapsedPs));
    entry.set("seconds", JsonValue::number(result.seconds()));
    if (wall_seconds > 0)
        entry.set("wall_seconds", JsonValue::number(wall_seconds));
    if (simulate_seconds > 0)
        entry.set("simulate_seconds",
                  JsonValue::number(simulate_seconds));
    // Throughput over the simulate phase when measured; the point's
    // wall time (trace generation, audits, checkpointing included)
    // is only a fallback denominator.
    double denom = simulate_seconds > 0 ? simulate_seconds
                                        : wall_seconds;
    if (denom > 0)
        entry.set("refs_per_sec",
                  JsonValue::number(
                      static_cast<double>(result.counts.refs) /
                      denom));
    if (!result.traceFile.empty())
        entry.set("trace_file", JsonValue::str(result.traceFile));
    if (!result.intervalFile.empty())
        entry.set("interval_file", JsonValue::str(result.intervalFile));
    const std::string &filter = benchReport().statsFilter;
    entry.set("stats", filter.empty()
                           ? result.stats.toJson()
                           : result.stats.filter(filter).toJson());
    benchReport().results.push_back(std::move(entry));
}

void
benchRecordRow(JsonValue row)
{
    if (!benchJsonActive())
        return;
    benchReport().rows.push_back(std::move(row));
}

void
benchBanner(const std::string &title, const std::string &paper_says)
{
    std::printf("================================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("paper: %s\n", paper_says.c_str());
    std::printf("================================================================\n");
}

void
benchScale()
{
    ExperimentScale scale = experimentScale();
    std::printf("scale: %llu refs per run, %llu-ref time slices "
                "(RAMPAGE_REFS / RAMPAGE_QUANTUM / RAMPAGE_FULL=1 to "
                "change)\n\n",
                static_cast<unsigned long long>(scale.refs),
                static_cast<unsigned long long>(scale.quantumRefs));
}

std::vector<std::string>
blockSizeLabels()
{
    std::vector<std::string> labels;
    for (std::uint64_t size : blockSizeSweep())
        labels.push_back(formatByteSize(size));
    return labels;
}

namespace
{

/** Map a sweep family name to the HierarchyConfig it simulates. */
HierarchyConfig
familyConfig(const std::string &family, std::uint64_t issue_hz,
             std::uint64_t size)
{
    if (family == "baseline")
        return baselineConfig(issue_hz, size);
    if (family == "2way")
        return twoWayConfig(issue_hz, size);
    if (family == "rampage")
        return rampageConfig(issue_hz, size);
    throw ConfigError("unknown system family '%s'", family.c_str());
}

} // namespace

std::vector<SimResult>
runBlockingSweep(const std::string &family, std::uint64_t issue_hz)
{
    SimConfig sim = defaultSimConfig();
    // The block-size points are independent, so they run on the
    // SweepRunner worker pool (--jobs / RAMPAGE_JOBS; serial by
    // default).  Outcomes come back in add() order, so the JSON
    // results and the returned vector are identical for any job
    // count.
    SweepRunner runner;
    for (std::uint64_t size : blockSizeSweep()) {
        std::string id = family + "/" + formatByteSize(size);
        HierarchyConfig config = familyConfig(family, issue_hz, size);
        runner.add(id, [=] { return simulateSystem(config, sim); });
    }

    SweepReport report = runner.run();
    std::vector<SimResult> results;
    results.reserve(report.outcomes.size());
    for (const PointOutcome &outcome : report.outcomes) {
        if (outcome.status != PointStatus::Ok) {
            // A bench has no per-point fault tolerance: surface the
            // first failure exactly as a serial run would have, with
            // its debug-ring tail replayed onto this thread so
            // cliMain's post-mortem flush still shows it.
            debugReplay(outcome.debugTail);
            if (outcome.exception)
                std::rethrow_exception(outcome.exception);
            throw InternalError("sweep point '%s' failed: %s",
                                outcome.id.c_str(),
                                outcome.error.c_str());
        }
        benchRecordResult(outcome.id, outcome.result,
                          outcome.wallSeconds,
                          outcome.simulateSeconds());
        results.push_back(outcome.result);
    }
    return results;
}

Tick
bestTimePs(const std::vector<SimResult> &results, std::uint64_t issue_hz)
{
    Tick best = ~Tick{0};
    for (const SimResult &result : results)
        best = std::min(best, totalTimePs(result.counts, issue_hz));
    return best;
}

} // namespace rampage
