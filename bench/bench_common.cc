#include "bench_common.hh"

#include <algorithm>
#include <cstdio>

#include "core/cost_model.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace rampage
{

void
benchBanner(const std::string &title, const std::string &paper_says)
{
    std::printf("================================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("paper: %s\n", paper_says.c_str());
    std::printf("================================================================\n");
}

void
benchScale()
{
    ExperimentScale scale = experimentScale();
    std::printf("scale: %llu refs per run, %llu-ref time slices "
                "(RAMPAGE_REFS / RAMPAGE_QUANTUM / RAMPAGE_FULL=1 to "
                "change)\n\n",
                static_cast<unsigned long long>(scale.refs),
                static_cast<unsigned long long>(scale.quantumRefs));
}

std::vector<std::string>
blockSizeLabels()
{
    std::vector<std::string> labels;
    for (std::uint64_t size : blockSizeSweep())
        labels.push_back(formatByteSize(size));
    return labels;
}

std::vector<SimResult>
runBlockingSweep(const std::string &family, std::uint64_t issue_hz)
{
    std::vector<SimResult> results;
    SimConfig sim = defaultSimConfig();
    for (std::uint64_t size : blockSizeSweep()) {
        if (family == "baseline") {
            results.push_back(
                simulateConventional(baselineConfig(issue_hz, size), sim));
        } else if (family == "2way") {
            results.push_back(
                simulateConventional(twoWayConfig(issue_hz, size), sim));
        } else if (family == "rampage") {
            results.push_back(
                simulateRampage(rampageConfig(issue_hz, size), sim));
        } else {
            fatal("unknown system family '%s'", family.c_str());
        }
        std::fprintf(stderr, "  [%s %s done]\n", family.c_str(),
                     formatByteSize(size).c_str());
    }
    return results;
}

Tick
bestTimePs(const std::vector<SimResult> &results, std::uint64_t issue_hz)
{
    Tick best = ~Tick{0};
    for (const SimResult &result : results)
        best = std::min(best, totalTimePs(result.counts, issue_hz));
    return best;
}

} // namespace rampage
