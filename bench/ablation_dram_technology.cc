/**
 * @file
 * Ablation (paper §3.3): DRAM technology under the same hierarchies —
 * non-pipelined Direct Rambus (the paper's device), the 128-bit/10 ns
 * SDRAM it calls "similar", and a dual-channel Rambus ("it is also
 * possible to have multiple Rambus channels to increase bandwidth,
 * though latency is not improved").
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/cost_model.hh"
#include "util/error.hh"
#include "util/units.hh"

using namespace rampage;

static int
runBench()
{
    benchBanner(
        "Ablation - DRAM technology (Sec 3.3): Rambus vs SDRAM vs "
        "2-channel Rambus",
        "non-pipelined Direct Rambus has similar characteristics to an "
        "SDRAM implementation; extra channels buy bandwidth, not "
        "latency");
    benchScale();

    SimConfig sim = defaultSimConfig();
    constexpr std::uint64_t rate = 4'000'000'000ull;

    struct Tech
    {
        const char *name;
        CommonConfig::DramKind kind;
        unsigned channels;
    };
    const Tech techs[] = {
        {"DirectRambus x1", CommonConfig::DramKind::DirectRambus, 1},
        {"SDRAM 128b/10ns", CommonConfig::DramKind::Sdram, 1},
        {"DirectRambus x2", CommonConfig::DramKind::DirectRambus, 2},
    };

    TextTable table;
    std::vector<std::string> header = {"technology", "system"};
    for (const std::string &label : blockSizeLabels())
        header.push_back(label);
    table.setHeader(header);

    for (const Tech &tech : techs) {
        std::vector<std::string> base_row = {tech.name, "baseline"};
        std::vector<std::string> ram_row = {"", "RAMpage"};
        for (std::uint64_t size : blockSizeSweep()) {
            ConventionalConfig base = baselineConfig(rate, size);
            base.common.dramKind = tech.kind;
            base.common.rambus.channels = tech.channels;
            RampageConfig ram = rampageConfig(rate, size);
            ram.common.dramKind = tech.kind;
            ram.common.rambus.channels = tech.channels;
            SimResult base_res = simulateSystem(base, sim);
            SimResult ram_res = simulateSystem(ram, sim);
            std::string cell = std::string(tech.name) + "/" +
                               formatByteSize(size);
            benchRecordResult("baseline/" + cell, base_res);
            benchRecordResult("rampage/" + cell, ram_res);
            base_row.push_back(formatSeconds(base_res.elapsedPs));
            ram_row.push_back(formatSeconds(ram_res.elapsedPs));
            std::fprintf(stderr, "  [%s %s done]\n", tech.name,
                         formatByteSize(size).c_str());
        }
        table.addRow(base_row);
        table.addRow(ram_row);
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("expected shape: SDRAM tracks single-channel Rambus "
                "closely; the second channel helps most where "
                "transfers are large (streaming time dominated).\n");
    return 0;
}

int
main(int argc, char **argv)
{
    return rampage::benchMain(argc, argv, runBench);
}
