/**
 * @file
 * Regenerates the paper's **Table 2**: the benchmark trace roster
 * with instruction-fetch and total reference counts.  The synthetic
 * programs are generated at the published mix; this bench measures a
 * slice of each stream to verify the realized mix matches Table 2.
 */

#include <cstdio>

#include "bench_common.hh"
#include "stats/table.hh"
#include "trace/benchmarks.hh"
#include "util/error.hh"

using namespace rampage;

static int
runBench()
{
    benchBanner(
        "Table 2 - address traces used in the simulations",
        "18 traces (SPEC92 + Unix utilities), 1.1 billion references "
        "total, interleaved every 500K references");

    TextTable table;
    table.setHeader({"program", "description", "Minstr", "Mrefs",
                     "data/instr(T2)", "data/instr(measured)"});

    double total_instr = 0, total_refs = 0;
    for (const ProgramProfile &profile : benchmarkRoster()) {
        // Measure the realized mix over a 2M-reference slice.
        SyntheticProgram prog(profile, 0);
        MemRef ref;
        std::uint64_t instr = 0, data = 0;
        for (int i = 0; i < 2'000'000; ++i) {
            prog.next(ref);
            if (ref.isInstr())
                ++instr;
            else
                ++data;
        }
        double measured = static_cast<double>(data) /
                          static_cast<double>(instr);
        JsonValue json_row = JsonValue::object();
        json_row.set("program", JsonValue::str(profile.name));
        json_row.set("instr_millions",
                     JsonValue::number(profile.instrMillions));
        json_row.set("total_millions",
                     JsonValue::number(profile.totalMillions));
        json_row.set("data_per_instr_t2",
                     JsonValue::number(profile.dataPerInstr));
        json_row.set("data_per_instr_measured",
                     JsonValue::number(measured));
        benchRecordRow(std::move(json_row));
        table.addRow({
            profile.name,
            profile.description,
            cellf("%.1f", profile.instrMillions),
            cellf("%.1f", profile.totalMillions),
            cellf("%.3f", profile.dataPerInstr),
            cellf("%.3f", measured),
        });
        total_instr += profile.instrMillions;
        total_refs += profile.totalMillions;
    }
    table.addRow({"total", "", cellf("%.1f", total_instr),
                  cellf("%.1f", total_refs), "", ""});
    std::printf("%s\n", table.render().c_str());
    return 0;
}

int
main(int argc, char **argv)
{
    return rampage::benchMain(argc, argv, runBench);
}
