/**
 * @file
 * Ablation (paper §6.3 "work in progress"): the more aggressive 1998
 * hierarchy — a 1 K-entry 2-way TLB and 64 KB 2-way L1 caches.  The
 * paper's preliminary finding: with this hierarchy "RAMpage does
 * become competitive under a wider range of conditions (for example,
 * faster than a 2-way associative L2 cache with a 128-byte SRAM
 * page)".
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/cost_model.hh"
#include "util/error.hh"
#include "util/units.hh"

using namespace rampage;

namespace
{

CommonConfig
aggressiveCommon(std::uint64_t issue_hz)
{
    CommonConfig common = defaultCommon(issue_hz);
    common.tlb.entries = 1024;
    common.tlb.assoc = 2;
    common.l1SizeBytes = 64 * kib;
    common.l1Assoc = 2;
    return common;
}

} // namespace

static int
runBench()
{
    benchBanner(
        "Ablation - larger TLB (1K 2-way) + aggressive L1 (64KB 2-way)",
        "Sec 6.3: with the improved hierarchy RAMpage becomes "
        "competitive under a wider range of conditions, e.g. faster "
        "than a 2-way L2 even at a 128-byte SRAM page");
    benchScale();

    SimConfig sim = defaultSimConfig();
    constexpr std::uint64_t rate = 4'000'000'000ull;

    TextTable table;
    std::vector<std::string> header = {"hierarchy", "system"};
    for (const std::string &label : blockSizeLabels())
        header.push_back(label);
    table.setHeader(header);

    for (bool aggressive : {false, true}) {
        const char *tag = aggressive ? "1998-class" : "paper-base";
        std::vector<std::string> two_row = {tag, "2-way L2"};
        std::vector<std::string> ram_row = {"", "RAMpage"};
        for (std::uint64_t size : blockSizeSweep()) {
            ConventionalConfig two = twoWayConfig(rate, size);
            RampageConfig ram = rampageConfig(rate, size);
            if (aggressive) {
                two.common = aggressiveCommon(rate);
                ram.common = aggressiveCommon(rate);
            }
            SimResult two_res = simulateSystem(two, sim);
            SimResult ram_res = simulateSystem(ram, sim);
            std::string cell = std::string(tag) + "/" +
                               formatByteSize(size);
            benchRecordResult("2way/" + cell, two_res);
            benchRecordResult("rampage/" + cell, ram_res);
            std::fprintf(stderr, "  [%s %s done]\n", tag,
                         formatByteSize(size).c_str());
            two_row.push_back(formatSeconds(two_res.elapsedPs));
            ram_row.push_back(formatSeconds(ram_res.elapsedPs));
        }
        table.addRow(two_row);
        table.addRow(ram_row);
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}

int
main(int argc, char **argv)
{
    return rampage::benchMain(argc, argv, runBench);
}
