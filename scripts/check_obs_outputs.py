#!/usr/bin/env python3
"""Schema check for the timeline-observability artifacts.

Given a bench --json report produced with --trace-out and
--stats-interval, validates every per-point artifact the report names:

  * the Chrome trace-event JSON: Perfetto-loadable shape
    (displayTimeUnit, traceEvents with ph/pid/tid/ts, metadata track
    names) and a drop ledger whose written-event count is exactly
    emitted - dropped;
  * the interval JSONL: epochs numbered from 1, per-epoch refs summing
    to refs_total, monotone simulated time; and for every stat name
    shared with the report's final snapshot, either the epoch deltas
    sum to the final value (counters) or the last epoch's absolute
    value equals it (formulas) — the acceptance invariant for
    --stats-interval.

Usage: check_obs_outputs.py <bench-report.json>
Exits nonzero on the first malformed artifact.
"""

import json
import math
import sys

TRACK_NAMES = {"l2", "tlb", "pager", "dram", "sched"}
EVENT_NAMES = {
    "l2_miss", "page_fault", "tlb_fill", "tlb_flush",
    "context_switch", "dram_tx", "process_switch",
}

failures = 0


def fail(msg):
    global failures
    failures += 1
    print(f"check_obs_outputs: FAIL: {msg}", file=sys.stderr)


def check_trace(path):
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("displayTimeUnit") != "ns":
        fail(f"{path}: displayTimeUnit is not 'ns'")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents missing or empty")
        return
    tracks = set()
    written = 0
    last_ts = -math.inf
    for ev in events:
        ph = ev.get("ph")
        if ph == "M":
            if ev.get("name") == "thread_name":
                tracks.add(ev["args"]["name"])
            continue
        written += 1
        if ph not in ("X", "i"):
            fail(f"{path}: unexpected phase {ph!r}")
        if ev.get("name") not in EVENT_NAMES:
            fail(f"{path}: unknown event name {ev.get('name')!r}")
        for key in ("pid", "tid", "ts"):
            if key not in ev:
                fail(f"{path}: event missing '{key}'")
        if ph == "X" and "dur" not in ev:
            fail(f"{path}: complete event missing 'dur'")
        # The ring is written oldest-first, so simulated time is
        # monotone within one trace file.
        if ev.get("ts", 0) < last_ts:
            fail(f"{path}: timestamps go backwards at ts={ev['ts']}")
        last_ts = ev.get("ts", 0)
    if not tracks <= TRACK_NAMES:
        fail(f"{path}: unknown tracks {sorted(tracks - TRACK_NAMES)}")
    other = doc.get("otherData", {})
    emitted, dropped = other.get("emitted"), other.get("dropped")
    if not isinstance(emitted, int) or not isinstance(dropped, int):
        fail(f"{path}: otherData.emitted/dropped missing")
    elif written != emitted - dropped:
        fail(f"{path}: {written} events written but ledger says "
             f"{emitted} emitted - {dropped} dropped")
    return written


def check_intervals(path, final_stats):
    with open(path) as fh:
        lines = [json.loads(line) for line in fh if line.strip()]
    if not lines:
        fail(f"{path}: no epochs")
        return
    refs_sum = 0
    last_ns = -math.inf
    sums = {}
    for i, line in enumerate(lines):
        if line.get("epoch") != i + 1:
            fail(f"{path}: epoch {line.get('epoch')} at line {i + 1}")
        refs_sum += line.get("refs", 0)
        if line.get("refs_total") != refs_sum:
            fail(f"{path}: refs_total {line.get('refs_total')} != "
                 f"cumulative refs {refs_sum} at epoch {i + 1}")
        if line.get("sim_ns", 0) < last_ns:
            fail(f"{path}: sim_ns goes backwards at epoch {i + 1}")
        last_ns = line.get("sim_ns", 0)
        stats = line.get("stats")
        if not isinstance(stats, dict) or not stats:
            fail(f"{path}: epoch {i + 1} has no stats object")
            continue
        for name, value in stats.items():
            if isinstance(value, (int, float)):
                sums[name] = sums.get(name, 0) + value
    if final_stats is None:
        return
    final_line = lines[-1].get("stats", {})
    for name, final in final_stats.items():
        if not isinstance(final, (int, float)):
            continue  # histograms are objects; checked structurally
        if name not in sums:
            continue  # post-hoc sim.* entries never appear in epochs
        # Counters: deltas sum to the final absolute value.
        # Formulas: absolute each epoch, so the LAST epoch matches.
        if sums[name] != final and final_line.get(name) != final:
            fail(f"{path}: '{name}' sums to {sums[name]} and ends at "
                 f"{final_line.get(name)}, but the final snapshot "
                 f"says {final}")


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as fh:
        report = json.load(fh)
    results = report.get("results", [])
    traces = intervals = 0
    for result in results:
        if "trace_file" in result:
            check_trace(result["trace_file"])
            traces += 1
        if "interval_file" in result:
            check_intervals(result["interval_file"],
                            result.get("stats"))
            intervals += 1
    if not traces and not intervals:
        fail("report names no trace or interval files — was the bench "
             "run with --trace-out / --stats-interval?")
    phases = report.get("phases")
    if not isinstance(phases, dict) or "simulate" not in phases:
        fail("report has no host-phase rollup")
    if failures:
        return 1
    print(f"check_obs_outputs: ok ({traces} traces, "
          f"{intervals} interval series, "
          f"{len(results)} results)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
