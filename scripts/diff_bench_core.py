#!/usr/bin/env python3
"""Flag simulator-throughput regressions between two BENCH_core.json.

Compares the overall and per-bench mean simulate-phase refs-per-second
of a fresh results/BENCH_core.json against a committed baseline
(tests/golden/BENCH_core.baseline.json) and fails when anything
regressed by more than the threshold (default 10%).  The denominator
is the simulate phase alone — host time inside Simulator::run — so
trace generation, audits and checkpoint I/O cannot mask (or fake) an
inner-loop regression.

This is a failing CI gate, the perf analogue of the golden-stdout
diff for correctness.  Absolute throughput is machine-dependent, so
the gate compares *ratios* against a baseline captured on the same
class of runner; pass --warn-only to print the comparison but always
exit 0 (the escape hatch for machines the baseline was never meant
to describe, e.g. local laptops).

Malformed input is a named failure, never a traceback: a baseline
bench missing from the current run, a zero/negative current mean, or
a bench entry without its "bench"/"mean_refs_per_sec" keys all report
what is wrong and fail the gate (exit 1, or 0 under --warn-only);
unreadable or non-JSON input exits 2, like a usage error.

Updating the baseline: when a change intentionally alters throughput
(new subsystem, heavier audit, algorithmic trade-off), regenerate on
a quiet machine at the CI scale and commit the result alongside the
change that explains it:

    RAMPAGE_REFS=200000 RAMPAGE_QUANTUM=20000 ./run_benches.sh
    cp results/BENCH_core.json tests/golden/BENCH_core.baseline.json

Usage: diff_bench_core.py [--warn-only] <baseline.json> <current.json>
                          [threshold]
"""

import json
import sys


def load_doc(path):
    """Load one summary JSON; exits 2 on unreadable/invalid input."""
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except OSError as err:
        print(f"diff_bench_core: cannot read {path}: {err}",
              file=sys.stderr)
        sys.exit(2)
    except json.JSONDecodeError as err:
        print(f"diff_bench_core: {path} is not valid JSON: {err}",
              file=sys.stderr)
        sys.exit(2)
    if not isinstance(doc, dict):
        print(f"diff_bench_core: {path} is not a JSON object",
              file=sys.stderr)
        sys.exit(2)
    return doc


def mean_by_bench(doc, path, problems):
    """Index bench means by name; malformed entries become problems."""
    means = {}
    benches = doc.get("benches", [])
    if not isinstance(benches, list):
        problems.append(f"{path}: 'benches' is not a list")
        return means
    for i, entry in enumerate(benches):
        if not isinstance(entry, dict):
            problems.append(f"{path}: benches[{i}] is not an object")
            continue
        name = entry.get("bench")
        mean = entry.get("mean_refs_per_sec")
        if not isinstance(name, str) or not name:
            problems.append(
                f"{path}: benches[{i}] has no 'bench' name")
            continue
        if not isinstance(mean, (int, float)):
            problems.append(
                f"{path}: bench '{name}' has no numeric "
                f"'mean_refs_per_sec'")
            continue
        means[name] = float(mean)
    return means


def main():
    argv = sys.argv[1:]
    warn_only = "--warn-only" in argv
    if warn_only:
        argv.remove("--warn-only")
    sys.argv = [sys.argv[0]] + argv
    if len(sys.argv) not in (3, 4):
        print(__doc__, file=sys.stderr)
        return 2
    try:
        threshold = float(sys.argv[3]) if len(sys.argv) == 4 else 0.10
    except ValueError:
        print(f"diff_bench_core: threshold '{sys.argv[3]}' is not a "
              f"number", file=sys.stderr)
        return 2
    baseline = load_doc(sys.argv[1])
    current = load_doc(sys.argv[2])

    problems = []
    base_means = mean_by_bench(baseline, sys.argv[1], problems)
    cur_means = mean_by_bench(current, sys.argv[2], problems)

    regressions = []
    rows = [("overall", baseline.get("mean_refs_per_sec", 0),
             current.get("mean_refs_per_sec", 0))]
    for bench in sorted(base_means):
        if bench in cur_means:
            rows.append((bench, base_means[bench], cur_means[bench]))
        else:
            # A baseline bench that vanished is a coverage loss the
            # gate must not shrug off: a deleted (or crashed) bench
            # would otherwise hide any regression it used to measure.
            problems.append(
                f"baseline bench '{bench}' missing from the current "
                f"run")
    for bench in sorted(set(cur_means) - set(base_means)):
        print(f"  {bench:32s} (new bench, no baseline)")

    for name, base, cur in rows:
        if not isinstance(base, (int, float)):
            problems.append(
                f"baseline '{name}' mean is not numeric")
            continue
        if not isinstance(cur, (int, float)):
            problems.append(f"current '{name}' mean is not numeric")
            continue
        if base <= 0:
            # An unmeasured baseline can't anchor a ratio; skip it
            # loudly so a hollow baseline is visible in the log.
            print(f"  {name:32s} (baseline mean {base:.0f}, no ratio)")
            continue
        if cur <= 0:
            problems.append(
                f"current '{name}' mean is {cur:.0f} refs/s "
                f"(zero or negative)")
            continue
        change = (cur - base) / base
        marker = ""
        if change < -threshold:
            marker = "  <-- REGRESSION"
            regressions.append(name)
        print(f"  {name:32s} {base:14.0f} -> {cur:14.0f} refs/s "
              f"({change:+.1%}){marker}")

    failed = False
    if problems:
        for problem in problems:
            print(f"diff_bench_core: PROBLEM: {problem}",
                  file=sys.stderr)
        failed = True
    if regressions:
        print(f"diff_bench_core: {len(regressions)} mean-throughput "
              f"regression(s) beyond {threshold:.0%}: "
              f"{', '.join(regressions)}", file=sys.stderr)
        failed = True
    if failed:
        if warn_only:
            print("diff_bench_core: --warn-only, not failing",
                  file=sys.stderr)
            return 0
        return 1
    print(f"diff_bench_core: ok (no regression beyond {threshold:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
