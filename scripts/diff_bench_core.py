#!/usr/bin/env python3
"""Flag simulator-throughput regressions between two BENCH_core.json.

Compares the overall and per-bench mean refs-per-wall-second of a
fresh results/BENCH_core.json against a committed baseline
(tests/golden/BENCH_core.baseline.json) and fails when anything
regressed by more than the threshold (default 10%).

This is a failing CI gate, the perf analogue of the golden-stdout
diff for correctness.  Absolute throughput is machine-dependent, so
the gate compares *ratios* against a baseline captured on the same
class of runner; pass --warn-only to print the comparison but always
exit 0 (the escape hatch for machines the baseline was never meant
to describe, e.g. local laptops).

Updating the baseline: when a change intentionally alters throughput
(new subsystem, heavier audit, algorithmic trade-off), regenerate on
a quiet machine at the CI scale and commit the result alongside the
change that explains it:

    RAMPAGE_REFS=200000 RAMPAGE_QUANTUM=20000 ./run_benches.sh
    cp results/BENCH_core.json tests/golden/BENCH_core.baseline.json

Usage: diff_bench_core.py [--warn-only] <baseline.json> <current.json>
                          [threshold]
"""

import json
import sys


def main():
    argv = sys.argv[1:]
    warn_only = "--warn-only" in argv
    if warn_only:
        argv.remove("--warn-only")
    sys.argv = [sys.argv[0]] + argv
    if len(sys.argv) not in (3, 4):
        print(__doc__, file=sys.stderr)
        return 2
    threshold = float(sys.argv[3]) if len(sys.argv) == 4 else 0.10
    with open(sys.argv[1]) as fh:
        baseline = json.load(fh)
    with open(sys.argv[2]) as fh:
        current = json.load(fh)

    def mean_by_bench(doc):
        return {b["bench"]: b["mean_refs_per_sec"]
                for b in doc.get("benches", [])}

    base_means = mean_by_bench(baseline)
    cur_means = mean_by_bench(current)

    regressions = []
    rows = [("overall", baseline.get("mean_refs_per_sec", 0),
             current.get("mean_refs_per_sec", 0))]
    for bench in sorted(base_means):
        if bench in cur_means:
            rows.append((bench, base_means[bench], cur_means[bench]))
    for bench in sorted(set(cur_means) - set(base_means)):
        print(f"  {bench:32s} (new bench, no baseline)")

    for name, base, cur in rows:
        if base <= 0:
            continue
        change = (cur - base) / base
        marker = ""
        if change < -threshold:
            marker = "  <-- REGRESSION"
            regressions.append(name)
        print(f"  {name:32s} {base:14.0f} -> {cur:14.0f} refs/s "
              f"({change:+.1%}){marker}")

    if regressions:
        print(f"diff_bench_core: {len(regressions)} mean-throughput "
              f"regression(s) beyond {threshold:.0%}: "
              f"{', '.join(regressions)}", file=sys.stderr)
        if warn_only:
            print("diff_bench_core: --warn-only, not failing",
                  file=sys.stderr)
            return 0
        return 1
    print(f"diff_bench_core: ok (no regression beyond {threshold:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
