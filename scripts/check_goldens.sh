#!/bin/sh
# Golden-stdout harness: the refactor-safety net for the paper tables.
#
# Runs the pinned benches at a tiny fixed scale and diffs their stdout
# byte-for-byte against the committed goldens in tests/golden/.  Any
# drift — a reordered stat, a reformatted cell, a changed count —
# fails loudly with the diff, so "the benches still print exactly what
# they printed" is machine-checked on every CI run instead of eyeballed.
#
# Usage: check_goldens.sh [bench-dir]        (default: build/bench)
# Regenerate after an *intentional* output change:
#   check_goldens.sh --update [bench-dir]
set -u

update=0
if [ "${1:-}" = "--update" ]; then
  update=1
  shift
fi
bench_dir="${1:-build/bench}"
script_dir=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
golden_dir="$script_dir/../tests/golden"

# The pinned scale: small enough to run in seconds, large enough to
# exercise faults, evictions and context switches in every bench.
RAMPAGE_REFS=40000
RAMPAGE_QUANTUM=4000
RAMPAGE_JOBS=2
export RAMPAGE_REFS RAMPAGE_QUANTUM RAMPAGE_JOBS
unset RAMPAGE_FULL RAMPAGE_RATES RAMPAGE_AUDIT RAMPAGE_INJECT_FAULT \
      RAMPAGE_DEBUG RAMPAGE_STATS RAMPAGE_DEADLINE RAMPAGE_RETRIES \
      RAMPAGE_ISOLATE RAMPAGE_SWEEP_FAULT RAMPAGE_TRACE_OUT \
      RAMPAGE_STATS_INTERVAL RAMPAGE_TRACE_RING \
      RAMPAGE_CORES 2>/dev/null

tmp=$(mktemp) || exit 1
# Clean the scratch file on normal exit AND on interruption — a ^C
# mid-diff must not leave temp litter, and must still exit nonzero.
trap 'rm -f "$tmp"' EXIT
trap 'rm -f "$tmp"; trap - EXIT; exit 130' INT TERM HUP

benches="table3_runtimes table4_ctx_switch fig4_overheads fig_cores_sweep"
status=0
missing=0
for name in $benches; do
  bin="$bench_dir/$name"
  golden="$golden_dir/$name.stdout"
  if [ ! -x "$bin" ]; then
    echo "check_goldens: missing bench binary '$bin'" >&2
    status=1
    continue
  fi
  if ! "$bin" > "$tmp" 2>/dev/null; then
    echo "check_goldens: $name exited with nonzero status" >&2
    status=1
    continue
  fi
  if [ $update -eq 1 ]; then
    mkdir -p "$golden_dir"
    cp "$tmp" "$golden"
    echo "check_goldens: updated $golden"
    continue
  fi
  if [ ! -f "$golden" ]; then
    echo "check_goldens: MISSING golden '$golden' (run with --update)" >&2
    missing=$((missing + 1))
    status=1
    continue
  fi
  if cmp -s "$golden" "$tmp"; then
    echo "check_goldens: $name ok"
  else
    echo "check_goldens: $name stdout DIFFERS from $golden:" >&2
    diff -u "$golden" "$tmp" >&2
    status=1
  fi
done
if [ "$missing" -gt 0 ]; then
  echo "check_goldens: $missing golden file(s) missing — failing" >&2
fi

# Second pass with the timeline-observability features ON: event
# tracing and interval stats write their files elsewhere, so stdout
# must still match the very same goldens byte-for-byte.  This is the
# machine check for "observability is side-effect-free".
if [ $update -eq 0 ] && [ $status -eq 0 ]; then
  obs_tmp=$(mktemp -d) || exit 1
  trap 'rm -f "$tmp"; rm -rf "$obs_tmp"' EXIT
  RAMPAGE_TRACE_OUT="$obs_tmp/trace"
  RAMPAGE_STATS_INTERVAL=4000
  export RAMPAGE_TRACE_OUT RAMPAGE_STATS_INTERVAL
  for name in $benches; do
    bin="$bench_dir/$name"
    golden="$golden_dir/$name.stdout"
    [ -x "$bin" ] && [ -f "$golden" ] || continue
    if ! "$bin" > "$tmp" 2>/dev/null; then
      echo "check_goldens: $name (tracing on) exited nonzero" >&2
      status=1
      continue
    fi
    if cmp -s "$golden" "$tmp"; then
      echo "check_goldens: $name ok (tracing on)"
    else
      echo "check_goldens: $name stdout DIFFERS with tracing on —" \
           "observability is not side-effect-free:" >&2
      diff -u "$golden" "$tmp" >&2
      status=1
    fi
  done
  unset RAMPAGE_TRACE_OUT RAMPAGE_STATS_INTERVAL
fi
exit $status
