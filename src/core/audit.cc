#include "core/audit.hh"

#include <cstdlib>

#include "core/cost_model.hh"
#include "core/hierarchy.hh"
#include "obs/phase_profiler.hh"
#include "os/scheduler.hh"
#include "util/debug.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace rampage
{

namespace
{

bool haveOverride = false;
AuditLevel overrideLevel = AuditLevel::Off;

} // namespace

const char *
auditLevelName(AuditLevel level)
{
    switch (level) {
      case AuditLevel::Off:
        return "off";
      case AuditLevel::Boundaries:
        return "boundaries";
      case AuditLevel::Paranoid:
        return "paranoid";
    }
    return "unknown";
}

AuditLevel
parseAuditLevel(const std::string &spec)
{
    if (spec == "off")
        return AuditLevel::Off;
    if (spec == "boundaries")
        return AuditLevel::Boundaries;
    if (spec == "paranoid")
        return AuditLevel::Paranoid;
    throw ConfigError(
        "unknown audit level '%s' (known: off, boundaries, paranoid)",
        spec.c_str());
}

void
setAuditLevelOverride(AuditLevel level)
{
    haveOverride = true;
    overrideLevel = level;
}

AuditLevel
resolveAuditLevel()
{
    if (haveOverride)
        return overrideLevel;
    const char *env = std::getenv("RAMPAGE_AUDIT");
    if (!env || !*env)
        return AuditLevel::Off;
    try {
        return parseAuditLevel(env);
    } catch (const ConfigError &) {
        // The variable was set to request auditing; honouring the
        // intent beats silently running unaudited.
        warnOnce("RAMPAGE_AUDIT: unknown level '%s', auditing at "
                 "'boundaries' (known: off, boundaries, paranoid)",
                 env);
        return AuditLevel::Boundaries;
    }
}

void
Auditor::walkHierarchy(const Hierarchy &hier, AuditContext &ctx)
{
    hier.auditState(ctx);
}

void
Auditor::auditHierarchy(const Hierarchy &hier, const std::string &scope)
{
    if (!enabled())
        return;
    AuditContext ctx(scope);
    walkHierarchy(hier, ctx);
    ++nRuns;
    nChecks += ctx.checksRun();
    ctx.raiseIfViolated();
}

void
Auditor::auditBlocking(const Hierarchy &hier, Tick elapsed_ps,
                       const std::string &scope)
{
    if (!enabled())
        return;
    ScopedPhaseTimer timer(SweepPhase::Audit);
    AuditContext ctx(scope);
    walkHierarchy(hier, ctx);

    // Blocking runs accrue every picosecond through the event counts,
    // so pricing them back at the run's own issue rate must reproduce
    // the elapsed time exactly.  This is the identity that lets one
    // behavioural run be re-priced across the paper's 200 MHz - 4 GHz
    // sweep; a skewed cycle accumulator breaks it immediately.
    Tick priced = totalTimePs(hier.counts(),
                              hier.commonConfig().issueHz);
    ctx.check(priced == elapsed_ps, "time.conservation",
              "elapsed %llu ps but events re-price to %llu ps at "
              "%llu Hz (drift %lld ps)",
              static_cast<unsigned long long>(elapsed_ps),
              static_cast<unsigned long long>(priced),
              static_cast<unsigned long long>(
                  hier.commonConfig().issueHz),
              static_cast<long long>(priced) -
                  static_cast<long long>(elapsed_ps));

    ++nRuns;
    nChecks += ctx.checksRun();
    ctx.raiseIfViolated();
}

void
Auditor::auditSwitchOnMiss(const Hierarchy &hier, const Scheduler &sched,
                           Tick now, const std::string &scope)
{
    if (!enabled())
        return;
    ScopedPhaseTimer timer(SweepPhase::Audit);
    AuditContext ctx(scope);
    walkHierarchy(hier, ctx);
    sched.auditState(ctx, now);
    ++nRuns;
    nChecks += ctx.checksRun();
    ctx.raiseIfViolated();
}

} // namespace rampage
