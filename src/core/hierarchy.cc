#include "core/hierarchy.hh"

#include "core/access_engine.hh"
#include "obs/trace_session.hh"
#include "util/audit.hh"
#include "util/bitops.hh"
#include "util/debug.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace rampage
{

namespace
{

CacheParams
l1Params(const CommonConfig &cfg, const char *name, std::uint64_t seed)
{
    CacheParams params;
    params.name = name;
    params.sizeBytes = cfg.l1SizeBytes;
    params.blockBytes = cfg.l1BlockBytes;
    params.assoc = cfg.l1Assoc;
    params.repl = ReplPolicy::LRU;
    params.seed = seed;
    return params;
}

} // namespace

Tick
CommonConfig::cyclePs() const
{
    return cycleTimePs(issueHz);
}

Hierarchy::Hierarchy(const CommonConfig &config)
    : cfg(config),
      cycPs(config.cyclePs()),
      l1iCache(l1Params(config, "L1i", 101)),
      l1dCache(l1Params(config, "L1d", 102)),
      tlbUnit(config.tlb),
      rambusModel(config.rambus),
      sdramModel(config.sdram),
      dramSel(config.dramKind == CommonConfig::DramKind::Sdram
                  ? static_cast<const DramModel *>(&sdramModel)
                  : static_cast<const DramModel *>(&rambusModel)),
      handlers(config.handlerLayout, config.handlerCosts),
      dir(config.dramPageBytes)
{
    l1iCache.registerStats(statsReg, "l1i");
    l1dCache.registerStats(statsReg, "l1d");
    tlbUnit.registerStats(statsReg, "tlb");
    evt.registerStats(statsReg);
    statsReg.addHistogram("dram.tx_bytes", "DRAM transaction sizes",
                          &dramTxHist);
    statsReg.addFormula("dram.peak_bandwidth",
                        "peak streaming bandwidth (bytes/s)",
                        [this] { return dram().peakBandwidth(); });
}

void
Hierarchy::noteDramTx(std::uint64_t bytes, bool is_write)
{
    dramTxHist.add(bytes);
    RAMPAGE_DPRINTF(Dram, "%s tx %llu bytes",
                    is_write ? "write" : "read",
                    static_cast<unsigned long long>(bytes));
    RAMPAGE_TRACE_EVENT(DramTx, 0, bytes,
                        static_cast<Pid>(is_write ? 1 : 0));
    (void)is_write;
}

TimeBreakdown
Hierarchy::breakdown(std::uint64_t issue_hz) const
{
    return priceEvents(evt, issue_hz);
}

Tick
Hierarchy::totalPs(std::uint64_t issue_hz) const
{
    return breakdown(issue_hz).total();
}

// The access-sequence bodies live in src/core/access_engine.hh as
// templates over the hierarchy type.  These instantiations with
// H = Hierarchy are the generic, dynamically-dispatched path: every
// policy hook goes through the vtable.  The concrete subclasses
// override access()/accessBatch()/runContextSwitchTrace() with
// statically-bound instantiations (H = themselves, marked `final`);
// tests/test_dispatch_equivalence.cc proves the two bit-identical.

AccessOutcome
Hierarchy::access(const MemRef &ref)
{
    return AccessEngine::access(*this, ref);
}

BatchOutcome
Hierarchy::accessBatch(const MemRef *refs, std::size_t n,
                       bool stop_on_deferred_fault)
{
    return AccessEngine::accessBatch(*this, refs, n,
                                     stop_on_deferred_fault);
}

AccessOutcome
Hierarchy::accessGeneric(const MemRef &ref)
{
    return AccessEngine::access(*this, ref);
}

Cycles
Hierarchy::cachedAccess(const MemRef &ref, Addr paddr)
{
    return AccessEngine::cachedAccess(*this, ref, paddr);
}

bool
Hierarchy::invalidateL1Range(Addr base, std::uint64_t bytes,
                             Cycles &cycles_out)
{
    bool flushed_dirty = false;
    Cycles cycles = 0;
    for (Addr block = base; block < base + bytes;
         block += cfg.l1BlockBytes) {
        // Both L1 caches are probed at hit time (§4.3: "the given hit
        // times are however used when replacements or maintaining
        // inclusion are simulated").
        evt.l1iCycles += cfg.l1HitCycles;
        evt.l1dCycles += cfg.l1HitCycles;
        evt.inclusionProbes += 2;
        l1iCache.invalidate(block);
        auto inv = l1dCache.invalidate(block);
        if (inv.present && inv.dirty) {
            // The L1 copy was newer: flush it into the departing
            // block so the DRAM write carries current data.
            ++evt.inclusionWritebacks;
            cycles += l1WritebackCost();
            flushed_dirty = true;
        }
    }
    evt.l2Cycles += cycles;
    cycles_out = cycles;
    return flushed_dirty;
}

Tick
Hierarchy::runHandlerRefs(const std::vector<MemRef> &refs,
                          OverheadKind kind)
{
    return AccessEngine::runHandlerRefs(*this, refs, kind);
}

Tick
Hierarchy::dramBurstPs(std::uint64_t bytes, std::uint64_t count) const
{
    if (cfg.dramKind == CommonConfig::DramKind::DirectRambus &&
        cfg.rambus.pipelineDepth > 1) {
        return rambusModel.burstPs(bytes, count);
    }
    Tick total = 0;
    for (std::uint64_t i = 0; i < count; ++i)
        total += dram().readPs(bytes);
    return total;
}

void
Hierarchy::auditState(AuditContext &ctx) const
{
    l1iCache.auditState(ctx, "l1i");
    l1dCache.auditState(ctx, "l1d");
    tlbUnit.auditState(ctx);

    // --- last-translation cache backing ------------------------------
    // The per-stream cache in front of the TLB short-circuits
    // lookups, so a stale entry silently mistranslates: while live
    // (valid and captured under the current TLB generation) it must
    // mirror a live TLB entry exactly.  A mutation path that dodges
    // the generation counter trips this — ModelFault::TransCacheStale
    // proves the detector works.
    for (const auto &stream : transCache) {
        for (const TranslationCache &tc : stream) {
            if (!tc.valid || tc.gen != tlbUnit.generation())
                continue;
            std::uint64_t backing_frame = 0;
            bool backed = tlbUnit.peek(tc.pid, tc.vpn, backing_frame);
            ctx.check(backed && backing_frame == tc.frame,
                      "tlb.trans_cache",
                      "cached translation pid %u vpn %llu -> frame "
                      "%llu is %s the TLB (backing frame %llu)",
                      static_cast<unsigned>(tc.pid),
                      static_cast<unsigned long long>(tc.vpn),
                      static_cast<unsigned long long>(tc.frame),
                      backed ? "stale in" : "missing from",
                      static_cast<unsigned long long>(backing_frame));
        }
    }

    // --- event-count conservation ------------------------------------
    // The evt counters are accumulated alongside the components'
    // private statistics; divergence means one path forgot (or
    // double-counted) an event, which silently mis-prices the run.
    ctx.check(evt.l1iMisses == l1iCache.stats().misses &&
                  evt.l1dMisses == l1dCache.stats().misses,
              "events.conservation",
              "L1 miss counts diverge: evt %llu/%llu vs caches "
              "%llu/%llu (i/d)",
              static_cast<unsigned long long>(evt.l1iMisses),
              static_cast<unsigned long long>(evt.l1dMisses),
              static_cast<unsigned long long>(l1iCache.stats().misses),
              static_cast<unsigned long long>(l1dCache.stats().misses));
    ctx.check(evt.tlbMisses == tlbUnit.stats().misses,
              "events.conservation",
              "evt.tlbMisses %llu != TLB's own miss count %llu",
              static_cast<unsigned long long>(evt.tlbMisses),
              static_cast<unsigned long long>(tlbUnit.stats().misses));
    ctx.check(evt.l2Accesses == evt.l1iMisses + evt.l1dMisses,
              "events.conservation",
              "%llu %s accesses but %llu + %llu L1 misses",
              static_cast<unsigned long long>(evt.l2Accesses),
              l2Name().c_str(),
              static_cast<unsigned long long>(evt.l1iMisses),
              static_cast<unsigned long long>(evt.l1dMisses));
    ctx.check(evt.l2Misses <= evt.l2Accesses, "events.conservation",
              "%llu %s misses exceed %llu accesses",
              static_cast<unsigned long long>(evt.l2Misses),
              l2Name().c_str(),
              static_cast<unsigned long long>(evt.l2Accesses));
    ctx.check(evt.refs == evt.traceRefs + evt.overheadRefs,
              "events.conservation",
              "%llu refs != %llu trace + %llu overhead",
              static_cast<unsigned long long>(evt.refs),
              static_cast<unsigned long long>(evt.traceRefs),
              static_cast<unsigned long long>(evt.overheadRefs));
    ctx.check(evt.tlbMissOverheadRefs + evt.faultOverheadRefs <=
                  evt.overheadRefs,
              "events.conservation",
              "categorized handler refs (%llu TLB + %llu fault) "
              "exceed the %llu total",
              static_cast<unsigned long long>(evt.tlbMissOverheadRefs),
              static_cast<unsigned long long>(evt.faultOverheadRefs),
              static_cast<unsigned long long>(evt.overheadRefs));
    ctx.check(dramTxHist.samples() == evt.dramReads + evt.dramWrites,
              "events.conservation",
              "%llu DRAM transactions in the histogram but %llu + "
              "%llu counted (reads + writes)",
              static_cast<unsigned long long>(dramTxHist.samples()),
              static_cast<unsigned long long>(evt.dramReads),
              static_cast<unsigned long long>(evt.dramWrites));
}

Tick
Hierarchy::runContextSwitchTrace()
{
    return AccessEngine::runContextSwitchTrace(*this);
}

} // namespace rampage
