#include "core/hierarchy.hh"

#include "obs/trace_session.hh"
#include "util/audit.hh"
#include "util/bitops.hh"
#include "util/debug.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace rampage
{

namespace
{

CacheParams
l1Params(const CommonConfig &cfg, const char *name, std::uint64_t seed)
{
    CacheParams params;
    params.name = name;
    params.sizeBytes = cfg.l1SizeBytes;
    params.blockBytes = cfg.l1BlockBytes;
    params.assoc = cfg.l1Assoc;
    params.repl = ReplPolicy::LRU;
    params.seed = seed;
    return params;
}

} // namespace

Tick
CommonConfig::cyclePs() const
{
    return cycleTimePs(issueHz);
}

Hierarchy::Hierarchy(const CommonConfig &config)
    : cfg(config),
      cycPs(config.cyclePs()),
      l1iCache(l1Params(config, "L1i", 101)),
      l1dCache(l1Params(config, "L1d", 102)),
      tlbUnit(config.tlb),
      rambusModel(config.rambus),
      sdramModel(config.sdram),
      dramSel(config.dramKind == CommonConfig::DramKind::Sdram
                  ? static_cast<const DramModel *>(&sdramModel)
                  : static_cast<const DramModel *>(&rambusModel)),
      handlers(config.handlerLayout, config.handlerCosts),
      dir(config.dramPageBytes)
{
    l1iCache.registerStats(statsReg, "l1i");
    l1dCache.registerStats(statsReg, "l1d");
    tlbUnit.registerStats(statsReg, "tlb");
    evt.registerStats(statsReg);
    statsReg.addHistogram("dram.tx_bytes", "DRAM transaction sizes",
                          &dramTxHist);
    statsReg.addFormula("dram.peak_bandwidth",
                        "peak streaming bandwidth (bytes/s)",
                        [this] { return dram().peakBandwidth(); });
}

void
Hierarchy::noteDramTx(std::uint64_t bytes, bool is_write)
{
    dramTxHist.add(bytes);
    RAMPAGE_DPRINTF(Dram, "%s tx %llu bytes",
                    is_write ? "write" : "read",
                    static_cast<unsigned long long>(bytes));
    RAMPAGE_TRACE_EVENT(DramTx, 0, bytes,
                        static_cast<Pid>(is_write ? 1 : 0));
    (void)is_write;
}

TimeBreakdown
Hierarchy::breakdown(std::uint64_t issue_hz) const
{
    return priceEvents(evt, issue_hz);
}

Tick
Hierarchy::totalPs(std::uint64_t issue_hz) const
{
    return breakdown(issue_hz).total();
}

AccessOutcome
Hierarchy::access(const MemRef &ref)
{
    Cycles cyc_before = evt.l1iCycles + evt.l1dCycles + evt.l2Cycles;
    Tick dram_before = evt.dramPs;

    ++evt.refs;
    ++evt.traceRefs;

    AccessOutcome outcome;
    Addr paddr;
    if (ref.pid == osPid) {
        paddr = osPhysAddr(ref.vaddr);
    } else {
        unsigned page_bits = translationBits(ref.pid);
        std::uint64_t vpn = ref.vaddr >> page_bits;
        TlbLookup look = tlbUnit.lookup(ref.pid, vpn);
        std::uint64_t frame;
        if (look.hit) {
            frame = look.frame;
        } else {
            // TLB miss: walk the translation structure and interleave
            // the handler trace (§4.3).  Under RAMpage the walk hits
            // the pinned reserve and never references DRAM (§2.3) —
            // unless the page itself has faulted out of the SRAM main
            // memory; conventionally the probes are cacheable
            // references into the page table's DRAM image and the
            // frame is produced after the trace.
            ++evt.tlbMisses;
            probeScratch.clear();
            TranslationWalk walk =
                walkTranslation(ref.pid, vpn, probeScratch);
            handlerScratch.clear();
            handlers.tlbMiss(handlerScratch, probeScratch);
            runHandlerRefs(handlerScratch, OverheadKind::TlbMiss);

            if (walk.resolved)
                frame = walk.frame;
            else
                frame = resolveFault(ref.pid, vpn, outcome);
            tlbUnit.insert(ref.pid, vpn, frame);
            RAMPAGE_TRACE_EVENT(TlbFill, 0, vpn, ref.pid);
        }
        paddr = framePhysAddr(ref.pid, frame,
                              lowBits(ref.vaddr, page_bits));
    }

    cachedAccess(ref, paddr);

    Cycles cyc_after = evt.l1iCycles + evt.l1dCycles + evt.l2Cycles;
    Tick total = (cyc_after - cyc_before) * cycPs +
                 (evt.dramPs - dram_before);
    RAMPAGE_ASSERT(total >= outcome.deferPs,
                   "deferred time exceeds the access total");
    outcome.cpuPs = total - outcome.deferPs;
    return outcome;
}

Cycles
Hierarchy::cachedAccess(const MemRef &ref, Addr paddr)
{
    Cycles before = evt.l1iCycles + evt.l1dCycles + evt.l2Cycles;

    bool is_fetch = ref.isInstr();
    bool is_write = ref.isWrite();
    if (is_fetch) {
        // Instruction issue: the only cost of a fully-hitting stream
        // (§4.3: "where there are no misses, only instruction fetches
        // add to simulated run time").
        ++evt.instrFetches;
        evt.l1iCycles += cfg.l1HitCycles;
    }
    // TLB and L1 data hits are fully pipelined: zero time.  Stores
    // enjoy perfect write buffering (§4.3), so a hitting store is
    // also free; it merely dirties the L1 block.

    SetAssocCache &l1 = is_fetch ? l1iCache : l1dCache;
    CacheAccessResult res = l1.access(paddr, is_write && !is_fetch);
    if (!res.hit) {
        if (is_fetch)
            ++evt.l1iMisses;
        else
            ++evt.l1dMisses;

        // A dirty L1 victim is written back to the level below before
        // the fill (write-back, write-allocate L1).
        if (res.victimValid && res.victimDirty) {
            ++evt.l1Writebacks;
            evt.l2Cycles += l1WritebackCost();
            evt.l2Cycles += writebackBelow(res.victimAddr);
        }
        evt.l2Cycles += fillFromBelow(paddr, is_write && !is_fetch);
    }
    return evt.l1iCycles + evt.l1dCycles + evt.l2Cycles - before;
}

bool
Hierarchy::invalidateL1Range(Addr base, std::uint64_t bytes,
                             Cycles &cycles_out)
{
    bool flushed_dirty = false;
    Cycles cycles = 0;
    for (Addr block = base; block < base + bytes;
         block += cfg.l1BlockBytes) {
        // Both L1 caches are probed at hit time (§4.3: "the given hit
        // times are however used when replacements or maintaining
        // inclusion are simulated").
        evt.l1iCycles += cfg.l1HitCycles;
        evt.l1dCycles += cfg.l1HitCycles;
        evt.inclusionProbes += 2;
        l1iCache.invalidate(block);
        auto inv = l1dCache.invalidate(block);
        if (inv.present && inv.dirty) {
            // The L1 copy was newer: flush it into the departing
            // block so the DRAM write carries current data.
            ++evt.inclusionWritebacks;
            cycles += l1WritebackCost();
            flushed_dirty = true;
        }
    }
    evt.l2Cycles += cycles;
    cycles_out = cycles;
    return flushed_dirty;
}

Tick
Hierarchy::runHandlerRefs(const std::vector<MemRef> &refs,
                          OverheadKind kind)
{
    Cycles cyc_before = evt.l1iCycles + evt.l1dCycles + evt.l2Cycles;
    Tick dram_before = evt.dramPs;

    for (const MemRef &ref : refs) {
        RAMPAGE_ASSERT(ref.pid == osPid, "handler trace must use osPid");
        ++evt.refs;
        ++evt.overheadRefs;
        switch (kind) {
          case OverheadKind::TlbMiss:
            ++evt.tlbMissOverheadRefs;
            break;
          case OverheadKind::PageFault:
            ++evt.faultOverheadRefs;
            break;
          case OverheadKind::ContextSwitch:
            break;
        }
        cachedAccess(ref, osPhysAddr(ref.vaddr));
    }

    Cycles cyc_after = evt.l1iCycles + evt.l1dCycles + evt.l2Cycles;
    return (cyc_after - cyc_before) * cycPs + (evt.dramPs - dram_before);
}

Tick
Hierarchy::dramBurstPs(std::uint64_t bytes, std::uint64_t count) const
{
    if (cfg.dramKind == CommonConfig::DramKind::DirectRambus &&
        cfg.rambus.pipelineDepth > 1) {
        return rambusModel.burstPs(bytes, count);
    }
    Tick total = 0;
    for (std::uint64_t i = 0; i < count; ++i)
        total += dram().readPs(bytes);
    return total;
}

void
Hierarchy::auditState(AuditContext &ctx) const
{
    l1iCache.auditState(ctx, "l1i");
    l1dCache.auditState(ctx, "l1d");
    tlbUnit.auditState(ctx);

    // --- event-count conservation ------------------------------------
    // The evt counters are accumulated alongside the components'
    // private statistics; divergence means one path forgot (or
    // double-counted) an event, which silently mis-prices the run.
    ctx.check(evt.l1iMisses == l1iCache.stats().misses &&
                  evt.l1dMisses == l1dCache.stats().misses,
              "events.conservation",
              "L1 miss counts diverge: evt %llu/%llu vs caches "
              "%llu/%llu (i/d)",
              static_cast<unsigned long long>(evt.l1iMisses),
              static_cast<unsigned long long>(evt.l1dMisses),
              static_cast<unsigned long long>(l1iCache.stats().misses),
              static_cast<unsigned long long>(l1dCache.stats().misses));
    ctx.check(evt.tlbMisses == tlbUnit.stats().misses,
              "events.conservation",
              "evt.tlbMisses %llu != TLB's own miss count %llu",
              static_cast<unsigned long long>(evt.tlbMisses),
              static_cast<unsigned long long>(tlbUnit.stats().misses));
    ctx.check(evt.l2Accesses == evt.l1iMisses + evt.l1dMisses,
              "events.conservation",
              "%llu %s accesses but %llu + %llu L1 misses",
              static_cast<unsigned long long>(evt.l2Accesses),
              l2Name().c_str(),
              static_cast<unsigned long long>(evt.l1iMisses),
              static_cast<unsigned long long>(evt.l1dMisses));
    ctx.check(evt.l2Misses <= evt.l2Accesses, "events.conservation",
              "%llu %s misses exceed %llu accesses",
              static_cast<unsigned long long>(evt.l2Misses),
              l2Name().c_str(),
              static_cast<unsigned long long>(evt.l2Accesses));
    ctx.check(evt.refs == evt.traceRefs + evt.overheadRefs,
              "events.conservation",
              "%llu refs != %llu trace + %llu overhead",
              static_cast<unsigned long long>(evt.refs),
              static_cast<unsigned long long>(evt.traceRefs),
              static_cast<unsigned long long>(evt.overheadRefs));
    ctx.check(evt.tlbMissOverheadRefs + evt.faultOverheadRefs <=
                  evt.overheadRefs,
              "events.conservation",
              "categorized handler refs (%llu TLB + %llu fault) "
              "exceed the %llu total",
              static_cast<unsigned long long>(evt.tlbMissOverheadRefs),
              static_cast<unsigned long long>(evt.faultOverheadRefs),
              static_cast<unsigned long long>(evt.overheadRefs));
    ctx.check(dramTxHist.samples() == evt.dramReads + evt.dramWrites,
              "events.conservation",
              "%llu DRAM transactions in the histogram but %llu + "
              "%llu counted (reads + writes)",
              static_cast<unsigned long long>(dramTxHist.samples()),
              static_cast<unsigned long long>(evt.dramReads),
              static_cast<unsigned long long>(evt.dramWrites));
}

Tick
Hierarchy::runContextSwitchTrace()
{
    handlerScratch.clear();
    handlers.contextSwitch(handlerScratch);
    ++evt.contextSwitches;
    return runHandlerRefs(handlerScratch, OverheadKind::ContextSwitch);
}

} // namespace rampage
