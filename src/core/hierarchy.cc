#include "core/hierarchy.hh"

#include "core/access_engine.hh"
#include "obs/trace_session.hh"
#include "util/audit.hh"
#include "util/bitops.hh"
#include "util/debug.hh"
#include "util/error.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace rampage
{

Tick
CommonConfig::cyclePs() const
{
    return cycleTimePs(issueHz);
}

Hierarchy::Hierarchy(const CommonConfig &config)
    : cfg(config),
      cycPs(config.cyclePs()),
      backend(config),
      handlers(config.handlerLayout, config.handlerCosts)
{
    if (cfg.cores < 1 || cfg.cores > maxCores) {
        throw ConfigError("cores must be in [1, " +
                          std::to_string(maxCores) + "], got " +
                          std::to_string(cfg.cores));
    }
    // One frontend per core.  With one core the stats keep their
    // historical unprefixed names ("l1i.hits", ...); with more, each
    // core's components register under "coreN." so per-core behaviour
    // stays separately observable.
    frontends.reserve(cfg.cores);
    for (unsigned c = 0; c < cfg.cores; ++c) {
        frontends.push_back(
            std::make_unique<CoreFrontend>(cfg, static_cast<CoreId>(c)));
        const std::string prefix =
            cfg.cores == 1 ? "" : "core" + std::to_string(c) + ".";
        frontends.back()->registerStats(statsReg, prefix);
    }
    activeFe = frontends.front().get();
    evt.registerStats(statsReg);
    statsReg.addHistogram("dram.tx_bytes", "DRAM transaction sizes",
                          &backend.dramTxHist);
    statsReg.addFormula("dram.peak_bandwidth",
                        "peak streaming bandwidth (bytes/s)",
                        [this] { return dram().peakBandwidth(); });
}

void
Hierarchy::noteDramTx(std::uint64_t bytes, bool is_write)
{
    backend.dramTxHist.add(bytes);
    RAMPAGE_DPRINTF(Dram, "%s tx %llu bytes",
                    is_write ? "write" : "read",
                    static_cast<unsigned long long>(bytes));
    RAMPAGE_TRACE_EVENT(DramTx, 0, bytes,
                        static_cast<Pid>(is_write ? 1 : 0));
    (void)is_write;
}

TimeBreakdown
Hierarchy::breakdown(std::uint64_t issue_hz) const
{
    return priceEvents(evt, issue_hz);
}

Tick
Hierarchy::totalPs(std::uint64_t issue_hz) const
{
    return breakdown(issue_hz).total();
}

// The access-sequence bodies live in src/core/access_engine.hh as
// templates over the hierarchy type.  These instantiations with
// H = Hierarchy are the generic, dynamically-dispatched path: every
// policy hook goes through the vtable.  The concrete subclasses
// override access()/accessBatch()/runContextSwitchTrace() with
// statically-bound instantiations (H = themselves, marked `final`);
// tests/test_dispatch_equivalence.cc proves the two bit-identical.

AccessOutcome
Hierarchy::access(const MemRef &ref)
{
    return AccessEngine::access(*this, ref);
}

BatchOutcome
Hierarchy::accessBatch(const MemRef *refs, std::size_t n,
                       bool stop_on_deferred_fault)
{
    return AccessEngine::accessBatch(*this, refs, n,
                                     stop_on_deferred_fault);
}

AccessOutcome
Hierarchy::accessGeneric(const MemRef &ref)
{
    return AccessEngine::access(*this, ref);
}

Cycles
Hierarchy::cachedAccess(const MemRef &ref, Addr paddr)
{
    return AccessEngine::cachedAccess(*this, ref, paddr);
}

bool
Hierarchy::invalidateL1Range(Addr base, std::uint64_t bytes,
                             Cycles &cycles_out)
{
    // Every core: the single-core path and conventional hierarchies
    // have exactly one frontend, so this is the historical behaviour;
    // the residency-gated multicore page-replacement path calls
    // invalidateL1RangeFor() per resident core instead.
    bool flushed_dirty = false;
    Cycles cycles = 0;
    for (auto &core : frontends) {
        Cycles core_cycles = 0;
        flushed_dirty |=
            invalidateL1RangeFor(*core, base, bytes, core_cycles);
        cycles += core_cycles;
    }
    cycles_out = cycles;
    return flushed_dirty;
}

bool
Hierarchy::invalidateL1RangeFor(CoreFrontend &core, Addr base,
                                std::uint64_t bytes, Cycles &cycles_out)
{
    bool flushed_dirty = false;
    Cycles cycles = 0;
    for (Addr block = base; block < base + bytes;
         block += cfg.l1BlockBytes) {
        // Both L1 caches are probed at hit time (§4.3: "the given hit
        // times are however used when replacements or maintaining
        // inclusion are simulated").
        evt.l1iCycles += cfg.l1HitCycles;
        evt.l1dCycles += cfg.l1HitCycles;
        evt.inclusionProbes += 2;
        core.l1iCache.invalidate(block);
        auto inv = core.l1dCache.invalidate(block);
        if (inv.present && inv.dirty) {
            // The L1 copy was newer: flush it into the departing
            // block so the DRAM write carries current data.
            ++evt.inclusionWritebacks;
            cycles += l1WritebackCost();
            flushed_dirty = true;
        }
    }
    evt.l2Cycles += cycles;
    cycles_out = cycles;
    return flushed_dirty;
}

Tick
Hierarchy::runHandlerRefs(const std::vector<MemRef> &refs,
                          OverheadKind kind)
{
    return AccessEngine::runHandlerRefs(*this, refs, kind);
}

Tick
Hierarchy::dramBurstPs(std::uint64_t bytes, std::uint64_t count) const
{
    if (cfg.dramKind == CommonConfig::DramKind::DirectRambus &&
        cfg.rambus.pipelineDepth > 1) {
        return backend.rambusModel.burstPs(bytes, count);
    }
    Tick total = 0;
    for (std::uint64_t i = 0; i < count; ++i)
        total += dram().readPs(bytes);
    return total;
}

void
Hierarchy::auditState(AuditContext &ctx) const
{
    const bool multi = frontends.size() > 1;
    std::uint64_t l1i_misses = 0;
    std::uint64_t l1d_misses = 0;
    std::uint64_t tlb_misses = 0;
    for (const auto &corep : frontends) {
        const CoreFrontend &core = *corep;
        const std::string prefix =
            multi ? "core" + std::to_string(core.id) + "." : "";
        core.l1iCache.auditState(ctx, prefix + "l1i");
        core.l1dCache.auditState(ctx, prefix + "l1d");
        core.tlbUnit.auditState(ctx);
        l1i_misses += core.l1iCache.stats().misses;
        l1d_misses += core.l1dCache.stats().misses;
        tlb_misses += core.tlbUnit.stats().misses;

        // --- last-translation cache backing --------------------------
        // The per-stream cache in front of the TLB short-circuits
        // lookups, so a stale entry silently mistranslates: while live
        // (valid and captured under the current TLB generation) it
        // must mirror a live TLB entry exactly.  A mutation path that
        // dodges the generation counter trips this —
        // ModelFault::TransCacheStale proves the detector works.
        for (const auto &stream : core.transCache) {
            for (const TranslationCache &tc : stream) {
                if (!tc.valid || tc.gen != core.tlbUnit.generation())
                    continue;
                std::uint64_t backing_frame = 0;
                bool backed =
                    core.tlbUnit.peek(tc.pid, tc.vpn, backing_frame);
                ctx.check(backed && backing_frame == tc.frame,
                          "tlb.trans_cache",
                          "cached translation pid %u vpn %llu -> frame "
                          "%llu is %s the TLB (backing frame %llu)",
                          static_cast<unsigned>(tc.pid),
                          static_cast<unsigned long long>(tc.vpn),
                          static_cast<unsigned long long>(tc.frame),
                          backed ? "stale in" : "missing from",
                          static_cast<unsigned long long>(backing_frame));
            }
        }
    }

    // --- event-count conservation ------------------------------------
    // The evt counters are accumulated alongside the components'
    // private statistics (summed across cores; the shared counters
    // see every core's events).  Divergence means one path forgot (or
    // double-counted) an event, which silently mis-prices the run.
    ctx.check(evt.l1iMisses == l1i_misses && evt.l1dMisses == l1d_misses,
              "events.conservation",
              "L1 miss counts diverge: evt %llu/%llu vs caches "
              "%llu/%llu (i/d)",
              static_cast<unsigned long long>(evt.l1iMisses),
              static_cast<unsigned long long>(evt.l1dMisses),
              static_cast<unsigned long long>(l1i_misses),
              static_cast<unsigned long long>(l1d_misses));
    ctx.check(evt.tlbMisses == tlb_misses,
              "events.conservation",
              "evt.tlbMisses %llu != TLBs' own miss count %llu",
              static_cast<unsigned long long>(evt.tlbMisses),
              static_cast<unsigned long long>(tlb_misses));
    ctx.check(evt.l2Accesses == evt.l1iMisses + evt.l1dMisses,
              "events.conservation",
              "%llu %s accesses but %llu + %llu L1 misses",
              static_cast<unsigned long long>(evt.l2Accesses),
              l2Name().c_str(),
              static_cast<unsigned long long>(evt.l1iMisses),
              static_cast<unsigned long long>(evt.l1dMisses));
    ctx.check(evt.l2Misses <= evt.l2Accesses, "events.conservation",
              "%llu %s misses exceed %llu accesses",
              static_cast<unsigned long long>(evt.l2Misses),
              l2Name().c_str(),
              static_cast<unsigned long long>(evt.l2Accesses));
    ctx.check(evt.refs == evt.traceRefs + evt.overheadRefs,
              "events.conservation",
              "%llu refs != %llu trace + %llu overhead",
              static_cast<unsigned long long>(evt.refs),
              static_cast<unsigned long long>(evt.traceRefs),
              static_cast<unsigned long long>(evt.overheadRefs));
    ctx.check(evt.tlbMissOverheadRefs + evt.faultOverheadRefs <=
                  evt.overheadRefs,
              "events.conservation",
              "categorized handler refs (%llu TLB + %llu fault) "
              "exceed the %llu total",
              static_cast<unsigned long long>(evt.tlbMissOverheadRefs),
              static_cast<unsigned long long>(evt.faultOverheadRefs),
              static_cast<unsigned long long>(evt.overheadRefs));
    ctx.check(backend.dramTxHist.samples() ==
                  evt.dramReads + evt.dramWrites,
              "events.conservation",
              "%llu DRAM transactions in the histogram but %llu + "
              "%llu counted (reads + writes)",
              static_cast<unsigned long long>(
                  backend.dramTxHist.samples()),
              static_cast<unsigned long long>(evt.dramReads),
              static_cast<unsigned long long>(evt.dramWrites));
}

Tick
Hierarchy::runContextSwitchTrace()
{
    return AccessEngine::runContextSwitchTrace(*this);
}

} // namespace rampage
