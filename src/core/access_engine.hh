/**
 * @file
 * The per-reference access sequence, written once as a set of static
 * member templates over the hierarchy type.
 *
 * The sequencing — TLB lookup (behind a per-stream last-translation
 * cache), translation walk with its interleaved handler trace, fault
 * resolution, then the L1 + lower-level walk — is identical for every
 * hierarchy; only the policy hooks (translationBits, walkTranslation,
 * resolveFault, framePhysAddr, fillFromBelow, writebackBelow,
 * osPhysAddr, l1WritebackCost) differ.  Instantiated with
 * H = Hierarchy the hooks dispatch virtually (the generic reference
 * path, kept alive as Hierarchy::accessGeneric() and proven
 * bit-identical by tests/test_dispatch_equivalence.cc); instantiated
 * with a concrete `final` hierarchy the compiler binds every hook
 * statically, which is what makes the simulator's inner loop cheap.
 *
 * The translation cache in front of the TLB (one entry per
 * instruction/data stream) is exactly state- and stat-neutral: it
 * only fires when a full lookup would hit the same TLB slot — the
 * slot's generation-stamped validity guarantees no mutation since
 * capture — and Tlb::recordHitAt() replays that hit bit-exactly.
 * Its staleness invariant ("tlb.trans_cache") is audited by
 * Hierarchy::auditState() and provable via ModelFault::
 * TransCacheStale.
 */

#ifndef RAMPAGE_CORE_ACCESS_ENGINE_HH
#define RAMPAGE_CORE_ACCESS_ENGINE_HH

#include "core/hierarchy.hh"
#include "obs/trace_session.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace rampage
{

/**
 * Static-dispatch engine for the access sequence.  A friend of the
 * hierarchy classes: the bodies read and write their protected state
 * directly, exactly as the former Hierarchy member functions did.
 */
struct AccessEngine
{
    /** One benchmark-trace reference (Hierarchy::access contract). */
    template <class H>
    static AccessOutcome
    access(H &h, const MemRef &ref)
    {
        Cycles cyc_before =
            h.evt.l1iCycles + h.evt.l1dCycles + h.evt.l2Cycles;
        Tick dram_before = h.evt.dramPs;

        ++h.evt.refs;
        ++h.evt.traceRefs;

        AccessOutcome outcome;
        Addr paddr;
        if (ref.pid == osPid) {
            paddr = h.osPhysAddr(ref.vaddr);
        } else {
            CoreFrontend &fe = h.fe();
            unsigned page_bits = h.translationBits(ref.pid);
            std::uint64_t vpn = ref.vaddr >> page_bits;
            std::uint64_t frame;
            CoreFrontend::TranslationCache &tc =
                fe.transCache[ref.isInstr() ? 1 : 0]
                             [vpn &
                              (CoreFrontend::transCacheEntries - 1)];
            if (fe.transCacheOn && tc.valid && tc.pid == ref.pid &&
                tc.vpn == vpn &&
                tc.gen == fe.tlbUnit.generation()) {
                // Last-translation fast path: this stream's previous
                // reference translated this very page and the TLB has
                // not mutated since (its generation counter advances
                // on every insert/invalidate/flush/corruption), so
                // the full lookup would hit the same slot.
                // recordHitAt() replays that hit bit-exactly —
                // useCounter, hit count and LRU restamp — without the
                // way scan.
                frame = tc.frame;
                fe.tlbUnit.recordHitAt(tc.slot);
            } else {
                std::uint32_t slot = Tlb::noSlot;
                TlbLookup look = fe.tlbUnit.lookup(ref.pid, vpn, slot);
                if (look.hit) {
                    frame = look.frame;
                } else {
                    // TLB miss: walk the translation structure and
                    // interleave the handler trace (§4.3).  Under
                    // RAMpage the walk hits the pinned reserve and
                    // never references DRAM (§2.3) — unless the page
                    // itself has faulted out of the SRAM main memory;
                    // conventionally the probes are cacheable
                    // references into the page table's DRAM image and
                    // the frame is produced after the trace.
                    ++h.evt.tlbMisses;
                    fe.probeScratch.clear();
                    Hierarchy::TranslationWalk walk =
                        h.walkTranslation(ref.pid, vpn, fe.probeScratch);
                    fe.handlerScratch.clear();
                    h.handlers.tlbMiss(fe.handlerScratch,
                                       fe.probeScratch);
                    runHandlerRefs(h, fe.handlerScratch,
                                   Hierarchy::OverheadKind::TlbMiss);

                    if (walk.resolved)
                        frame = walk.frame;
                    else
                        frame = h.resolveFault(ref.pid, vpn, outcome);
                    fe.tlbUnit.insert(ref.pid, vpn, frame);
                    // Coherence-lite: the translation just installed
                    // makes this core a holder of private copies of
                    // the frame — record its residency bit so page
                    // replacement can find (and invalidate) them.
                    h.noteFrameResidency(frame);
                    RAMPAGE_TRACE_EVENT(TlbFill, 0, vpn, ref.pid);
                    slot = fe.tlbUnit.slotOf(ref.pid, vpn);
                }
                // Remember the translation just produced — slot and
                // generation are captured after the insert (and any
                // fault-path invalidations), so the entry retires
                // itself on the next TLB mutation and can never
                // outlive the slot backing it.
                tc.pid = ref.pid;
                tc.vpn = vpn;
                tc.frame = frame;
                tc.slot = slot;
                tc.gen = fe.tlbUnit.generation();
                tc.valid = slot != Tlb::noSlot;
            }
            paddr = h.framePhysAddr(ref.pid, frame,
                                    lowBits(ref.vaddr, page_bits));
        }

        cachedAccess(h, ref, paddr);

        Cycles cyc_after =
            h.evt.l1iCycles + h.evt.l1dCycles + h.evt.l2Cycles;
        Tick total = (cyc_after - cyc_before) * h.cycPs +
                     (h.evt.dramPs - dram_before);
        RAMPAGE_ASSERT(total >= outcome.deferPs,
                       "deferred time exceeds the access total");
        outcome.cpuPs = total - outcome.deferPs;
        return outcome;
    }

    /**
     * A contiguous run of references (Hierarchy::accessBatch
     * contract): per-reference outcomes are summed, and with
     * `stop_on_deferred_fault` the batch ends at (and includes) the
     * first reference that page-faults with overlappable transfer
     * time — the switch-on-miss scheduler must react to it before the
     * next reference runs.
     */
    template <class H>
    static BatchOutcome
    accessBatch(H &h, const MemRef *refs, std::size_t n,
                bool stop_on_deferred_fault)
    {
        BatchOutcome batch;
        for (std::size_t i = 0; i < n; ++i) {
            AccessOutcome out = access(h, refs[i]);
            ++batch.consumed;
            batch.cpuPs += out.cpuPs;
            batch.deferPs += out.deferPs;
            if (stop_on_deferred_fault && out.pageFault &&
                out.deferPs > 0) {
                batch.pageFault = true;
                break;
            }
        }
        return batch;
    }

    /** The L1 + lower-level walk (Hierarchy::cachedAccess contract). */
    template <class H>
    static Cycles
    cachedAccess(H &h, const MemRef &ref, Addr paddr)
    {
        Cycles before =
            h.evt.l1iCycles + h.evt.l1dCycles + h.evt.l2Cycles;

        bool is_fetch = ref.isInstr();
        bool is_write = ref.isWrite();
        if (is_fetch) {
            // Instruction issue: the only cost of a fully-hitting
            // stream (§4.3: "where there are no misses, only
            // instruction fetches add to simulated run time").
            ++h.evt.instrFetches;
            h.evt.l1iCycles += h.cfg.l1HitCycles;
        }
        // TLB and L1 data hits are fully pipelined: zero time.  Stores
        // enjoy perfect write buffering (§4.3), so a hitting store is
        // also free; it merely dirties the L1 block.

        CoreFrontend &fe = h.fe();
        SetAssocCache &l1 = is_fetch ? fe.l1iCache : fe.l1dCache;
        CacheAccessResult res = l1.access(paddr, is_write && !is_fetch);
        if (!res.hit) {
            if (is_fetch)
                ++h.evt.l1iMisses;
            else
                ++h.evt.l1dMisses;

            // A dirty L1 victim is written back to the level below
            // before the fill (write-back, write-allocate L1).
            if (res.victimValid && res.victimDirty) {
                ++h.evt.l1Writebacks;
                h.evt.l2Cycles += h.l1WritebackCost();
                h.evt.l2Cycles += h.writebackBelow(res.victimAddr);
            }
            h.evt.l2Cycles +=
                h.fillFromBelow(paddr, is_write && !is_fetch);
        }
        return h.evt.l1iCycles + h.evt.l1dCycles + h.evt.l2Cycles -
               before;
    }

    /** Handler-trace interleave (Hierarchy::runHandlerRefs contract). */
    template <class H>
    static Tick
    runHandlerRefs(H &h, const std::vector<MemRef> &refs,
                   Hierarchy::OverheadKind kind)
    {
        Cycles cyc_before =
            h.evt.l1iCycles + h.evt.l1dCycles + h.evt.l2Cycles;
        Tick dram_before = h.evt.dramPs;

        for (const MemRef &ref : refs) {
            RAMPAGE_ASSERT(ref.pid == osPid,
                           "handler trace must use osPid");
            ++h.evt.refs;
            ++h.evt.overheadRefs;
            switch (kind) {
              case Hierarchy::OverheadKind::TlbMiss:
                ++h.evt.tlbMissOverheadRefs;
                break;
              case Hierarchy::OverheadKind::PageFault:
                ++h.evt.faultOverheadRefs;
                break;
              case Hierarchy::OverheadKind::ContextSwitch:
                break;
            }
            cachedAccess(h, ref, h.osPhysAddr(ref.vaddr));
        }

        Cycles cyc_after =
            h.evt.l1iCycles + h.evt.l1dCycles + h.evt.l2Cycles;
        return (cyc_after - cyc_before) * h.cycPs +
               (h.evt.dramPs - dram_before);
    }

    /** The ~400-reference context-switch trace (§4.6). */
    template <class H>
    static Tick
    runContextSwitchTrace(H &h)
    {
        CoreFrontend &fe = h.fe();
        fe.handlerScratch.clear();
        h.handlers.contextSwitch(fe.handlerScratch);
        ++h.evt.contextSwitches;
        // A context switch changes the translating process: drop the
        // last-translation cache (part of its audited invariant).
        fe.transCacheInvalidate();
        return runHandlerRefs(h, fe.handlerScratch,
                              Hierarchy::OverheadKind::ContextSwitch);
    }
};

} // namespace rampage

#endif // RAMPAGE_CORE_ACCESS_ENGINE_HH
