/**
 * @file
 * Data-driven hierarchy construction: a tagged HierarchyConfig that
 * can describe any simulated system (conventional cache stacks and
 * every RAMpage page-size policy), and makeHierarchy() to build it.
 *
 * Benches, sweeps and tests describe *what* to simulate as data and
 * construct it through one function, instead of naming a subclass
 * per design point; the family-specific structs convert implicitly,
 * so `makeHierarchy(baselineConfig(...))` just works.
 */

#ifndef RAMPAGE_CORE_FACTORY_HH
#define RAMPAGE_CORE_FACTORY_HH

#include <memory>

#include "core/config.hh"

namespace rampage
{

class Hierarchy;
class ConventionalHierarchy;
class PagedHierarchy;

/** Tagged configuration describing any simulated system. */
struct HierarchyConfig
{
    enum class Family : std::uint8_t
    {
        Conventional, ///< L2 cache over DRAM (§4.4, §4.7, §3.2)
        Paged,        ///< RAMpage SRAM main memory (§4.5, §6.2/§6.3)
    };

    Family family = Family::Conventional;
    ConventionalConfig conventional{};
    PagedConfig paged{};

    HierarchyConfig() = default;
    /*implicit*/ HierarchyConfig(const ConventionalConfig &config)
        : family(Family::Conventional), conventional(config)
    {
    }
    /*implicit*/ HierarchyConfig(const PagedConfig &config)
        : family(Family::Paged), paged(config)
    {
    }

    /** The active family's shared (CommonConfig) parameters. */
    const CommonConfig &
    common() const
    {
        return family == Family::Paged ? paged.common
                                       : conventional.common;
    }
    CommonConfig &
    common()
    {
        return family == Family::Paged ? paged.common
                                       : conventional.common;
    }
};

/** Construct the hierarchy a HierarchyConfig describes. */
std::unique_ptr<Hierarchy> makeHierarchy(const HierarchyConfig &config);

/**
 * Validate a configuration without keeping the system: constructs and
 * discards the described hierarchy so every constructor-time check
 * (cache geometry, TLB shape, pager capacity, policy constraints)
 * runs.  Throws ConfigError for an invalid configuration; any other
 * exception escaping here is a validation bug — the differential
 * fuzzer (src/check/) feeds hostile configurations through this seam
 * and asserts exactly that.
 */
void validateHierarchyConfig(const HierarchyConfig &config);

/** Checked downcasts for family-specific inspection (ConfigError). */
PagedHierarchy &asPaged(Hierarchy &hier);
const PagedHierarchy &asPaged(const Hierarchy &hier);
ConventionalHierarchy &asConventional(Hierarchy &hier);
const ConventionalHierarchy &asConventional(const Hierarchy &hier);

} // namespace rampage

#endif // RAMPAGE_CORE_FACTORY_HH
