/**
 * @file
 * Memory-hierarchy base: the machinery shared by the conventional
 * cache hierarchy and RAMpage — the split direct-mapped L1, the TLB,
 * the Direct Rambus channel, handler-trace interleaving and event
 * accounting.
 *
 * A hierarchy consumes references one at a time and reports, per
 * reference, how much CPU-inline time it cost and how much DRAM
 * transfer time a context-switch-on-miss scheduler could overlap.
 * Which references hit or miss is independent of the issue rate, so
 * one behavioural run can be re-priced across the paper's whole
 * 200 MHz - 4 GHz sweep (see src/core/events.hh).
 */

#ifndef RAMPAGE_CORE_HIERARCHY_HH
#define RAMPAGE_CORE_HIERARCHY_HH

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache.hh"
#include "core/config.hh"
#include "core/core_frontend.hh"
#include "core/cost_model.hh"
#include "core/events.hh"
#include "core/memory_backend.hh"
#include "stats/registry.hh"
#include "tlb/tlb.hh"
#include "trace/handlers.hh"
#include "trace/record.hh"

namespace rampage
{

class AuditContext;
class FaultInjector;
struct AccessEngine;

/** Per-reference outcome. */
struct AccessOutcome
{
    /** Time the CPU is busy or blocked in-line for this reference. */
    Tick cpuPs = 0;
    /**
     * DRAM page-transfer time initiated by this reference that a
     * context-switch-on-miss scheduler could overlap with other work
     * (zero for conventional hierarchies, which block on every DRAM
     * transaction).
     */
    Tick deferPs = 0;
    /** The reference page-faulted out of the SRAM main memory. */
    bool pageFault = false;
};

/** Summed outcome of a contiguous batch of references. */
struct BatchOutcome
{
    /** References consumed (== n unless the batch stopped early). */
    std::size_t consumed = 0;
    /** Sum of the per-reference cpuPs, in order. */
    Tick cpuPs = 0;
    /** Sum of the per-reference deferPs (at most one nonzero). */
    Tick deferPs = 0;
    /**
     * The last consumed reference page-faulted with deferrable
     * transfer time (only set when the caller asked to stop there).
     */
    bool pageFault = false;
};

/** Abstract simulated memory hierarchy. */
class Hierarchy
{
  public:
    explicit Hierarchy(const CommonConfig &config);
    virtual ~Hierarchy() = default;

    Hierarchy(const Hierarchy &) = delete;
    Hierarchy &operator=(const Hierarchy &) = delete;

    /**
     * Process one benchmark-trace reference.  The sequencing is the
     * same for every hierarchy — TLB lookup (behind a one-entry
     * last-translation cache), on a miss the translation walk with
     * its interleaved handler trace, fault resolution, then the L1 +
     * lower-level walk — so it lives once in AccessEngine
     * (src/core/access_engine.hh); subclasses supply the policy hooks
     * (translationBits, walkTranslation, resolveFault, framePhysAddr)
     * and override this with a statically-bound instantiation so the
     * hooks devirtualize on the hot path.
     */
    virtual AccessOutcome access(const MemRef &ref);

    /**
     * Process a contiguous batch of references, summing the per-ref
     * outcomes.  With `stop_on_deferred_fault` the batch stops after
     * (and includes) the first reference whose fault produced
     * deferrable transfer time, so a switch-on-miss scheduler can
     * react before the next reference runs.  Exactly equivalent to
     * calling access() `consumed` times (proven by
     * tests/test_dispatch_equivalence.cc).
     */
    virtual BatchOutcome accessBatch(const MemRef *refs, std::size_t n,
                                     bool stop_on_deferred_fault);

    /**
     * access() through the dynamically-dispatched generic engine,
     * whatever the concrete type — the reference path the
     * devirtualized overrides are tested against.
     */
    AccessOutcome accessGeneric(const MemRef &ref);

    /**
     * Interleave the ~400-reference context-switch trace (§4.6) and
     * drop the last-translation cache (the running process changes).
     * @return CPU time consumed.
     */
    virtual Tick runContextSwitchTrace();

    /**
     * Disable (or re-enable) the per-stream last-translation cache
     * in front of the TLB (every core's).  The cache is exactly
     * state- and stat-neutral, so runs with it off are bit-identical
     * — this switch exists for the equivalence test that proves it.
     */
    void
    setTranslationCacheEnabled(bool on)
    {
        for (auto &core : frontends) {
            core->transCacheOn = on;
            if (!on)
                core->transCacheInvalidate();
        }
    }

    // --- the core/memory seam ---------------------------------------
    /** Configured CPU cores (one CoreFrontend each). */
    unsigned
    coreCount() const
    {
        return static_cast<unsigned>(frontends.size());
    }

    /**
     * Select the frontend subsequent access()/accessBatch()/handler
     * calls run against.  The multicore Simulator switches this at
     * every scheduling decision; single-core runs never touch it
     * (core 0 is active from construction).
     */
    void
    activateCore(CoreId core)
    {
        activeFe = frontends[core].get();
    }

    /** The frontend the access sequence currently runs against. */
    CoreFrontend &fe() { return *activeFe; }
    const CoreFrontend &fe() const { return *activeFe; }

    /** A specific core's frontend. */
    CoreFrontend &fe(CoreId core) { return *frontends[core]; }
    const CoreFrontend &fe(CoreId core) const
    {
        return *frontends[core];
    }

    /** The shared memory-side state behind every frontend. */
    MemoryBackend &memoryBackend() { return backend; }
    const MemoryBackend &memoryBackend() const { return backend; }

    /** Display name ("baseline", "2-way L2", "RAMpage", ...). */
    virtual std::string name() const = 0;

    /** Label for the third hierarchy level ("L2" or "SRAM MM"). */
    virtual std::string l2Name() const = 0;

    const EventCounts &counts() const { return evt; }
    const CommonConfig &commonConfig() const { return cfg; }
    /** The active core's components (single-core: the only core's). */
    const Tlb &tlb() const { return fe().tlbUnit; }
    const SetAssocCache &l1i() const { return fe().l1iCache; }
    const SetAssocCache &l1d() const { return fe().l1dCache; }
    /** The DRAM page directory (paging device / physical allocator). */
    const DramDirectory &directory() const { return backend.dir; }

    /**
     * The hierarchy's named-stats registry.  Every component registers
     * at construction; dump with dumpText()/dumpJson() or freeze with
     * snapshot() (SimResult carries a snapshot per run).
     */
    const StatsRegistry &statsRegistry() const { return statsReg; }

    /** Price this run's events at an issue rate (blocking runs). */
    TimeBreakdown breakdown(std::uint64_t issue_hz) const;

    /** Total simulated time at an issue rate (blocking runs). */
    Tick totalPs(std::uint64_t issue_hz) const;

    /**
     * Walk live model state and verify this hierarchy's invariants
     * into `ctx` (see src/core/audit.hh).  The base class audits the
     * shared components (L1s, TLB) and the event-count conservation
     * identities; overrides add the cross-component invariants that
     * need the level below (inclusion, translation backing, page
     * tables).  Must be side-effect-free: an audited run produces
     * byte-identical simulation output.
     */
    virtual void auditState(AuditContext &ctx) const;

  protected:
    /** Deterministic model-state corruption hooks (tests/CI only). */
    friend class FaultInjector;
    /** The statically-dispatched access bodies (access_engine.hh). */
    friend struct AccessEngine;
    /** Category a handler-trace reference is accounted under. */
    enum class OverheadKind
    {
        TlbMiss,
        PageFault,
        ContextSwitch,
    };

    /**
     * Run a handler reference stream through the hierarchy.
     * Handler references never recurse into further handler work
     * (OS pages bypass the TLB and are always resident).
     * @return CPU time consumed.
     */
    Tick runHandlerRefs(const std::vector<MemRef> &refs,
                        OverheadKind kind);

    /**
     * The L1 + lower-level walk for a reference whose physical
     * address is known.  Charges issue time for fetches, probes L1,
     * and on a miss calls fillFromBelow() for the lower level.
     * @return cycles consumed (cycle-denominated only).
     */
    Cycles cachedAccess(const MemRef &ref, Addr paddr);

    /**
     * Lower-level access on an L1 miss: look up the L2 cache or SRAM
     * main memory at `paddr` and fill.  `writeback_addr` is the
     * block-aligned L1 victim needing write-back below (or noAddr).
     * @return cycles consumed (DRAM time accrues via addDramPs).
     */
    virtual Cycles fillFromBelow(Addr paddr, bool is_write) = 0;

    /** Handle a dirty L1 victim's write-back to the level below. */
    virtual Cycles writebackBelow(Addr victim_addr) = 0;

    /**
     * Translate an operating-system virtual address to its physical
     * address.  OS references bypass the TLB (MIPS kseg0 semantics):
     * under RAMpage they map directly into the pinned SRAM reserve,
     * conventionally into a fixed DRAM image.
     */
    virtual Addr osPhysAddr(Addr vaddr) const = 0;

    // --- access() policy hooks --------------------------------------
    /** Outcome of a translation walk on a TLB miss. */
    struct TranslationWalk
    {
        bool resolved = false; ///< the page is resident; frame is set
        std::uint64_t frame = 0;
    };

    /** log2 of the translation page size for a pid. */
    virtual unsigned translationBits(Pid pid) const = 0;

    /**
     * Walk the translation structure on a TLB miss, recording the
     * table words touched into `probes` (they parameterize the
     * interleaved TLB-miss handler trace).  Runs *before* the handler
     * trace; a walk that cannot resolve residency up front leaves
     * `resolved` false and the frame comes from resolveFault() after
     * the trace.
     */
    virtual TranslationWalk walkTranslation(Pid pid, std::uint64_t vpn,
                                            std::vector<Addr> &probes) = 0;

    /**
     * Produce the frame for an unresolved translation, *after* the
     * TLB-miss handler trace ran: the conventional directory allocates
     * the DRAM frame; RAMpage services the SRAM page fault (setting
     * `outcome`'s pageFault/deferPs).
     */
    virtual std::uint64_t resolveFault(Pid pid, std::uint64_t vpn,
                                       AccessOutcome &outcome) = 0;

    /**
     * Physical address of `offset` within a translated frame, with
     * any per-reference side effects (RAMpage touches the frame's
     * replacement state).
     */
    virtual Addr framePhysAddr(Pid pid, std::uint64_t frame,
                               Addr offset) = 0;

    /**
     * Invalidate every L1 block within [base, base+bytes), charging
     * one probe cycle per block per cache, and the L1 write-back
     * cost for each dirty data block flushed.
     * @return true when a dirty L1D block was flushed (the enclosing
     *         victim must be written to DRAM even if clean below).
     */
    bool invalidateL1Range(Addr base, std::uint64_t bytes,
                           Cycles &cycles_out);

    /** Accrue DRAM transaction time. */
    void
    addDramPs(Tick ps)
    {
        evt.dramPs += ps;
    }

    /**
     * Note one DRAM transaction for observability: records `bytes` in
     * the dram.tx_bytes histogram and traces it on the Dram channel.
     * Call alongside the dramReads/dramWrites accounting; timing is
     * still charged separately via addDramPs().
     */
    void noteDramTx(std::uint64_t bytes, bool is_write);

    /**
     * The selected DRAM timing model (§3.3), resolved once at
     * construction — dram() sits on the miss path.
     */
    const DramModel &dram() const { return backend.dram(); }

    /**
     * Price `count` back-to-back page-sized transactions: a pipelined
     * Rambus channel (§6.3) overlaps their access latencies; every
     * other configuration serializes them.
     */
    Tick dramBurstPs(std::uint64_t bytes, std::uint64_t count) const;

    /**
     * Invalidate one core's L1 blocks within [base, base+bytes).
     * The page-replacement path calls this only for cores whose
     * residency bit is set on the reassigned frame (coherence-lite);
     * invalidateL1Range() above is the every-core wrapper.
     */
    bool invalidateL1RangeFor(CoreFrontend &core, Addr base,
                              std::uint64_t bytes, Cycles &cycles_out);

    /**
     * Residency hook, called by the access engine right after a
     * translation is installed in the active core's TLB.  The base
     * class ignores it; RAMpage sets the requesting core's bit in the
     * frame's residency mask so page replacement knows which private
     * copies (TLB entries, L1 lines) an ownership change must
     * invalidate.
     */
    virtual void noteFrameResidency(std::uint64_t frame)
    {
        (void)frame;
    }

    CommonConfig cfg;
    Tick cycPs;          ///< cycle time at the configured issue rate
    MemoryBackend backend; ///< shared memory-side state (all cores)
    /** One frontend per configured core (§4.3 CPU model each). */
    std::vector<std::unique_ptr<CoreFrontend>> frontends;
    /** The frontend access()/handler calls run against (never null). */
    CoreFrontend *activeFe = nullptr;
    HandlerTraces handlers;
    EventCounts evt;
    StatsRegistry statsReg;    ///< named stats, filled at construction

    /** Write-back cycles for this hierarchy (12 conv., 9 RAMpage). */
    virtual Cycles l1WritebackCost() const = 0;

    /** Per-stream translation cache (lives in each CoreFrontend). */
    using TranslationCache = CoreFrontend::TranslationCache;

    static constexpr Addr noAddr = ~Addr{0};
};

} // namespace rampage

#endif // RAMPAGE_CORE_HIERARCHY_HH
