/**
 * @file
 * Memory-hierarchy base: the machinery shared by the conventional
 * cache hierarchy and RAMpage — the split direct-mapped L1, the TLB,
 * the Direct Rambus channel, handler-trace interleaving and event
 * accounting.
 *
 * A hierarchy consumes references one at a time and reports, per
 * reference, how much CPU-inline time it cost and how much DRAM
 * transfer time a context-switch-on-miss scheduler could overlap.
 * Which references hit or miss is independent of the issue rate, so
 * one behavioural run can be re-priced across the paper's whole
 * 200 MHz - 4 GHz sweep (see src/core/events.hh).
 */

#ifndef RAMPAGE_CORE_HIERARCHY_HH
#define RAMPAGE_CORE_HIERARCHY_HH

#include <string>
#include <vector>

#include "cache/cache.hh"
#include "core/config.hh"
#include "core/cost_model.hh"
#include "core/events.hh"
#include "dram/rambus.hh"
#include "dram/sdram.hh"
#include "os/dram_directory.hh"
#include "stats/registry.hh"
#include "tlb/tlb.hh"
#include "trace/handlers.hh"
#include "trace/record.hh"

namespace rampage
{

class AuditContext;
class FaultInjector;

/** Per-reference outcome. */
struct AccessOutcome
{
    /** Time the CPU is busy or blocked in-line for this reference. */
    Tick cpuPs = 0;
    /**
     * DRAM page-transfer time initiated by this reference that a
     * context-switch-on-miss scheduler may overlap with other work
     * (zero for conventional hierarchies, which block on every DRAM
     * transaction).
     */
    Tick deferPs = 0;
    /** The reference page-faulted out of the SRAM main memory. */
    bool pageFault = false;
};

/** Abstract simulated memory hierarchy. */
class Hierarchy
{
  public:
    explicit Hierarchy(const CommonConfig &config);
    virtual ~Hierarchy() = default;

    Hierarchy(const Hierarchy &) = delete;
    Hierarchy &operator=(const Hierarchy &) = delete;

    /**
     * Process one benchmark-trace reference.  The sequencing is the
     * same for every hierarchy — TLB lookup, on a miss the
     * translation walk with its interleaved handler trace, fault
     * resolution, then the L1 + lower-level walk — so it lives here
     * once; subclasses supply the policy hooks (translationBits,
     * walkTranslation, resolveFault, framePhysAddr).
     */
    AccessOutcome access(const MemRef &ref);

    /**
     * Interleave the ~400-reference context-switch trace (§4.6).
     * @return CPU time consumed.
     */
    Tick runContextSwitchTrace();

    /** Display name ("baseline", "2-way L2", "RAMpage", ...). */
    virtual std::string name() const = 0;

    /** Label for the third hierarchy level ("L2" or "SRAM MM"). */
    virtual std::string l2Name() const = 0;

    const EventCounts &counts() const { return evt; }
    const CommonConfig &commonConfig() const { return cfg; }
    const Tlb &tlb() const { return tlbUnit; }
    const SetAssocCache &l1i() const { return l1iCache; }
    const SetAssocCache &l1d() const { return l1dCache; }
    /** The DRAM page directory (paging device / physical allocator). */
    const DramDirectory &directory() const { return dir; }

    /**
     * The hierarchy's named-stats registry.  Every component registers
     * at construction; dump with dumpText()/dumpJson() or freeze with
     * snapshot() (SimResult carries a snapshot per run).
     */
    const StatsRegistry &statsRegistry() const { return statsReg; }

    /** Price this run's events at an issue rate (blocking runs). */
    TimeBreakdown breakdown(std::uint64_t issue_hz) const;

    /** Total simulated time at an issue rate (blocking runs). */
    Tick totalPs(std::uint64_t issue_hz) const;

    /**
     * Walk live model state and verify this hierarchy's invariants
     * into `ctx` (see src/core/audit.hh).  The base class audits the
     * shared components (L1s, TLB) and the event-count conservation
     * identities; overrides add the cross-component invariants that
     * need the level below (inclusion, translation backing, page
     * tables).  Must be side-effect-free: an audited run produces
     * byte-identical simulation output.
     */
    virtual void auditState(AuditContext &ctx) const;

  protected:
    /** Deterministic model-state corruption hooks (tests/CI only). */
    friend class FaultInjector;
    /** Category a handler-trace reference is accounted under. */
    enum class OverheadKind
    {
        TlbMiss,
        PageFault,
        ContextSwitch,
    };

    /**
     * Run a handler reference stream through the hierarchy.
     * Handler references never recurse into further handler work
     * (OS pages bypass the TLB and are always resident).
     * @return CPU time consumed.
     */
    Tick runHandlerRefs(const std::vector<MemRef> &refs,
                        OverheadKind kind);

    /**
     * The L1 + lower-level walk for a reference whose physical
     * address is known.  Charges issue time for fetches, probes L1,
     * and on a miss calls fillFromBelow() for the lower level.
     * @return cycles consumed (cycle-denominated only).
     */
    Cycles cachedAccess(const MemRef &ref, Addr paddr);

    /**
     * Lower-level access on an L1 miss: look up the L2 cache or SRAM
     * main memory at `paddr` and fill.  `writeback_addr` is the
     * block-aligned L1 victim needing write-back below (or noAddr).
     * @return cycles consumed (DRAM time accrues via addDramPs).
     */
    virtual Cycles fillFromBelow(Addr paddr, bool is_write) = 0;

    /** Handle a dirty L1 victim's write-back to the level below. */
    virtual Cycles writebackBelow(Addr victim_addr) = 0;

    /**
     * Translate an operating-system virtual address to its physical
     * address.  OS references bypass the TLB (MIPS kseg0 semantics):
     * under RAMpage they map directly into the pinned SRAM reserve,
     * conventionally into a fixed DRAM image.
     */
    virtual Addr osPhysAddr(Addr vaddr) const = 0;

    // --- access() policy hooks --------------------------------------
    /** Outcome of a translation walk on a TLB miss. */
    struct TranslationWalk
    {
        bool resolved = false; ///< the page is resident; frame is set
        std::uint64_t frame = 0;
    };

    /** log2 of the translation page size for a pid. */
    virtual unsigned translationBits(Pid pid) const = 0;

    /**
     * Walk the translation structure on a TLB miss, recording the
     * table words touched into `probes` (they parameterize the
     * interleaved TLB-miss handler trace).  Runs *before* the handler
     * trace; a walk that cannot resolve residency up front leaves
     * `resolved` false and the frame comes from resolveFault() after
     * the trace.
     */
    virtual TranslationWalk walkTranslation(Pid pid, std::uint64_t vpn,
                                            std::vector<Addr> &probes) = 0;

    /**
     * Produce the frame for an unresolved translation, *after* the
     * TLB-miss handler trace ran: the conventional directory allocates
     * the DRAM frame; RAMpage services the SRAM page fault (setting
     * `outcome`'s pageFault/deferPs).
     */
    virtual std::uint64_t resolveFault(Pid pid, std::uint64_t vpn,
                                       AccessOutcome &outcome) = 0;

    /**
     * Physical address of `offset` within a translated frame, with
     * any per-reference side effects (RAMpage touches the frame's
     * replacement state).
     */
    virtual Addr framePhysAddr(Pid pid, std::uint64_t frame,
                               Addr offset) = 0;

    /**
     * Invalidate every L1 block within [base, base+bytes), charging
     * one probe cycle per block per cache, and the L1 write-back
     * cost for each dirty data block flushed.
     * @return true when a dirty L1D block was flushed (the enclosing
     *         victim must be written to DRAM even if clean below).
     */
    bool invalidateL1Range(Addr base, std::uint64_t bytes,
                           Cycles &cycles_out);

    /** Accrue DRAM transaction time. */
    void
    addDramPs(Tick ps)
    {
        evt.dramPs += ps;
    }

    /**
     * Note one DRAM transaction for observability: records `bytes` in
     * the dram.tx_bytes histogram and traces it on the Dram channel.
     * Call alongside the dramReads/dramWrites accounting; timing is
     * still charged separately via addDramPs().
     */
    void noteDramTx(std::uint64_t bytes, bool is_write);

    /**
     * The selected DRAM timing model (§3.3), resolved once at
     * construction — dram() sits on the miss path.
     */
    const DramModel &dram() const { return *dramSel; }

    /**
     * Price `count` back-to-back page-sized transactions: a pipelined
     * Rambus channel (§6.3) overlaps their access latencies; every
     * other configuration serializes them.
     */
    Tick dramBurstPs(std::uint64_t bytes, std::uint64_t count) const;

    CommonConfig cfg;
    Tick cycPs;          ///< cycle time at the configured issue rate
    SetAssocCache l1iCache;
    SetAssocCache l1dCache;
    Tlb tlbUnit;
    DirectRambus rambusModel;
    Sdram sdramModel;
    const DramModel *dramSel; ///< cfg.dramKind, resolved once
    HandlerTraces handlers;
    DramDirectory dir; ///< the DRAM paging device's page directory
    EventCounts evt;
    StatsRegistry statsReg;    ///< named stats, filled at construction
    Log2Histogram dramTxHist;  ///< DRAM transaction sizes (dram.tx_bytes)

    /** Write-back cycles for this hierarchy (12 conv., 9 RAMpage). */
    virtual Cycles l1WritebackCost() const = 0;

    /** Scratch buffer reused by handler-trace synthesis. */
    std::vector<MemRef> handlerScratch;
    std::vector<Addr> probeScratch;

    static constexpr Addr noAddr = ~Addr{0};
};

} // namespace rampage

#endif // RAMPAGE_CORE_HIERARCHY_HH
