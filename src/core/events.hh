/**
 * @file
 * Frequency-separable event accounting.
 *
 * The paper's cost model makes simulated time a sum of (a) SRAM-level
 * work denominated in CPU cycles — which scales with the issue rate —
 * and (b) DRAM transfer time in absolute nanoseconds — which does not
 * (§4.3: "cache and SRAM main memory speed are scaled up but DRAM
 * speed is not").  EventCounts therefore records per-level *cycle*
 * totals plus a fixed DRAM picosecond total, letting one behavioural
 * run be re-priced at every issue rate of the Table 3 sweep.  (The
 * context-switch-on-miss variant is timing-coupled and must be
 * re-simulated per rate; see src/core/simulator.hh.)
 */

#ifndef RAMPAGE_CORE_EVENTS_HH
#define RAMPAGE_CORE_EVENTS_HH

#include <cstdint>

#include "stats/time_breakdown.hh"
#include "util/types.hh"

namespace rampage
{

class StatsRegistry;

/** Everything a behavioural run accumulates. */
struct EventCounts
{
    // --- cycle-denominated time, by level --------------------------
    Cycles l1iCycles = 0; ///< instruction issue + L1I inclusion probes
    Cycles l1dCycles = 0; ///< L1D inclusion probes
    Cycles l2Cycles = 0;  ///< L2/SRAM-MM accesses and L1 write-backs

    // --- absolute DRAM time -----------------------------------------
    Tick dramPs = 0; ///< all Direct Rambus transactions

    // --- informational counters --------------------------------------
    std::uint64_t refs = 0;          ///< all references processed
    std::uint64_t traceRefs = 0;     ///< benchmark-trace references
    std::uint64_t overheadRefs = 0;  ///< handler-trace references (Fig 4)
    std::uint64_t instrFetches = 0;
    std::uint64_t l1iMisses = 0;
    std::uint64_t l1dMisses = 0;
    std::uint64_t l1Writebacks = 0;
    std::uint64_t l2Accesses = 0;    ///< L2 or SRAM-MM accesses
    std::uint64_t l2Misses = 0;      ///< L2 misses / SRAM page faults
    std::uint64_t dramReads = 0;
    std::uint64_t dramWrites = 0;
    std::uint64_t tlbMisses = 0;
    std::uint64_t tlbMissOverheadRefs = 0;  ///< handler refs: TLB walks
    std::uint64_t faultOverheadRefs = 0;    ///< handler refs: page faults
    std::uint64_t inclusionProbes = 0;
    std::uint64_t inclusionWritebacks = 0;  ///< dirty L1 blocks flushed
    std::uint64_t contextSwitches = 0;
    std::uint64_t victimCacheHits = 0;      ///< §3.2 ablation only

    /** Element-wise accumulate. */
    EventCounts &operator+=(const EventCounts &other);

    /**
     * Register every counter under its run-level name: "sim.*" for the
     * reference/cycle accounting, "dram.reads"/"dram.writes"/
     * "dram.transfer_ps" for the channel traffic, plus the
     * "sim.overhead_ratio" formula (Fig. 4).  `this` must outlive the
     * registry's dumps.
     */
    void registerStats(StatsRegistry &reg) const;

    /**
     * Handler-reference overhead ratio (the paper's Figure 4):
     * additional TLB-miss and page-fault handling references divided
     * by the benchmark-trace references.
     */
    double overheadRatio() const;
};

} // namespace rampage

#endif // RAMPAGE_CORE_EVENTS_HH
