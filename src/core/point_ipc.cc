#include "core/point_ipc.hh"

#include <cstring>

#include <unistd.h>

#include "core/sweep.hh"
#include "util/error.hh"

namespace rampage
{

namespace
{

/**
 * Bumped whenever the encoding below changes shape.  Parent and child
 * are always the same binary, so a mismatch means pipe corruption —
 * the decoder treats it as an InternalError, never a compat path.
 */
constexpr std::uint8_t codecVersion = 2;

// ------------------------------------------------------------- writer

void
putU8(std::string &out, std::uint8_t v)
{
    out.push_back(static_cast<char>(v));
}

void
putU32(std::string &out, std::uint32_t v)
{
    for (int shift = 0; shift < 32; shift += 8)
        out.push_back(static_cast<char>((v >> shift) & 0xff));
}

void
putU64(std::string &out, std::uint64_t v)
{
    for (int shift = 0; shift < 64; shift += 8)
        out.push_back(static_cast<char>((v >> shift) & 0xff));
}

void
putDouble(std::string &out, double v)
{
    // Bit pattern, not text: the decoded double must compare (and
    // print) identically, including -0.0 and subnormals.
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v), "IEEE-754 double expected");
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(out, bits);
}

void
putString(std::string &out, const std::string &s)
{
    putU32(out, static_cast<std::uint32_t>(s.size()));
    out.append(s);
}

void
putStringVector(std::string &out, const std::vector<std::string> &v)
{
    putU32(out, static_cast<std::uint32_t>(v.size()));
    for (const std::string &s : v)
        putString(out, s);
}

// ------------------------------------------------------------- reader

struct Reader
{
    const std::string &buf;
    std::size_t pos = 0;

    explicit Reader(const std::string &bytes) : buf(bytes) {}

    void
    need(std::size_t n) const
    {
        if (pos + n > buf.size())
            throw InternalError(
                "isolated-point outcome truncated at byte %zu "
                "(need %zu more, have %zu)",
                pos, n, buf.size() - pos);
    }

    std::uint8_t
    u8()
    {
        need(1);
        return static_cast<std::uint8_t>(buf[pos++]);
    }

    std::uint32_t
    u32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int shift = 0; shift < 32; shift += 8)
            v |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(buf[pos++]))
                 << shift;
        return v;
    }

    std::uint64_t
    u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int shift = 0; shift < 64; shift += 8)
            v |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(buf[pos++]))
                 << shift;
        return v;
    }

    double
    dbl()
    {
        std::uint64_t bits = u64();
        double v = 0;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::string
    str()
    {
        std::uint32_t n = u32();
        need(n);
        std::string s = buf.substr(pos, n);
        pos += n;
        return s;
    }

    /**
     * Read a u32 element count and bound it against the bytes left:
     * every element needs at least `minElemBytes` more input, so a
     * larger declared count is corruption.  Rejecting it here —
     * *before* the caller reserves storage for it — keeps a flipped
     * length byte from turning into a multi-gigabyte allocation.
     */
    std::uint32_t
    count(std::size_t minElemBytes)
    {
        std::uint32_t n = u32();
        if (static_cast<std::uint64_t>(n) * minElemBytes >
            buf.size() - pos)
            throw InternalError(
                "isolated-point outcome declares %u elements "
                "(>= %zu bytes each) but only %zu bytes remain",
                n, minElemBytes, buf.size() - pos);
        return n;
    }

    std::vector<std::string>
    strVector()
    {
        std::uint32_t n = count(4); // 4-byte length prefix each
        std::vector<std::string> v;
        v.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i)
            v.push_back(str());
        return v;
    }
};

// --------------------------------------------------- nested structures

void
putEventCounts(std::string &out, const EventCounts &e)
{
    putU64(out, e.l1iCycles);
    putU64(out, e.l1dCycles);
    putU64(out, e.l2Cycles);
    putU64(out, e.dramPs);
    putU64(out, e.refs);
    putU64(out, e.traceRefs);
    putU64(out, e.overheadRefs);
    putU64(out, e.instrFetches);
    putU64(out, e.l1iMisses);
    putU64(out, e.l1dMisses);
    putU64(out, e.l1Writebacks);
    putU64(out, e.l2Accesses);
    putU64(out, e.l2Misses);
    putU64(out, e.dramReads);
    putU64(out, e.dramWrites);
    putU64(out, e.tlbMisses);
    putU64(out, e.tlbMissOverheadRefs);
    putU64(out, e.faultOverheadRefs);
    putU64(out, e.inclusionProbes);
    putU64(out, e.inclusionWritebacks);
    putU64(out, e.contextSwitches);
    putU64(out, e.victimCacheHits);
}

EventCounts
getEventCounts(Reader &in)
{
    EventCounts e;
    e.l1iCycles = in.u64();
    e.l1dCycles = in.u64();
    e.l2Cycles = in.u64();
    e.dramPs = in.u64();
    e.refs = in.u64();
    e.traceRefs = in.u64();
    e.overheadRefs = in.u64();
    e.instrFetches = in.u64();
    e.l1iMisses = in.u64();
    e.l1dMisses = in.u64();
    e.l1Writebacks = in.u64();
    e.l2Accesses = in.u64();
    e.l2Misses = in.u64();
    e.dramReads = in.u64();
    e.dramWrites = in.u64();
    e.tlbMisses = in.u64();
    e.tlbMissOverheadRefs = in.u64();
    e.faultOverheadRefs = in.u64();
    e.inclusionProbes = in.u64();
    e.inclusionWritebacks = in.u64();
    e.contextSwitches = in.u64();
    e.victimCacheHits = in.u64();
    return e;
}

void
putSnapshot(std::string &out, const StatsSnapshot &snap)
{
    const std::vector<StatsSnapshot::Entry> &entries = snap.entries();
    putU32(out, static_cast<std::uint32_t>(entries.size()));
    for (const StatsSnapshot::Entry &e : entries) {
        putString(out, e.name);
        putString(out, e.desc);
        putU8(out, static_cast<std::uint8_t>(e.kind));
        putU64(out, e.counter);
        putDouble(out, e.value);
        putU32(out, static_cast<std::uint32_t>(e.buckets.size()));
        for (std::uint64_t bucket : e.buckets)
            putU64(out, bucket);
        putU64(out, e.samples);
        putU64(out, e.sum);
    }
}

StatsSnapshot
getSnapshot(Reader &in)
{
    StatsSnapshot snap;
    // Minimal entry: two string length prefixes, kind, counter,
    // value, bucket count, samples, sum = 45 bytes.
    std::uint32_t count = in.count(45);
    for (std::uint32_t i = 0; i < count; ++i) {
        StatsSnapshot::Entry e;
        e.name = in.str();
        e.desc = in.str();
        e.kind = static_cast<StatsSnapshot::Kind>(in.u8());
        e.counter = in.u64();
        e.value = in.dbl();
        std::uint32_t buckets = in.count(8);
        e.buckets.reserve(buckets);
        for (std::uint32_t b = 0; b < buckets; ++b)
            e.buckets.push_back(in.u64());
        e.samples = in.u64();
        e.sum = in.u64();
        snap.addEntry(std::move(e));
    }
    return snap;
}

void
putSimResult(std::string &out, const SimResult &r)
{
    putU64(out, r.elapsedPs);
    putU64(out, r.stallPs);
    putEventCounts(out, r.counts);
    putU64(out, r.sched.quantumSwitches);
    putU64(out, r.sched.missSwitches);
    putU64(out, r.sched.stalls);
    putU64(out, r.sched.stallTime);
    putSnapshot(out, r.stats);
    putString(out, r.systemName);
    putU64(out, r.issueHz);
    putString(out, r.traceFile);
    putString(out, r.intervalFile);
    putDouble(out, r.traceGenSeconds);
}

SimResult
getSimResult(Reader &in)
{
    SimResult r;
    r.elapsedPs = in.u64();
    r.stallPs = in.u64();
    r.counts = getEventCounts(in);
    r.sched.quantumSwitches = in.u64();
    r.sched.missSwitches = in.u64();
    r.sched.stalls = in.u64();
    r.sched.stallTime = in.u64();
    r.stats = getSnapshot(in);
    r.systemName = in.str();
    r.issueHz = in.u64();
    r.traceFile = in.str();
    r.intervalFile = in.str();
    r.traceGenSeconds = in.dbl();
    return r;
}

} // namespace

std::string
encodePointOutcome(const PointOutcome &outcome)
{
    std::string out;
    putU8(out, codecVersion);
    putString(out, outcome.id);
    putU8(out, static_cast<std::uint8_t>(outcome.status));
    putU8(out, static_cast<std::uint8_t>(outcome.errorCategory));
    putString(out, outcome.error);
    putString(out, outcome.auditInvariant);
    putString(out, outcome.auditScope);
    putU32(out,
           static_cast<std::uint32_t>(outcome.auditViolations.size()));
    for (const AuditViolation &v : outcome.auditViolations) {
        putString(out, v.invariant);
        putString(out, v.detail);
    }
    putDouble(out, outcome.wallSeconds);
    putDouble(out, outcome.refsPerSecond);
    putU32(out, outcome.attempts);
    putU64(out, outcome.refsAtCancel);
    putU32(out, static_cast<std::uint32_t>(outcome.signalNumber));
    putStringVector(out, outcome.debugTail);
    putU32(out, static_cast<std::uint32_t>(sweepPhaseCount));
    for (double seconds : outcome.phaseSeconds)
        putDouble(out, seconds);
    putU8(out, outcome.haveResult ? 1 : 0);
    if (outcome.haveResult)
        putSimResult(out, outcome.result);
    return out;
}

PointOutcome
decodePointOutcome(const std::string &bytes)
{
    Reader in(bytes);
    std::uint8_t version = in.u8();
    if (version != codecVersion)
        throw InternalError(
            "isolated-point outcome codec version %u "
            "(this binary speaks %u): pipe corruption",
            version, codecVersion);

    PointOutcome outcome;
    outcome.id = in.str();
    outcome.status = static_cast<PointStatus>(in.u8());
    outcome.errorCategory = static_cast<ErrorCategory>(in.u8());
    outcome.error = in.str();
    outcome.auditInvariant = in.str();
    outcome.auditScope = in.str();
    // Each violation is two length-prefixed strings: >= 8 bytes.
    std::uint32_t violations = in.count(8);
    outcome.auditViolations.reserve(violations);
    for (std::uint32_t i = 0; i < violations; ++i) {
        AuditViolation v;
        v.invariant = in.str();
        v.detail = in.str();
        outcome.auditViolations.push_back(std::move(v));
    }
    outcome.wallSeconds = in.dbl();
    outcome.refsPerSecond = in.dbl();
    outcome.attempts = in.u32();
    outcome.refsAtCancel = in.u64();
    outcome.signalNumber = static_cast<int>(in.u32());
    outcome.debugTail = in.strVector();
    std::uint32_t phases = in.u32();
    if (phases != sweepPhaseCount)
        throw InternalError(
            "isolated-point outcome carries %u phase totals "
            "(this binary has %zu): pipe corruption",
            phases, sweepPhaseCount);
    for (double &seconds : outcome.phaseSeconds)
        seconds = in.dbl();
    outcome.haveResult = in.u8() != 0;
    if (outcome.haveResult)
        outcome.result = getSimResult(in);
    if (in.pos != bytes.size())
        throw InternalError(
            "isolated-point outcome has %zu trailing bytes",
            bytes.size() - in.pos);
    return outcome;
}

std::exception_ptr
rebuildPointException(const PointOutcome &outcome)
{
    switch (outcome.status) {
      case PointStatus::Ok:
      case PointStatus::Skipped:
        return nullptr;
      case PointStatus::AuditFailed:
        return std::make_exception_ptr(
            AuditError(outcome.auditScope, outcome.auditViolations));
      case PointStatus::TimedOut:
        return std::make_exception_ptr(
            TimeoutError(outcome.refsAtCancel, outcome.error));
      case PointStatus::Crashed:
        // A crashed child never threw; synthesize the category the
        // parent assigned so rethrowers observe a typed error.
        return std::make_exception_ptr(InternalError(outcome.error));
      case PointStatus::Failed:
        break;
    }
    switch (outcome.errorCategory) {
      case ErrorCategory::Config:
        return std::make_exception_ptr(ConfigError(outcome.error));
      case ErrorCategory::Trace:
        return std::make_exception_ptr(TraceError(outcome.error));
      case ErrorCategory::Io:
        return std::make_exception_ptr(IoError(outcome.error));
      case ErrorCategory::Timeout:
        return std::make_exception_ptr(
            TimeoutError(outcome.refsAtCancel, outcome.error));
      case ErrorCategory::Audit:
        return std::make_exception_ptr(
            AuditError(outcome.auditScope, outcome.auditViolations));
      case ErrorCategory::Internal:
        break;
    }
    return std::make_exception_ptr(InternalError(outcome.error));
}

bool
writeFramedRecord(int fd, char tag, const std::string &payload)
{
    unsigned char header[5];
    header[0] = static_cast<unsigned char>(tag);
    std::uint32_t size = static_cast<std::uint32_t>(payload.size());
    header[1] = static_cast<unsigned char>(size & 0xff);
    header[2] = static_cast<unsigned char>((size >> 8) & 0xff);
    header[3] = static_cast<unsigned char>((size >> 16) & 0xff);
    header[4] = static_cast<unsigned char>((size >> 24) & 0xff);
    if (::write(fd, header, sizeof(header)) !=
        static_cast<ssize_t>(sizeof(header)))
        return false;
    std::size_t done = 0;
    while (done < payload.size()) {
        ssize_t n =
            ::write(fd, payload.data() + done, payload.size() - done);
        if (n <= 0)
            return false;
        done += static_cast<std::size_t>(n);
    }
    return true;
}

std::vector<FramedRecord>
parseFramedRecords(const std::string &bytes, bool &torn)
{
    std::vector<FramedRecord> records;
    torn = false;
    std::size_t pos = 0;
    while (pos < bytes.size()) {
        if (pos + 5 > bytes.size()) {
            torn = true;
            break;
        }
        std::uint32_t size = 0;
        for (int i = 0; i < 4; ++i)
            size |= static_cast<std::uint32_t>(static_cast<unsigned char>(
                        bytes[pos + 1 + i]))
                    << (8 * i);
        if (pos + 5 + size > bytes.size()) {
            torn = true;
            break;
        }
        FramedRecord record;
        record.tag = bytes[pos];
        record.payload = bytes.substr(pos + 5, size);
        records.push_back(std::move(record));
        pos += 5 + size;
    }
    return records;
}

} // namespace rampage
