#include "core/core_frontend.hh"

#include "stats/registry.hh"

namespace rampage
{

namespace
{

CacheParams
l1Params(const CommonConfig &cfg, const char *name, std::uint64_t seed)
{
    CacheParams params;
    params.name = name;
    params.sizeBytes = cfg.l1SizeBytes;
    params.blockBytes = cfg.l1BlockBytes;
    params.assoc = cfg.l1Assoc;
    params.repl = ReplPolicy::LRU;
    params.seed = seed;
    return params;
}

/**
 * Per-core TLB parameters: core 0 keeps the configured seed (the
 * historical single-core stream); further cores offset it so their
 * random-replacement draws are disjoint but deterministic.
 */
TlbParams
coreTlbParams(const CommonConfig &cfg, CoreId core)
{
    TlbParams params = cfg.tlb;
    params.seed += core;
    return params;
}

} // namespace

CoreFrontend::CoreFrontend(const CommonConfig &cfg, CoreId core)
    : id(core),
      port{core},
      l1iCache(l1Params(cfg, "L1i",
                        101 + std::uint64_t{16} * core)),
      l1dCache(l1Params(cfg, "L1d",
                        102 + std::uint64_t{16} * core)),
      tlbUnit(coreTlbParams(cfg, core))
{
}

void
CoreFrontend::registerStats(StatsRegistry &reg,
                            const std::string &prefix)
{
    l1iCache.registerStats(reg, prefix + "l1i");
    l1dCache.registerStats(reg, prefix + "l1d");
    tlbUnit.registerStats(reg, prefix + "tlb");
}

} // namespace rampage
