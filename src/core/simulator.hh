/**
 * @file
 * The simulation driver: feeds the multiprogrammed workload through a
 * hierarchy, inserting the context-switch trace at time-slice
 * boundaries (§4.6), and — for RAMpage with context switches on
 * misses — running the timing-coupled schedule where a faulting
 * process blocks on its page transfer while others execute, with the
 * single Rambus channel serializing outstanding transfers.
 */

#ifndef RAMPAGE_CORE_SIMULATOR_HH
#define RAMPAGE_CORE_SIMULATOR_HH

#include <memory>
#include <string>
#include <vector>

#include "core/audit.hh"
#include "core/hierarchy.hh"
#include "obs/obs_config.hh"
#include "os/scheduler.hh"
#include "stats/registry.hh"
#include "trace/source.hh"

namespace rampage
{

/** Driver configuration. */
struct SimConfig
{
    /** Benchmark-trace references to simulate. */
    std::uint64_t maxRefs = 24'000'000;
    /** References per time slice (paper: 500 000 at full scale). */
    std::uint64_t quantumRefs = 120'000;
    /** Insert the ~400-reference context-switch trace at each slice. */
    bool insertSwitchTrace = true;
    /**
     * Context-switch on page faults (RAMpage only, §4.6): overlap
     * page transfers with other processes' execution.
     */
    bool switchOnMiss = false;
    /**
     * Runaway-point watchdog: throw InternalError once the hierarchy
     * has processed this many references in total (benchmark plus
     * handler traces).  0 disables the check.  defaultSimConfig()
     * arms it with a generous multiple of maxRefs, so healthy runs
     * are unaffected while a runaway point (e.g. unbounded handler
     * recursion) aborts cleanly instead of hanging a sweep campaign.
     */
    std::uint64_t watchdogRefBudget = 0;
    /**
     * Model-integrity audit level (src/core/audit.hh): Off runs
     * unaudited, Boundaries audits at every quantum boundary and at
     * end-of-run, Paranoid additionally after every miss that reached
     * the L2/SRAM level.  Violations raise AuditError.  Audits are
     * side-effect-free: simulation output is byte-identical at every
     * level.
     */
    AuditLevel auditLevel = AuditLevel::Off;
    /**
     * Model-fault injection spec, "kind[:seed]" ("" injects nothing;
     * see src/core/fault_injection.hh).  The corruption is applied
     * once, at the first audit boundary — after that boundary's audit
     * has passed clean — so a subsequent violation is attributable to
     * the injector.
     */
    std::string faultPlan;
    /**
     * Timeline observability (src/obs/, all off by default and
     * side-effect-free when off).  `traceOutBase` non-empty turns on
     * simulated-time event tracing; the run writes Chrome trace-event
     * JSON to obsRunFilePath(traceOutBase, ".trace.json") — per-point
     * file names under a sweep.  defaultSimConfig()/armedSimConfig()
     * fill these from the CLI/environment via resolveObsSettings().
     */
    std::string traceOutBase;
    /** Benchmark refs per interval-stats epoch; 0 disables. */
    std::uint64_t statsIntervalRefs = 0;
    /** Interval JSONL base path (used when statsIntervalRefs > 0). */
    std::string intervalOutBase;
    /** Trace-ring capacity in events (overflow counts as dropped). */
    std::size_t traceRingCapacity = defaultTraceRingCapacity;
    /**
     * Test seam: route every reference through the dynamically-
     * dispatched generic engine (Hierarchy::accessGeneric) and the
     * per-reference loop, bypassing the batched fast path.  The
     * dispatch-equivalence tests prove runs with this on and off
     * bit-identical; production configs leave it off.
     */
    bool genericDispatch = false;
    /**
     * CPU cores the built hierarchy should have (factory-level knob,
     * consumed by sweep::simulateSystem before construction — the
     * Simulator itself follows Hierarchy::coreCount()).  0 leaves the
     * hierarchy config's own CommonConfig::cores untouched;
     * defaultSimConfig()/armedSimConfig() fill it from --cores /
     * RAMPAGE_CORES.
     */
    unsigned cores = 0;
    /**
     * Test seam: drive the run through the multicore round-robin
     * driver even with one core.  The forced single-core multicore
     * run is bit-identical to the legacy driver at audit levels
     * Off/Boundaries without timeline tracing (the multicore loop
     * batches per core, so per-reference trace events and paranoid
     * audit cadence differ); tests/test_multicore.cc proves it.
     */
    bool forceMulticoreDriver = false;
};

/** Result of one simulation. */
struct SimResult
{
    /** Elapsed simulated time at the hierarchy's issue rate. */
    Tick elapsedPs = 0;
    /** CPU idle time waiting for transfers (switch-on-miss only). */
    Tick stallPs = 0;
    /** The run's event counts (re-priceable for blocking runs). */
    EventCounts counts;
    /** Scheduler statistics (switch-on-miss only). */
    SchedStats sched;
    /**
     * Frozen named-stats dump: every component's registered counters
     * plus run-level entries (sim.elapsed_ps, sim.seconds and — for
     * switch-on-miss runs — sim.stall_ps and the sched.* counters).
     * Self-contained: remains valid after the hierarchy is destroyed.
     */
    StatsSnapshot stats;
    std::string systemName;
    std::uint64_t issueHz = 0;
    /**
     * Timeline artefacts this run produced (empty when the feature was
     * off or the write failed): the Chrome trace-event JSON and the
     * per-epoch interval JSONL.  Sweep campaigns carry these across
     * the --isolate pipe so the parent can report every per-point file.
     */
    std::string traceFile;
    std::string intervalFile;

    /**
     * Host wall-clock seconds the run spent inside TraceSource::fill()
     * — lazy synthetic trace generation interleaved with simulation.
     * The sweep harness re-attributes this to the trace_gen phase so
     * the simulate phase (the denominator of refs_per_sec) prices
     * simulation alone, as documented.  Only the batched fast loops
     * are instrumented; the per-reference slow paths (tracing,
     * interval stats, paranoid audits, generic dispatch) fold
     * generation into the simulate phase as before.
     */
    double traceGenSeconds = 0;

    /** Elapsed seconds, as the paper's tables report. */
    double seconds() const;
};

/** Feeds a workload through one hierarchy. */
class Simulator
{
  public:
    /**
     * @param hierarchy the system under test (not owned).
     * @param workload the trace streams (owned); exhausted streams
     *        are rewound and replayed.
     */
    Simulator(Hierarchy &hierarchy,
              std::vector<std::unique_ptr<TraceSource>> workload,
              const SimConfig &config);

    /** Run to completion and report. */
    SimResult run();

  private:
    /** Pull the next reference from stream `index`, replaying at end. */
    MemRef pull(std::size_t index);

    /**
     * Fill `buf` with exactly `n` references from stream `index`,
     * rewinding and replaying at end-of-stream — the bulk form of
     * pull(), producing the identical sequence.  The wall-clock it
     * consumes is accumulated into SimResult::traceGenSeconds (one
     * clock pair per multi-thousand-reference batch).
     */
    void fillRefs(std::size_t index, MemRef *buf, std::size_t n);

    double fillSeconds = 0; ///< see SimResult::traceGenSeconds

    /**
     * True when the run can use the batched, statically-dispatched
     * inner loop: no per-reference observability (timeline tracing,
     * interval stats), no per-miss paranoid audits, and the generic-
     * dispatch test seam off.  Boundary-level audits and fault
     * injection are batch-compatible (both fire at quantum/miss
     * boundaries, which the batched loops respect exactly).
     */
    bool fastLoopEligible(const Auditor &auditor) const;

    /**
     * Per-reference cooperative-stop seam: polls the thread's point
     * deadline (throws TimeoutError, src/core/deadline.hh) and
     * enforces SimConfig::watchdogRefBudget (throws InternalError).
     */
    void checkWatchdog() const;

    SimResult runBlocking();
    SimResult runSwitchOnMiss();

    /**
     * The N-core driver: per-core run queues over per-core trace
     * sources, deterministic least-advanced-core-first interleave
     * (core id breaks ties), per-core switch-on-miss schedulers, and
     * the shared transfer bus serializing every core's DRAM traffic
     * (MemoryBackend-style busFreeAt occupancy).  Blocking-mode
     * audits check the *globally priced* time — the per-core clocks
     * include bus-contention waits the event counts deliberately do
     * not price.
     */
    SimResult runMulticore();

    Hierarchy &hier;
    std::vector<std::unique_ptr<TraceSource>> sources;
    SimConfig cfg;
};

} // namespace rampage

#endif // RAMPAGE_CORE_SIMULATOR_HH
