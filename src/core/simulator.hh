/**
 * @file
 * The simulation driver: feeds the multiprogrammed workload through a
 * hierarchy, inserting the context-switch trace at time-slice
 * boundaries (§4.6), and — for RAMpage with context switches on
 * misses — running the timing-coupled schedule where a faulting
 * process blocks on its page transfer while others execute, with the
 * single Rambus channel serializing outstanding transfers.
 */

#ifndef RAMPAGE_CORE_SIMULATOR_HH
#define RAMPAGE_CORE_SIMULATOR_HH

#include <memory>
#include <string>
#include <vector>

#include "core/audit.hh"
#include "core/hierarchy.hh"
#include "obs/obs_config.hh"
#include "os/scheduler.hh"
#include "stats/registry.hh"
#include "trace/source.hh"

namespace rampage
{

/** Driver configuration. */
struct SimConfig
{
    /** Benchmark-trace references to simulate. */
    std::uint64_t maxRefs = 24'000'000;
    /** References per time slice (paper: 500 000 at full scale). */
    std::uint64_t quantumRefs = 120'000;
    /** Insert the ~400-reference context-switch trace at each slice. */
    bool insertSwitchTrace = true;
    /**
     * Context-switch on page faults (RAMpage only, §4.6): overlap
     * page transfers with other processes' execution.
     */
    bool switchOnMiss = false;
    /**
     * Runaway-point watchdog: throw InternalError once the hierarchy
     * has processed this many references in total (benchmark plus
     * handler traces).  0 disables the check.  defaultSimConfig()
     * arms it with a generous multiple of maxRefs, so healthy runs
     * are unaffected while a runaway point (e.g. unbounded handler
     * recursion) aborts cleanly instead of hanging a sweep campaign.
     */
    std::uint64_t watchdogRefBudget = 0;
    /**
     * Model-integrity audit level (src/core/audit.hh): Off runs
     * unaudited, Boundaries audits at every quantum boundary and at
     * end-of-run, Paranoid additionally after every miss that reached
     * the L2/SRAM level.  Violations raise AuditError.  Audits are
     * side-effect-free: simulation output is byte-identical at every
     * level.
     */
    AuditLevel auditLevel = AuditLevel::Off;
    /**
     * Model-fault injection spec, "kind[:seed]" ("" injects nothing;
     * see src/core/fault_injection.hh).  The corruption is applied
     * once, at the first audit boundary — after that boundary's audit
     * has passed clean — so a subsequent violation is attributable to
     * the injector.
     */
    std::string faultPlan;
    /**
     * Timeline observability (src/obs/, all off by default and
     * side-effect-free when off).  `traceOutBase` non-empty turns on
     * simulated-time event tracing; the run writes Chrome trace-event
     * JSON to obsRunFilePath(traceOutBase, ".trace.json") — per-point
     * file names under a sweep.  defaultSimConfig()/armedSimConfig()
     * fill these from the CLI/environment via resolveObsSettings().
     */
    std::string traceOutBase;
    /** Benchmark refs per interval-stats epoch; 0 disables. */
    std::uint64_t statsIntervalRefs = 0;
    /** Interval JSONL base path (used when statsIntervalRefs > 0). */
    std::string intervalOutBase;
    /** Trace-ring capacity in events (overflow counts as dropped). */
    std::size_t traceRingCapacity = defaultTraceRingCapacity;
};

/** Result of one simulation. */
struct SimResult
{
    /** Elapsed simulated time at the hierarchy's issue rate. */
    Tick elapsedPs = 0;
    /** CPU idle time waiting for transfers (switch-on-miss only). */
    Tick stallPs = 0;
    /** The run's event counts (re-priceable for blocking runs). */
    EventCounts counts;
    /** Scheduler statistics (switch-on-miss only). */
    SchedStats sched;
    /**
     * Frozen named-stats dump: every component's registered counters
     * plus run-level entries (sim.elapsed_ps, sim.seconds and — for
     * switch-on-miss runs — sim.stall_ps and the sched.* counters).
     * Self-contained: remains valid after the hierarchy is destroyed.
     */
    StatsSnapshot stats;
    std::string systemName;
    std::uint64_t issueHz = 0;
    /**
     * Timeline artefacts this run produced (empty when the feature was
     * off or the write failed): the Chrome trace-event JSON and the
     * per-epoch interval JSONL.  Sweep campaigns carry these across
     * the --isolate pipe so the parent can report every per-point file.
     */
    std::string traceFile;
    std::string intervalFile;

    /** Elapsed seconds, as the paper's tables report. */
    double seconds() const;
};

/** Feeds a workload through one hierarchy. */
class Simulator
{
  public:
    /**
     * @param hierarchy the system under test (not owned).
     * @param workload the trace streams (owned); exhausted streams
     *        are rewound and replayed.
     */
    Simulator(Hierarchy &hierarchy,
              std::vector<std::unique_ptr<TraceSource>> workload,
              const SimConfig &config);

    /** Run to completion and report. */
    SimResult run();

  private:
    /** Pull the next reference from stream `index`, replaying at end. */
    MemRef pull(std::size_t index);

    /**
     * Per-reference cooperative-stop seam: polls the thread's point
     * deadline (throws TimeoutError, src/core/deadline.hh) and
     * enforces SimConfig::watchdogRefBudget (throws InternalError).
     */
    void checkWatchdog() const;

    SimResult runBlocking();
    SimResult runSwitchOnMiss();

    Hierarchy &hier;
    std::vector<std::unique_ptr<TraceSource>> sources;
    SimConfig cfg;
};

} // namespace rampage

#endif // RAMPAGE_CORE_SIMULATOR_HH
