#include "core/deadline.hh"

#include <chrono>

#include "util/error.hh"

namespace rampage
{

namespace
{

using Clock = std::chrono::steady_clock;

struct DeadlineState
{
    bool armed = false;
    Clock::time_point limit;
    double seconds = 0;       ///< the configured budget, for messages
    std::uint32_t stride = 0; ///< calls since the last clock read
};

DeadlineState &
state()
{
    thread_local DeadlineState instance;
    return instance;
}

[[noreturn]] void
throwExpired(DeadlineState &d, std::uint64_t refs_executed)
{
    d.armed = false; // the unwind must not re-trip the cancel
    throw TimeoutError(
        refs_executed,
        "point deadline of %.3f s exceeded after %llu hierarchy "
        "references; cancelling cooperatively",
        d.seconds, static_cast<unsigned long long>(refs_executed));
}

} // namespace

void
armPointDeadline(double seconds)
{
    if (seconds <= 0)
        throw ConfigError(
            "point deadline must be positive, got %f s", seconds);
    DeadlineState &d = state();
    d.armed = true;
    d.seconds = seconds;
    d.stride = 0;
    d.limit = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(seconds));
}

void
disarmPointDeadline()
{
    state().armed = false;
}

bool
pointDeadlineArmed()
{
    return state().armed;
}

void
pollPointDeadline(std::uint64_t refs_executed)
{
    DeadlineState &d = state();
    if (!d.armed)
        return;
    // One clock read per 1024 polls: at a few million simulated
    // references per second this bounds cancel latency well under a
    // millisecond while keeping the per-reference cost to an
    // increment and a branch.
    if ((++d.stride & 0x3ffu) != 0)
        return;
    if (Clock::now() >= d.limit)
        throwExpired(d, refs_executed);
}

void
checkPointDeadlineNow(std::uint64_t refs_executed)
{
    DeadlineState &d = state();
    if (!d.armed)
        return;
    if (Clock::now() >= d.limit)
        throwExpired(d, refs_executed);
}

} // namespace rampage
