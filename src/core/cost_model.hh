/**
 * @file
 * Pricing of event counts into simulated time (see events.hh for the
 * frequency-separation rationale).
 */

#ifndef RAMPAGE_CORE_COST_MODEL_HH
#define RAMPAGE_CORE_COST_MODEL_HH

#include "core/events.hh"
#include "stats/time_breakdown.hh"
#include "util/types.hh"

namespace rampage
{

/**
 * Price a behavioural run at an issue rate.
 *
 * @param counts the run's events.
 * @param issue_hz CPU issue rate (SRAM levels scale with it).
 * @param extra_stall_ps additional absolute stall time (the
 *        context-switch-on-miss CPU idle; 0 for blocking runs).
 *        Charged to the DRAM level, since that is what the CPU was
 *        waiting for.
 */
TimeBreakdown priceEvents(const EventCounts &counts,
                          std::uint64_t issue_hz,
                          Tick extra_stall_ps = 0);

/** Total simulated time at an issue rate. */
Tick totalTimePs(const EventCounts &counts, std::uint64_t issue_hz,
                 Tick extra_stall_ps = 0);

} // namespace rampage

#endif // RAMPAGE_CORE_COST_MODEL_HH
