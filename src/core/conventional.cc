#include "core/conventional.hh"

#include "core/access_engine.hh"
#include "obs/trace_session.hh"
#include "util/audit.hh"
#include "util/bitops.hh"
#include "util/error.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace rampage
{

namespace
{

CacheParams
l2Params(const ConventionalConfig &cfg)
{
    CacheParams params;
    params.name = "L2";
    params.sizeBytes = cfg.l2SizeBytes;
    params.blockBytes = cfg.l2BlockBytes;
    params.assoc = cfg.l2Assoc;
    params.repl = cfg.l2Repl;
    params.seed = 103;
    return params;
}

} // namespace

ConventionalHierarchy::ConventionalHierarchy(
    const ConventionalConfig &config)
    : Hierarchy(config.common),
      ccfg(config),
      l2Cache(l2Params(config))
{
    if (ccfg.l2BlockBytes < cfg.l1BlockBytes)
        throw ConfigError("L2 block (%llu) smaller than L1 block (%llu)",
                          static_cast<unsigned long long>(ccfg.l2BlockBytes),
                          static_cast<unsigned long long>(cfg.l1BlockBytes));
    dramPageBits = floorLog2(cfg.dramPageBytes);
    if (ccfg.l2Style == ConventionalConfig::L2Style::ColumnAssoc) {
        columnL2 = std::make_unique<ColumnAssocCache>(ccfg.l2SizeBytes,
                                                      ccfg.l2BlockBytes);
        if (ccfg.victimEntries > 0)
            throw ConfigError("victim cache is not modelled behind a "
                              "column-associative L2");
    }
    if (ccfg.victimEntries > 0)
        victim = std::make_unique<VictimCache>(ccfg.victimEntries,
                                               ccfg.l2BlockBytes);

    // The column-associative L2 keeps its own statistics struct; the
    // plain set-associative L2 registers like the L1s.
    if (columnL2) {
        const ColumnAssocStats &cs = columnL2->stats();
        statsReg.addCounter("l2.first_hits",
                            "L2 hits on the primary probe",
                            &cs.firstHits);
        statsReg.addCounter("l2.rehash_hits",
                            "L2 hits on the alternate probe",
                            &cs.rehashHits);
        statsReg.addCounter("l2.misses", "L2 double misses", &cs.misses);
        statsReg.addCounter("l2.in_place_replacements",
                            "L2 case-2 fast replaces",
                            &cs.inPlaceReplacements);
    } else {
        l2Cache.registerStats(statsReg, "l2");
    }
    if (victim) {
        statsReg.addFormula(
            "l2.victim_hits", "victim-cache extract hits",
            [this] { return static_cast<double>(victim->hits()); });
        statsReg.addFormula(
            "l2.victim_lookups", "victim-cache lookups",
            [this] { return static_cast<double>(victim->lookups()); });
    }
}

std::string
ConventionalHierarchy::name() const
{
    if (columnL2)
        return "column-assoc L2";
    if (ccfg.l2Assoc == 1)
        return victim ? "baseline+victim" : "baseline";
    return std::to_string(ccfg.l2Assoc) + "-way L2";
}

// Statically-bound hot path: the class is `final`, so these
// instantiations resolve every policy hook at compile time.
AccessOutcome
ConventionalHierarchy::access(const MemRef &ref)
{
    return AccessEngine::access(*this, ref);
}

BatchOutcome
ConventionalHierarchy::accessBatch(const MemRef *refs, std::size_t n,
                                   bool stop_on_deferred_fault)
{
    return AccessEngine::accessBatch(*this, refs, n,
                                     stop_on_deferred_fault);
}

Tick
ConventionalHierarchy::runContextSwitchTrace()
{
    return AccessEngine::runContextSwitchTrace(*this);
}

const ColumnAssocStats &
ConventionalHierarchy::columnStats() const
{
    if (!columnL2)
        throw ConfigError("columnStats() requires L2Style::ColumnAssoc");
    return columnL2->stats();
}

Cycles
ConventionalHierarchy::l1WritebackCost() const
{
    return cfg.l1WritebackCycles;
}

Hierarchy::TranslationWalk
ConventionalHierarchy::walkTranslation(Pid pid, std::uint64_t vpn,
                                       std::vector<Addr> &probes)
{
    // The probes are cacheable physical references into the page
    // table's memory image; the frame itself is produced after the
    // interleaved lookup trace (resolveFault).
    backend.dir.probeAddrs(pid, vpn, probes);
    return TranslationWalk{};
}

std::uint64_t
ConventionalHierarchy::resolveFault(Pid pid, std::uint64_t vpn,
                                    AccessOutcome & /*outcome*/)
{
    // DRAM is infinite (no disk paging is modelled): the "fault" is
    // just the directory allocating or returning the physical frame.
    return backend.dir.frameOf(pid, vpn);
}

void
ConventionalHierarchy::auditState(AuditContext &ctx) const
{
    Hierarchy::auditState(ctx);
    if (!columnL2)
        l2Cache.auditState(ctx, "l2");
    backend.dir.auditState(ctx);

    for (unsigned c = 0; c < coreCount(); ++c) {
        const CoreFrontend &core = fe(c);
        const std::string who =
            coreCount() == 1 ? std::string()
                             : "core" + std::to_string(c) + " ";

        // Inclusion: the L2 is maintained inclusive of every core's
        // L1s (its evictions invalidate their L1 blocks before
        // departing), so a valid L1 block absent below is stale data.
        auto check_inclusion = [&](const SetAssocCache &l1,
                                   const char *label) {
            l1.forEachValidBlock([&](Addr addr, bool) {
                bool below = columnL2 ? columnL2->probe(addr)
                                      : l2Cache.probe(addr);
                ctx.check(below, "inclusion.l1",
                          "%s%s block 0x%llx is not present in the L2",
                          who.c_str(), label,
                          static_cast<unsigned long long>(addr));
                return true;
            });
        };
        check_inclusion(core.l1iCache, "l1i");
        check_inclusion(core.l1dCache, "l1d");

        // Every TLB entry caches a directory translation; frames are
        // never reclaimed (DRAM is infinite), so the entry must still
        // match exactly.
        core.tlbUnit.forEachValidEntry([&](Pid pid, std::uint64_t vpn,
                                           std::uint64_t frame) {
            std::uint64_t home = 0;
            bool backed =
                backend.dir.lookup(pid, vpn, &home) && home == frame;
            ctx.check(backed, "tlb.backing",
                      "%sTLB translates pid=%u vpn=0x%llx to DRAM "
                      "frame %llu, but the page directory says %s",
                      who.c_str(), static_cast<unsigned>(pid),
                      static_cast<unsigned long long>(vpn),
                      static_cast<unsigned long long>(frame),
                      backend.dir.lookup(pid, vpn, &home)
                          ? std::to_string(home).c_str()
                          : "unallocated");
            return true;
        });
    }
}

Cycles
ConventionalHierarchy::fillFromBelow(Addr paddr, bool /*is_write*/)
{
    Cycles cycles = cfg.l2HitCycles;
    ++evt.l2Accesses;

    if (columnL2) {
        // Column-associative path: a rehash probe (hit via the
        // alternate set, or a double miss) costs one more L2 access.
        bool rehash_probe = false;
        CacheAccessResult col =
            columnL2->access(paddr, false, rehash_probe);
        if (rehash_probe)
            cycles += cfg.l2HitCycles;
        if (col.hit)
            return cycles;
        ++evt.l2Misses;
        RAMPAGE_TRACE_EVENT(L2Miss, 0, paddr, 0);
        if (col.victimValid) {
            bool dirty = col.victimDirty;
            Cycles flush_cycles = 0;
            dirty |= invalidateL1Range(col.victimAddr,
                                       ccfg.l2BlockBytes, flush_cycles);
            if (dirty) {
                ++evt.dramWrites;
                noteDramTx(ccfg.l2BlockBytes, true);
                addDramPs(dram().writePs(ccfg.l2BlockBytes));
            }
        }
        ++evt.dramReads;
        noteDramTx(ccfg.l2BlockBytes, false);
        addDramPs(dram().readPs(ccfg.l2BlockBytes));
        return cycles;
    }

    CacheAccessResult res = l2Cache.access(paddr, false);
    if (res.hit)
        return cycles;

    ++evt.l2Misses;
    RAMPAGE_TRACE_EVENT(L2Miss, 0, paddr, 0);

    // Handle the departing L2 victim first: maintain inclusion by
    // invalidating its L1 blocks, then write it to DRAM when dirty.
    if (res.victimValid) {
        bool dirty = res.victimDirty;
        Cycles flush_cycles = 0;
        dirty |= invalidateL1Range(res.victimAddr, ccfg.l2BlockBytes,
                                   flush_cycles);
        if (victim) {
            VictimCache::Displaced out =
                victim->insert(res.victimAddr, dirty);
            if (out.valid && out.dirty) {
                ++evt.dramWrites;
                noteDramTx(ccfg.l2BlockBytes, true);
                addDramPs(dram().writePs(ccfg.l2BlockBytes));
            }
        } else if (dirty) {
            ++evt.dramWrites;
            noteDramTx(ccfg.l2BlockBytes, true);
            addDramPs(dram().writePs(ccfg.l2BlockBytes));
        }
    }

    // Fill: either swapped back from the victim cache (an extra
    // L2-speed transfer) or streamed from DRAM.
    bool filled = false;
    if (victim) {
        VictimCache::Extracted hit = victim->extract(
            l2Cache.blockAddr(paddr));
        if (hit.hit) {
            ++evt.victimCacheHits;
            cycles += cfg.l2HitCycles;
            if (hit.dirty)
                l2Cache.markDirty(paddr);
            filled = true;
        }
    }
    if (!filled) {
        ++evt.dramReads;
        noteDramTx(ccfg.l2BlockBytes, false);
        addDramPs(dram().readPs(ccfg.l2BlockBytes));
    }
    return cycles;
}

Cycles
ConventionalHierarchy::writebackBelow(Addr victim_addr)
{
    // The L1 victim's block should be present in L2 (inclusion); the
    // 12-cycle write-back charge covers the tag update and transfer.
    if (columnL2) {
        if (columnL2->probe(victim_addr)) {
            columnL2->markDirty(victim_addr);
            return 0;
        }
    } else if (l2Cache.probe(victim_addr)) {
        l2Cache.markDirty(victim_addr);
        return 0;
    }
    // Inclusion anomaly (should not happen): write straight to DRAM.
    ++evt.dramWrites;
    noteDramTx(cfg.l1BlockBytes, true);
    addDramPs(dram().writePs(cfg.l1BlockBytes));
    return 0;
}

} // namespace rampage
