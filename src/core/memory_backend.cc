#include "core/memory_backend.hh"

namespace rampage
{

MemoryBackend::MemoryBackend(const CommonConfig &cfg)
    : rambusModel(cfg.rambus),
      sdramModel(cfg.sdram),
      dramSel(cfg.dramKind == CommonConfig::DramKind::Sdram
                  ? static_cast<const DramModel *>(&sdramModel)
                  : static_cast<const DramModel *>(&rambusModel)),
      dir(cfg.dramPageBytes)
{
}

} // namespace rampage
