/**
 * @file
 * Conventional cache hierarchy (paper §4.4 baseline and §4.7 2-way):
 * split L1 over an inclusive L2 cache over Direct Rambus DRAM, with a
 * TLB mapping virtual pages to DRAM physical frames (fixed 4 KB
 * pages) and TLB misses serviced by an interleaved page-table-lookup
 * trace.
 */

#ifndef RAMPAGE_CORE_CONVENTIONAL_HH
#define RAMPAGE_CORE_CONVENTIONAL_HH

#include <memory>

#include "cache/column_assoc.hh"
#include "cache/victim_cache.hh"
#include "core/hierarchy.hh"

namespace rampage
{

/**
 * The conventional (cache-based) hierarchy.  `final` so the
 * AccessEngine instantiations below bind every policy hook
 * statically.
 */
class ConventionalHierarchy final : public Hierarchy
{
  public:
    explicit ConventionalHierarchy(const ConventionalConfig &config);

    std::string name() const override;
    std::string l2Name() const override { return "L2"; }

    /** Statically-dispatched hot path (see access_engine.hh). */
    AccessOutcome access(const MemRef &ref) override;
    BatchOutcome accessBatch(const MemRef *refs, std::size_t n,
                             bool stop_on_deferred_fault) override;
    Tick runContextSwitchTrace() override;

    const SetAssocCache &l2() const { return l2Cache; }

    /** Column-associative L2 statistics (L2Style::ColumnAssoc only). */
    const ColumnAssocStats &columnStats() const;

    /**
     * Base audit plus: L1 inclusion in the L2 (every valid L1 block
     * present below), the L2's own self-audit, TLB entries matching
     * the page directory, and the directory self-audit.
     */
    void auditState(AuditContext &ctx) const override;

  protected:
    friend class FaultInjector;
    friend struct AccessEngine;
    Cycles fillFromBelow(Addr paddr, bool is_write) override;
    Cycles writebackBelow(Addr victim_addr) override;
    Cycles l1WritebackCost() const override;

    // The address-formation hooks run on every reference; they are
    // inline so the statically-bound AccessEngine instantiation
    // flattens them into the hot loop.
    Addr
    osPhysAddr(Addr vaddr) const override
    {
        // Page-table probe addresses are already physical (the
        // table's DRAM image lives above 1 << 40); handler code/data
        // is OS-virtual and maps into a fixed image at osImageBase.
        if (vaddr >= (Addr{1} << 40))
            return vaddr;
        return osImageBase + (vaddr - cfg.handlerLayout.codeBase);
    }

    unsigned
    translationBits(Pid /*pid*/) const override
    {
        return dramPageBits;
    }

    Addr
    framePhysAddr(Pid /*pid*/, std::uint64_t frame,
                  Addr offset) override
    {
        return (frame << dramPageBits) | offset;
    }

    TranslationWalk walkTranslation(Pid pid, std::uint64_t vpn,
                                    std::vector<Addr> &probes) override;
    std::uint64_t resolveFault(Pid pid, std::uint64_t vpn,
                               AccessOutcome &outcome) override;

  private:
    /** Physical base of the OS handler code/data image in DRAM. */
    static constexpr Addr osImageBase = Addr{1} << 41;

    ConventionalConfig ccfg;
    SetAssocCache l2Cache;
    std::unique_ptr<ColumnAssocCache> columnL2;
    std::unique_ptr<VictimCache> victim;
    unsigned dramPageBits;
};

} // namespace rampage

#endif // RAMPAGE_CORE_CONVENTIONAL_HH
