/**
 * @file
 * Fork-boundary serialization for sweep points (--isolate).
 *
 * When SweepRunner isolates a point into a child process, the child's
 * entire result — the PointOutcome, its SimResult with every event
 * counter and the frozen stats snapshot — must cross a pipe and be
 * indistinguishable on the parent side from an in-process run, or the
 * benches' byte-identical-stdout guarantee breaks.  The codec here is
 * therefore exact, not pretty: integers are fixed-width little-endian
 * and doubles travel as their IEEE-754 bit patterns, so re-printing a
 * decoded result produces the same bytes as printing the original.
 *
 * The pipe carries framed records: one tag byte, a 4-byte
 * little-endian payload length, then the payload.
 *   - 'R' records are single debug-ring events, streamed by the
 *     child's fatal-signal handler (debugRingWriteFramed) so a crash
 *     still ships its post-mortem tail;
 *   - 'O' carries one encoded PointOutcome — the child's last word.
 * A truncated final record (the child died mid-write) is reported,
 * not an error: the parent keeps every complete record before it.
 */

#ifndef RAMPAGE_CORE_POINT_IPC_HH
#define RAMPAGE_CORE_POINT_IPC_HH

#include <exception>
#include <string>
#include <vector>

namespace rampage
{

struct PointOutcome;

/** Record tags on the --isolate outcome pipe. */
constexpr char pointIpcRingTag = 'R';
constexpr char pointIpcOutcomeTag = 'O';

/** Serialize an outcome (including any SimResult) to bytes. */
std::string encodePointOutcome(const PointOutcome &outcome);

/**
 * Rebuild an outcome from encodePointOutcome() bytes.
 * @throws InternalError when the buffer is malformed or from a
 *         different codec version (parent and child are the same
 *         binary, so this only fires on pipe corruption).
 */
PointOutcome decodePointOutcome(const std::string &bytes);

/**
 * Rebuild the typed exception a Failed/AuditFailed/TimedOut outcome
 * carried before crossing the fork boundary, so embedders that
 * rethrow (runBlockingSweep) observe the same what() text and catch
 * the same type as they would in-process.  Null for Ok/Skipped.
 */
std::exception_ptr rebuildPointException(const PointOutcome &outcome);

/** Write one framed record; false on short write (EPIPE, ENOSPC). */
bool writeFramedRecord(int fd, char tag, const std::string &payload);

/** One record recovered from the child's pipe stream. */
struct FramedRecord
{
    char tag = 0;
    std::string payload;
};

/**
 * Split a drained pipe stream into complete records.  `torn` is set
 * when trailing bytes form only a partial record — the signature of a
 * child killed mid-write; complete records before it are kept.
 */
std::vector<FramedRecord> parseFramedRecords(const std::string &bytes,
                                             bool &torn);

} // namespace rampage

#endif // RAMPAGE_CORE_POINT_IPC_HH
