/**
 * @file
 * Configuration structures for the simulated systems (paper §4).
 *
 * CommonConfig carries everything shared by all hierarchies (§4.3):
 * the issue-rate CPU model, split L1, TLB, CPU-L2 bus and Direct
 * Rambus DRAM.  ConventionalConfig adds the L2 cache geometry
 * (direct-mapped baseline §4.4, or 2-way §4.7); PagedConfig adds
 * the SRAM main-memory page store (§4.5, §6.2/§6.3) and the
 * context-switch-on-miss option (§4.6).
 */

#ifndef RAMPAGE_CORE_CONFIG_HH
#define RAMPAGE_CORE_CONFIG_HH

#include <cstdint>

#include "cache/cache.hh"
#include "dram/rambus.hh"
#include "dram/sdram.hh"
#include "os/page_store.hh"
#include "tlb/tlb.hh"
#include "trace/handlers.hh"
#include "util/types.hh"

namespace rampage
{

/** Parameters shared by every simulated hierarchy (§4.3). */
struct CommonConfig
{
    /**
     * Instruction issue rate in Hz.  Models a superscalar CPU's issue
     * rate rather than a literal clock: SRAM levels scale with it,
     * DRAM does not (the paper sweeps 200 MHz - 4 GHz).
     */
    std::uint64_t issueHz = 1'000'000'000;

    /**
     * CPU cores: each gets a private CoreFrontend (split L1, TLB,
     * translation cache) over the one shared memory backend
     * (L2/SRAM-MM, DRAM, page replacement).  1 reproduces the paper's
     * single-CPU systems bit-identically; N > 1 opens the multicore
     * axis (the Simulator drives the frontends in deterministic
     * round-robin quanta).  Capped at 64 (maxCores): frame-residency
     * masks are 64-bit.
     */
    unsigned cores = 1;

    // --- L1 (16 KB I + 16 KB D, direct-mapped, 32 B blocks) --------
    std::uint64_t l1SizeBytes = 16 * kib;
    std::uint64_t l1BlockBytes = 32;
    unsigned l1Assoc = 1;
    /** L1 read hit (and inclusion probe) cost; hits are pipelined so
     *  this is charged only for instruction issue and probes. */
    Cycles l1HitCycles = 1;

    // --- CPU-L2 bus / L2 hit timing ---------------------------------
    /**
     * L1 miss penalty to the L2 cache or SRAM main memory: 4 cycles
     * of the 1/3-rate 128-bit bus = 12 CPU cycles, including tag
     * check and transfer to L1.
     */
    Cycles l2HitCycles = 12;
    /** L1 write-back to L2 (tag update + transfer). */
    Cycles l1WritebackCycles = 12;
    /** L1 write-back under RAMpage: 9 cycles, no L2 tag to update. */
    Cycles l1WritebackCyclesRampage = 9;

    // --- TLB (64 entries, fully associative, random) ----------------
    TlbParams tlb{};

    // --- DRAM (Direct Rambus, non-pipelined) ------------------------
    /** DRAM technology (§3.3 compares Rambus with SDRAM). */
    enum class DramKind : std::uint8_t { DirectRambus, Sdram };
    DramKind dramKind = DramKind::DirectRambus;
    RambusConfig rambus{};
    SdramConfig sdram{};
    /** DRAM page size (fixed, both hierarchies). */
    std::uint64_t dramPageBytes = 4096;

    // --- software costs ---------------------------------------------
    HandlerLayout handlerLayout{};
    HandlerCosts handlerCosts{};
    /** Uncached DRAM-directory probe size during RAMpage faults. */
    std::uint64_t dramProbeBytes = 8;

    /** CPU cycle time in picoseconds. */
    Tick cyclePs() const;
};

/** Conventional cache hierarchy (§4.4 baseline, §4.7 2-way). */
struct ConventionalConfig
{
    CommonConfig common{};
    std::uint64_t l2SizeBytes = 4 * mib;
    std::uint64_t l2BlockBytes = 128;
    /** 1 = the baseline direct-mapped L2; 2 = the §4.7 system. */
    unsigned l2Assoc = 1;
    /**
     * L2 organisation: a conventional set-associative array, or the
     * §3.2-cited column-associative design (direct-mapped with a
     * rehash probe; l2Assoc is ignored in that case).
     */
    enum class L2Style : std::uint8_t { SetAssoc, ColumnAssoc };
    L2Style l2Style = L2Style::SetAssoc;
    /** The 2-way system uses random replacement (§4.7). */
    ReplPolicy l2Repl = ReplPolicy::Random;
    /** Optional victim cache behind L2 (§3.2 ablation). */
    unsigned victimEntries = 0;
};

/**
 * RAMpage hierarchy (§4.5): a software-paged SRAM main memory whose
 * page-size policy lives in the PageStoreParams (uniform pages, or
 * the §6.2/§6.3 per-process sizes).
 */
struct PagedConfig
{
    CommonConfig common{};
    PageStoreParams pager{};
    /** Take a context switch on a miss to DRAM (§4.6). */
    bool switchOnMiss = false;
};

/** The §4.5 fixed-page-size system is the uniform page-size policy. */
using RampageConfig = PagedConfig;

} // namespace rampage

#endif // RAMPAGE_CORE_CONFIG_HH
