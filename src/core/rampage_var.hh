/**
 * @file
 * RAMpage with per-process (variable) SRAM page sizes — the paper's
 * §6.2/§6.3 "dynamic tuning" extension, built on the variable-size
 * pager (src/os/var_pager.hh).  The TLB requirement matches MIPS:
 * entries that translate pages of different sizes.
 */

#ifndef RAMPAGE_CORE_RAMPAGE_VAR_HH
#define RAMPAGE_CORE_RAMPAGE_VAR_HH

#include "core/hierarchy.hh"
#include "os/dram_directory.hh"
#include "os/var_pager.hh"

namespace rampage
{

/** Configuration of the variable-page-size RAMpage system. */
struct VarRampageConfig
{
    CommonConfig common{};
    VarPagerParams pager{};
    bool switchOnMiss = false;
};

/** RAMpage hierarchy with a per-pid SRAM page size. */
class VarRampageHierarchy : public Hierarchy
{
  public:
    explicit VarRampageHierarchy(const VarRampageConfig &config);

    AccessOutcome access(const MemRef &ref) override;
    std::string name() const override { return "RAMpage-var"; }
    std::string l2Name() const override { return "SRAM MM"; }

    const VarPager &pager() const { return pagerUnit; }

    /**
     * Base audit plus: the variable pager's frame-map self-audit, L1
     * blocks inside pinned or owned SRAM frames, TLB entries backed by
     * the residency table, and the DRAM directory self-audit.
     */
    void auditState(AuditContext &ctx) const override;

  protected:
    friend class FaultInjector;
    Cycles fillFromBelow(Addr paddr, bool is_write) override;
    Cycles writebackBelow(Addr victim_addr) override;
    Cycles l1WritebackCost() const override;
    Addr osPhysAddr(Addr vaddr) const override;

  private:
    /** Service a fault; may evict several smaller pages. */
    std::uint64_t servicePageFault(Pid pid, std::uint64_t vpn,
                                   Tick &defer_ps_out);

    VarRampageConfig rcfg;
    VarPager pagerUnit;
    DramDirectory dir;
};

} // namespace rampage

#endif // RAMPAGE_CORE_RAMPAGE_VAR_HH
