/**
 * @file
 * The RAMpage hierarchy (paper §2, §4.5): the lowest SRAM level is a
 * software-managed paged main memory (no tags, fully associative by
 * construction), DRAM is a paging device behind it, the TLB caches
 * virtual -> SRAM translations, and all management — TLB miss
 * walks, page-fault service, replacement — runs as interleaved
 * handler traces against the pinned operating-system reserve.
 *
 * The page-size policy lives entirely in the PageStore: uniform
 * pages reproduce the paper's §4.5 system, per-process page sizes
 * its §6.2/§6.3 "dynamic tuning" extension (the TLB requirement
 * matches MIPS: entries that translate pages of different sizes).
 * Either way there is exactly one fault path (servicePageFault):
 * handler trace, victim TLB/L1 flush, victim write-back, DRAM
 * stream.
 *
 * Optionally takes a context switch on a miss to DRAM (§4.6): the
 * fault's page transfer is reported as deferrable time so the
 * simulator can overlap it with another process's execution.
 */

#ifndef RAMPAGE_CORE_PAGED_HH
#define RAMPAGE_CORE_PAGED_HH

#include "core/hierarchy.hh"
#include "os/page_store.hh"

namespace rampage
{

/** The RAMpage hierarchy (uniform or per-pid SRAM page sizes). */
class PagedHierarchy : public Hierarchy
{
  public:
    explicit PagedHierarchy(const PagedConfig &config);

    std::string name() const override;
    std::string l2Name() const override { return "SRAM MM"; }

    const PageStore &pager() const { return store; }
    const PagedConfig &config() const { return pcfg; }

    /**
     * Base audit plus: the page store's self-audit (residency,
     * reserve, frame map), L1 inclusion in the SRAM main memory
     * (every valid L1 block inside a pinned or resident SRAM frame),
     * TLB entries backed by matching page-table mappings, every
     * resident page holding a DRAM home in the directory, and the
     * directory self-audit.
     */
    void auditState(AuditContext &ctx) const override;

  protected:
    friend class FaultInjector;
    Cycles fillFromBelow(Addr paddr, bool is_write) override;
    Cycles writebackBelow(Addr victim_addr) override;
    Cycles l1WritebackCost() const override;
    Addr osPhysAddr(Addr vaddr) const override;

    unsigned translationBits(Pid pid) const override;
    TranslationWalk walkTranslation(Pid pid, std::uint64_t vpn,
                                    std::vector<Addr> &probes) override;
    std::uint64_t resolveFault(Pid pid, std::uint64_t vpn,
                               AccessOutcome &outcome) override;
    Addr framePhysAddr(Pid pid, std::uint64_t frame,
                       Addr offset) override;

  private:
    /**
     * Service a page fault for (pid, vpn): run the fault handler
     * trace, flush each victim's TLB entry and L1 blocks, write dirty
     * victims back, and stream the new page from DRAM.  Uniform
     * faults evict at most one page and pair a dirty victim's write
     * with the fill read in one back-to-back burst; per-pid faults
     * may evict several smaller pages, priced separately.
     * @param defer_ps_out receives the overlappable transfer time.
     * @return the frame (per-pid: start frame) now holding the page.
     */
    std::uint64_t servicePageFault(Pid pid, std::uint64_t vpn,
                                   Tick &defer_ps_out);

    PagedConfig pcfg;
    PageStore store;
};

} // namespace rampage

#endif // RAMPAGE_CORE_PAGED_HH
