/**
 * @file
 * The RAMpage hierarchy (paper §2, §4.5): the lowest SRAM level is a
 * software-managed paged main memory (no tags, fully associative by
 * construction), DRAM is a paging device behind it, the TLB caches
 * virtual -> SRAM translations, and all management — TLB miss
 * walks, page-fault service, replacement — runs as interleaved
 * handler traces against the pinned operating-system reserve.
 *
 * The page-size policy lives entirely in the PageStore: uniform
 * pages reproduce the paper's §4.5 system, per-process page sizes
 * its §6.2/§6.3 "dynamic tuning" extension (the TLB requirement
 * matches MIPS: entries that translate pages of different sizes).
 * Either way there is exactly one fault path (servicePageFault):
 * handler trace, victim TLB/L1 flush, victim write-back, DRAM
 * stream.
 *
 * Optionally takes a context switch on a miss to DRAM (§4.6): the
 * fault's page transfer is reported as deferrable time so the
 * simulator can overlap it with another process's execution.
 */

#ifndef RAMPAGE_CORE_PAGED_HH
#define RAMPAGE_CORE_PAGED_HH

#include "core/hierarchy.hh"
#include "os/page_store.hh"
#include "util/bitops.hh"

namespace rampage
{

/**
 * The RAMpage hierarchy (uniform or per-pid SRAM page sizes).
 * `final` so the AccessEngine instantiations below bind every policy
 * hook statically.
 */
class PagedHierarchy final : public Hierarchy
{
  public:
    explicit PagedHierarchy(const PagedConfig &config);

    std::string name() const override;
    std::string l2Name() const override { return "SRAM MM"; }

    /** Statically-dispatched hot path (see access_engine.hh). */
    AccessOutcome access(const MemRef &ref) override;
    BatchOutcome accessBatch(const MemRef *refs, std::size_t n,
                             bool stop_on_deferred_fault) override;
    Tick runContextSwitchTrace() override;

    const PageStore &pager() const { return store; }
    const PagedConfig &config() const { return pcfg; }

    /**
     * Base audit plus: the page store's self-audit (residency,
     * reserve, frame map), L1 inclusion in the SRAM main memory
     * (every valid L1 block inside a pinned or resident SRAM frame),
     * TLB entries backed by matching page-table mappings, every
     * resident page holding a DRAM home in the directory, and the
     * directory self-audit.
     */
    void auditState(AuditContext &ctx) const override;

  protected:
    friend class FaultInjector;
    friend struct AccessEngine;
    Cycles fillFromBelow(Addr paddr, bool is_write) override;
    Cycles writebackBelow(Addr victim_addr) override;
    Cycles l1WritebackCost() const override;

    // The address-formation hooks run on every reference; they are
    // inline so the statically-bound AccessEngine instantiation
    // flattens them into the hot loop.
    Addr
    osPhysAddr(Addr vaddr) const override
    {
        return store.osPhysAddr(vaddr);
    }

    unsigned
    translationBits(Pid pid) const override
    {
        return floorLog2(store.pageBytes(pid));
    }

    Addr
    framePhysAddr(Pid /*pid*/, std::uint64_t frame,
                  Addr offset) override
    {
        store.touch(frame);
        return store.physAddr(frame, offset);
    }

    TranslationWalk walkTranslation(Pid pid, std::uint64_t vpn,
                                    std::vector<Addr> &probes) override;
    std::uint64_t resolveFault(Pid pid, std::uint64_t vpn,
                               AccessOutcome &outcome) override;

    /**
     * Coherence-lite: a translation install makes the active core a
     * holder of private copies (TLB entry, L1 lines) of the SRAM
     * frame — record its bit in the frame's residency mask so page
     * replacement invalidates exactly the right cores' copies.
     */
    void
    noteFrameResidency(std::uint64_t frame) override
    {
        backend.noteResidency(frame, fe().port.core);
    }

  private:
    /**
     * Service a page fault for (pid, vpn): run the fault handler
     * trace, flush each victim's TLB entry and L1 blocks, write dirty
     * victims back, and stream the new page from DRAM.  Uniform
     * faults evict at most one page and pair a dirty victim's write
     * with the fill read in one back-to-back burst; per-pid faults
     * may evict several smaller pages, priced separately.
     * @param defer_ps_out receives the overlappable transfer time.
     * @return the frame (per-pid: start frame) now holding the page.
     */
    std::uint64_t servicePageFault(Pid pid, std::uint64_t vpn,
                                   Tick &defer_ps_out);

    PagedConfig pcfg;
    PageStore store;
};

} // namespace rampage

#endif // RAMPAGE_CORE_PAGED_HH
