#include "core/cost_model.hh"

#include "util/units.hh"

namespace rampage
{

EventCounts &
EventCounts::operator+=(const EventCounts &other)
{
    l1iCycles += other.l1iCycles;
    l1dCycles += other.l1dCycles;
    l2Cycles += other.l2Cycles;
    dramPs += other.dramPs;
    refs += other.refs;
    traceRefs += other.traceRefs;
    overheadRefs += other.overheadRefs;
    instrFetches += other.instrFetches;
    l1iMisses += other.l1iMisses;
    l1dMisses += other.l1dMisses;
    l1Writebacks += other.l1Writebacks;
    l2Accesses += other.l2Accesses;
    l2Misses += other.l2Misses;
    dramReads += other.dramReads;
    dramWrites += other.dramWrites;
    tlbMisses += other.tlbMisses;
    tlbMissOverheadRefs += other.tlbMissOverheadRefs;
    faultOverheadRefs += other.faultOverheadRefs;
    inclusionProbes += other.inclusionProbes;
    inclusionWritebacks += other.inclusionWritebacks;
    contextSwitches += other.contextSwitches;
    victimCacheHits += other.victimCacheHits;
    return *this;
}

double
EventCounts::overheadRatio() const
{
    if (traceRefs == 0)
        return 0.0;
    return static_cast<double>(tlbMissOverheadRefs + faultOverheadRefs) /
           static_cast<double>(traceRefs);
}

TimeBreakdown
priceEvents(const EventCounts &counts, std::uint64_t issue_hz,
            Tick extra_stall_ps)
{
    Tick cycle = cycleTimePs(issue_hz);
    TimeBreakdown breakdown;
    breakdown.add(TimeLevel::L1I, counts.l1iCycles * cycle);
    breakdown.add(TimeLevel::L1D, counts.l1dCycles * cycle);
    breakdown.add(TimeLevel::L2, counts.l2Cycles * cycle);
    breakdown.add(TimeLevel::Dram, counts.dramPs + extra_stall_ps);
    return breakdown;
}

Tick
totalTimePs(const EventCounts &counts, std::uint64_t issue_hz,
            Tick extra_stall_ps)
{
    return priceEvents(counts, issue_hz, extra_stall_ps).total();
}

} // namespace rampage
