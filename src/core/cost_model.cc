#include "core/cost_model.hh"

#include "stats/registry.hh"
#include "util/units.hh"

namespace rampage
{

void
EventCounts::registerStats(StatsRegistry &reg) const
{
    reg.addCounter("sim.refs", "all references processed", &refs);
    reg.addCounter("sim.trace_refs", "benchmark-trace references",
                   &traceRefs);
    reg.addCounter("sim.overhead_refs", "handler-trace references",
                   &overheadRefs);
    reg.addCounter("sim.instr_fetches", "instruction fetches",
                   &instrFetches);
    reg.addCounter("sim.l1i_cycles", "cycles charged at the L1I level",
                   &l1iCycles);
    reg.addCounter("sim.l1d_cycles", "cycles charged at the L1D level",
                   &l1dCycles);
    reg.addCounter("sim.l2_cycles",
                   "cycles charged at the L2/SRAM-MM level", &l2Cycles);
    reg.addCounter("sim.l1i_misses", "L1I misses", &l1iMisses);
    reg.addCounter("sim.l1d_misses", "L1D misses", &l1dMisses);
    reg.addCounter("sim.l1_writebacks", "dirty L1 victim write-backs",
                   &l1Writebacks);
    reg.addCounter("sim.l2_accesses", "L2 or SRAM-MM accesses",
                   &l2Accesses);
    reg.addCounter("sim.l2_misses", "L2 misses / SRAM page faults",
                   &l2Misses);
    reg.addCounter("sim.tlb_misses", "TLB misses taken", &tlbMisses);
    reg.addCounter("sim.tlb_miss_overhead_refs",
                   "handler references spent on TLB walks",
                   &tlbMissOverheadRefs);
    reg.addCounter("sim.fault_overhead_refs",
                   "handler references spent on page faults",
                   &faultOverheadRefs);
    reg.addCounter("sim.inclusion_probes",
                   "L1 probes for inclusion maintenance",
                   &inclusionProbes);
    reg.addCounter("sim.inclusion_writebacks",
                   "dirty L1 blocks flushed for inclusion",
                   &inclusionWritebacks);
    reg.addCounter("sim.context_switches", "context-switch traces run",
                   &contextSwitches);
    reg.addCounter("sim.victim_cache_hits",
                   "L2 victim-cache hits (ablation)", &victimCacheHits);
    reg.addFormula("sim.overhead_ratio",
                   "handler refs / benchmark refs (Fig. 4)",
                   [this] { return overheadRatio(); });
    reg.addCounter("dram.reads", "DRAM read transactions", &dramReads);
    reg.addCounter("dram.writes", "DRAM write transactions",
                   &dramWrites);
    reg.addCounter("dram.transfer_ps",
                   "total DRAM transaction picoseconds", &dramPs);
}

EventCounts &
EventCounts::operator+=(const EventCounts &other)
{
    l1iCycles += other.l1iCycles;
    l1dCycles += other.l1dCycles;
    l2Cycles += other.l2Cycles;
    dramPs += other.dramPs;
    refs += other.refs;
    traceRefs += other.traceRefs;
    overheadRefs += other.overheadRefs;
    instrFetches += other.instrFetches;
    l1iMisses += other.l1iMisses;
    l1dMisses += other.l1dMisses;
    l1Writebacks += other.l1Writebacks;
    l2Accesses += other.l2Accesses;
    l2Misses += other.l2Misses;
    dramReads += other.dramReads;
    dramWrites += other.dramWrites;
    tlbMisses += other.tlbMisses;
    tlbMissOverheadRefs += other.tlbMissOverheadRefs;
    faultOverheadRefs += other.faultOverheadRefs;
    inclusionProbes += other.inclusionProbes;
    inclusionWritebacks += other.inclusionWritebacks;
    contextSwitches += other.contextSwitches;
    victimCacheHits += other.victimCacheHits;
    return *this;
}

double
EventCounts::overheadRatio() const
{
    if (traceRefs == 0)
        return 0.0;
    return static_cast<double>(tlbMissOverheadRefs + faultOverheadRefs) /
           static_cast<double>(traceRefs);
}

TimeBreakdown
priceEvents(const EventCounts &counts, std::uint64_t issue_hz,
            Tick extra_stall_ps)
{
    Tick cycle = cycleTimePs(issue_hz);
    TimeBreakdown breakdown;
    breakdown.add(TimeLevel::L1I, counts.l1iCycles * cycle);
    breakdown.add(TimeLevel::L1D, counts.l1dCycles * cycle);
    breakdown.add(TimeLevel::L2, counts.l2Cycles * cycle);
    breakdown.add(TimeLevel::Dram, counts.dramPs + extra_stall_ps);
    return breakdown;
}

Tick
totalTimePs(const EventCounts &counts, std::uint64_t issue_hz,
            Tick extra_stall_ps)
{
    return priceEvents(counts, issue_hz, extra_stall_ps).total();
}

} // namespace rampage
