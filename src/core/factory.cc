#include "core/factory.hh"

#include "core/conventional.hh"
#include "core/paged.hh"
#include "util/error.hh"

namespace rampage
{

std::unique_ptr<Hierarchy>
makeHierarchy(const HierarchyConfig &config)
{
    switch (config.family) {
      case HierarchyConfig::Family::Conventional:
        return std::make_unique<ConventionalHierarchy>(
            config.conventional);
      case HierarchyConfig::Family::Paged:
        return std::make_unique<PagedHierarchy>(config.paged);
    }
    throw ConfigError("unknown hierarchy family");
}

void
validateHierarchyConfig(const HierarchyConfig &config)
{
    makeHierarchy(config);
}

PagedHierarchy &
asPaged(Hierarchy &hier)
{
    auto *paged = dynamic_cast<PagedHierarchy *>(&hier);
    if (paged == nullptr)
        throw ConfigError("hierarchy '%s' is not a paged (RAMpage) "
                          "system",
                          hier.name().c_str());
    return *paged;
}

const PagedHierarchy &
asPaged(const Hierarchy &hier)
{
    return asPaged(const_cast<Hierarchy &>(hier));
}

ConventionalHierarchy &
asConventional(Hierarchy &hier)
{
    auto *conv = dynamic_cast<ConventionalHierarchy *>(&hier);
    if (conv == nullptr)
        throw ConfigError("hierarchy '%s' is not a conventional cache "
                          "system",
                          hier.name().c_str());
    return *conv;
}

const ConventionalHierarchy &
asConventional(const Hierarchy &hier)
{
    return asConventional(const_cast<Hierarchy &>(hier));
}

} // namespace rampage
