/**
 * @file
 * The RAMpage hierarchy (paper §2, §4.5): the lowest SRAM level is a
 * software-managed paged main memory (no tags, fully associative by
 * construction), DRAM is a paging device behind it, the TLB caches
 * virtual -> SRAM translations, and all management — TLB miss
 * walks, page-fault service, replacement — runs as interleaved
 * handler traces against the pinned operating-system reserve.
 *
 * Optionally takes a context switch on a miss to DRAM (§4.6): the
 * fault's page transfer is reported as deferrable time so the
 * simulator can overlap it with another process's execution.
 */

#ifndef RAMPAGE_CORE_RAMPAGE_HH
#define RAMPAGE_CORE_RAMPAGE_HH

#include "core/hierarchy.hh"
#include "os/dram_directory.hh"
#include "os/pager.hh"

namespace rampage
{

/** The RAMpage hierarchy. */
class RampageHierarchy : public Hierarchy
{
  public:
    explicit RampageHierarchy(const RampageConfig &config);

    AccessOutcome access(const MemRef &ref) override;
    std::string name() const override;
    std::string l2Name() const override { return "SRAM MM"; }

    const SramPager &pager() const { return pagerUnit; }
    const DramDirectory &directory() const { return dir; }
    const RampageConfig &config() const { return rcfg; }

    /**
     * Base audit plus: L1 inclusion in the SRAM main memory (every
     * valid L1 block inside a pinned or mapped SRAM page), TLB
     * entries backed by matching page-table mappings, the pager/IPT
     * self-audit, every resident page holding a DRAM home in the
     * directory, and the directory self-audit.
     */
    void auditState(AuditContext &ctx) const override;

  protected:
    friend class FaultInjector;
    Cycles fillFromBelow(Addr paddr, bool is_write) override;
    Cycles writebackBelow(Addr victim_addr) override;
    Cycles l1WritebackCost() const override;
    Addr osPhysAddr(Addr vaddr) const override;

  private:
    /**
     * Service a page fault for (pid, vpn): run the fault handler
     * trace, write back the victim page, flush the victim's TLB entry
     * and L1 blocks, and stream the new page from DRAM.
     * @param defer_ps_out receives the overlappable transfer time.
     * @return the frame now holding the page.
     */
    std::uint64_t servicePageFault(Pid pid, std::uint64_t vpn,
                                   Tick &defer_ps_out);

    RampageConfig rcfg;
    SramPager pagerUnit;
    DramDirectory dir; ///< the DRAM paging device's directory
    unsigned pageBits;
};

} // namespace rampage

#endif // RAMPAGE_CORE_RAMPAGE_HH
