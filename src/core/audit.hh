/**
 * @file
 * Runtime model-integrity audits.
 *
 * A long behavioural run is only as trustworthy as the state it
 * accumulates: a latent bug that corrupts a cache tag, leaks an SRAM
 * frame or skews a cycle accumulator produces *plausible* numbers,
 * not a crash.  The Auditor walks live component state and verifies
 * the cross-component invariants the RAMpage model is built on —
 * L1 inclusion in the level below, IPT <-> DRAM-directory
 * consistency, no double-mapped or leaked SRAM pages, TLB entries
 * backed by valid mappings, scheduler queue sanity under
 * switch-on-miss, and conservation of the event/time accounting.
 *
 * The Simulator audits at quantum boundaries and at end-of-run
 * (AuditLevel::Boundaries), or additionally after every miss that
 * reached the SRAM/L2 level (AuditLevel::Paranoid).  Audits are
 * side-effect-free: a run with audits enabled produces byte-identical
 * simulation output.  Violations raise AuditError (util/error.hh)
 * carrying a structured report; fault_injection.hh provides the
 * matching deterministic corruptions that prove each checker fires.
 */

#ifndef RAMPAGE_CORE_AUDIT_HH
#define RAMPAGE_CORE_AUDIT_HH

#include <cstdint>
#include <string>

#include "util/audit.hh"
#include "util/types.hh"

namespace rampage
{

class Hierarchy;
class Scheduler;

/** How aggressively the Simulator audits model state. */
enum class AuditLevel
{
    Off,        ///< no audits (production default)
    Boundaries, ///< quantum boundaries and end-of-run
    Paranoid,   ///< boundaries plus after every L2/SRAM-level miss
};

/** Stable lower-case name ("off", "boundaries", "paranoid"). */
const char *auditLevelName(AuditLevel level);

/** Parse a level name; throws ConfigError on anything else. */
AuditLevel parseAuditLevel(const std::string &spec);

/**
 * Programmatic override (the benches' --audit flag); takes precedence
 * over the RAMPAGE_AUDIT environment variable.
 */
void setAuditLevelOverride(AuditLevel level);

/**
 * The level runs should audit at: the programmatic override if set,
 * else RAMPAGE_AUDIT (lenient: an unknown value warns and audits at
 * Boundaries rather than silently disabling), else Off.
 */
AuditLevel resolveAuditLevel();

/**
 * Drives model-integrity audits over a hierarchy (and, for
 * switch-on-miss runs, the scheduler).  Owned by the Simulator; one
 * Auditor per run accumulates run-level audit counters.
 */
class Auditor
{
  public:
    explicit Auditor(AuditLevel level) : lvl(level) {}

    bool enabled() const { return lvl != AuditLevel::Off; }
    bool paranoid() const { return lvl == AuditLevel::Paranoid; }
    AuditLevel level() const { return lvl; }

    /**
     * Audit structural state only: caches, TLB, pager/page tables,
     * DRAM directory, event-count cross-checks.  Used mid-run, where
     * elapsed time is not yet final.  Throws AuditError.
     */
    void auditHierarchy(const Hierarchy &hier, const std::string &scope);

    /**
     * Structural audit plus time conservation for a *blocking* run:
     * all elapsed time accrues through the event counts, so
     * elapsed == totalTimePs(counts, issueHz) holds exactly — the
     * re-pricing identity the paper's frequency sweep relies on.
     */
    void auditBlocking(const Hierarchy &hier, Tick elapsed_ps,
                       const std::string &scope);

    /**
     * Structural audit plus scheduler queue checks for a
     * switch-on-miss run (whose transfer overlap makes the blocking
     * conservation identity inapplicable).
     */
    void auditSwitchOnMiss(const Hierarchy &hier, const Scheduler &sched,
                           Tick now, const std::string &scope);

    /** Completed audit passes (each may run hundreds of checks). */
    std::uint64_t auditsRun() const { return nRuns; }
    /** Individual invariant checks across all passes. */
    std::uint64_t checksRun() const { return nChecks; }

  private:
    /** Run the shared hierarchy walk into `ctx`. */
    void walkHierarchy(const Hierarchy &hier, AuditContext &ctx);

    AuditLevel lvl;
    std::uint64_t nRuns = 0;
    std::uint64_t nChecks = 0;
};

} // namespace rampage

#endif // RAMPAGE_CORE_AUDIT_HH
