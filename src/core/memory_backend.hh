/**
 * @file
 * The memory-side half of the core/memory seam: everything every core
 * shares — the DRAM timing models, the DRAM page directory (the
 * paging device's allocator), the DRAM-transaction histogram, the
 * shared-bus occupancy clock, and the per-frame core-residency masks
 * of the coherence-lite protocol.
 *
 * Residency ("MESI-lite"): when a core installs a translation for an
 * SRAM frame, the backend sets that core's bit in the frame's mask —
 * from then on the core may hold private copies (a TLB entry, L1
 * lines) of the frame's data.  When page replacement reassigns the
 * frame to another page (an ownership change), exactly the cores in
 * the mask have their private copies invalidated, and the mask is
 * cleared.  The invariant that makes this sound — every live TLB
 * translation's frame carries the owning core's residency bit — is
 * audited as "coherence.residency" and provable via
 * ModelFault::StalePrivateCopy.  Full directory-based MESI stays a
 * follow-up; this is just enough protocol for correct sharing.
 */

#ifndef RAMPAGE_CORE_MEMORY_BACKEND_HH
#define RAMPAGE_CORE_MEMORY_BACKEND_HH

#include <cstdint>
#include <vector>

#include "core/config.hh"
#include "dram/rambus.hh"
#include "dram/sdram.hh"
#include "os/dram_directory.hh"
#include "stats/registry.hh"
#include "util/types.hh"

namespace rampage
{

/** Shared memory-side state behind every CoreFrontend. */
struct MemoryBackend
{
    explicit MemoryBackend(const CommonConfig &cfg);

    DirectRambus rambusModel;
    Sdram sdramModel;
    const DramModel *dramSel; ///< cfg.dramKind, resolved once
    DramDirectory dir; ///< the DRAM paging device's page directory
    Log2Histogram dramTxHist; ///< DRAM transaction sizes (dram.tx_bytes)

    /**
     * When the shared transfer bus (the single Rambus channel) frees:
     * the multicore driver serializes concurrent deferrable page
     * transfers against this clock, generalizing the single-core
     * switch-on-miss channel serialization across cores.
     */
    Tick busFreeAt = 0;

    /** The selected DRAM timing model (§3.3). */
    const DramModel &dram() const { return *dramSel; }

    // --- coherence-lite per-frame core residency ---------------------
    /** Mark `core` as possibly holding private copies of `frame`. */
    void
    noteResidency(std::uint64_t frame, CoreId core)
    {
        if (frame >= residency.size())
            residency.resize(frame + 1, 0);
        residency[frame] |= std::uint64_t{1} << core;
    }

    /** The frame's core mask (bit c set: core c may hold copies). */
    std::uint64_t
    residencyMask(std::uint64_t frame) const
    {
        return frame < residency.size() ? residency[frame] : 0;
    }

    /** True when `core`'s residency bit for `frame` is set. */
    bool
    resident(std::uint64_t frame, CoreId core) const
    {
        return (residencyMask(frame) >> core) & 1;
    }

    /** Ownership change: no core holds copies of `frame` any more. */
    void
    clearResidency(std::uint64_t frame)
    {
        if (frame < residency.size())
            residency[frame] = 0;
    }

    /**
     * Corruption hook (fault injection): drop one core's residency
     * bit, leaving its private copies untracked — exactly the stale
     * private copy the "coherence.residency" audit must catch.
     * @return true when the bit was set.
     */
    bool
    clearResidencyBit(std::uint64_t frame, CoreId core)
    {
        if (!resident(frame, core))
            return false;
        residency[frame] &= ~(std::uint64_t{1} << core);
        return true;
    }

  private:
    /** Per-frame residency masks, grown lazily (index = SRAM frame). */
    std::vector<std::uint64_t> residency;
};

} // namespace rampage

#endif // RAMPAGE_CORE_MEMORY_BACKEND_HH
