#include "core/rampage_var.hh"

#include "util/audit.hh"
#include "util/bitops.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace rampage
{

VarRampageHierarchy::VarRampageHierarchy(const VarRampageConfig &config)
    : Hierarchy(config.common),
      rcfg(config),
      pagerUnit(config.pager),
      dir(config.common.dramPageBytes)
{
    if (config.pager.baseFrameBytes < cfg.l1BlockBytes)
        throw ConfigError("base frame smaller than the L1 block");
    auto check = [&](std::uint64_t bytes) {
        if (bytes > cfg.dramPageBytes)
            throw ConfigError("SRAM page larger than the DRAM page");
    };
    check(config.pager.defaultPageBytes);
    for (const auto &[pid, bytes] : config.pager.pageBytesByPid)
        check(bytes);
    if (config.pager.osVirtBase != cfg.handlerLayout.codeBase)
        throw ConfigError(
            "pager OS region must start at the handler code base");
    pagerUnit.registerStats(statsReg, "pager");
}

Cycles
VarRampageHierarchy::l1WritebackCost() const
{
    return cfg.l1WritebackCyclesRampage;
}

Addr
VarRampageHierarchy::osPhysAddr(Addr vaddr) const
{
    return pagerUnit.osPhysAddr(vaddr);
}

AccessOutcome
VarRampageHierarchy::access(const MemRef &ref)
{
    Cycles cyc_before = evt.l1iCycles + evt.l1dCycles + evt.l2Cycles;
    Tick dram_before = evt.dramPs;

    ++evt.refs;
    ++evt.traceRefs;

    AccessOutcome outcome;
    Addr paddr;
    if (ref.pid == osPid) {
        paddr = osPhysAddr(ref.vaddr);
    } else {
        unsigned page_bits = floorLog2(pagerUnit.pageBytes(ref.pid));
        std::uint64_t vpn = ref.vaddr >> page_bits;
        TlbLookup look = tlbUnit.lookup(ref.pid, vpn);
        std::uint64_t start_frame;
        if (look.hit) {
            start_frame = look.frame;
        } else {
            ++evt.tlbMisses;
            probeScratch.clear();
            VarPager::Lookup walk =
                pagerUnit.lookup(ref.pid, vpn, &probeScratch);
            handlerScratch.clear();
            handlers.tlbMiss(handlerScratch, probeScratch);
            runHandlerRefs(handlerScratch, OverheadKind::TlbMiss);

            if (walk.found) {
                start_frame = walk.startFrame;
            } else {
                outcome.pageFault = true;
                start_frame =
                    servicePageFault(ref.pid, vpn, outcome.deferPs);
            }
            tlbUnit.insert(ref.pid, vpn, start_frame);
        }
        pagerUnit.touchFrame(start_frame);
        paddr = pagerUnit.physAddr(start_frame,
                                   lowBits(ref.vaddr, page_bits));
    }

    cachedAccess(ref, paddr);

    Cycles cyc_after = evt.l1iCycles + evt.l1dCycles + evt.l2Cycles;
    Tick total = (cyc_after - cyc_before) * cycPs +
                 (evt.dramPs - dram_before);
    RAMPAGE_ASSERT(total >= outcome.deferPs,
                   "deferred time exceeds the access total");
    outcome.cpuPs = total - outcome.deferPs;
    return outcome;
}

void
VarRampageHierarchy::auditState(AuditContext &ctx) const
{
    Hierarchy::auditState(ctx);
    pagerUnit.auditState(ctx);
    dir.auditState(ctx);

    // L1 inclusion: every cached block must lie inside the SRAM, in a
    // pinned OS frame or a frame some resident page owns.
    auto check_inclusion = [&](const SetAssocCache &l1,
                               const char *label) {
        l1.forEachValidBlock([&](Addr addr, bool) {
            if (!ctx.check(addr < pagerUnit.sramBytes(), "inclusion.l1",
                           "%s block 0x%llx lies outside the %llu-byte "
                           "SRAM main memory",
                           label, static_cast<unsigned long long>(addr),
                           static_cast<unsigned long long>(
                               pagerUnit.sramBytes())))
                return true;
            std::uint64_t frame = addr / pagerUnit.baseFrameBytes();
            ctx.check(frame < pagerUnit.osFrames() ||
                          pagerUnit.frameOwned(frame),
                      "inclusion.l1",
                      "%s block 0x%llx cached from unowned SRAM "
                      "frame %llu",
                      label, static_cast<unsigned long long>(addr),
                      static_cast<unsigned long long>(frame));
            return true;
        });
    };
    check_inclusion(l1iCache, "l1i");
    check_inclusion(l1dCache, "l1d");

    // TLB entries cache the residency table's start frames; lookup()
    // is pure, so the audit can replay every translation.
    tlbUnit.forEachValidEntry([&](Pid pid, std::uint64_t vpn,
                                  std::uint64_t frame) {
        VarPager::Lookup walk = pagerUnit.lookup(pid, vpn);
        ctx.check(walk.found && walk.startFrame == frame,
                  "tlb.backing",
                  "TLB translates pid=%u vpn=0x%llx to start frame "
                  "%llu, but the residency table %s",
                  static_cast<unsigned>(pid),
                  static_cast<unsigned long long>(vpn),
                  static_cast<unsigned long long>(frame),
                  walk.found ? "disagrees" : "has no entry");
        return true;
    });
}

Cycles
VarRampageHierarchy::fillFromBelow(Addr paddr, bool /*is_write*/)
{
    ++evt.l2Accesses;
    pagerUnit.touchFrame(paddr / pagerUnit.baseFrameBytes());
    return cfg.l2HitCycles;
}

Cycles
VarRampageHierarchy::writebackBelow(Addr victim_addr)
{
    std::uint64_t frame = victim_addr / pagerUnit.baseFrameBytes();
    pagerUnit.markDirtyFrame(frame);
    pagerUnit.touchFrame(frame);
    return 0;
}

std::uint64_t
VarRampageHierarchy::servicePageFault(Pid pid, std::uint64_t vpn,
                                      Tick &defer_ps_out)
{
    ++evt.l2Misses;
    VarFaultResult fault = pagerUnit.handleFault(pid, vpn);

    handlerScratch.clear();
    handlers.pageFault(handlerScratch, fault.probes);
    runHandlerRefs(handlerScratch, OverheadKind::PageFault);
    evt.l1iCycles += fault.scanCost;

    Tick defer = 0;
    for (const VarFaultVictim &victim : fault.victims) {
        tlbUnit.invalidate(victim.pid, victim.vpn);
        Addr base = victim.startFrame * pagerUnit.baseFrameBytes();
        Cycles flush_cycles = 0;
        bool dirty = victim.dirty;
        dirty |= invalidateL1Range(base, victim.bytes, flush_cycles);
        if (dirty) {
            ++evt.dramWrites;
            noteDramTx(victim.bytes, true);
            Tick write_ps = dram().writePs(victim.bytes);
            addDramPs(write_ps);
            defer += write_ps;
        }
    }

    std::uint64_t page_bytes = pagerUnit.pageBytes(pid);
    dir.physAddr(pid, vpn * page_bytes); // allocate the DRAM home
    ++evt.dramReads;
    noteDramTx(page_bytes, false);
    Tick read_ps = dram().readPs(page_bytes);
    addDramPs(read_ps);
    defer += read_ps;

    defer_ps_out = rcfg.switchOnMiss ? defer : 0;
    return fault.startFrame;
}

} // namespace rampage
