/**
 * @file
 * Cooperative per-point deadline: the cancellation token behind
 * `--point-deadline` / `RAMPAGE_DEADLINE`.
 *
 * SweepRunner arms a wall-clock deadline on the worker thread before
 * running a point body; the simulation driver polls it at the same
 * seam as the reference-count watchdog (once per executed reference,
 * with the actual clock read strided so the hot path stays cheap).
 * When the deadline passes, the poll throws `TimeoutError` carrying
 * the references executed at cancel, which SweepRunner records as a
 * `PointStatus::TimedOut` outcome — the point is cancelled, the
 * campaign continues.
 *
 * The token is thread-local: each worker (and each `--isolate` child
 * process) cancels only its own point, and nested/unrelated
 * simulations on other threads are unaffected.
 */

#ifndef RAMPAGE_CORE_DEADLINE_HH
#define RAMPAGE_CORE_DEADLINE_HH

#include <cstdint>

namespace rampage
{

/**
 * Arm the calling thread's point deadline `seconds` of wall-clock
 * time from now (must be positive).  Re-arming replaces the previous
 * deadline.
 */
void armPointDeadline(double seconds);

/** Disarm the calling thread's point deadline (idempotent). */
void disarmPointDeadline();

/** @return true while a deadline is armed on this thread. */
bool pointDeadlineArmed();

/**
 * Hot-path poll: cheap when disarmed or between strides (the clock
 * is read once every 1024 calls).  Throws `TimeoutError` — carrying
 * `refs_executed` — once the armed deadline has passed, and disarms
 * so the unwind cannot re-trip.
 */
void pollPointDeadline(std::uint64_t refs_executed);

/**
 * Unstrided poll for slow loops (the injected hang fault sleeps
 * between checks, so a strided clock read would stretch the cancel
 * latency by three orders of magnitude).  Same throw semantics.
 */
void checkPointDeadlineNow(std::uint64_t refs_executed);

} // namespace rampage

#endif // RAMPAGE_CORE_DEADLINE_HH
