#include "core/simulator.hh"

#include <algorithm>
#include <chrono>
#include <memory>

#include "core/deadline.hh"
#include "core/fault_injection.hh"
#include "obs/interval_stats.hh"
#include "obs/trace_session.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace rampage
{

namespace
{

/**
 * References per batch in the fast inner loops: large enough to
 * amortize the per-batch virtual calls (one fill, one accessBatch)
 * and loop bookkeeping, small enough that the buffer stays cache-
 * resident and the watchdog/deadline polls keep reference-scale
 * granularity.
 */
constexpr std::uint64_t batchRefs = 4096;

/**
 * Per-run observability scope: builds the trace session and interval
 * writer a SimConfig asks for, installs the session as the thread's
 * active one so component emission seams see it, and guarantees the
 * thread-local is cleared on every exit path (including a thrown
 * TimeoutError/AuditError mid-run).
 */
class ObsScope
{
  public:
    ObsScope(const SimConfig &cfg, const StatsRegistry &registry)
    {
        if (!cfg.traceOutBase.empty()) {
            traceFile =
                obsRunFilePath(cfg.traceOutBase, ".trace.json");
            session =
                std::make_unique<TraceSession>(cfg.traceRingCapacity);
            setActiveTraceSession(session.get());
        }
        if (cfg.statsIntervalRefs > 0) {
            std::string base = cfg.intervalOutBase.empty()
                                   ? std::string("rampage")
                                   : cfg.intervalOutBase;
            intervalFile = obsRunFilePath(base, ".intervals.jsonl");
            intervals = std::make_unique<IntervalStatsWriter>(
                &registry, intervalFile, cfg.statsIntervalRefs);
        }
    }

    ~ObsScope()
    {
        if (session)
            setActiveTraceSession(nullptr);
    }

    /** Advance the trace clock to the simulated now. */
    void
    setNow(Tick now)
    {
        if (session)
            session->setNow(now);
    }

    /** Sample an interval epoch when a boundary was crossed. */
    void
    maybeSample(std::uint64_t refs_executed, Tick now)
    {
        if (intervals)
            intervals->maybeSample(refs_executed, now);
    }

    /**
     * End-of-run bookkeeping: flush the final interval epoch, write
     * the trace file, and record the artefact paths plus the
     * sim.trace.* / sim.interval.* counters into the result.  Only
     * touches the result when a facility was on, so disabled runs
     * stay byte-identical.
     */
    void
    finish(SimResult &result, std::uint64_t refs_executed, Tick now)
    {
        if (intervals) {
            intervals->finish(refs_executed, now);
            result.stats.addCounter("sim.interval.epochs",
                                    "interval-stats epochs written",
                                    intervals->epochs());
            if (!intervals->failed())
                result.intervalFile = intervalFile;
        }
        if (session) {
            result.stats.addCounter("sim.trace.events",
                                    "timeline events emitted",
                                    session->emitted());
            result.stats.addCounter(
                "sim.trace.dropped",
                "timeline events dropped (ring full)",
                session->dropped());
            if (session->writeChromeTrace(traceFile))
                result.traceFile = traceFile;
        }
    }

  private:
    std::unique_ptr<TraceSession> session;
    std::unique_ptr<IntervalStatsWriter> intervals;
    std::string traceFile;
    std::string intervalFile;
};

} // namespace

double
SimResult::seconds() const
{
    return static_cast<double>(elapsedPs) / psPerSec;
}

Simulator::Simulator(Hierarchy &hierarchy,
                     std::vector<std::unique_ptr<TraceSource>> workload,
                     const SimConfig &config)
    : hier(hierarchy), sources(std::move(workload)), cfg(config)
{
    RAMPAGE_ASSERT(!sources.empty(), "simulator needs a workload");
    RAMPAGE_ASSERT(cfg.quantumRefs > 0, "quantum must be positive");
    parseFaultPlan(cfg.faultPlan); // reject bad specs before running
    if (cfg.watchdogRefBudget == 0)
        warnOnce("watchdog disabled (SimConfig::watchdogRefBudget is "
                 "0): a runaway point will hang instead of aborting; "
                 "defaultSimConfig()/armedSimConfig() arm it");
}

MemRef
Simulator::pull(std::size_t index)
{
    MemRef ref;
    if (!sources[index]->next(ref)) {
        sources[index]->reset();
        if (!sources[index]->next(ref))
            throw InternalError("trace source '%s' empty after reset",
                                sources[index]->name().c_str());
    }
    return ref;
}

void
Simulator::fillRefs(std::size_t index, MemRef *buf, std::size_t n)
{
    auto fill_start = std::chrono::steady_clock::now();
    std::size_t got = 0;
    while (got < n) {
        got += sources[index]->fill(buf + got, n - got);
        if (got < n) {
            // End-of-stream mid-buffer: rewind and replay, exactly as
            // pull() does per reference.
            sources[index]->reset();
            if (!sources[index]->next(buf[got]))
                throw InternalError(
                    "trace source '%s' empty after reset",
                    sources[index]->name().c_str());
            ++got;
        }
    }
    fillSeconds += std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - fill_start)
                       .count();
}

bool
Simulator::fastLoopEligible(const Auditor &auditor) const
{
    // Timeline tracing and interval stats need per-reference
    // setNow()/maybeSample() calls; paranoid audits fire on every
    // L2/SRAM miss.  All other machinery — boundary audits, fault
    // injection, the watchdog and deadline polls — operates at batch
    // or boundary granularity and is preserved exactly.
    return cfg.traceOutBase.empty() && cfg.statsIntervalRefs == 0 &&
           !auditor.paranoid() && !cfg.genericDispatch;
}

SimResult
Simulator::run()
{
    if (hier.coreCount() > 1 || cfg.forceMulticoreDriver)
        return runMulticore();
    return cfg.switchOnMiss ? runSwitchOnMiss() : runBlocking();
}

void
Simulator::checkWatchdog() const
{
    // The per-point deadline shares the watchdog's per-reference
    // seam: both are cooperative "stop this point" checks, one on
    // simulated work, one on wall time.
    pollPointDeadline(hier.counts().refs);
    if (cfg.watchdogRefBudget == 0)
        return;
    std::uint64_t processed = hier.counts().refs;
    if (processed > cfg.watchdogRefBudget)
        throw InternalError(
            "watchdog: %llu hierarchy references processed against a "
            "budget of %llu; aborting a runaway point",
            static_cast<unsigned long long>(processed),
            static_cast<unsigned long long>(cfg.watchdogRefBudget));
}

SimResult
Simulator::runBlocking()
{
    Auditor auditor(cfg.auditLevel);
    FaultInjector injector(parseFaultPlan(cfg.faultPlan));
    ObsScope obs(cfg, hier.statsRegistry());
    Tick now = 0;
    std::size_t current = 0;
    std::uint64_t in_slice = 0;
    std::uint64_t audited_misses = hier.counts().l2Misses;

    if (fastLoopEligible(auditor)) {
        // Batched inner loop: contiguous reference buffers through
        // the statically-dispatched accessBatch(), with slice
        // bookkeeping hoisted to batch boundaries.  Batches never
        // cross a quantum boundary, so the switch trace, boundary
        // audit and fault injection land exactly where the
        // per-reference loop puts them.
        std::vector<MemRef> buf(batchRefs);
        std::uint64_t executed = 0;
        while (executed < cfg.maxRefs) {
            checkWatchdog();
            if (in_slice == 0 && cfg.insertSwitchTrace)
                now += hier.runContextSwitchTrace();

            std::uint64_t n = std::min(
                {cfg.maxRefs - executed, cfg.quantumRefs - in_slice,
                 batchRefs});
            fillRefs(current, buf.data(),
                     static_cast<std::size_t>(n));
            BatchOutcome out = hier.accessBatch(
                buf.data(), static_cast<std::size_t>(n), false);
            now += out.cpuPs + out.deferPs;
            executed += n;
            in_slice += n;

            if (in_slice >= cfg.quantumRefs) {
                in_slice = 0;
                current = (current + 1) % sources.size();
                // Audit the boundary first, then corrupt: the
                // planned fault lands on provably clean state, so
                // the violation the next audit raises is the
                // injector's.
                auditor.auditBlocking(hier, now, "quantum boundary");
                if (injector.pending())
                    injector.apply(hier);
            }
        }
    } else {
        for (std::uint64_t executed = 0; executed < cfg.maxRefs;
             ++executed) {
            checkWatchdog();
            obs.setNow(now);
            if (in_slice == 0 && cfg.insertSwitchTrace) {
                Tick switch_ps = hier.runContextSwitchTrace();
                RAMPAGE_TRACE_EVENT(ContextSwitch, switch_ps, in_slice,
                                    osPid);
                now += switch_ps;
                obs.setNow(now);
            }

            MemRef ref = pull(current);
            AccessOutcome out = cfg.genericDispatch
                                    ? hier.accessGeneric(ref)
                                    : hier.access(ref);
            now += out.cpuPs + out.deferPs;
            obs.maybeSample(executed + 1, now);

            if (auditor.paranoid() &&
                hier.counts().l2Misses != audited_misses) {
                audited_misses = hier.counts().l2Misses;
                auditor.auditBlocking(hier, now, "L2/SRAM miss");
            }

            if (++in_slice >= cfg.quantumRefs) {
                in_slice = 0;
                current = (current + 1) % sources.size();
                // Audit the boundary first, then corrupt: the
                // planned fault lands on provably clean state, so
                // the violation the next audit raises is the
                // injector's.
                auditor.auditBlocking(hier, now, "quantum boundary");
                if (injector.pending())
                    injector.apply(hier);
            }
        }
    }

    auditor.auditBlocking(hier, now, "end of run");
    if (injector.pending())
        warnOnce("fault injection: '%s' was never applied (the run "
                 "ended before its first quantum boundary)",
                 modelFaultName(injector.planned().kind));

    SimResult result;
    result.elapsedPs = now;
    result.counts = hier.counts();
    result.systemName = hier.name();
    result.issueHz = hier.commonConfig().issueHz;
    result.traceGenSeconds = fillSeconds;
    result.stats = hier.statsRegistry().snapshot();
    result.stats.addCounter("sim.elapsed_ps",
                            "elapsed simulated picoseconds", now);
    result.stats.addValue("sim.seconds", "elapsed simulated seconds",
                          result.seconds());
    if (auditor.enabled()) {
        result.stats.addCounter("audit.runs",
                                "model-integrity audit passes",
                                auditor.auditsRun());
        result.stats.addCounter("audit.checks",
                                "individual invariant checks run",
                                auditor.checksRun());
    }
    obs.finish(result, cfg.maxRefs, now);
    return result;
}

SimResult
Simulator::runMulticore()
{
    const unsigned ncores = hier.coreCount();
    if (sources.size() < ncores)
        throw ConfigError(
            "multicore run needs at least one trace source per core "
            "(%u cores, %zu sources)",
            ncores, sources.size());

    Auditor auditor(cfg.auditLevel);
    FaultInjector injector(parseFaultPlan(cfg.faultPlan));
    ObsScope obs(cfg, hier.statsRegistry());

    // Core scheduling is chunk-granular: every loop iteration hands
    // the least-advanced core up to batchRefs of work, whatever the
    // audit/observability level.  When a per-reference facility is on
    // (paranoid audits, tracing, interval stats, the generic-dispatch
    // seam) the chunk is processed one reference at a time *inside*
    // the iteration, so those facilities regain per-reference
    // granularity without perturbing the core interleave — runs are
    // byte-identical at every audit level, as in the single-core
    // drivers.
    const bool fast_loop = fastLoopEligible(auditor);

    // A batch the switch-on-miss path cuts short at a fault leaves
    // unconsumed references behind; each source keeps a persistent
    // buffer drained strictly in order so its reference sequence is
    // exactly what a per-reference loop would have pulled.
    struct Buffered
    {
        std::vector<MemRef> refs;
        std::size_t pos = 0;
    };
    std::vector<Buffered> bufs(sources.size());

    struct CoreRun
    {
        std::vector<std::size_t> srcs; ///< global source indices
        std::size_t current = 0;       ///< local rotation (blocking)
        std::uint64_t inSlice = 0;     ///< blocking slice progress
        std::unique_ptr<Scheduler> sched; ///< switch-on-miss only
        Tick now = 0;                  ///< this core's clock
    };
    std::vector<CoreRun> cores(ncores);
    // Sources round-robin across cores: source i runs on core i % N.
    for (std::size_t i = 0; i < sources.size(); ++i)
        cores[i % ncores].srcs.push_back(i);
    if (cfg.switchOnMiss)
        for (CoreRun &core : cores)
            core.sched = std::make_unique<Scheduler>(
                core.srcs.size(), cfg.quantumRefs);

    // Globally priced time: every cpuPs/deferPs increment, summed
    // across cores.  The blocking conservation identity
    // (elapsed == totalTimePs(counts, issueHz)) holds for this sum —
    // the per-core clocks additionally carry bus-contention waits the
    // event counts deliberately do not price.
    Tick priced = 0;
    // Shared transfer bus (the single Rambus channel): one core's
    // page transfer or miss traffic delays every other core's, the
    // multicore generalization of the single-core switch-on-miss
    // channel serialization.
    Tick bus_free_at = 0;
    Tick bus_stall = 0;
    std::uint64_t audited_misses = hier.counts().l2Misses;
    std::uint64_t executed = 0;

    if (cfg.switchOnMiss && cfg.insertSwitchTrace) {
        // Every core boots into its first process, as the single-core
        // driver does before its loop.
        for (unsigned c = 0; c < ncores; ++c) {
            hier.activateCore(static_cast<CoreId>(c));
            Tick t = hier.runContextSwitchTrace();
            cores[c].now += t;
            priced += t;
        }
    }

    std::vector<MemRef> scratch(batchRefs); // blocking-mode fill buffer

    while (executed < cfg.maxRefs) {
        checkWatchdog();
        // Deterministic interleave: the least-advanced core runs the
        // next quantum of work; the lowest core id breaks ties.
        unsigned k = 0;
        for (unsigned c = 1; c < ncores; ++c)
            if (cores[c].now < cores[k].now)
                k = c;
        CoreRun &core = cores[k];
        hier.activateCore(static_cast<CoreId>(k));
        obs.setNow(core.now);

        if (!cfg.switchOnMiss) {
            if (core.inSlice == 0 && cfg.insertSwitchTrace) {
                Tick t = hier.runContextSwitchTrace();
                core.now += t;
                priced += t;
                obs.setNow(core.now);
            }
            std::uint64_t n = std::min(
                {cfg.maxRefs - executed,
                 cfg.quantumRefs - core.inSlice, batchRefs});
            fillRefs(core.srcs[core.current], scratch.data(),
                     static_cast<std::size_t>(n));
            Tick dram_before = hier.counts().dramPs;
            if (fast_loop) {
                BatchOutcome out = hier.accessBatch(
                    scratch.data(), static_cast<std::size_t>(n),
                    false);
                Tick spent = out.cpuPs + out.deferPs;
                core.now += spent;
                priced += spent;
            } else {
                for (std::uint64_t i = 0; i < n; ++i) {
                    obs.setNow(core.now);
                    AccessOutcome one =
                        cfg.genericDispatch
                            ? hier.accessGeneric(scratch[i])
                            : hier.access(scratch[i]);
                    Tick spent = one.cpuPs + one.deferPs;
                    core.now += spent;
                    priced += spent;
                    obs.maybeSample(executed + i + 1, core.now);
                    if (auditor.paranoid() &&
                        hier.counts().l2Misses != audited_misses) {
                        audited_misses = hier.counts().l2Misses;
                        auditor.auditBlocking(hier, priced,
                                              "L2/SRAM miss");
                    }
                }
            }
            executed += n;
            core.inSlice += n;

            // Bus occupancy: the chunk's DRAM time must start after
            // the bus frees; a busy bus stalls this core (wall-clock
            // only — priced time stays the conservation identity's).
            Tick dram_ps = hier.counts().dramPs - dram_before;
            if (ncores > 1 && dram_ps > 0) {
                Tick start_want = core.now - dram_ps;
                if (bus_free_at > start_want) {
                    Tick wait = bus_free_at - start_want;
                    core.now += wait;
                    bus_stall += wait;
                }
                bus_free_at = core.now;
            }
            if (fast_loop)
                obs.maybeSample(executed, core.now);

            if (core.inSlice >= cfg.quantumRefs) {
                core.inSlice = 0;
                core.current = (core.current + 1) % core.srcs.size();
                auditor.auditBlocking(hier, priced,
                                      "quantum boundary");
                if (injector.pending())
                    injector.apply(hier);
            }
        } else {
            Scheduler &sched = *core.sched;
            std::size_t src = core.srcs[sched.current()];
            Buffered &buf = bufs[src];
            if (buf.pos == buf.refs.size()) {
                buf.refs.resize(batchRefs);
                fillRefs(src, buf.refs.data(), batchRefs);
                buf.pos = 0;
            }
            std::uint64_t n = std::min(
                {cfg.maxRefs - executed, sched.refsUntilQuantum(),
                 static_cast<std::uint64_t>(buf.refs.size() -
                                            buf.pos),
                 batchRefs});
            BatchOutcome out;
            if (fast_loop) {
                out = hier.accessBatch(
                    buf.refs.data() + buf.pos,
                    static_cast<std::size_t>(n), true);
            } else {
                // Per-reference walk over the same chunk, stopping at
                // the first deferred fault exactly as accessBatch
                // does, so the schedule (and thus the whole run) is
                // independent of the audit/observability level.
                while (out.consumed < n) {
                    obs.setNow(core.now + out.cpuPs);
                    AccessOutcome one =
                        cfg.genericDispatch
                            ? hier.accessGeneric(
                                  buf.refs[buf.pos + out.consumed])
                            : hier.access(
                                  buf.refs[buf.pos + out.consumed]);
                    ++out.consumed;
                    out.cpuPs += one.cpuPs;
                    obs.maybeSample(executed + out.consumed,
                                    core.now + out.cpuPs);
                    if (auditor.paranoid() &&
                        hier.counts().l2Misses != audited_misses) {
                        audited_misses = hier.counts().l2Misses;
                        auditor.auditSwitchOnMiss(hier, sched,
                                                  core.now + out.cpuPs,
                                                  "SRAM miss");
                    }
                    if (one.pageFault && one.deferPs > 0) {
                        out.deferPs = one.deferPs;
                        out.pageFault = true;
                        break;
                    }
                }
            }
            buf.pos += out.consumed;
            core.now += out.cpuPs;
            priced += out.cpuPs;
            executed += out.consumed;
            bool quantum_expired = sched.onRefs(out.consumed);
            if (fast_loop)
                obs.maybeSample(executed, core.now);

            if (out.pageFault) {
                auditor.auditSwitchOnMiss(hier, sched, core.now,
                                          "miss boundary");
                // The shared channel serializes every core's page
                // transfers: the move starts when the bus frees.
                Tick start = std::max(core.now, bus_free_at);
                Tick done = start + out.deferPs;
                bus_free_at = done;
                priced += out.deferPs;

                if (cfg.insertSwitchTrace) {
                    Tick t = hier.runContextSwitchTrace();
                    core.now += t;
                    priced += t;
                }
                SchedPick pick = sched.blockCurrent(core.now, done);
                core.now = std::max(core.now, pick.resumeAt);

                if (injector.pending()) {
                    if (injector.targetsScheduler())
                        injector.applyScheduler(sched, core.now);
                    else
                        injector.apply(hier);
                }
            } else if (quantum_expired) {
                auditor.auditSwitchOnMiss(hier, sched, core.now,
                                          "quantum boundary");
                if (cfg.insertSwitchTrace) {
                    Tick t = hier.runContextSwitchTrace();
                    core.now += t;
                    priced += t;
                }
                SchedPick pick = sched.rotate(core.now);
                core.now = std::max(core.now, pick.resumeAt);

                if (injector.pending()) {
                    if (injector.targetsScheduler())
                        injector.applyScheduler(sched, core.now);
                    else
                        injector.apply(hier);
                }
            }
        }
    }

    // The run ends when the last core retires its work and any
    // transfer still on the bus completes.
    Tick end_now = cfg.switchOnMiss ? bus_free_at : 0;
    for (const CoreRun &core : cores)
        end_now = std::max(end_now, core.now);
    if (cfg.switchOnMiss) {
        for (CoreRun &core : cores)
            auditor.auditSwitchOnMiss(hier, *core.sched, end_now,
                                      "end of run");
    } else {
        auditor.auditBlocking(hier, priced, "end of run");
    }
    if (injector.pending())
        warnOnce("fault injection: '%s' was never applied (the run "
                 "ended before its first audit boundary)",
                 modelFaultName(injector.planned().kind));

    SimResult result;
    result.elapsedPs = end_now;
    result.counts = hier.counts();
    result.systemName = hier.name();
    result.issueHz = hier.commonConfig().issueHz;
    result.traceGenSeconds = fillSeconds;
    result.stats = hier.statsRegistry().snapshot();
    if (cfg.switchOnMiss) {
        SchedStats total;
        StatsRegistry sched_reg;
        for (unsigned c = 0; c < ncores; ++c) {
            const SchedStats &s = cores[c].sched->stats();
            total.quantumSwitches += s.quantumSwitches;
            total.missSwitches += s.missSwitches;
            total.stalls += s.stalls;
            total.stallTime += s.stallTime;
            const std::string prefix =
                ncores == 1 ? "sched"
                            : "core" + std::to_string(c) + ".sched";
            cores[c].sched->registerStats(sched_reg, prefix);
        }
        result.sched = total;
        result.stallPs = total.stallTime;
        result.stats.append(sched_reg.snapshot());
    } else {
        result.stallPs = bus_stall;
    }
    result.stats.addCounter("sim.elapsed_ps",
                            "elapsed simulated picoseconds", end_now);
    if (cfg.switchOnMiss) {
        result.stats.addCounter(
            "sim.stall_ps",
            "CPU idle ps waiting for page transfers", result.stallPs);
    } else if (ncores > 1) {
        result.stats.addCounter(
            "sim.stall_ps",
            "core idle ps waiting for the shared transfer bus",
            bus_stall);
    }
    result.stats.addValue("sim.seconds", "elapsed simulated seconds",
                          result.seconds());
    if (auditor.enabled()) {
        result.stats.addCounter("audit.runs",
                                "model-integrity audit passes",
                                auditor.auditsRun());
        result.stats.addCounter("audit.checks",
                                "individual invariant checks run",
                                auditor.checksRun());
    }
    obs.finish(result, cfg.maxRefs, end_now);
    return result;
}

SimResult
Simulator::runSwitchOnMiss()
{
    Auditor auditor(cfg.auditLevel);
    FaultInjector injector(parseFaultPlan(cfg.faultPlan));
    ObsScope obs(cfg, hier.statsRegistry());
    Scheduler sched(sources.size(), cfg.quantumRefs);
    Tick now = 0;
    Tick channel_free_at = 0;
    std::uint64_t audited_misses = hier.counts().l2Misses;

    if (cfg.insertSwitchTrace)
        now += hier.runContextSwitchTrace();

    if (fastLoopEligible(auditor)) {
        // Batched inner loop.  Batches never cross a quantum
        // boundary (capped at refsUntilQuantum()) and stop at the
        // first deferred fault, so the miss/quantum boundary
        // machinery below runs exactly where the per-reference loop
        // runs it.  The fault branch wins over an expiry on the same
        // reference, as in the per-reference loop; either way the
        // scheduler pick resets the slice.
        //
        // A batch that a fault cuts short leaves unconsumed
        // references behind, and the per-reference loop would never
        // have pulled those from the source.  Each source therefore
        // gets a persistent buffer drained strictly in order: what a
        // fault leaves over is simply what that process runs next
        // time it is scheduled, and the per-source reference
        // sequences stay exactly the per-reference loop's.
        struct Buffered
        {
            std::vector<MemRef> refs;
            std::size_t pos = 0;
        };
        std::vector<Buffered> bufs(sources.size());
        std::uint64_t executed = 0;
        while (executed < cfg.maxRefs) {
            checkWatchdog();
            Buffered &buf = bufs[sched.current()];
            if (buf.pos == buf.refs.size()) {
                buf.refs.resize(batchRefs);
                fillRefs(sched.current(), buf.refs.data(), batchRefs);
                buf.pos = 0;
            }
            std::uint64_t n = std::min(
                {cfg.maxRefs - executed, sched.refsUntilQuantum(),
                 static_cast<std::uint64_t>(buf.refs.size() -
                                            buf.pos)});
            BatchOutcome out = hier.accessBatch(
                buf.refs.data() + buf.pos,
                static_cast<std::size_t>(n), true);
            buf.pos += out.consumed;
            now += out.cpuPs;
            executed += out.consumed;

            bool quantum_expired = sched.onRefs(out.consumed);

            if (out.pageFault) {
                // Audit before the switch: the faulting process is
                // still the running one, so a corrupted run queue is
                // caught while it is visibly wrong.
                auditor.auditSwitchOnMiss(hier, sched, now,
                                          "miss boundary");

                // The handler has queued the transfer; the single
                // Rambus channel serializes outstanding page moves
                // (§2.4 models no pipelining of references).  Only
                // the batch-ending fault carries deferrable time, so
                // the batch sum is that fault's transfer.
                Tick start = std::max(now, channel_free_at);
                Tick done = start + out.deferPs;
                channel_free_at = done;

                if (cfg.insertSwitchTrace)
                    now += hier.runContextSwitchTrace();
                SchedPick pick = sched.blockCurrent(now, done);
                now = std::max(now, pick.resumeAt);

                if (injector.pending()) {
                    if (injector.targetsScheduler())
                        injector.applyScheduler(sched, now);
                    else
                        injector.apply(hier);
                }
            } else if (quantum_expired) {
                auditor.auditSwitchOnMiss(hier, sched, now,
                                          "quantum boundary");

                if (cfg.insertSwitchTrace)
                    now += hier.runContextSwitchTrace();
                SchedPick pick = sched.rotate(now);
                now = std::max(now, pick.resumeAt);

                if (injector.pending()) {
                    if (injector.targetsScheduler())
                        injector.applyScheduler(sched, now);
                    else
                        injector.apply(hier);
                }
            }
        }
    } else {
        for (std::uint64_t executed = 0; executed < cfg.maxRefs;
             ++executed) {
            checkWatchdog();
            obs.setNow(now);
            MemRef ref = pull(sched.current());
            AccessOutcome out = cfg.genericDispatch
                                    ? hier.accessGeneric(ref)
                                    : hier.access(ref);
            now += out.cpuPs;
            obs.maybeSample(executed + 1, now);

            bool quantum_expired = sched.onRef();

            if (auditor.paranoid() &&
                hier.counts().l2Misses != audited_misses) {
                audited_misses = hier.counts().l2Misses;
                auditor.auditSwitchOnMiss(hier, sched, now,
                                          "SRAM miss");
            }

            if (out.pageFault && out.deferPs > 0) {
                // Audit before the switch: the faulting process is
                // still the running one, so a corrupted run queue is
                // caught while it is visibly wrong.
                auditor.auditSwitchOnMiss(hier, sched, now,
                                          "miss boundary");

                // The handler has queued the transfer; the single
                // Rambus channel serializes outstanding page moves
                // (§2.4 models no pipelining of references).
                Tick start = std::max(now, channel_free_at);
                Tick done = start + out.deferPs;
                channel_free_at = done;

                if (cfg.insertSwitchTrace) {
                    obs.setNow(now);
                    Tick switch_ps = hier.runContextSwitchTrace();
                    RAMPAGE_TRACE_EVENT(ContextSwitch, switch_ps,
                                        executed, osPid);
                    now += switch_ps;
                }
                SchedPick pick = sched.blockCurrent(now, done);
                obs.setNow(now);
                RAMPAGE_TRACE_EVENT(ProcessSwitch,
                                    pick.resumeAt > now
                                        ? pick.resumeAt - now
                                        : 0,
                                    pick.index,
                                    static_cast<Pid>(pick.index));
                now = std::max(now, pick.resumeAt);

                if (injector.pending()) {
                    if (injector.targetsScheduler())
                        injector.applyScheduler(sched, now);
                    else
                        injector.apply(hier);
                }
            } else if (quantum_expired) {
                auditor.auditSwitchOnMiss(hier, sched, now,
                                          "quantum boundary");

                if (cfg.insertSwitchTrace) {
                    obs.setNow(now);
                    Tick switch_ps = hier.runContextSwitchTrace();
                    RAMPAGE_TRACE_EVENT(ContextSwitch, switch_ps,
                                        executed, osPid);
                    now += switch_ps;
                }
                SchedPick pick = sched.rotate(now);
                obs.setNow(now);
                RAMPAGE_TRACE_EVENT(ProcessSwitch, 0, pick.index,
                                    static_cast<Pid>(pick.index));
                now = std::max(now, pick.resumeAt);

                if (injector.pending()) {
                    if (injector.targetsScheduler())
                        injector.applyScheduler(sched, now);
                    else
                        injector.apply(hier);
                }
            }
        }
    }

    // Any transfer still in flight must complete before the run ends.
    now = std::max(now, channel_free_at);
    auditor.auditSwitchOnMiss(hier, sched, now, "end of run");
    if (injector.pending())
        warnOnce("fault injection: '%s' was never applied (the run "
                 "ended before its first switch boundary)",
                 modelFaultName(injector.planned().kind));

    SimResult result;
    result.elapsedPs = now;
    result.stallPs = sched.stats().stallTime;
    result.counts = hier.counts();
    result.sched = sched.stats();
    result.systemName = hier.name();
    result.issueHz = hier.commonConfig().issueHz;
    result.traceGenSeconds = fillSeconds;
    result.stats = hier.statsRegistry().snapshot();
    // The scheduler is local to this run: snapshot it through a
    // throwaway registry so no dangling pointer outlives the call.
    StatsRegistry sched_reg;
    sched.registerStats(sched_reg, "sched");
    result.stats.append(sched_reg.snapshot());
    result.stats.addCounter("sim.elapsed_ps",
                            "elapsed simulated picoseconds", now);
    result.stats.addCounter("sim.stall_ps",
                            "CPU idle ps waiting for page transfers",
                            result.stallPs);
    result.stats.addValue("sim.seconds", "elapsed simulated seconds",
                          result.seconds());
    if (auditor.enabled()) {
        result.stats.addCounter("audit.runs",
                                "model-integrity audit passes",
                                auditor.auditsRun());
        result.stats.addCounter("audit.checks",
                                "individual invariant checks run",
                                auditor.checksRun());
    }
    obs.finish(result, cfg.maxRefs, now);
    return result;
}

} // namespace rampage
