/**
 * @file
 * The per-CPU half of the core/memory seam: everything a single core
 * owns privately — its split L1 caches, its TLB with the per-stream
 * last-translation cache in front of it, and the scratch buffers the
 * handler-trace interleave reuses.  A Hierarchy owns one CoreFrontend
 * per configured core (CommonConfig::cores) over one shared
 * MemoryBackend (src/core/memory_backend.hh); the AccessEngine
 * (src/core/access_engine.hh) runs the access sequence against the
 * hierarchy's *active* frontend, and every request the frontend makes
 * of the backend carries its CoreId through the MemoryPort.
 *
 * With cores == 1 the single frontend is exactly the state the
 * monolithic Hierarchy used to hold inline — same seeds, same
 * registration order, same statistics names — so single-core runs
 * stay bit-identical to the pre-split engine (golden stdout plus
 * tests/test_dispatch_equivalence.cc prove it).
 */

#ifndef RAMPAGE_CORE_CORE_FRONTEND_HH
#define RAMPAGE_CORE_CORE_FRONTEND_HH

#include <cstddef>
#include <string>
#include <vector>

#include "cache/cache.hh"
#include "core/config.hh"
#include "tlb/tlb.hh"
#include "trace/record.hh"
#include "util/types.hh"

namespace rampage
{

class StatsRegistry;

/**
 * The explicit core -> memory port: every backend request (L1 fill,
 * write-back, translation walk, fault service) is made on behalf of
 * the core this port names.  The backend uses it to attribute
 * residency (which cores may hold private copies of a frame) and to
 * serialize concurrent transfers on the shared bus.
 */
struct MemoryPort
{
    CoreId core = 0;
};

/** Most cores a hierarchy supports (residency masks are 64-bit). */
constexpr unsigned maxCores = 64;

/**
 * One CPU core's private state.  A plain aggregate: the AccessEngine
 * and the Hierarchy's policy hooks read and write it directly,
 * exactly as they did when the members lived inline in Hierarchy.
 */
struct CoreFrontend
{
    /**
     * @param cfg shared parameters (L1 geometry, TLB shape).
     * @param core this frontend's identity.  Core 0 uses the
     *        monolithic hierarchy's historical seeds (L1i 101,
     *        L1d 102, the TlbParams seed as configured) so cores=1
     *        is bit-identical to the pre-split engine; further cores
     *        derive disjoint deterministic seeds from their id.
     */
    CoreFrontend(const CommonConfig &cfg, CoreId core);

    /** Register l1i/l1d/tlb stats under `prefix` ("" or "coreN."). */
    void registerStats(StatsRegistry &reg, const std::string &prefix);

    CoreId id = 0;
    MemoryPort port; ///< carries `id` on every backend request

    SetAssocCache l1iCache;
    SetAssocCache l1dCache;
    Tlb tlbUnit;

    /**
     * Translation cache in front of the TLB: a small direct-mapped
     * array per reference stream, indexed by the low VPN bits.
     * Splitting instruction fetches from data references matters
     * because the two streams alternate pages nearly every
     * reference (a shared entry thrashes); the data stream
     * additionally hops across its working set, which the
     * direct-mapped array absorbs.  Each entry remembers a
     * (pid, vpn) -> frame translation plus the TLB slot that
     * produced it and the TLB generation it was captured under; it
     * is live exactly while that generation still matches, so any
     * TLB mutation — insert, invalidation on page replacement,
     * flush, corruption hooks — retires the whole cache
     * automatically.  A live entry replays its hit through
     * Tlb::recordHitAt(), a bit-exact replica of the full lookup it
     * short-circuits.
     *
     * Invariant ("tlb.trans_cache", audited by Hierarchy::auditState
     * and provable via ModelFault::TransCacheStale): while live, the
     * TLB holds a matching entry for (pid, vpn) with the same frame.
     * The context-switch trace additionally drops the cache
     * explicitly (the translating process changes).
     */
    struct TranslationCache
    {
        Pid pid = 0;
        std::uint64_t vpn = 0;
        std::uint64_t frame = 0;
        std::uint32_t slot = 0;  ///< TLB slot backing this entry
        std::uint64_t gen = 0;   ///< Tlb::generation() at capture
        bool valid = false;
    };
    /** Entries per stream; direct-mapped on vpn & (entries - 1). */
    static constexpr std::size_t transCacheEntries = 64;
    /** [0] data, [1] instruction. */
    TranslationCache transCache[2][transCacheEntries];
    bool transCacheOn = true;

    /** Drop the translation cache (see TranslationCache). */
    void
    transCacheInvalidate()
    {
        for (auto &stream : transCache)
            for (TranslationCache &tc : stream)
                tc.valid = false;
    }

    /** Scratch buffer reused by handler-trace synthesis. */
    std::vector<MemRef> handlerScratch;
    std::vector<Addr> probeScratch;
};

} // namespace rampage

#endif // RAMPAGE_CORE_CORE_FRONTEND_HH
