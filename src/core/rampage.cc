#include "core/rampage.hh"

#include "util/audit.hh"
#include "util/bitops.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace rampage
{

RampageHierarchy::RampageHierarchy(const RampageConfig &config)
    : Hierarchy(config.common),
      rcfg(config),
      pagerUnit(config.pager),
      dir(config.common.dramPageBytes)
{
    if (config.pager.pageBytes < cfg.l1BlockBytes)
        throw ConfigError(
            "SRAM page (%llu) smaller than the L1 block (%llu)",
            static_cast<unsigned long long>(config.pager.pageBytes),
            static_cast<unsigned long long>(cfg.l1BlockBytes));
    if (config.pager.pageBytes > cfg.dramPageBytes)
        throw ConfigError(
            "SRAM page larger than the DRAM page: a fault would span "
            "DRAM pages");
    pageBits = floorLog2(config.pager.pageBytes);
    if (config.pager.osVirtBase != cfg.handlerLayout.codeBase)
        throw ConfigError(
            "pager OS region must start at the handler code base");
    pagerUnit.registerStats(statsReg, "pager");
}

std::string
RampageHierarchy::name() const
{
    return rcfg.switchOnMiss ? "RAMpage+switch" : "RAMpage";
}

Cycles
RampageHierarchy::l1WritebackCost() const
{
    // 9 cycles: no L2 tag to update (§4.3).
    return cfg.l1WritebackCyclesRampage;
}

Addr
RampageHierarchy::osPhysAddr(Addr vaddr) const
{
    return pagerUnit.osPhysAddr(vaddr);
}

AccessOutcome
RampageHierarchy::access(const MemRef &ref)
{
    Cycles cyc_before = evt.l1iCycles + evt.l1dCycles + evt.l2Cycles;
    Tick dram_before = evt.dramPs;

    ++evt.refs;
    ++evt.traceRefs;

    AccessOutcome outcome;
    Addr paddr;
    if (ref.pid == osPid) {
        paddr = osPhysAddr(ref.vaddr);
    } else {
        std::uint64_t vpn = ref.vaddr >> pageBits;
        TlbLookup look = tlbUnit.lookup(ref.pid, vpn);
        std::uint64_t frame;
        if (look.hit) {
            frame = look.frame;
        } else {
            // TLB miss: walk the pinned inverted page table.  The
            // walk never references DRAM (§2.3) — unless the page
            // itself has faulted out of the SRAM main memory.
            ++evt.tlbMisses;
            probeScratch.clear();
            IptLookup walk = pagerUnit.lookup(ref.pid, vpn, &probeScratch);
            handlerScratch.clear();
            handlers.tlbMiss(handlerScratch, probeScratch);
            runHandlerRefs(handlerScratch, OverheadKind::TlbMiss);

            if (walk.found) {
                frame = walk.frame;
            } else {
                outcome.pageFault = true;
                frame = servicePageFault(ref.pid, vpn, outcome.deferPs);
            }
            tlbUnit.insert(ref.pid, vpn, frame);
        }
        pagerUnit.touch(frame);
        paddr = pagerUnit.physAddr(frame, lowBits(ref.vaddr, pageBits));
    }

    cachedAccess(ref, paddr);

    Cycles cyc_after = evt.l1iCycles + evt.l1dCycles + evt.l2Cycles;
    Tick total = (cyc_after - cyc_before) * cycPs +
                 (evt.dramPs - dram_before);
    RAMPAGE_ASSERT(total >= outcome.deferPs,
                   "deferred time exceeds the access total");
    outcome.cpuPs = total - outcome.deferPs;
    return outcome;
}

void
RampageHierarchy::auditState(AuditContext &ctx) const
{
    Hierarchy::auditState(ctx);
    pagerUnit.auditState(ctx);
    dir.auditState(ctx);

    const InvertedPageTable &ipt = pagerUnit.table();
    std::uint64_t page_bytes = pagerUnit.pageBytes();

    // L1 inclusion in the SRAM main memory: every cached block must
    // lie inside the SRAM and inside a pinned OS page or a mapped
    // user page — a block of an evicted page is stale data.
    auto check_inclusion = [&](const SetAssocCache &l1,
                               const char *label) {
        l1.forEachValidBlock([&](Addr addr, bool) {
            if (!ctx.check(addr < pagerUnit.sramBytes(), "inclusion.l1",
                           "%s block 0x%llx lies outside the %llu-byte "
                           "SRAM main memory",
                           label, static_cast<unsigned long long>(addr),
                           static_cast<unsigned long long>(
                               pagerUnit.sramBytes())))
                return true;
            std::uint64_t frame = addr / page_bytes;
            ctx.check(frame < pagerUnit.osFrames() || ipt.mapped(frame),
                      "inclusion.l1",
                      "%s block 0x%llx cached from unmapped SRAM "
                      "frame %llu",
                      label, static_cast<unsigned long long>(addr),
                      static_cast<unsigned long long>(frame));
            return true;
        });
    };
    check_inclusion(l1iCache, "l1i");
    check_inclusion(l1dCache, "l1d");

    // Every TLB entry must agree with the page table it caches.
    tlbUnit.forEachValidEntry([&](Pid pid, std::uint64_t vpn,
                                  std::uint64_t frame) {
        bool backed = frame >= pagerUnit.osFrames() &&
                      frame < pagerUnit.totalFrames() &&
                      ipt.mapped(frame) && ipt.framePid(frame) == pid &&
                      ipt.frameVpn(frame) == vpn;
        ctx.check(backed, "tlb.backing",
                  "TLB translates pid=%u vpn=0x%llx to SRAM frame "
                  "%llu, which the page table does not back",
                  static_cast<unsigned>(pid),
                  static_cast<unsigned long long>(vpn),
                  static_cast<unsigned long long>(frame));
        return true;
    });

    // Every resident page was faulted in through DRAM, so the paging
    // device's directory must know its home.
    unsigned dram_page_bits = floorLog2(cfg.dramPageBytes);
    for (std::uint64_t frame = pagerUnit.osFrames();
         frame < pagerUnit.totalFrames(); ++frame) {
        if (!ipt.mapped(frame))
            continue;
        Pid pid = ipt.framePid(frame);
        std::uint64_t dvpn = (ipt.frameVpn(frame) << pageBits) >>
                             dram_page_bits;
        ctx.check(dir.lookup(pid, dvpn), "ipt.dram_home",
                  "resident page pid=%u vpn=0x%llx (frame %llu) has "
                  "no DRAM home in the directory",
                  static_cast<unsigned>(pid),
                  static_cast<unsigned long long>(ipt.frameVpn(frame)),
                  static_cast<unsigned long long>(frame));
    }
}

Cycles
RampageHierarchy::fillFromBelow(Addr paddr, bool /*is_write*/)
{
    // The SRAM main memory is a plain byte-addressed RAM: an L1 miss
    // is a 4-bus-cycle (12 CPU cycle) transfer with no tag check.
    // Residency is guaranteed — translation faulted the page in
    // before the L1 was probed.
    ++evt.l2Accesses;
    pagerUnit.touch(paddr / pagerUnit.pageBytes());
    return cfg.l2HitCycles;
}

Cycles
RampageHierarchy::writebackBelow(Addr victim_addr)
{
    // A dirty L1 block drains into its SRAM page, dirtying the page;
    // the 9-cycle charge (no tag update) is applied by the caller.
    std::uint64_t frame = victim_addr / pagerUnit.pageBytes();
    pagerUnit.markDirty(frame);
    pagerUnit.touch(frame);
    return 0;
}

std::uint64_t
RampageHierarchy::servicePageFault(Pid pid, std::uint64_t vpn,
                                   Tick &defer_ps_out)
{
    ++evt.l2Misses; // SRAM main-memory page faults
    PageFaultResult fault = pagerUnit.handleFault(pid, vpn);

    // The fault handler body, interleaved through the hierarchy; its
    // table probes hit the pinned reserve.
    handlerScratch.clear();
    handlers.pageFault(handlerScratch, fault.probes);
    runHandlerRefs(handlerScratch, OverheadKind::PageFault);

    // The replacement policy's frame-table scan (the clock hand's
    // travel) costs one cycle per inspected entry on top of the fixed
    // handler body.
    evt.l1iCycles += fault.scanCost;

    Tick defer = 0;
    std::uint64_t page_bytes = pagerUnit.pageBytes();

    bool write_victim = false;
    if (fault.victimValid) {
        // Flush the victim's TLB entry (§2.3) and its L1 blocks
        // (inclusion between L1 and the SRAM main memory).
        tlbUnit.invalidate(fault.victimPid, fault.victimVpn);
        Addr victim_base = fault.frame * page_bytes;
        Cycles flush_cycles = 0;
        write_victim = fault.victimDirty;
        write_victim |=
            invalidateL1Range(victim_base, page_bytes, flush_cycles);
    }

    // Price the DRAM traffic: the dirty victim streams out and the
    // faulted page streams in (DRAM homes are resolved inside the
    // handler body — the translation is off the critical path, §2.3,
    // and DRAM is infinite so the lookup always hits).  With the
    // §6.3 pipelined-Rambus extension enabled, the read's access
    // latency hides behind the victim write's data beats.
    dir.physAddr(pid, vpn << pageBits); // allocate the DRAM home
    if (write_victim) {
        ++evt.dramWrites;
        ++evt.dramReads;
        noteDramTx(page_bytes, true);
        noteDramTx(page_bytes, false);
        Tick both = dramBurstPs(page_bytes, 2);
        addDramPs(both);
        defer += both;
    } else {
        ++evt.dramReads;
        noteDramTx(page_bytes, false);
        Tick read_ps = dram().readPs(page_bytes);
        addDramPs(read_ps);
        defer += read_ps;
    }

    defer_ps_out = rcfg.switchOnMiss ? defer : 0;
    return fault.frame;
}

} // namespace rampage
