#include "core/paged.hh"

#include "core/access_engine.hh"
#include "obs/trace_session.hh"
#include "util/audit.hh"
#include "util/bitops.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace rampage
{

PagedHierarchy::PagedHierarchy(const PagedConfig &config)
    : Hierarchy(config.common),
      pcfg(config),
      store(config.pager)
{
    const PageStoreParams &sp = store.params();
    if (store.uniform()) {
        if (sp.pageBytes < cfg.l1BlockBytes)
            throw ConfigError(
                "SRAM page (%llu) smaller than the L1 block (%llu)",
                static_cast<unsigned long long>(sp.pageBytes),
                static_cast<unsigned long long>(cfg.l1BlockBytes));
        if (sp.pageBytes > cfg.dramPageBytes)
            throw ConfigError(
                "SRAM page larger than the DRAM page: a fault would span "
                "DRAM pages");
    } else {
        if (sp.pageBytes < cfg.l1BlockBytes)
            throw ConfigError("base frame smaller than the L1 block");
        auto check = [&](std::uint64_t bytes) {
            if (bytes > cfg.dramPageBytes)
                throw ConfigError(
                    "SRAM page larger than the DRAM page");
        };
        check(sp.defaultPageBytes);
        for (const auto &[pid, bytes] : sp.pageBytesByPid) {
            (void)pid;
            check(bytes);
        }
    }
    if (sp.osVirtBase != cfg.handlerLayout.codeBase)
        throw ConfigError(
            "pager OS region must start at the handler code base");
    store.registerStats(statsReg, "pager");
}

std::string
PagedHierarchy::name() const
{
    if (!store.uniform())
        return "RAMpage-var";
    return pcfg.switchOnMiss ? "RAMpage+switch" : "RAMpage";
}

// Statically-bound hot path: the class is `final`, so these
// instantiations resolve every policy hook at compile time.
AccessOutcome
PagedHierarchy::access(const MemRef &ref)
{
    return AccessEngine::access(*this, ref);
}

BatchOutcome
PagedHierarchy::accessBatch(const MemRef *refs, std::size_t n,
                            bool stop_on_deferred_fault)
{
    return AccessEngine::accessBatch(*this, refs, n,
                                     stop_on_deferred_fault);
}

Tick
PagedHierarchy::runContextSwitchTrace()
{
    return AccessEngine::runContextSwitchTrace(*this);
}

Cycles
PagedHierarchy::l1WritebackCost() const
{
    // 9 cycles: no L2 tag to update (§4.3).
    return cfg.l1WritebackCyclesRampage;
}

Hierarchy::TranslationWalk
PagedHierarchy::walkTranslation(Pid pid, std::uint64_t vpn,
                                std::vector<Addr> &probes)
{
    IptLookup walk = store.lookup(pid, vpn, &probes);
    return TranslationWalk{walk.found, walk.frame};
}

std::uint64_t
PagedHierarchy::resolveFault(Pid pid, std::uint64_t vpn,
                             AccessOutcome &outcome)
{
    outcome.pageFault = true;
    return servicePageFault(pid, vpn, outcome.deferPs);
}

void
PagedHierarchy::auditState(AuditContext &ctx) const
{
    Hierarchy::auditState(ctx);
    store.auditState(ctx);
    backend.dir.auditState(ctx);

    const InvertedPageTable &ipt = store.table();

    for (unsigned c = 0; c < coreCount(); ++c) {
        const CoreFrontend &core = fe(c);
        const std::string who =
            coreCount() == 1 ? std::string()
                             : "core" + std::to_string(c) + " ";

        // L1 inclusion in the SRAM main memory: every cached block
        // must lie inside the SRAM and inside a pinned OS frame or a
        // frame a resident page backs — a block of an evicted page is
        // stale data.
        auto check_inclusion = [&](const SetAssocCache &l1,
                                   const char *label) {
            l1.forEachValidBlock([&](Addr addr, bool) {
                if (!ctx.check(addr < store.sramBytes(), "inclusion.l1",
                               "%s%s block 0x%llx lies outside the "
                               "%llu-byte SRAM main memory",
                               who.c_str(), label,
                               static_cast<unsigned long long>(addr),
                               static_cast<unsigned long long>(
                                   store.sramBytes())))
                    return true;
                std::uint64_t frame = addr / store.frameBytes();
                ctx.check(store.frameBacked(frame), "inclusion.l1",
                          "%s%s block 0x%llx cached from unmapped SRAM "
                          "frame %llu",
                          who.c_str(), label,
                          static_cast<unsigned long long>(addr),
                          static_cast<unsigned long long>(frame));
                return true;
            });
        };
        check_inclusion(core.l1iCache, "l1i");
        check_inclusion(core.l1dCache, "l1d");

        // Every TLB entry must agree with the page table it caches
        // (the cached frame is the page's start frame in both
        // policies) — and, coherence-lite, the frame's residency mask
        // must carry this core's bit: page replacement relies on the
        // mask to find every private copy an ownership change must
        // invalidate, so a live translation the mask misses is a
        // stale-private-copy hazard (ModelFault::StalePrivateCopy
        // proves this detector works).
        core.tlbUnit.forEachValidEntry([&](Pid pid, std::uint64_t vpn,
                                           std::uint64_t frame) {
            bool backed = frame >= store.osFrames() &&
                          frame < store.totalFrames() &&
                          ipt.mapped(frame) &&
                          ipt.framePid(frame) == pid &&
                          ipt.frameVpn(frame) == vpn;
            ctx.check(backed, "tlb.backing",
                      "%sTLB translates pid=%u vpn=0x%llx to SRAM "
                      "frame %llu, which the page table does not back",
                      who.c_str(), static_cast<unsigned>(pid),
                      static_cast<unsigned long long>(vpn),
                      static_cast<unsigned long long>(frame));
            ctx.check(backend.resident(frame, core.id),
                      "coherence.residency",
                      "%sTLB holds a live translation for SRAM frame "
                      "%llu (pid=%u vpn=0x%llx) but the frame's "
                      "residency mask (0x%llx) misses the core — page "
                      "replacement would leave its private copies "
                      "stale",
                      who.c_str(),
                      static_cast<unsigned long long>(frame),
                      static_cast<unsigned>(pid),
                      static_cast<unsigned long long>(vpn),
                      static_cast<unsigned long long>(
                          backend.residencyMask(frame)));
            return true;
        });
    }

    // Every resident page was faulted in through DRAM, so the paging
    // device's directory must know its home.
    unsigned dram_page_bits = floorLog2(cfg.dramPageBytes);
    for (std::uint64_t frame = store.osFrames();
         frame < store.totalFrames(); ++frame) {
        if (!ipt.mapped(frame))
            continue;
        Pid pid = ipt.framePid(frame);
        std::uint64_t dvpn =
            (ipt.frameVpn(frame) * store.pageBytes(pid)) >>
            dram_page_bits;
        ctx.check(backend.dir.lookup(pid, dvpn), "ipt.dram_home",
                  "resident page pid=%u vpn=0x%llx (frame %llu) has "
                  "no DRAM home in the directory",
                  static_cast<unsigned>(pid),
                  static_cast<unsigned long long>(ipt.frameVpn(frame)),
                  static_cast<unsigned long long>(frame));
    }
}

Cycles
PagedHierarchy::fillFromBelow(Addr paddr, bool /*is_write*/)
{
    // The SRAM main memory is a plain byte-addressed RAM: an L1 miss
    // is a 4-bus-cycle (12 CPU cycle) transfer with no tag check.
    // Residency is guaranteed — translation faulted the page in
    // before the L1 was probed.
    ++evt.l2Accesses;
    store.touch(paddr / store.frameBytes());
    return cfg.l2HitCycles;
}

Cycles
PagedHierarchy::writebackBelow(Addr victim_addr)
{
    // A dirty L1 block drains into its SRAM page, dirtying the page;
    // the 9-cycle charge (no tag update) is applied by the caller.
    std::uint64_t frame = victim_addr / store.frameBytes();
    store.markDirty(frame);
    store.touch(frame);
    return 0;
}

std::uint64_t
PagedHierarchy::servicePageFault(Pid pid, std::uint64_t vpn,
                                 Tick &defer_ps_out)
{
    ++evt.l2Misses; // SRAM main-memory page faults
    PageFaultResult fault = store.handleFault(pid, vpn);

    // The fault handler body, interleaved through the hierarchy (the
    // faulting core runs it); its table probes hit the pinned reserve.
    std::vector<MemRef> &scratch = fe().handlerScratch;
    scratch.clear();
    handlers.pageFault(scratch, fault.probes);
    AccessEngine::runHandlerRefs(*this, scratch,
                                 OverheadKind::PageFault);

    // The replacement policy's frame-table scan (the clock hand's
    // travel) costs one cycle per inspected entry on top of the fixed
    // handler body.
    evt.l1iCycles += fault.scanCost;

    Tick defer = 0;
    std::uint64_t frame_bytes = store.frameBytes();

    // Flush each victim's TLB entry (§2.3) and its L1 blocks
    // (inclusion between L1 and the SRAM main memory).  Uniform
    // faults evict at most one equally-sized page and pair its dirty
    // write-back with the fill read in one back-to-back DRAM burst
    // (§6.3 pipelining hides the read's access latency behind the
    // write's data beats); per-pid faults may evict several smaller
    // pages, each priced as its own DRAM write.
    bool paired = store.uniform();
    bool write_victim = false;
    // Page replacement tears down translations: the per-stream
    // last-translation caches must go with them ("tlb.trans_cache"
    // invariant — a stale survivor here is exactly what
    // ModelFault::TransCacheStale injects).
    if (!fault.victims.empty() && coreCount() == 1)
        fe().transCacheInvalidate();
    for (const PageVictim &victim : fault.victims) {
        Addr victim_base = victim.startFrame * frame_bytes;
        Cycles flush_cycles = 0;
        bool dirty = victim.dirty;
        if (coreCount() == 1) {
            // The historical single-core path, bit-identical to the
            // monolithic engine.
            fe().tlbUnit.invalidate(victim.pid, victim.vpn);
            RAMPAGE_TRACE_EVENT(TlbFlush, 0, victim.vpn, victim.pid);
            dirty |= invalidateL1Range(victim_base, victim.bytes,
                                       flush_cycles);
        } else {
            // Ownership change (coherence-lite): exactly the cores in
            // the departing frame's residency mask may hold private
            // copies — invalidate each one's TLB entry, translation
            // cache and L1 blocks, charging the probe/flush cycles per
            // resident core.  Non-resident cores never translated the
            // frame since its last assignment, so they are untouched.
            std::uint64_t mask =
                backend.residencyMask(victim.startFrame);
            for (unsigned c = 0; c < coreCount(); ++c) {
                if (!((mask >> c) & 1))
                    continue;
                CoreFrontend &core = fe(static_cast<CoreId>(c));
                core.tlbUnit.invalidate(victim.pid, victim.vpn);
                RAMPAGE_TRACE_EVENT(TlbFlush, 0, victim.vpn,
                                    victim.pid);
                core.transCacheInvalidate();
                Cycles core_cycles = 0;
                dirty |= invalidateL1RangeFor(core, victim_base,
                                              victim.bytes,
                                              core_cycles);
                flush_cycles += core_cycles;
            }
        }
        // No core holds copies of the reassigned frame any more.
        backend.clearResidency(victim.startFrame);
        if (paired) {
            write_victim |= dirty;
        } else if (dirty) {
            ++evt.dramWrites;
            noteDramTx(victim.bytes, true);
            Tick write_ps = dram().writePs(victim.bytes);
            addDramPs(write_ps);
            defer += write_ps;
        }
    }

    // Price the DRAM traffic for the faulted page streaming in (DRAM
    // homes are resolved inside the handler body — the translation is
    // off the critical path, §2.3, and DRAM is infinite so the lookup
    // always hits).
    std::uint64_t page_bytes = store.pageBytes(pid);
    backend.dir.physAddr(pid, vpn * page_bytes); // allocate the DRAM home
    if (paired && write_victim) {
        ++evt.dramWrites;
        ++evt.dramReads;
        noteDramTx(page_bytes, true);
        noteDramTx(page_bytes, false);
        Tick both = dramBurstPs(page_bytes, 2);
        addDramPs(both);
        defer += both;
    } else {
        ++evt.dramReads;
        noteDramTx(page_bytes, false);
        Tick read_ps = dram().readPs(page_bytes);
        addDramPs(read_ps);
        defer += read_ps;
    }

    defer_ps_out = pcfg.switchOnMiss ? defer : 0;
    // The fault, spanning its DRAM transfer, on the pager track.
    RAMPAGE_TRACE_EVENT(PageFault, defer, vpn, pid);
    return fault.frame;
}

} // namespace rampage
