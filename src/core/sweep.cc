#include "core/sweep.hh"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>

#include <fcntl.h>
#include <poll.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include "core/audit.hh"
#include "core/deadline.hh"
#include "core/factory.hh"
#include "core/fault_injection.hh"
#include "core/hierarchy.hh"
#include "core/point_ipc.hh"
#include "obs/obs_config.hh"
#include "obs/phase_profiler.hh"
#include "trace/benchmarks.hh"
#include "util/crc32.hh"
#include "util/debug.hh"
#include "util/error.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace rampage
{

namespace
{

const char *
envOrNull(const char *name)
{
    const char *value = std::getenv(name);
    return (value && *value) ? value : nullptr;
}

/**
 * strtoull with the validation it does not do on its own: rejects
 * signs and leading whitespace ("-5" silently wraps, " 24" silently
 * skips), trailing junk ("24x" silently truncates to 24), text with
 * no digits at all ("abc" silently parses as 0) and out-of-range
 * values, naming `origin` (the environment variable or flag the text
 * came from) and the offending text in the ConfigError.
 */
std::uint64_t
parseCount(const char *origin, const char *text)
{
    if (!std::isdigit(static_cast<unsigned char>(text[0])))
        throw ConfigError("%s: expected an unsigned integer, got '%s'",
                          origin, text);
    errno = 0;
    char *end = nullptr;
    unsigned long long value = std::strtoull(text, &end, 10);
    if (errno == ERANGE)
        throw ConfigError("%s: value '%s' is out of range", origin,
                          text);
    if (end == text || *end != '\0')
        throw ConfigError(
            "%s: trailing junk after the number in '%s'", origin, text);
    return value;
}

unsigned jobsOverride = 0;
unsigned coresOverride = 0;
double pointDeadlineOverride = 0;
int retriesOverride = -1;
int isolateOverride = -1;

} // namespace

ExperimentScale
experimentScale()
{
    ExperimentScale scale;
    if (envOrNull("RAMPAGE_FULL")) {
        // Paper scale (§4.2): 1.1 G references, 500 K-reference slices.
        scale.refs = 1'100'000'000;
        scale.quantumRefs = 500'000;
    }
    if (const char *refs = envOrNull("RAMPAGE_REFS")) {
        scale.refs = parseCount("RAMPAGE_REFS", refs);
        if (scale.refs == 0)
            throw ConfigError("RAMPAGE_REFS must be positive");
    }
    if (const char *quantum = envOrNull("RAMPAGE_QUANTUM")) {
        scale.quantumRefs = parseCount("RAMPAGE_QUANTUM", quantum);
        if (scale.quantumRefs == 0)
            throw ConfigError("RAMPAGE_QUANTUM must be positive");
    }
    return scale;
}

unsigned
parseJobs(const std::string &text, const char *origin)
{
    std::uint64_t jobs = parseCount(origin, text.c_str());
    if (jobs == 0 || jobs > maxSweepJobs)
        throw ConfigError("%s: worker count must be in [1, %u], got '%s'",
                          origin, maxSweepJobs, text.c_str());
    return static_cast<unsigned>(jobs);
}

unsigned
resolveJobs()
{
    if (jobsOverride)
        return jobsOverride;
    if (const char *env = envOrNull("RAMPAGE_JOBS"))
        return parseJobs(env, "RAMPAGE_JOBS");
    return 1;
}

void
setJobsOverride(unsigned jobs)
{
    jobsOverride = jobs;
}

unsigned
parseCores(const std::string &text, const char *origin)
{
    std::uint64_t cores = parseCount(origin, text.c_str());
    if (cores == 0 || cores > maxCores)
        throw ConfigError("%s: core count must be in [1, %u], got '%s'",
                          origin, maxCores, text.c_str());
    return static_cast<unsigned>(cores);
}

unsigned
resolveCores()
{
    if (coresOverride)
        return coresOverride;
    if (const char *env = envOrNull("RAMPAGE_CORES"))
        return parseCores(env, "RAMPAGE_CORES");
    return 0;
}

void
setCoresOverride(unsigned cores)
{
    coresOverride = cores;
}

double
parsePointDeadline(const std::string &text, const char *origin)
{
    const char *cstr = text.c_str();
    if (text.empty() ||
        !(std::isdigit(static_cast<unsigned char>(cstr[0])) ||
          cstr[0] == '.'))
        throw ConfigError(
            "%s: expected a positive number of seconds, got '%s'",
            origin, cstr);
    errno = 0;
    char *end = nullptr;
    double value = std::strtod(cstr, &end);
    if (end == cstr || *end != '\0')
        throw ConfigError(
            "%s: trailing junk after the number in '%s'", origin, cstr);
    if (errno == ERANGE || !std::isfinite(value) || value <= 0)
        throw ConfigError(
            "%s: deadline must be a positive finite number of "
            "seconds, got '%s'",
            origin, cstr);
    return value;
}

double
resolvePointDeadline()
{
    if (pointDeadlineOverride > 0)
        return pointDeadlineOverride;
    if (const char *env = envOrNull("RAMPAGE_DEADLINE"))
        return parsePointDeadline(env, "RAMPAGE_DEADLINE");
    return 0;
}

void
setPointDeadlineOverride(double seconds)
{
    pointDeadlineOverride = seconds;
}

unsigned
parseRetries(const std::string &text, const char *origin)
{
    std::uint64_t retries = parseCount(origin, text.c_str());
    if (retries > maxSweepRetries)
        throw ConfigError(
            "%s: retry count must be in [0, %u], got '%s'", origin,
            maxSweepRetries, text.c_str());
    return static_cast<unsigned>(retries);
}

unsigned
resolveRetries()
{
    if (retriesOverride >= 0)
        return static_cast<unsigned>(retriesOverride);
    if (const char *env = envOrNull("RAMPAGE_RETRIES"))
        return parseRetries(env, "RAMPAGE_RETRIES");
    return 0;
}

void
setRetriesOverride(int retries)
{
    retriesOverride = retries;
}

bool
resolveIsolate()
{
    if (isolateOverride >= 0)
        return isolateOverride != 0;
    if (const char *env = envOrNull("RAMPAGE_ISOLATE")) {
        std::string text(env);
        if (text == "1")
            return true;
        if (text == "0")
            return false;
        throw ConfigError("RAMPAGE_ISOLATE: expected 0 or 1, got '%s'",
                          env);
    }
    return false;
}

void
setIsolateOverride(int isolate)
{
    isolateOverride = isolate;
}

std::vector<std::uint64_t>
issueRates()
{
    if (const char *env = envOrNull("RAMPAGE_RATES")) {
        std::vector<std::uint64_t> rates;
        std::string text(env);
        std::size_t pos = 0;
        while (pos < text.size()) {
            std::size_t comma = text.find(',', pos);
            if (comma == std::string::npos)
                comma = text.size();
            try {
                rates.push_back(
                    parseFrequency(text.substr(pos, comma - pos)));
            } catch (const ConfigError &e) {
                throw ConfigError("RAMPAGE_RATES: %s", e.what());
            }
            pos = comma + 1;
        }
        if (rates.empty())
            throw ConfigError("RAMPAGE_RATES is empty");
        return rates;
    }
    // The paper sweeps 200 MHz to 4 GHz (§4.3).
    return {200'000'000ull, 500'000'000ull, 1'000'000'000ull,
            2'000'000'000ull, 4'000'000'000ull};
}

std::vector<std::uint64_t>
blockSizeSweep()
{
    return {128, 256, 512, 1024, 2048, 4096};
}

CommonConfig
defaultCommon(std::uint64_t issue_hz)
{
    CommonConfig common;
    common.issueHz = issue_hz;
    return common;
}

ConventionalConfig
baselineConfig(std::uint64_t issue_hz, std::uint64_t l2_block_bytes)
{
    ConventionalConfig config;
    config.common = defaultCommon(issue_hz);
    config.l2BlockBytes = l2_block_bytes;
    config.l2Assoc = 1;
    return config;
}

ConventionalConfig
twoWayConfig(std::uint64_t issue_hz, std::uint64_t l2_block_bytes)
{
    ConventionalConfig config = baselineConfig(issue_hz, l2_block_bytes);
    config.l2Assoc = 2;
    config.l2Repl = ReplPolicy::Random;
    return config;
}

RampageConfig
rampageConfig(std::uint64_t issue_hz, std::uint64_t page_bytes,
              bool switch_on_miss)
{
    RampageConfig config;
    config.common = defaultCommon(issue_hz);
    config.pager.pageBytes = page_bytes;
    config.switchOnMiss = switch_on_miss;
    return config;
}

SimConfig
defaultSimConfig(bool switch_on_miss)
{
    ExperimentScale scale = experimentScale();
    SimConfig sim;
    sim.maxRefs = scale.refs;
    sim.quantumRefs = scale.quantumRefs;
    sim.switchOnMiss = switch_on_miss;
    // Handler overhead is tens of percent at worst (Fig 4), so a
    // budget of 8x the benchmark references can only trip on a
    // genuine runaway point.
    sim.watchdogRefBudget = scale.refs * 8 + 1'000'000;
    sim.auditLevel = resolveAuditLevel();
    sim.faultPlan = resolveFaultPlanSpec();
    sim.cores = resolveCores();
    ObsSettings obs = resolveObsSettings();
    sim.traceOutBase = obs.traceOutBase;
    sim.statsIntervalRefs = obs.statsIntervalRefs;
    sim.intervalOutBase = obs.intervalOutBase;
    sim.traceRingCapacity = obs.traceRingCapacity;
    return sim;
}

SimConfig
armedSimConfig(std::uint64_t refs, std::uint64_t quantum_refs)
{
    SimConfig sim;
    sim.maxRefs = refs;
    sim.quantumRefs = quantum_refs;
    sim.watchdogRefBudget = refs * 8 + 1'000'000;
    sim.auditLevel = resolveAuditLevel();
    sim.faultPlan = resolveFaultPlanSpec();
    sim.cores = resolveCores();
    ObsSettings obs = resolveObsSettings();
    sim.traceOutBase = obs.traceOutBase;
    sim.statsIntervalRefs = obs.statsIntervalRefs;
    sim.intervalOutBase = obs.intervalOutBase;
    sim.traceRingCapacity = obs.traceRingCapacity;
    return sim;
}

SimResult
simulateSystem(const HierarchyConfig &config, const SimConfig &sim)
{
    // SimConfig::cores is a factory-level knob: apply it to the
    // hierarchy description before construction (0 leaves the
    // config's own core count alone).
    HierarchyConfig built = config;
    if (sim.cores > 0)
        built.common().cores = sim.cores;
    std::unique_ptr<Hierarchy> hierarchy = makeHierarchy(built);
    SimConfig effective = sim;
    if (config.family == HierarchyConfig::Family::Paged)
        effective.switchOnMiss = config.paged.switchOnMiss;
    std::vector<std::unique_ptr<TraceSource>> workload;
    {
        ScopedPhaseTimer timer(SweepPhase::TraceGen);
        workload = makeWorkload();
    }
    Simulator simulator(*hierarchy, std::move(workload), effective);
    // Lazy synthetic sources generate their references inside run(),
    // so time the scope by hand and credit the simulator's measured
    // fill() seconds to trace_gen: the simulate phase — the
    // refs_per_sec denominator — prices simulation alone, exactly as
    // the report documents.
    auto start = std::chrono::steady_clock::now();
    SimResult result = simulator.run();
    double elapsed = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    double fill = std::min(result.traceGenSeconds, elapsed);
    phaseRecord(SweepPhase::TraceGen, fill);
    phaseRecord(SweepPhase::Simulate, elapsed - fill);
    return result;
}

// ------------------------------------------------------------ SweepRunner

const char *
pointStatusName(PointStatus status)
{
    switch (status) {
      case PointStatus::Ok:
        return "ok";
      case PointStatus::Failed:
        return "failed";
      case PointStatus::AuditFailed:
        return "audit-failed";
      case PointStatus::Skipped:
        return "skipped";
      case PointStatus::TimedOut:
        return "timed-out";
      case PointStatus::Crashed:
        return "crashed";
    }
    return "unknown";
}

std::size_t
SweepReport::count(PointStatus status) const
{
    std::size_t n = 0;
    for (const PointOutcome &outcome : outcomes)
        if (outcome.status == status)
            ++n;
    return n;
}

void
SweepRunner::add(const std::string &id, std::function<SimResult()> body)
{
    for (const Point &point : points)
        if (point.id == id)
            throw ConfigError("duplicate sweep point id '%s'",
                              id.c_str());
    points.push_back(Point{id, std::move(body)});
}

/*
 * Checkpoint manifest format (one line per finished point, appended
 * with a single write(2) and fsync'd as each point finishes):
 *
 *   # rampage-sweep-checkpoint v2
 *   crc=<crc32 hex8> ok wall=<s> elapsed_ps=<ticks> attempts=<n> id=<id>
 *   crc=<crc32 hex8> audit wall=<s> invariant=<name> attempts=<n> id=<id>
 *
 * The crc field protects the rest of the line (everything after the
 * "crc=XXXXXXXX " prefix), so a line that was torn mid-append — the
 * signature of a SIGKILL or power loss between write() and the page
 * hitting disk — is detected rather than half-parsed.  Only "ok"
 * lines mark a point done; "audit" lines are forensic — they record
 * *which* model invariant an audit found violated, so a resumed
 * campaign (which will re-run the point) carries the trail of why the
 * previous attempt was rejected.
 *
 * Recovery policy, from most to least specific:
 *  - a manifest declaring a version newer than this build throws
 *    ConfigError naming the version (guessing at an unknown format
 *    could silently skip points);
 *  - v1 manifests (no crc fields) are read with the legacy lenient
 *    parse, so old checkpoints keep resuming;
 *  - a truncated *final* line (no trailing newline, or a CRC that
 *    does not cover a complete line) is the torn-append case: it is
 *    repaired by truncating the file back to the last good line, and
 *    costs exactly one re-simulated point;
 *  - any other damaged line is warned about and skipped — a corrupt
 *    checkpoint degrades to re-simulation, never to an error;
 *  - a duplicate id (two runs raced on one manifest) is warned about
 *    and collapsed to a single completion.
 */
namespace
{

constexpr unsigned manifestVersion = 2;
constexpr char manifestHeaderPrefix[] = "# rampage-sweep-checkpoint v";
/** "crc=XXXXXXXX " — 4 + 8 + 1 bytes before the protected body. */
constexpr std::size_t manifestCrcPrefixBytes = 13;

/** Parse one manifest body ("ok wall=... id=..."); "" if not done. */
std::string
parseManifestBody(const std::string &body, double &wall)
{
    if (body.rfind("audit ", 0) == 0)
        return ""; // forensic record only; the point is not done
    if (body.rfind("ok ", 0) != 0)
        return "";
    std::size_t id_at = body.find(" id=");
    if (id_at == std::string::npos)
        return "";
    std::size_t wall_at = body.find("wall=");
    if (wall_at != std::string::npos)
        wall = std::strtod(body.c_str() + wall_at + 5, nullptr);
    return body.substr(id_at + 4);
}

/** Whether a v2 line's CRC prefix matches its body. */
bool
manifestLineIntact(const std::string &line, std::string &body)
{
    if (line.size() < manifestCrcPrefixBytes ||
        line.compare(0, 4, "crc=") != 0 ||
        line[manifestCrcPrefixBytes - 1] != ' ')
        return false;
    char *end = nullptr;
    errno = 0;
    unsigned long stored =
        std::strtoul(line.c_str() + 4, &end, 16);
    if (errno == ERANGE ||
        end != line.c_str() + manifestCrcPrefixBytes - 1)
        return false;
    body = line.substr(manifestCrcPrefixBytes);
    return crc32(body) == static_cast<std::uint32_t>(stored);
}

} // namespace

std::map<std::string, double>
SweepRunner::loadManifest() const
{
    std::map<std::string, double> done;
    if (opts.checkpointPath.empty())
        return done;
    std::ifstream in(opts.checkpointPath, std::ios::binary);
    if (!in.is_open())
        return done; // first run: nothing checkpointed yet
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();

    std::size_t pos = 0;
    std::uint64_t line_no = 0;
    while (pos < text.size()) {
        std::size_t line_start = pos;
        std::size_t nl = text.find('\n', pos);
        bool complete = nl != std::string::npos;
        std::string line =
            text.substr(pos, (complete ? nl : text.size()) - pos);
        pos = complete ? nl + 1 : text.size();
        ++line_no;
        bool last = pos >= text.size();

        if (line.empty())
            continue;
        if (line[0] == '#') {
            // Refuse manifests from a newer build: an unknown format
            // could mark points done that are not.
            if (line.rfind(manifestHeaderPrefix, 0) == 0) {
                unsigned long version = std::strtoul(
                    line.c_str() + sizeof(manifestHeaderPrefix) - 1,
                    nullptr, 10);
                if (version > manifestVersion)
                    throw ConfigError(
                        "checkpoint '%s' is a v%lu manifest; this "
                        "build reads up to v%u — resume with a newer "
                        "build or remove the file",
                        opts.checkpointPath.c_str(), version,
                        manifestVersion);
            }
            continue;
        }

        double wall = 0;
        std::string id;
        if (line.rfind("crc=", 0) == 0) {
            std::string body;
            if (manifestLineIntact(line, body)) {
                id = parseManifestBody(body, wall);
                if (id.empty())
                    continue; // intact forensic line
            }
        } else {
            // v1 legacy line: no CRC to check; lenient parse.
            id = parseManifestBody(line, wall);
            if (id.empty() && (line.rfind("audit ", 0) == 0))
                continue;
        }

        if (id.empty()) {
            if (last && !complete) {
                // Torn final append: repair by truncation so the next
                // append starts on a clean line, and re-simulate
                // exactly this point.
                warnRateLimited(
                    "checkpoint '%s': repairing torn final manifest "
                    "line; that point will be re-simulated",
                    opts.checkpointPath.c_str());
                if (::truncate(opts.checkpointPath.c_str(),
                               static_cast<off_t>(line_start)) != 0)
                    RAMPAGE_DPRINTF(
                        Trace, "checkpoint '%s': truncate failed: %s",
                        opts.checkpointPath.c_str(),
                        std::strerror(errno));
                continue;
            }
            // Interior damage (bit rot, CRC mismatch, hand edits): a
            // torn manifest can hurt many lines at once; cap the
            // noise and keep only the count.
            warnRateLimited(
                "checkpoint: ignoring damaged manifest line");
            RAMPAGE_DPRINTF(Trace,
                            "checkpoint '%s': damaged line %llu",
                            opts.checkpointPath.c_str(),
                            static_cast<unsigned long long>(line_no));
            continue;
        }
        if (done.count(id))
            warnRateLimited(
                "checkpoint '%s': duplicate manifest entry for point "
                "'%s' (two runs raced on one manifest?)",
                opts.checkpointPath.c_str(), id.c_str());
        done[id] = wall;
    }
    return done;
}

void
SweepRunner::appendManifest(const PointOutcome &outcome) const
{
    if (opts.checkpointPath.empty())
        return;
    int fd = ::open(opts.checkpointPath.c_str(),
                    O_RDWR | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
    if (fd < 0) {
        int err = errno;
        if (err == ENOSPC || err == EIO)
            warnOnce("checkpoint '%s': %s (host I/O failure, category "
                     "%s); completions will not be recorded",
                     opts.checkpointPath.c_str(), std::strerror(err),
                     errorCategoryName(ErrorCategory::Io));
        else
            warn("cannot append to checkpoint '%s' (%s); point '%s' "
                 "will be re-simulated on resume",
                 opts.checkpointPath.c_str(), std::strerror(err),
                 outcome.id.c_str());
        return;
    }

    // Build the whole append — header if the file is fresh, a healing
    // newline if a previous append was torn, then the CRC-protected
    // line — in memory, and emit it with ONE write(2).  A crash can
    // then only ever leave a *prefix* of one line behind, which the
    // loader detects by CRC and repairs by truncation; it can never
    // interleave with another worker's append or split the header.
    std::string data;
    struct stat st;
    if (::fstat(fd, &st) == 0) {
        if (st.st_size == 0) {
            data += manifestHeaderPrefix;
            data += std::to_string(manifestVersion);
            data += '\n';
        } else {
            char lastByte = '\n';
            if (::pread(fd, &lastByte, 1, st.st_size - 1) == 1 &&
                lastByte != '\n')
                data += '\n';
        }
    }

    std::string body;
    if (outcome.status == PointStatus::AuditFailed)
        body = formatErrorMessage(
            "audit wall=%.6f invariant=%s attempts=%u id=%s",
            outcome.wallSeconds,
            outcome.auditInvariant.empty()
                ? "unknown"
                : outcome.auditInvariant.c_str(),
            outcome.attempts, outcome.id.c_str());
    else
        body = formatErrorMessage(
            "ok wall=%.6f elapsed_ps=%llu attempts=%u id=%s",
            outcome.wallSeconds,
            static_cast<unsigned long long>(outcome.result.elapsedPs),
            outcome.attempts, outcome.id.c_str());
    data += formatErrorMessage("crc=%08x ", crc32(body));
    data += body;
    data += '\n';

    // Fault injection: tear this point's append mid-line, exactly as
    // a SIGKILL between write() and completion would.
    SweepFaultPlan fault = parseSweepFaultPlan(resolveSweepFaultSpec());
    if (fault.kind == SweepFault::TornManifestLine &&
        fault.matches(outcome.id))
        data.resize(data.size() - body.size() / 2 - 1);

    ssize_t written = ::write(fd, data.data(), data.size());
    if (written != static_cast<ssize_t>(data.size())) {
        int err = errno;
        if (written < 0 && (err == ENOSPC || err == EIO))
            warnOnce("checkpoint '%s': %s (host I/O failure, category "
                     "%s); completions will not be recorded",
                     opts.checkpointPath.c_str(), std::strerror(err),
                     errorCategoryName(ErrorCategory::Io));
        else
            warn("short write to checkpoint '%s'; point '%s' will be "
                 "re-simulated on resume",
                 opts.checkpointPath.c_str(), outcome.id.c_str());
    }
    ::fsync(fd);
    ::close(fd);
}

namespace
{

/** Disarms the per-point deadline on every exit path of an attempt. */
struct DeadlineGuard
{
    explicit DeadlineGuard(double seconds)
    {
        if (seconds > 0)
            armPointDeadline(seconds);
    }
    ~DeadlineGuard() { disarmPointDeadline(); }
};

/**
 * The child side of --isolate relays its post-mortem ring up the
 * outcome pipe from a fatal-signal handler before dying of the
 * original signal, so even a SIGSEGV ships its last debug events.
 */
int childRelayFd = -1;

extern "C" void
relayFatalSignal(int sig)
{
    if (childRelayFd >= 0)
        debugRingWriteFramed(childRelayFd, pointIpcRingTag);
    // SA_RESETHAND restored the default action; re-raise so the
    // parent observes the true termination signal.
    ::raise(sig);
}

void
installFatalSignalRelay()
{
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_handler = relayFatalSignal;
    action.sa_flags = SA_RESETHAND;
    sigemptyset(&action.sa_mask);
    for (int sig : {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT})
        ::sigaction(sig, &action, nullptr);
}

} // namespace

SweepRunner::Resolved
SweepRunner::resolveOptions() const
{
    Resolved how;
    how.jobs = opts.jobs ? opts.jobs : resolveJobs();
    if (opts.pointDeadlineSeconds > 0)
        how.deadlineSeconds = opts.pointDeadlineSeconds;
    else if (opts.pointDeadlineSeconds == 0)
        how.deadlineSeconds = resolvePointDeadline();
    how.retries = opts.maxRetries >= 0
                      ? static_cast<unsigned>(opts.maxRetries)
                      : resolveRetries();
    how.backoffSeconds = opts.retryBackoffSeconds;
    how.isolate = opts.isolate >= 0 ? opts.isolate != 0
                                    : resolveIsolate();
    return how;
}

PointOutcome
SweepRunner::runLocalAttempt(const Point &point,
                             const Resolved &how) const
{
    PointOutcome outcome;
    outcome.id = point.id;

    // Each point starts with a clean ring so a failure's tail holds
    // only its own events.  The ring is thread-local, so concurrent
    // points cannot pollute each other's post-mortems.
    clearDebugRing();
    // Phase attribution and trace/interval file naming are also
    // thread-local: reset the accumulator, and label this thread's
    // simulation runs with the point id so per-point files compose
    // with --jobs and --isolate.
    phaseThreadReset();
    ObsPointLabelScope obs_label(point.id);
    SweepFaultPlan fault = parseSweepFaultPlan(resolveSweepFaultSpec());
    auto started = std::chrono::steady_clock::now();
    try {
        DeadlineGuard deadline(how.deadlineSeconds);
        if (fault.kind == SweepFault::Crash && fault.matches(point.id))
            ::raise(SIGSEGV);
        if (fault.kind == SweepFault::Hang && fault.matches(point.id)) {
            // A point that never finishes but does reach the watchdog
            // seam: sleeps in small slices, polling the deadline the
            // way Simulator::checkWatchdog does.  Without a deadline
            // this hangs for real — which is the point.
            for (;;) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
                checkPointDeadlineNow(0);
            }
        }
        outcome.result = point.body();
        outcome.haveResult = true;
        outcome.status = PointStatus::Ok;
    } catch (const TimeoutError &e) {
        outcome.status = PointStatus::TimedOut;
        outcome.errorCategory = e.category();
        outcome.error = e.what();
        outcome.refsAtCancel = e.refsExecuted();
        outcome.exception = std::current_exception();
    } catch (const AuditError &e) {
        outcome.status = PointStatus::AuditFailed;
        outcome.errorCategory = e.category();
        outcome.error = e.what();
        outcome.auditInvariant = e.firstInvariant();
        outcome.auditScope = e.scope();
        outcome.auditViolations = e.violations();
        outcome.exception = std::current_exception();
    } catch (const SimError &e) {
        outcome.status = PointStatus::Failed;
        outcome.errorCategory = e.category();
        outcome.error = e.what();
        outcome.exception = std::current_exception();
    } catch (const std::exception &e) {
        outcome.status = PointStatus::Failed;
        outcome.errorCategory = ErrorCategory::Internal;
        outcome.error = e.what();
        outcome.exception = std::current_exception();
    }
    outcome.wallSeconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - started)
                              .count();
    outcome.phaseSeconds = phaseThreadTotals();

    if (outcome.status == PointStatus::Ok) {
        // Throughput measures the simulator's inner loop, so divide
        // by the simulate phase alone: wall time also covers trace
        // generation, audits and checkpoint I/O, which would
        // understate (and noise up) refs/s.  Fall back to wall time
        // when phase profiling recorded nothing.
        double denom = outcome.simulateSeconds() > 0
                           ? outcome.simulateSeconds()
                           : outcome.wallSeconds;
        if (denom > 0)
            outcome.refsPerSecond =
                static_cast<double>(outcome.result.counts.refs) /
                denom;
    } else {
        outcome.debugTail = debugRingTail(16);
    }
    return outcome;
}

PointOutcome
SweepRunner::runIsolatedAttempt(const Point &point,
                                const Resolved &how) const
{
    int fds[2];
    if (::pipe(fds) != 0) {
        warnRateLimited("sweep: pipe failed (%s); running '%s' "
                        "in-process",
                        std::strerror(errno), point.id.c_str());
        return runLocalAttempt(point, how);
    }
    auto started = std::chrono::steady_clock::now();
    pid_t pid = ::fork();
    if (pid < 0) {
        warnRateLimited("sweep: fork failed (%s); running '%s' "
                        "in-process",
                        std::strerror(errno), point.id.c_str());
        ::close(fds[0]);
        ::close(fds[1]);
        return runLocalAttempt(point, how);
    }
    if (pid == 0) {
        // Child: run the attempt exactly as in-process would, encode
        // the outcome bit-exactly, and die with _exit so inherited
        // stdio buffers are not flushed twice.
        ::close(fds[0]);
        childRelayFd = fds[1];
        installFatalSignalRelay();
        PointOutcome outcome = runLocalAttempt(point, how);
        outcome.exception = nullptr; // rebuilt from fields by parent
        writeFramedRecord(fds[1], pointIpcOutcomeTag,
                          encodePointOutcome(outcome));
        ::_exit(0);
    }

    // Parent: drain the pipe until EOF.  The hard-kill backstop fires
    // when a child blows through its deadline *without* reaching the
    // cooperative cancellation seam (a real hang, not a slow point):
    // deadline plus a grace period, then SIGKILL.
    ::close(fds[1]);
    double kill_after = 0;
    if (how.deadlineSeconds > 0)
        kill_after =
            how.deadlineSeconds + std::max(1.0, how.deadlineSeconds);
    bool hard_killed = false;
    std::string stream;
    for (;;) {
        int timeout_ms = -1;
        if (kill_after > 0 && !hard_killed) {
            double left = kill_after -
                          std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - started)
                              .count();
            timeout_ms =
                left <= 0 ? 0
                          : static_cast<int>(left * 1000.0) + 1;
        }
        struct pollfd waiter;
        waiter.fd = fds[0];
        waiter.events = POLLIN;
        waiter.revents = 0;
        int ready = ::poll(&waiter, 1, timeout_ms);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (ready == 0) {
            ::kill(pid, SIGKILL);
            hard_killed = true;
            continue; // drain whatever the child managed to write
        }
        char buf[4096];
        ssize_t n = ::read(fds[0], buf, sizeof(buf));
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
        stream.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fds[0]);
    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR)
        continue;
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - started)
                      .count();

    // Parent-side IPC cost: framing parse + outcome decode (the poll
    // loop above is dominated by the child's own runtime, which the
    // child attributes itself).
    auto decode_started = std::chrono::steady_clock::now();
    bool torn = false;
    std::vector<FramedRecord> records = parseFramedRecords(stream, torn);
    PointOutcome outcome;
    bool have_outcome = false;
    std::vector<std::string> relayed_ring;
    for (const FramedRecord &record : records) {
        if (record.tag == pointIpcRingTag) {
            relayed_ring.push_back(record.payload);
        } else if (record.tag == pointIpcOutcomeTag) {
            try {
                outcome = decodePointOutcome(record.payload);
                have_outcome = true;
            } catch (const InternalError &e) {
                warnRateLimited("sweep: '%s': %s", point.id.c_str(),
                                e.what());
            }
        }
    }
    double ipc_seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() -
                             decode_started)
                             .count();
    // Keep at most the tail the in-process path would keep.
    if (relayed_ring.size() > 16)
        relayed_ring.erase(relayed_ring.begin(),
                           relayed_ring.end() - 16);

    if (WIFEXITED(status) && WEXITSTATUS(status) == 0 && have_outcome) {
        outcome.exception = rebuildPointException(outcome);
        // The child's phase totals died with its process-global
        // accumulator; merge its harvested per-point totals — plus
        // the parent-side decode — into this process's.
        outcome.phaseSeconds[static_cast<std::size_t>(
            SweepPhase::Ipc)] += ipc_seconds;
        phaseGlobalAdd(outcome.phaseSeconds);
        return outcome;
    }

    outcome = PointOutcome();
    outcome.id = point.id;
    outcome.wallSeconds = wall;
    outcome.debugTail = std::move(relayed_ring);
    outcome.phaseSeconds[static_cast<std::size_t>(SweepPhase::Ipc)] +=
        ipc_seconds;
    phaseGlobalAdd(outcome.phaseSeconds);
    if (hard_killed) {
        outcome.status = PointStatus::TimedOut;
        outcome.errorCategory = ErrorCategory::Timeout;
        outcome.error = formatErrorMessage(
            "point exceeded its %.3f s deadline without reaching the "
            "cancellation seam; killed after %.3f s",
            how.deadlineSeconds, kill_after);
    } else if (WIFSIGNALED(status)) {
        int sig = WTERMSIG(status);
        outcome.status = PointStatus::Crashed;
        outcome.errorCategory = ErrorCategory::Internal;
        outcome.signalNumber = sig;
        outcome.error = formatErrorMessage(
            "isolated point killed by signal %d (%s)", sig,
            ::strsignal(sig));
    } else {
        outcome.status = PointStatus::Failed;
        outcome.errorCategory = ErrorCategory::Internal;
        outcome.error = formatErrorMessage(
            "isolated point exited with status %d without reporting "
            "an outcome",
            WIFEXITED(status) ? WEXITSTATUS(status) : -1);
    }
    outcome.exception = rebuildPointException(outcome);
    return outcome;
}

PointOutcome
SweepRunner::executePoint(const Point &point, const Resolved &how) const
{
    PointOutcome outcome;
    for (unsigned attempt = 1;; ++attempt) {
        outcome = how.isolate ? runIsolatedAttempt(point, how)
                              : runLocalAttempt(point, how);
        outcome.attempts = attempt;
        // Only transient failures retry: a deterministic error fails
        // the same way every time, and a timeout already consumed its
        // full deadline once.
        if (outcome.status != PointStatus::Failed ||
            !isRetryableCategory(outcome.errorCategory) ||
            attempt > how.retries)
            break;
        double backoff =
            how.backoffSeconds * static_cast<double>(1u << (attempt - 1));
        backoff = std::min(backoff, 2.0);
        RAMPAGE_DPRINTF(Trace,
                        "sweep '%s': transient %s error, retry %u/%u "
                        "after %.3f s",
                        point.id.c_str(),
                        errorCategoryName(outcome.errorCategory),
                        attempt, how.retries, backoff);
        std::this_thread::sleep_for(
            std::chrono::duration<double>(backoff));
    }

    // Checkpoint as soon as the point finishes (not when it is
    // reported) so a crash costs at most the points still in flight.
    // An audit rejection is also checkpointed, as a non-completing
    // forensic line naming the invariant.
    if (outcome.status == PointStatus::Ok ||
        outcome.status == PointStatus::AuditFailed) {
        auto started = std::chrono::steady_clock::now();
        {
            std::lock_guard<std::mutex> lock(manifestMutex);
            appendManifest(outcome);
        }
        double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - started)
                             .count();
        phaseRecord(SweepPhase::Checkpoint, seconds);
        outcome.phaseSeconds[static_cast<std::size_t>(
            SweepPhase::Checkpoint)] += seconds;
    }
    return outcome;
}

void
SweepRunner::reportOutcome(const PointOutcome &outcome) const
{
    switch (outcome.status) {
      case PointStatus::Skipped:
        inform("sweep: '%s' already checkpointed, skipping",
               outcome.id.c_str());
        return;
      case PointStatus::Ok:
        if (outcome.attempts > 1)
            inform("sweep: '%s' ok (%.2f s, %.0f refs/s, "
                   "%u attempts)",
                   outcome.id.c_str(), outcome.wallSeconds,
                   outcome.refsPerSecond, outcome.attempts);
        else
            inform("sweep: '%s' ok (%.2f s, %.0f refs/s)",
                   outcome.id.c_str(), outcome.wallSeconds,
                   outcome.refsPerSecond);
        return;
      case PointStatus::TimedOut:
        warn("sweep: '%s' timed out after %.2f s (%llu refs "
             "executed): %s",
             outcome.id.c_str(), outcome.wallSeconds,
             static_cast<unsigned long long>(outcome.refsAtCancel),
             outcome.error.c_str());
        break;
      case PointStatus::Crashed:
        warn("sweep: '%s' crashed (signal %d): %s",
             outcome.id.c_str(), outcome.signalNumber,
             outcome.error.c_str());
        break;
      case PointStatus::Failed:
      case PointStatus::AuditFailed:
        if (outcome.attempts > 1)
            warn("sweep: '%s' failed (%s error, %u attempts): %s",
                 outcome.id.c_str(),
                 errorCategoryName(outcome.errorCategory),
                 outcome.attempts, outcome.error.c_str());
        else
            warn("sweep: '%s' failed (%s error): %s",
                 outcome.id.c_str(),
                 errorCategoryName(outcome.errorCategory),
                 outcome.error.c_str());
        break;
    }
    if (!outcome.debugTail.empty()) {
        std::fprintf(stderr, "---- debug ring tail for '%s' ----\n",
                     outcome.id.c_str());
        for (const std::string &event : outcome.debugTail)
            std::fprintf(stderr, "  %s\n", event.c_str());
        std::fprintf(stderr, "----\n");
    }
}

SweepReport
SweepRunner::run()
{
    SweepReport report;
    report.outcomes.resize(points.size());
    std::map<std::string, double> done;
    {
        ScopedPhaseTimer timer(SweepPhase::Checkpoint);
        done = loadManifest();
    }
    const Resolved how = resolveOptions();
    unsigned jobs = how.jobs;

    // Points the manifest marks complete are resolved up front; the
    // rest form the work queue the pool drains.
    std::vector<std::size_t> pending;
    std::vector<char> ready(points.size(), 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
        PointOutcome &outcome = report.outcomes[i];
        outcome.id = points[i].id;
        auto checkpointed = done.find(points[i].id);
        if (checkpointed != done.end()) {
            outcome.status = PointStatus::Skipped;
            outcome.wallSeconds = checkpointed->second;
            ready[i] = 1;
        } else {
            pending.push_back(i);
        }
    }

    std::mutex mtx; // guards report.outcomes, ready, simulated_done
    std::condition_variable point_done;
    std::atomic<std::size_t> next_work{0};
    std::size_t simulated_done = 0;

    auto worker = [&]() {
        for (;;) {
            std::size_t slot = next_work.fetch_add(1);
            if (slot >= pending.size())
                return;
            std::size_t index = pending[slot];
            PointOutcome outcome = executePoint(points[index], how);
            {
                std::lock_guard<std::mutex> lock(mtx);
                report.outcomes[index] = std::move(outcome);
                ready[index] = 1;
                ++simulated_done;
            }
            point_done.notify_all();
        }
    };

    std::size_t worker_count =
        std::min<std::size_t>(jobs, pending.size());
    std::vector<std::thread> pool;
    pool.reserve(worker_count);
    for (std::size_t i = 0; i < worker_count; ++i)
        pool.emplace_back(worker);

    // The main thread is the reporter: it emits every per-point
    // status line in add() order regardless of completion order, so
    // the campaign's output is identical for any jobs value.  It also
    // owns the heartbeat — a timed wait rather than a point-boundary
    // check, so a long-running first point still shows signs of life,
    // and checkpointed points are never counted as work done.
    auto campaign_started = std::chrono::steady_clock::now();
    auto last_heartbeat = campaign_started;
    std::size_t skipped = points.size() - pending.size();
    {
        std::unique_lock<std::mutex> lock(mtx);
        std::size_t next_report = 0;
        while (next_report < report.outcomes.size()) {
            if (ready[next_report]) {
                reportOutcome(report.outcomes[next_report]);
                ++next_report;
                continue;
            }
            if (opts.heartbeatSeconds <= 0) {
                point_done.wait(lock);
                continue;
            }
            auto now_tp = std::chrono::steady_clock::now();
            double since = std::chrono::duration<double>(
                               now_tp - last_heartbeat)
                               .count();
            if (since >= opts.heartbeatSeconds) {
                last_heartbeat = now_tp;
                inform("sweep: heartbeat %zu/%zu points simulated "
                       "this run (%zu skipped), %.1f s elapsed",
                       simulated_done, pending.size(), skipped,
                       std::chrono::duration<double>(
                           now_tp - campaign_started)
                           .count());
                std::string phases = phaseGlobalSummary();
                if (!phases.empty())
                    inform("sweep: host phases: %s", phases.c_str());
                continue;
            }
            point_done.wait_for(lock,
                                std::chrono::duration<double>(
                                    opts.heartbeatSeconds - since));
        }
    }
    for (std::thread &thread : pool)
        thread.join();
    return report;
}

} // namespace rampage
