#include "core/sweep.hh"

#include <cstdlib>
#include <string>

#include "core/conventional.hh"
#include "core/rampage.hh"
#include "trace/benchmarks.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace rampage
{

namespace
{

const char *
envOrNull(const char *name)
{
    const char *value = std::getenv(name);
    return (value && *value) ? value : nullptr;
}

} // namespace

ExperimentScale
experimentScale()
{
    ExperimentScale scale;
    if (envOrNull("RAMPAGE_FULL")) {
        // Paper scale (§4.2): 1.1 G references, 500 K-reference slices.
        scale.refs = 1'100'000'000;
        scale.quantumRefs = 500'000;
    }
    if (const char *refs = envOrNull("RAMPAGE_REFS"))
        scale.refs = std::strtoull(refs, nullptr, 10);
    if (const char *quantum = envOrNull("RAMPAGE_QUANTUM"))
        scale.quantumRefs = std::strtoull(quantum, nullptr, 10);
    if (scale.refs == 0 || scale.quantumRefs == 0)
        fatal("RAMPAGE_REFS / RAMPAGE_QUANTUM must be positive");
    return scale;
}

std::vector<std::uint64_t>
issueRates()
{
    if (const char *env = envOrNull("RAMPAGE_RATES")) {
        std::vector<std::uint64_t> rates;
        std::string text(env);
        std::size_t pos = 0;
        while (pos < text.size()) {
            std::size_t comma = text.find(',', pos);
            if (comma == std::string::npos)
                comma = text.size();
            rates.push_back(
                parseFrequency(text.substr(pos, comma - pos)));
            pos = comma + 1;
        }
        if (rates.empty())
            fatal("RAMPAGE_RATES is empty");
        return rates;
    }
    // The paper sweeps 200 MHz to 4 GHz (§4.3).
    return {200'000'000ull, 500'000'000ull, 1'000'000'000ull,
            2'000'000'000ull, 4'000'000'000ull};
}

std::vector<std::uint64_t>
blockSizeSweep()
{
    return {128, 256, 512, 1024, 2048, 4096};
}

CommonConfig
defaultCommon(std::uint64_t issue_hz)
{
    CommonConfig common;
    common.issueHz = issue_hz;
    return common;
}

ConventionalConfig
baselineConfig(std::uint64_t issue_hz, std::uint64_t l2_block_bytes)
{
    ConventionalConfig config;
    config.common = defaultCommon(issue_hz);
    config.l2BlockBytes = l2_block_bytes;
    config.l2Assoc = 1;
    return config;
}

ConventionalConfig
twoWayConfig(std::uint64_t issue_hz, std::uint64_t l2_block_bytes)
{
    ConventionalConfig config = baselineConfig(issue_hz, l2_block_bytes);
    config.l2Assoc = 2;
    config.l2Repl = ReplPolicy::Random;
    return config;
}

RampageConfig
rampageConfig(std::uint64_t issue_hz, std::uint64_t page_bytes,
              bool switch_on_miss)
{
    RampageConfig config;
    config.common = defaultCommon(issue_hz);
    config.pager.pageBytes = page_bytes;
    config.switchOnMiss = switch_on_miss;
    return config;
}

SimConfig
defaultSimConfig(bool switch_on_miss)
{
    ExperimentScale scale = experimentScale();
    SimConfig sim;
    sim.maxRefs = scale.refs;
    sim.quantumRefs = scale.quantumRefs;
    sim.switchOnMiss = switch_on_miss;
    return sim;
}

SimResult
simulateConventional(const ConventionalConfig &config, const SimConfig &sim)
{
    ConventionalHierarchy hierarchy(config);
    Simulator simulator(hierarchy, makeWorkload(), sim);
    return simulator.run();
}

SimResult
simulateRampage(const RampageConfig &config, const SimConfig &sim)
{
    RampageHierarchy hierarchy(config);
    SimConfig effective = sim;
    effective.switchOnMiss = config.switchOnMiss;
    Simulator simulator(hierarchy, makeWorkload(), effective);
    return simulator.run();
}

} // namespace rampage
