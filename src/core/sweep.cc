#include "core/sweep.hh"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>

#include "core/audit.hh"
#include "core/factory.hh"
#include "core/fault_injection.hh"
#include "core/hierarchy.hh"
#include "trace/benchmarks.hh"
#include "util/debug.hh"
#include "util/error.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace rampage
{

namespace
{

const char *
envOrNull(const char *name)
{
    const char *value = std::getenv(name);
    return (value && *value) ? value : nullptr;
}

/**
 * strtoull with the validation it does not do on its own: rejects
 * signs and leading whitespace ("-5" silently wraps, " 24" silently
 * skips), trailing junk ("24x" silently truncates to 24), text with
 * no digits at all ("abc" silently parses as 0) and out-of-range
 * values, naming `origin` (the environment variable or flag the text
 * came from) and the offending text in the ConfigError.
 */
std::uint64_t
parseCount(const char *origin, const char *text)
{
    if (!std::isdigit(static_cast<unsigned char>(text[0])))
        throw ConfigError("%s: expected an unsigned integer, got '%s'",
                          origin, text);
    errno = 0;
    char *end = nullptr;
    unsigned long long value = std::strtoull(text, &end, 10);
    if (errno == ERANGE)
        throw ConfigError("%s: value '%s' is out of range", origin,
                          text);
    if (end == text || *end != '\0')
        throw ConfigError(
            "%s: trailing junk after the number in '%s'", origin, text);
    return value;
}

unsigned jobsOverride = 0;

} // namespace

ExperimentScale
experimentScale()
{
    ExperimentScale scale;
    if (envOrNull("RAMPAGE_FULL")) {
        // Paper scale (§4.2): 1.1 G references, 500 K-reference slices.
        scale.refs = 1'100'000'000;
        scale.quantumRefs = 500'000;
    }
    if (const char *refs = envOrNull("RAMPAGE_REFS")) {
        scale.refs = parseCount("RAMPAGE_REFS", refs);
        if (scale.refs == 0)
            throw ConfigError("RAMPAGE_REFS must be positive");
    }
    if (const char *quantum = envOrNull("RAMPAGE_QUANTUM")) {
        scale.quantumRefs = parseCount("RAMPAGE_QUANTUM", quantum);
        if (scale.quantumRefs == 0)
            throw ConfigError("RAMPAGE_QUANTUM must be positive");
    }
    return scale;
}

unsigned
parseJobs(const std::string &text, const char *origin)
{
    std::uint64_t jobs = parseCount(origin, text.c_str());
    if (jobs == 0 || jobs > maxSweepJobs)
        throw ConfigError("%s: worker count must be in [1, %u], got '%s'",
                          origin, maxSweepJobs, text.c_str());
    return static_cast<unsigned>(jobs);
}

unsigned
resolveJobs()
{
    if (jobsOverride)
        return jobsOverride;
    if (const char *env = envOrNull("RAMPAGE_JOBS"))
        return parseJobs(env, "RAMPAGE_JOBS");
    return 1;
}

void
setJobsOverride(unsigned jobs)
{
    jobsOverride = jobs;
}

std::vector<std::uint64_t>
issueRates()
{
    if (const char *env = envOrNull("RAMPAGE_RATES")) {
        std::vector<std::uint64_t> rates;
        std::string text(env);
        std::size_t pos = 0;
        while (pos < text.size()) {
            std::size_t comma = text.find(',', pos);
            if (comma == std::string::npos)
                comma = text.size();
            try {
                rates.push_back(
                    parseFrequency(text.substr(pos, comma - pos)));
            } catch (const ConfigError &e) {
                throw ConfigError("RAMPAGE_RATES: %s", e.what());
            }
            pos = comma + 1;
        }
        if (rates.empty())
            throw ConfigError("RAMPAGE_RATES is empty");
        return rates;
    }
    // The paper sweeps 200 MHz to 4 GHz (§4.3).
    return {200'000'000ull, 500'000'000ull, 1'000'000'000ull,
            2'000'000'000ull, 4'000'000'000ull};
}

std::vector<std::uint64_t>
blockSizeSweep()
{
    return {128, 256, 512, 1024, 2048, 4096};
}

CommonConfig
defaultCommon(std::uint64_t issue_hz)
{
    CommonConfig common;
    common.issueHz = issue_hz;
    return common;
}

ConventionalConfig
baselineConfig(std::uint64_t issue_hz, std::uint64_t l2_block_bytes)
{
    ConventionalConfig config;
    config.common = defaultCommon(issue_hz);
    config.l2BlockBytes = l2_block_bytes;
    config.l2Assoc = 1;
    return config;
}

ConventionalConfig
twoWayConfig(std::uint64_t issue_hz, std::uint64_t l2_block_bytes)
{
    ConventionalConfig config = baselineConfig(issue_hz, l2_block_bytes);
    config.l2Assoc = 2;
    config.l2Repl = ReplPolicy::Random;
    return config;
}

RampageConfig
rampageConfig(std::uint64_t issue_hz, std::uint64_t page_bytes,
              bool switch_on_miss)
{
    RampageConfig config;
    config.common = defaultCommon(issue_hz);
    config.pager.pageBytes = page_bytes;
    config.switchOnMiss = switch_on_miss;
    return config;
}

SimConfig
defaultSimConfig(bool switch_on_miss)
{
    ExperimentScale scale = experimentScale();
    SimConfig sim;
    sim.maxRefs = scale.refs;
    sim.quantumRefs = scale.quantumRefs;
    sim.switchOnMiss = switch_on_miss;
    // Handler overhead is tens of percent at worst (Fig 4), so a
    // budget of 8x the benchmark references can only trip on a
    // genuine runaway point.
    sim.watchdogRefBudget = scale.refs * 8 + 1'000'000;
    sim.auditLevel = resolveAuditLevel();
    sim.faultPlan = resolveFaultPlanSpec();
    return sim;
}

SimConfig
armedSimConfig(std::uint64_t refs, std::uint64_t quantum_refs)
{
    SimConfig sim;
    sim.maxRefs = refs;
    sim.quantumRefs = quantum_refs;
    sim.watchdogRefBudget = refs * 8 + 1'000'000;
    sim.auditLevel = resolveAuditLevel();
    sim.faultPlan = resolveFaultPlanSpec();
    return sim;
}

SimResult
simulateSystem(const HierarchyConfig &config, const SimConfig &sim)
{
    std::unique_ptr<Hierarchy> hierarchy = makeHierarchy(config);
    SimConfig effective = sim;
    if (config.family == HierarchyConfig::Family::Paged)
        effective.switchOnMiss = config.paged.switchOnMiss;
    Simulator simulator(*hierarchy, makeWorkload(), effective);
    return simulator.run();
}

// ------------------------------------------------------------ SweepRunner

const char *
pointStatusName(PointStatus status)
{
    switch (status) {
      case PointStatus::Ok:
        return "ok";
      case PointStatus::Failed:
        return "failed";
      case PointStatus::AuditFailed:
        return "audit-failed";
      case PointStatus::Skipped:
        return "skipped";
    }
    return "unknown";
}

std::size_t
SweepReport::count(PointStatus status) const
{
    std::size_t n = 0;
    for (const PointOutcome &outcome : outcomes)
        if (outcome.status == status)
            ++n;
    return n;
}

void
SweepRunner::add(const std::string &id, std::function<SimResult()> body)
{
    for (const Point &point : points)
        if (point.id == id)
            throw ConfigError("duplicate sweep point id '%s'",
                              id.c_str());
    points.push_back(Point{id, std::move(body)});
}

/*
 * Checkpoint manifest format (one line per finished point, appended
 * and flushed as each point finishes):
 *
 *   # rampage-sweep-checkpoint v1
 *   ok wall=<seconds> elapsed_ps=<ticks> id=<point id to end of line>
 *   audit wall=<seconds> invariant=<name> id=<point id to end of line>
 *
 * Only "ok" lines mark a point done; "audit" lines are informational —
 * they record *which* model invariant an audit found violated, so a
 * resumed campaign (which will re-run the point) carries the forensic
 * trail of why the previous attempt was rejected.
 *
 * Parsing is deliberately lenient: unrecognized or damaged lines are
 * warned about and skipped, so a torn final line (the crash case the
 * manifest exists for) costs at most one re-simulated point.
 */
std::map<std::string, double>
SweepRunner::loadManifest() const
{
    std::map<std::string, double> done;
    if (opts.checkpointPath.empty())
        return done;
    std::ifstream in(opts.checkpointPath);
    if (!in.is_open())
        return done; // first run: nothing checkpointed yet

    std::string line;
    std::uint64_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#')
            continue;
        if (line.rfind("audit ", 0) == 0)
            continue; // forensic record only; the point is not done
        double wall = 0;
        std::string id;
        std::size_t id_at = line.find(" id=");
        if (line.rfind("ok ", 0) == 0 && id_at != std::string::npos)
            id = line.substr(id_at + 4);
        std::size_t wall_at = line.find("wall=");
        if (wall_at != std::string::npos)
            wall = std::strtod(line.c_str() + wall_at + 5, nullptr);
        if (id.empty()) {
            // A torn manifest can damage many lines at once; cap the
            // noise and keep only the count.
            warnRateLimited(
                "checkpoint: ignoring unparseable manifest line");
            RAMPAGE_DPRINTF(Trace,
                            "checkpoint '%s': unparseable line %llu",
                            opts.checkpointPath.c_str(),
                            static_cast<unsigned long long>(line_no));
            continue;
        }
        done[id] = wall;
    }
    return done;
}

void
SweepRunner::appendManifest(const PointOutcome &outcome) const
{
    if (opts.checkpointPath.empty())
        return;
    std::FILE *file = std::fopen(opts.checkpointPath.c_str(), "a");
    if (!file) {
        warn("cannot append to checkpoint '%s'; point '%s' will be "
             "re-simulated on resume",
             opts.checkpointPath.c_str(), outcome.id.c_str());
        return;
    }
    // The initial position of an append-mode stream is
    // implementation-defined (C11 7.21.5.3): some libcs report 0 until
    // the first write even on a non-empty file.  Seek to the real end
    // before deciding whether this is a fresh manifest needing the
    // header, or a resume that already has one.
    std::fseek(file, 0, SEEK_END);
    if (std::ftell(file) == 0)
        std::fprintf(file, "# rampage-sweep-checkpoint v1\n");
    if (outcome.status == PointStatus::AuditFailed)
        std::fprintf(file, "audit wall=%.6f invariant=%s id=%s\n",
                     outcome.wallSeconds,
                     outcome.auditInvariant.empty()
                         ? "unknown"
                         : outcome.auditInvariant.c_str(),
                     outcome.id.c_str());
    else
        std::fprintf(file, "ok wall=%.6f elapsed_ps=%llu id=%s\n",
                     outcome.wallSeconds,
                     static_cast<unsigned long long>(
                         outcome.result.elapsedPs),
                     outcome.id.c_str());
    std::fflush(file);
    std::fclose(file);
}

PointOutcome
SweepRunner::executePoint(const Point &point) const
{
    PointOutcome outcome;
    outcome.id = point.id;

    // Each point starts with a clean ring so a failure's tail holds
    // only its own events.  The ring is thread-local, so concurrent
    // points cannot pollute each other's post-mortems.
    clearDebugRing();
    auto started = std::chrono::steady_clock::now();
    try {
        outcome.result = point.body();
        outcome.haveResult = true;
        outcome.status = PointStatus::Ok;
    } catch (const AuditError &e) {
        outcome.status = PointStatus::AuditFailed;
        outcome.errorCategory = e.category();
        outcome.error = e.what();
        outcome.auditInvariant = e.firstInvariant();
        outcome.exception = std::current_exception();
    } catch (const SimError &e) {
        outcome.status = PointStatus::Failed;
        outcome.errorCategory = e.category();
        outcome.error = e.what();
        outcome.exception = std::current_exception();
    } catch (const std::exception &e) {
        outcome.status = PointStatus::Failed;
        outcome.errorCategory = ErrorCategory::Internal;
        outcome.error = e.what();
        outcome.exception = std::current_exception();
    }
    outcome.wallSeconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - started)
                              .count();

    if (outcome.status == PointStatus::Ok) {
        if (outcome.wallSeconds > 0)
            outcome.refsPerSecond =
                static_cast<double>(outcome.result.counts.refs) /
                outcome.wallSeconds;
    } else {
        outcome.debugTail = debugRingTail(16);
    }

    // Checkpoint as soon as the point finishes (not when it is
    // reported) so a crash costs at most the points still in flight.
    // An audit rejection is also checkpointed, as a non-completing
    // forensic line naming the invariant.
    if (outcome.status == PointStatus::Ok ||
        outcome.status == PointStatus::AuditFailed) {
        std::lock_guard<std::mutex> lock(manifestMutex);
        appendManifest(outcome);
    }
    return outcome;
}

void
SweepRunner::reportOutcome(const PointOutcome &outcome) const
{
    switch (outcome.status) {
      case PointStatus::Skipped:
        inform("sweep: '%s' already checkpointed, skipping",
               outcome.id.c_str());
        return;
      case PointStatus::Ok:
        inform("sweep: '%s' ok (%.2f s, %.0f refs/s)",
               outcome.id.c_str(), outcome.wallSeconds,
               outcome.refsPerSecond);
        return;
      case PointStatus::Failed:
      case PointStatus::AuditFailed:
        break;
    }
    warn("sweep: '%s' failed (%s error): %s", outcome.id.c_str(),
         errorCategoryName(outcome.errorCategory),
         outcome.error.c_str());
    if (!outcome.debugTail.empty()) {
        std::fprintf(stderr, "---- debug ring tail for '%s' ----\n",
                     outcome.id.c_str());
        for (const std::string &event : outcome.debugTail)
            std::fprintf(stderr, "  %s\n", event.c_str());
        std::fprintf(stderr, "----\n");
    }
}

SweepReport
SweepRunner::run()
{
    SweepReport report;
    report.outcomes.resize(points.size());
    std::map<std::string, double> done = loadManifest();
    unsigned jobs = opts.jobs ? opts.jobs : resolveJobs();

    // Points the manifest marks complete are resolved up front; the
    // rest form the work queue the pool drains.
    std::vector<std::size_t> pending;
    std::vector<char> ready(points.size(), 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
        PointOutcome &outcome = report.outcomes[i];
        outcome.id = points[i].id;
        auto checkpointed = done.find(points[i].id);
        if (checkpointed != done.end()) {
            outcome.status = PointStatus::Skipped;
            outcome.wallSeconds = checkpointed->second;
            ready[i] = 1;
        } else {
            pending.push_back(i);
        }
    }

    std::mutex mtx; // guards report.outcomes, ready, simulated_done
    std::condition_variable point_done;
    std::atomic<std::size_t> next_work{0};
    std::size_t simulated_done = 0;

    auto worker = [&]() {
        for (;;) {
            std::size_t slot = next_work.fetch_add(1);
            if (slot >= pending.size())
                return;
            std::size_t index = pending[slot];
            PointOutcome outcome = executePoint(points[index]);
            {
                std::lock_guard<std::mutex> lock(mtx);
                report.outcomes[index] = std::move(outcome);
                ready[index] = 1;
                ++simulated_done;
            }
            point_done.notify_all();
        }
    };

    std::size_t worker_count =
        std::min<std::size_t>(jobs, pending.size());
    std::vector<std::thread> pool;
    pool.reserve(worker_count);
    for (std::size_t i = 0; i < worker_count; ++i)
        pool.emplace_back(worker);

    // The main thread is the reporter: it emits every per-point
    // status line in add() order regardless of completion order, so
    // the campaign's output is identical for any jobs value.  It also
    // owns the heartbeat — a timed wait rather than a point-boundary
    // check, so a long-running first point still shows signs of life,
    // and checkpointed points are never counted as work done.
    auto campaign_started = std::chrono::steady_clock::now();
    auto last_heartbeat = campaign_started;
    std::size_t skipped = points.size() - pending.size();
    {
        std::unique_lock<std::mutex> lock(mtx);
        std::size_t next_report = 0;
        while (next_report < report.outcomes.size()) {
            if (ready[next_report]) {
                reportOutcome(report.outcomes[next_report]);
                ++next_report;
                continue;
            }
            if (opts.heartbeatSeconds <= 0) {
                point_done.wait(lock);
                continue;
            }
            auto now_tp = std::chrono::steady_clock::now();
            double since = std::chrono::duration<double>(
                               now_tp - last_heartbeat)
                               .count();
            if (since >= opts.heartbeatSeconds) {
                last_heartbeat = now_tp;
                inform("sweep: heartbeat %zu/%zu points simulated "
                       "this run (%zu skipped), %.1f s elapsed",
                       simulated_done, pending.size(), skipped,
                       std::chrono::duration<double>(
                           now_tp - campaign_started)
                           .count());
                continue;
            }
            point_done.wait_for(lock,
                                std::chrono::duration<double>(
                                    opts.heartbeatSeconds - since));
        }
    }
    for (std::thread &thread : pool)
        thread.join();
    return report;
}

} // namespace rampage
