/**
 * @file
 * Experiment scaffolding shared by the benches, examples and
 * integration tests: canonical system configurations (paper §4),
 * environment-controlled run scale, one-call runners that build a
 * hierarchy plus the Table 2 workload and simulate it, and the
 * fault-tolerant SweepRunner that executes whole campaigns point by
 * point with per-point outcomes and checkpoint/resume.
 *
 * Scale knobs (environment variables):
 *  - RAMPAGE_REFS=<n>     benchmark references per run (default 24 M)
 *  - RAMPAGE_QUANTUM=<n>  references per time slice (default 120 K)
 *  - RAMPAGE_FULL=1       paper scale: 1.1 G references, 500 K quantum
 *  - RAMPAGE_RATES=a,b,c  issue rates (default 200MHz,500MHz,1GHz,
 *                         2GHz,4GHz)
 *  - RAMPAGE_JOBS=<n>     SweepRunner worker threads (default 1)
 */

#ifndef RAMPAGE_CORE_SWEEP_HH
#define RAMPAGE_CORE_SWEEP_HH

#include <cstdint>
#include <exception>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/factory.hh"
#include "core/simulator.hh"
#include "util/error.hh"

namespace rampage
{

/** Run-scale parameters resolved from the environment. */
struct ExperimentScale
{
    std::uint64_t refs = 24'000'000;
    std::uint64_t quantumRefs = 120'000;
};

/** Resolve the run scale from the environment (see file comment). */
ExperimentScale experimentScale();

/** Issue rates to sweep (RAMPAGE_RATES or the paper-like default). */
std::vector<std::uint64_t> issueRates();

/** Largest worker-pool size resolveJobs()/parseJobs() accept. */
constexpr unsigned maxSweepJobs = 256;

/**
 * Parse a worker count ("4") with full validation: rejects empty or
 * non-numeric text, signs, trailing junk ("4x"), zero and anything
 * above maxSweepJobs, naming `origin` (the flag or environment
 * variable the text came from) in the ConfigError.
 */
unsigned parseJobs(const std::string &text, const char *origin = "--jobs");

/**
 * SweepRunner worker threads to use when Options::jobs is 0: the
 * setJobsOverride() value if one was set (the benches' --jobs flag),
 * else RAMPAGE_JOBS, else 1.
 */
unsigned resolveJobs();

/** CLI override for resolveJobs(); 0 clears the override (tests). */
void setJobsOverride(unsigned jobs);

/** The paper's block/page size sweep: 128 B ... 4 KB. */
std::vector<std::uint64_t> blockSizeSweep();

/** Common parameters at an issue rate (§4.3). */
CommonConfig defaultCommon(std::uint64_t issue_hz);

/** The §4.4 baseline: direct-mapped 4 MB L2. */
ConventionalConfig baselineConfig(std::uint64_t issue_hz,
                                  std::uint64_t l2_block_bytes);

/** The §4.7 system: 2-way random-replacement 4 MB L2. */
ConventionalConfig twoWayConfig(std::uint64_t issue_hz,
                                std::uint64_t l2_block_bytes);

/** The §4.5 RAMpage system at an SRAM page size. */
RampageConfig rampageConfig(std::uint64_t issue_hz,
                            std::uint64_t page_bytes,
                            bool switch_on_miss = false);

/**
 * SimConfig at the environment scale, with the runaway watchdog armed
 * and the audit level / fault plan resolved from their overrides and
 * environment variables (RAMPAGE_AUDIT, RAMPAGE_INJECT_FAULT).
 */
SimConfig defaultSimConfig(bool switch_on_miss = false);

/**
 * SimConfig for an explicit (refs, quantum) pair with the same
 * hardening as defaultSimConfig(): armed watchdog, resolved audit
 * level and fault plan.  Use this instead of building a raw SimConfig
 * whenever a bench or example picks its own scale.
 */
SimConfig armedSimConfig(std::uint64_t refs, std::uint64_t quantum_refs);

/**
 * Build (via makeHierarchy()), run and report any system on the §4.2
 * workload.  A paged config's switchOnMiss policy overrides the
 * SimConfig's, exactly as a hand-built RAMpage run would set it.
 */
SimResult simulateSystem(const HierarchyConfig &config,
                         const SimConfig &sim);

// ------------------------------------------------------------ SweepRunner

/** How one sweep point ended. */
enum class PointStatus {
    Ok,          ///< simulated to completion this run
    Failed,      ///< raised an error; the campaign continued
    AuditFailed, ///< a model-integrity audit rejected live state
    Skipped,     ///< already completed per the checkpoint manifest
};

/** Stable lower-case name ("ok", "failed", "audit-failed", ...). */
const char *pointStatusName(PointStatus status);

/** Outcome record for one sweep point. */
struct PointOutcome
{
    std::string id;
    PointStatus status = PointStatus::Failed;
    /** Failure classification; meaningful unless Ok/Skipped. */
    ErrorCategory errorCategory = ErrorCategory::Internal;
    /** Diagnostic message; empty when Ok/Skipped. */
    std::string error;
    /**
     * First violated invariant's stable name ("inclusion.l1",
     * "time.conservation"); empty unless AuditFailed.
     */
    std::string auditInvariant;
    /** Wall time of this execution (or the checkpointed value). */
    double wallSeconds = 0;
    /** Hierarchy references per wall-clock second; 0 unless Ok. */
    double refsPerSecond = 0;
    /**
     * Post-mortem: the debug ring buffer's tail at the moment of
     * failure (most recent RAMPAGE_DPRINTF events).  Empty unless
     * Failed and tracing was active.
     */
    std::vector<std::string> debugTail;
    /**
     * The exception the point raised, for embedders that want to
     * rethrow a failure with full fidelity (runBlockingSweep turns a
     * failed bench point back into the error a serial run would have
     * surfaced).  Null unless Failed/AuditFailed.
     */
    std::exception_ptr exception;
    /** True when `result` holds a simulation run from this campaign. */
    bool haveResult = false;
    SimResult result;
};

/** Everything a campaign produced, in add() order. */
struct SweepReport
{
    std::vector<PointOutcome> outcomes;

    std::size_t count(PointStatus status) const;
    std::size_t okCount() const { return count(PointStatus::Ok); }
    std::size_t failedCount() const { return count(PointStatus::Failed); }
    std::size_t auditFailedCount() const
    {
        return count(PointStatus::AuditFailed);
    }
    std::size_t skippedCount() const
    {
        return count(PointStatus::Skipped);
    }
    bool
    allOk() const
    {
        return failedCount() == 0 && auditFailedCount() == 0;
    }
};

/**
 * Fault-tolerant sweep engine.  Each queued point runs under
 * try/catch: a point that throws (bad trace, invalid configuration,
 * internal bug, watchdog trip) is recorded as Failed with its error
 * category and the campaign continues, so one poisoned point costs
 * one point — never the whole parameter sweep.
 *
 * With a checkpoint path configured, an "ok" manifest line is
 * appended and flushed after every completed point; re-running the
 * same campaign against the same manifest skips completed points
 * (reported as Skipped) and re-executes only failed or new ones.
 * Manifest lines that do not parse are warned about and ignored, so a
 * damaged checkpoint degrades to re-simulation rather than an error.
 *
 * With jobs > 1 (Options::jobs, --jobs, RAMPAGE_JOBS) independent
 * points execute concurrently on a worker pool while every observable
 * stays equivalent to a serial run:
 *  - outcomes land in add() order, and the per-point status lines are
 *    emitted by the main thread in that order, so stdout/stderr do
 *    not depend on completion order;
 *  - manifest appends are serialized behind a mutex (one fopen/write
 *    critical section per point); line *order* may differ from a
 *    serial run but the line *set* is the same;
 *  - the post-mortem debug ring is thread-local, so a failing point's
 *    tail holds only its own events;
 *  - each point builds its own hierarchy (with its own seeded Rngs)
 *    inside its body and retires it when the body returns, so results
 *    never depend on scheduling and memory stays bounded by the
 *    worker count, not the campaign size.
 * Point bodies must therefore not share mutable state with each
 * other; everything under src/ already satisfies this (points only
 * share the read-only trace roster).
 */
class SweepRunner
{
  public:
    struct Options
    {
        /** Checkpoint manifest path; empty disables checkpointing. */
        std::string checkpointPath;
        /**
         * Emit a progress heartbeat (points simulated this run /
         * points to simulate, skipped count, campaign wall time) when
         * this many seconds have passed since the last one.  The
         * heartbeat is driven by the reporting thread's timed wait,
         * so it fires even while one long point is still running.
         * 0 disables.
         */
        double heartbeatSeconds = 0;
        /**
         * Worker threads executing points concurrently; 1 runs the
         * campaign serially, 0 (the default) resolves the count via
         * resolveJobs() (--jobs override, then RAMPAGE_JOBS, then 1).
         */
        unsigned jobs = 0;
    };

    SweepRunner() = default;
    explicit SweepRunner(const Options &options) : opts(options) {}

    /**
     * Queue one point.  `id` names it in outcomes and the manifest
     * and must be unique within the campaign (ConfigError otherwise).
     */
    void add(const std::string &id, std::function<SimResult()> body);

    std::size_t pointCount() const { return points.size(); }

    /** Execute every queued point, continuing past failures. */
    SweepReport run();

  private:
    struct Point
    {
        std::string id;
        std::function<SimResult()> body;
    };

    /** id -> checkpointed wall seconds from a previous campaign. */
    std::map<std::string, double> loadManifest() const;
    /** Caller must hold manifestMutex when workers are live. */
    void appendManifest(const PointOutcome &outcome) const;

    /** Run one point (worker context): body, timing, checkpointing. */
    PointOutcome executePoint(const Point &point) const;
    /** Emit the point's status lines (reporter context, in order). */
    void reportOutcome(const PointOutcome &outcome) const;

    Options opts;
    std::vector<Point> points;
    /** Serializes checkpoint-manifest appends across workers. */
    mutable std::mutex manifestMutex;
};

} // namespace rampage

#endif // RAMPAGE_CORE_SWEEP_HH
