/**
 * @file
 * Experiment scaffolding shared by the benches, examples and
 * integration tests: canonical system configurations (paper §4),
 * environment-controlled run scale, one-call runners that build a
 * hierarchy plus the Table 2 workload and simulate it, and the
 * fault-tolerant SweepRunner that executes whole campaigns point by
 * point with per-point outcomes and checkpoint/resume.
 *
 * Scale knobs (environment variables):
 *  - RAMPAGE_REFS=<n>     benchmark references per run (default 24 M)
 *  - RAMPAGE_QUANTUM=<n>  references per time slice (default 120 K)
 *  - RAMPAGE_FULL=1       paper scale: 1.1 G references, 500 K quantum
 *  - RAMPAGE_RATES=a,b,c  issue rates (default 200MHz,500MHz,1GHz,
 *                         2GHz,4GHz)
 */

#ifndef RAMPAGE_CORE_SWEEP_HH
#define RAMPAGE_CORE_SWEEP_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/simulator.hh"
#include "util/error.hh"

namespace rampage
{

/** Run-scale parameters resolved from the environment. */
struct ExperimentScale
{
    std::uint64_t refs = 24'000'000;
    std::uint64_t quantumRefs = 120'000;
};

/** Resolve the run scale from the environment (see file comment). */
ExperimentScale experimentScale();

/** Issue rates to sweep (RAMPAGE_RATES or the paper-like default). */
std::vector<std::uint64_t> issueRates();

/** The paper's block/page size sweep: 128 B ... 4 KB. */
std::vector<std::uint64_t> blockSizeSweep();

/** Common parameters at an issue rate (§4.3). */
CommonConfig defaultCommon(std::uint64_t issue_hz);

/** The §4.4 baseline: direct-mapped 4 MB L2. */
ConventionalConfig baselineConfig(std::uint64_t issue_hz,
                                  std::uint64_t l2_block_bytes);

/** The §4.7 system: 2-way random-replacement 4 MB L2. */
ConventionalConfig twoWayConfig(std::uint64_t issue_hz,
                                std::uint64_t l2_block_bytes);

/** The §4.5 RAMpage system at an SRAM page size. */
RampageConfig rampageConfig(std::uint64_t issue_hz,
                            std::uint64_t page_bytes,
                            bool switch_on_miss = false);

/**
 * SimConfig at the environment scale, with the runaway watchdog armed
 * and the audit level / fault plan resolved from their overrides and
 * environment variables (RAMPAGE_AUDIT, RAMPAGE_INJECT_FAULT).
 */
SimConfig defaultSimConfig(bool switch_on_miss = false);

/**
 * SimConfig for an explicit (refs, quantum) pair with the same
 * hardening as defaultSimConfig(): armed watchdog, resolved audit
 * level and fault plan.  Use this instead of building a raw SimConfig
 * whenever a bench or example picks its own scale.
 */
SimConfig armedSimConfig(std::uint64_t refs, std::uint64_t quantum_refs);

/** Build, run and report a conventional system on the §4.2 workload. */
SimResult simulateConventional(const ConventionalConfig &config,
                               const SimConfig &sim);

/** Build, run and report a RAMpage system on the §4.2 workload. */
SimResult simulateRampage(const RampageConfig &config,
                          const SimConfig &sim);

// ------------------------------------------------------------ SweepRunner

/** How one sweep point ended. */
enum class PointStatus {
    Ok,          ///< simulated to completion this run
    Failed,      ///< raised an error; the campaign continued
    AuditFailed, ///< a model-integrity audit rejected live state
    Skipped,     ///< already completed per the checkpoint manifest
};

/** Stable lower-case name ("ok", "failed", "audit-failed", ...). */
const char *pointStatusName(PointStatus status);

/** Outcome record for one sweep point. */
struct PointOutcome
{
    std::string id;
    PointStatus status = PointStatus::Failed;
    /** Failure classification; meaningful unless Ok/Skipped. */
    ErrorCategory errorCategory = ErrorCategory::Internal;
    /** Diagnostic message; empty when Ok/Skipped. */
    std::string error;
    /**
     * First violated invariant's stable name ("inclusion.l1",
     * "time.conservation"); empty unless AuditFailed.
     */
    std::string auditInvariant;
    /** Wall time of this execution (or the checkpointed value). */
    double wallSeconds = 0;
    /** Hierarchy references per wall-clock second; 0 unless Ok. */
    double refsPerSecond = 0;
    /**
     * Post-mortem: the debug ring buffer's tail at the moment of
     * failure (most recent RAMPAGE_DPRINTF events).  Empty unless
     * Failed and tracing was active.
     */
    std::vector<std::string> debugTail;
    /** True when `result` holds a simulation run from this campaign. */
    bool haveResult = false;
    SimResult result;
};

/** Everything a campaign produced, in add() order. */
struct SweepReport
{
    std::vector<PointOutcome> outcomes;

    std::size_t count(PointStatus status) const;
    std::size_t okCount() const { return count(PointStatus::Ok); }
    std::size_t failedCount() const { return count(PointStatus::Failed); }
    std::size_t auditFailedCount() const
    {
        return count(PointStatus::AuditFailed);
    }
    std::size_t skippedCount() const
    {
        return count(PointStatus::Skipped);
    }
    bool
    allOk() const
    {
        return failedCount() == 0 && auditFailedCount() == 0;
    }
};

/**
 * Fault-tolerant sweep engine.  Each queued point runs under
 * try/catch: a point that throws (bad trace, invalid configuration,
 * internal bug, watchdog trip) is recorded as Failed with its error
 * category and the campaign continues, so one poisoned point costs
 * one point — never the whole parameter sweep.
 *
 * With a checkpoint path configured, an "ok" manifest line is
 * appended and flushed after every completed point; re-running the
 * same campaign against the same manifest skips completed points
 * (reported as Skipped) and re-executes only failed or new ones.
 * Manifest lines that do not parse are warned about and ignored, so a
 * damaged checkpoint degrades to re-simulation rather than an error.
 */
class SweepRunner
{
  public:
    struct Options
    {
        /** Checkpoint manifest path; empty disables checkpointing. */
        std::string checkpointPath;
        /**
         * Emit a progress heartbeat (points done / total, campaign
         * wall time) when this many seconds have passed since the
         * last one, checked at point boundaries.  0 disables.
         */
        double heartbeatSeconds = 0;
    };

    SweepRunner() = default;
    explicit SweepRunner(const Options &options) : opts(options) {}

    /**
     * Queue one point.  `id` names it in outcomes and the manifest
     * and must be unique within the campaign (ConfigError otherwise).
     */
    void add(const std::string &id, std::function<SimResult()> body);

    std::size_t pointCount() const { return points.size(); }

    /** Execute every queued point, continuing past failures. */
    SweepReport run();

  private:
    struct Point
    {
        std::string id;
        std::function<SimResult()> body;
    };

    /** id -> checkpointed wall seconds from a previous campaign. */
    std::map<std::string, double> loadManifest() const;
    void appendManifest(const PointOutcome &outcome) const;

    Options opts;
    std::vector<Point> points;
};

} // namespace rampage

#endif // RAMPAGE_CORE_SWEEP_HH
