/**
 * @file
 * Experiment scaffolding shared by the benches, examples and
 * integration tests: canonical system configurations (paper §4),
 * environment-controlled run scale, one-call runners that build a
 * hierarchy plus the Table 2 workload and simulate it, and the
 * fault-tolerant SweepRunner that executes whole campaigns point by
 * point with per-point outcomes and checkpoint/resume.
 *
 * Scale knobs (environment variables):
 *  - RAMPAGE_REFS=<n>     benchmark references per run (default 24 M)
 *  - RAMPAGE_QUANTUM=<n>  references per time slice (default 120 K)
 *  - RAMPAGE_FULL=1       paper scale: 1.1 G references, 500 K quantum
 *  - RAMPAGE_RATES=a,b,c  issue rates (default 200MHz,500MHz,1GHz,
 *                         2GHz,4GHz)
 *  - RAMPAGE_JOBS=<n>     SweepRunner worker threads (default 1)
 *  - RAMPAGE_CORES=<n>    CPU cores per simulated system (default:
 *                         the hierarchy config's own setting, i.e. 1)
 *  - RAMPAGE_DEADLINE=<s> per-point wall-clock deadline in seconds
 *                         (default: none)
 *  - RAMPAGE_RETRIES=<n>  retries for transiently-failed points
 *                         (default 0)
 *  - RAMPAGE_ISOLATE=1    fork each sweep point into a child process
 *                         (default 0)
 */

#ifndef RAMPAGE_CORE_SWEEP_HH
#define RAMPAGE_CORE_SWEEP_HH

#include <cstdint>
#include <exception>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/factory.hh"
#include "core/simulator.hh"
#include "obs/phase_profiler.hh"
#include "util/error.hh"

namespace rampage
{

/** Run-scale parameters resolved from the environment. */
struct ExperimentScale
{
    std::uint64_t refs = 24'000'000;
    std::uint64_t quantumRefs = 120'000;
};

/** Resolve the run scale from the environment (see file comment). */
ExperimentScale experimentScale();

/** Issue rates to sweep (RAMPAGE_RATES or the paper-like default). */
std::vector<std::uint64_t> issueRates();

/** Largest worker-pool size resolveJobs()/parseJobs() accept. */
constexpr unsigned maxSweepJobs = 256;

/**
 * Parse a worker count ("4") with full validation: rejects empty or
 * non-numeric text, signs, trailing junk ("4x"), zero and anything
 * above maxSweepJobs, naming `origin` (the flag or environment
 * variable the text came from) in the ConfigError.
 */
unsigned parseJobs(const std::string &text, const char *origin = "--jobs");

/**
 * SweepRunner worker threads to use when Options::jobs is 0: the
 * setJobsOverride() value if one was set (the benches' --jobs flag),
 * else RAMPAGE_JOBS, else 1.
 */
unsigned resolveJobs();

/** CLI override for resolveJobs(); 0 clears the override (tests). */
void setJobsOverride(unsigned jobs);

/**
 * Parse a simulated-core count ("4") with the same strict validation
 * as parseJobs(), capped at maxCores (core/core_frontend.hh), naming
 * `origin` in the ConfigError.
 */
unsigned parseCores(const std::string &text,
                    const char *origin = "--cores");

/**
 * Simulated CPU cores to build hierarchies with when SimConfig::cores
 * is 0: the setCoresOverride() value (the benches' --cores flag), else
 * RAMPAGE_CORES, else 0 — meaning "leave the hierarchy config's own
 * CommonConfig::cores untouched".
 */
unsigned resolveCores();

/** CLI override for resolveCores(); 0 clears the override (tests). */
void setCoresOverride(unsigned cores);

/** Largest retry count resolveRetries()/parseRetries() accept. */
constexpr unsigned maxSweepRetries = 16;

/**
 * Parse a per-point wall-clock deadline ("2.5") with the same strict
 * validation as parseJobs(): rejects non-numeric text, signs,
 * trailing junk, zero and non-finite values, naming `origin` in the
 * ConfigError.
 */
double parsePointDeadline(const std::string &text,
                          const char *origin = "--point-deadline");

/**
 * Per-point deadline seconds when Options::pointDeadlineSeconds is 0:
 * the setPointDeadlineOverride() value (the benches'
 * --point-deadline flag), else RAMPAGE_DEADLINE, else 0 (disabled).
 */
double resolvePointDeadline();

/** CLI override for resolvePointDeadline(); 0 clears it (tests). */
void setPointDeadlineOverride(double seconds);

/**
 * Parse a retry count ("3"; 0 allowed) with strict validation,
 * capped at maxSweepRetries, naming `origin` in the ConfigError.
 */
unsigned parseRetries(const std::string &text,
                      const char *origin = "--retries");

/**
 * Retries for transiently-failed points when Options::maxRetries is
 * negative: the setRetriesOverride() value, else RAMPAGE_RETRIES,
 * else 0.
 */
unsigned resolveRetries();

/** CLI override for resolveRetries(); negative clears it (tests). */
void setRetriesOverride(int retries);

/**
 * Whether points run in forked child processes when Options::isolate
 * is negative: the setIsolateOverride() value (the benches'
 * --isolate flag), else RAMPAGE_ISOLATE ("0"/"1", strictly parsed),
 * else false.
 */
bool resolveIsolate();

/** CLI override for resolveIsolate(); negative clears it (tests). */
void setIsolateOverride(int isolate);

/** The paper's block/page size sweep: 128 B ... 4 KB. */
std::vector<std::uint64_t> blockSizeSweep();

/** Common parameters at an issue rate (§4.3). */
CommonConfig defaultCommon(std::uint64_t issue_hz);

/** The §4.4 baseline: direct-mapped 4 MB L2. */
ConventionalConfig baselineConfig(std::uint64_t issue_hz,
                                  std::uint64_t l2_block_bytes);

/** The §4.7 system: 2-way random-replacement 4 MB L2. */
ConventionalConfig twoWayConfig(std::uint64_t issue_hz,
                                std::uint64_t l2_block_bytes);

/** The §4.5 RAMpage system at an SRAM page size. */
RampageConfig rampageConfig(std::uint64_t issue_hz,
                            std::uint64_t page_bytes,
                            bool switch_on_miss = false);

/**
 * SimConfig at the environment scale, with the runaway watchdog armed
 * and the audit level / fault plan resolved from their overrides and
 * environment variables (RAMPAGE_AUDIT, RAMPAGE_INJECT_FAULT).
 */
SimConfig defaultSimConfig(bool switch_on_miss = false);

/**
 * SimConfig for an explicit (refs, quantum) pair with the same
 * hardening as defaultSimConfig(): armed watchdog, resolved audit
 * level and fault plan.  Use this instead of building a raw SimConfig
 * whenever a bench or example picks its own scale.
 */
SimConfig armedSimConfig(std::uint64_t refs, std::uint64_t quantum_refs);

/**
 * Build (via makeHierarchy()), run and report any system on the §4.2
 * workload.  A paged config's switchOnMiss policy overrides the
 * SimConfig's, exactly as a hand-built RAMpage run would set it.
 */
SimResult simulateSystem(const HierarchyConfig &config,
                         const SimConfig &sim);

// ------------------------------------------------------------ SweepRunner

/** How one sweep point ended. */
enum class PointStatus {
    Ok,          ///< simulated to completion this run
    Failed,      ///< raised an error; the campaign continued
    AuditFailed, ///< a model-integrity audit rejected live state
    Skipped,     ///< already completed per the checkpoint manifest
    TimedOut,    ///< cancelled at the per-point wall-clock deadline
    Crashed,     ///< the point's isolated child died on a signal
};

/** Stable lower-case name ("ok", "failed", "audit-failed", ...). */
const char *pointStatusName(PointStatus status);

/** Outcome record for one sweep point. */
struct PointOutcome
{
    std::string id;
    PointStatus status = PointStatus::Failed;
    /** Failure classification; meaningful unless Ok/Skipped. */
    ErrorCategory errorCategory = ErrorCategory::Internal;
    /** Diagnostic message; empty when Ok/Skipped. */
    std::string error;
    /**
     * First violated invariant's stable name ("inclusion.l1",
     * "time.conservation"); empty unless AuditFailed.
     */
    std::string auditInvariant;
    /** Audit scope line ("quantum boundary (...)"); AuditFailed only. */
    std::string auditScope;
    /**
     * Structured audit violations; AuditFailed only.  Together with
     * auditScope this is enough to rebuild the original AuditError
     * verbatim across the --isolate fork boundary.
     */
    std::vector<AuditViolation> auditViolations;
    /** Wall time of this execution (or the checkpointed value). */
    double wallSeconds = 0;
    /**
     * Hierarchy references per second of the *simulate phase* (falling
     * back to wall time when phase profiling saw nothing); 0 unless
     * Ok.  Wall time also covers trace generation, audits and
     * checkpoint I/O, so it is the wrong denominator for a throughput
     * gate — see simulateSeconds().
     */
    double refsPerSecond = 0;
    /**
     * Execution attempts this campaign made for the point (1 for a
     * first-try success; 0 when Skipped).  Retries only happen for
     * transient failures (isRetryableCategory) under
     * Options::maxRetries.
     */
    unsigned attempts = 0;
    /**
     * Hierarchy references the point had executed when the per-point
     * deadline cancelled it; meaningful only when TimedOut.
     */
    std::uint64_t refsAtCancel = 0;
    /**
     * The signal that killed the point's isolated child (SIGSEGV,
     * SIGABRT, SIGKILL...); meaningful only when Crashed.
     */
    int signalNumber = 0;
    /**
     * Post-mortem: the debug ring buffer's tail at the moment of
     * failure (most recent RAMPAGE_DPRINTF events).  Empty unless
     * Failed and tracing was active.
     */
    std::vector<std::string> debugTail;
    /**
     * The exception the point raised, for embedders that want to
     * rethrow a failure with full fidelity (runBlockingSweep turns a
     * failed bench point back into the error a serial run would have
     * surfaced).  Null unless Failed/AuditFailed.
     */
    std::exception_ptr exception;
    /**
     * Host wall-clock attributed to each sweep-pipeline phase for
     * this point (src/obs/phase_profiler.hh): trace generation,
     * simulation, audits, checkpoint I/O and — for isolated points —
     * the parent-side IPC drain.  Survives the --isolate pipe.
     */
    PhaseSeconds phaseSeconds{};
    /** True when `result` holds a simulation run from this campaign. */
    bool haveResult = false;
    SimResult result;

    /** Host seconds the point spent in Simulator::run proper. */
    double
    simulateSeconds() const
    {
        return phaseSeconds[static_cast<std::size_t>(
            SweepPhase::Simulate)];
    }
};

/** Everything a campaign produced, in add() order. */
struct SweepReport
{
    std::vector<PointOutcome> outcomes;

    std::size_t count(PointStatus status) const;
    std::size_t okCount() const { return count(PointStatus::Ok); }
    std::size_t failedCount() const { return count(PointStatus::Failed); }
    std::size_t auditFailedCount() const
    {
        return count(PointStatus::AuditFailed);
    }
    std::size_t skippedCount() const
    {
        return count(PointStatus::Skipped);
    }
    std::size_t timedOutCount() const
    {
        return count(PointStatus::TimedOut);
    }
    std::size_t crashedCount() const
    {
        return count(PointStatus::Crashed);
    }
    bool
    allOk() const
    {
        return failedCount() == 0 && auditFailedCount() == 0 &&
               timedOutCount() == 0 && crashedCount() == 0;
    }
};

/**
 * Fault-tolerant sweep engine.  Each queued point runs under
 * try/catch: a point that throws (bad trace, invalid configuration,
 * internal bug, watchdog trip) is recorded as Failed with its error
 * category and the campaign continues, so one poisoned point costs
 * one point — never the whole parameter sweep.  On top of that basic
 * containment the runner layers four independent hardening stages:
 *
 *  - Deadlines: with a per-point wall-clock deadline configured
 *    (Options::pointDeadlineSeconds, --point-deadline,
 *    RAMPAGE_DEADLINE) a runaway point is cancelled cooperatively at
 *    the simulator's watchdog seam and recorded as TimedOut with the
 *    reference count it had reached; healthy points are unaffected.
 *
 *  - Retries: a point that fails with a *transient* category
 *    (isRetryableCategory: trace I/O, manifest/telemetry I/O) is
 *    re-executed up to Options::maxRetries times with bounded
 *    exponential backoff.  Deterministic errors (ConfigError,
 *    AuditError) never retry.  The attempt count is recorded in the
 *    outcome and the checkpoint manifest.
 *
 *  - Isolation: with Options::isolate (--isolate, RAMPAGE_ISOLATE=1)
 *    each point runs in a forked child that streams its outcome (and
 *    its post-mortem debug-ring tail) back over a pipe, so a point
 *    that SIGSEGVs, aborts or is OOM-killed becomes a Crashed outcome
 *    carrying the signal number while the rest of the sweep
 *    continues.  Results are serialized bit-exactly (doubles as bit
 *    patterns), so observables match an in-process run byte for byte.
 *
 *  - Crash-consistent checkpointing: see below.
 *
 * With a checkpoint path configured, a versioned, CRC-protected
 * manifest line is appended with a single write(2) and fsync'd after
 * every completed point; re-running the same campaign against the
 * same manifest skips completed points (reported as Skipped) and
 * re-executes only failed or new ones.  A torn final line — the
 * signature of a mid-append SIGKILL or power loss — is detected by
 * its CRC, repaired by truncation, and costs exactly one re-simulated
 * point.  Damaged interior lines are warned about and ignored, so a
 * corrupt checkpoint degrades to re-simulation rather than an error.
 *
 * With jobs > 1 (Options::jobs, --jobs, RAMPAGE_JOBS) independent
 * points execute concurrently on a worker pool while every observable
 * stays equivalent to a serial run:
 *  - outcomes land in add() order, and the per-point status lines are
 *    emitted by the main thread in that order, so stdout/stderr do
 *    not depend on completion order;
 *  - manifest appends are serialized behind a mutex (one fopen/write
 *    critical section per point); line *order* may differ from a
 *    serial run but the line *set* is the same;
 *  - the post-mortem debug ring is thread-local, so a failing point's
 *    tail holds only its own events;
 *  - each point builds its own hierarchy (with its own seeded Rngs)
 *    inside its body and retires it when the body returns, so results
 *    never depend on scheduling and memory stays bounded by the
 *    worker count, not the campaign size.
 * Point bodies must therefore not share mutable state with each
 * other; everything under src/ already satisfies this (points only
 * share the read-only trace roster).
 */
class SweepRunner
{
  public:
    struct Options
    {
        /** Checkpoint manifest path; empty disables checkpointing. */
        std::string checkpointPath;
        /**
         * Emit a progress heartbeat (points simulated this run /
         * points to simulate, skipped count, campaign wall time) when
         * this many seconds have passed since the last one.  The
         * heartbeat is driven by the reporting thread's timed wait,
         * so it fires even while one long point is still running.
         * 0 disables.
         */
        double heartbeatSeconds = 0;
        /**
         * Worker threads executing points concurrently; 1 runs the
         * campaign serially, 0 (the default) resolves the count via
         * resolveJobs() (--jobs override, then RAMPAGE_JOBS, then 1).
         */
        unsigned jobs = 0;
        /**
         * Per-point wall-clock deadline in seconds; a point still
         * running at the deadline is cancelled cooperatively and
         * recorded as TimedOut.  0 (the default) resolves via
         * resolvePointDeadline() (--point-deadline, then
         * RAMPAGE_DEADLINE, then disabled).  Negative disables
         * explicitly, overriding the environment.
         */
        double pointDeadlineSeconds = 0;
        /**
         * Re-executions allowed for a point that failed with a
         * transient (isRetryableCategory) error.  Negative (the
         * default) resolves via resolveRetries() (--retries, then
         * RAMPAGE_RETRIES, then 0).
         */
        int maxRetries = -1;
        /**
         * First retry backoff in seconds; doubles per attempt, capped
         * at 2 s.  Tests shrink this to keep retry paths fast.
         */
        double retryBackoffSeconds = 0.05;
        /**
         * Run each point in a forked child process (1), in-process
         * (0), or resolve via resolveIsolate() (--isolate, then
         * RAMPAGE_ISOLATE, then in-process) when negative (the
         * default).
         */
        int isolate = -1;
    };

    SweepRunner() = default;
    explicit SweepRunner(const Options &options) : opts(options) {}

    /**
     * Queue one point.  `id` names it in outcomes and the manifest
     * and must be unique within the campaign (ConfigError otherwise).
     */
    void add(const std::string &id, std::function<SimResult()> body);

    std::size_t pointCount() const { return points.size(); }

    /** Execute every queued point, continuing past failures. */
    SweepReport run();

  private:
    struct Point
    {
        std::string id;
        std::function<SimResult()> body;
    };

    /** Effective knob values for one run() (resolved once, up front). */
    struct Resolved
    {
        unsigned jobs = 1;
        double deadlineSeconds = 0; ///< 0 = no deadline
        unsigned retries = 0;
        double backoffSeconds = 0.05;
        bool isolate = false;
    };
    Resolved resolveOptions() const;

    /** id -> checkpointed wall seconds from a previous campaign. */
    std::map<std::string, double> loadManifest() const;
    /** Caller must hold manifestMutex when workers are live. */
    void appendManifest(const PointOutcome &outcome) const;

    /**
     * Run one point (worker context): retry loop around a local or
     * isolated attempt, timing, checkpointing.
     */
    PointOutcome executePoint(const Point &point,
                              const Resolved &how) const;
    /** One in-process attempt: deadline arming, try/catch taxonomy. */
    PointOutcome runLocalAttempt(const Point &point,
                                 const Resolved &how) const;
    /** One forked attempt: pipe protocol, signal & hang containment. */
    PointOutcome runIsolatedAttempt(const Point &point,
                                    const Resolved &how) const;
    /** Emit the point's status lines (reporter context, in order). */
    void reportOutcome(const PointOutcome &outcome) const;

    Options opts;
    std::vector<Point> points;
    /** Serializes checkpoint-manifest appends across workers. */
    mutable std::mutex manifestMutex;
};

} // namespace rampage

#endif // RAMPAGE_CORE_SWEEP_HH
