/**
 * @file
 * Experiment scaffolding shared by the benches, examples and
 * integration tests: canonical system configurations (paper §4),
 * environment-controlled run scale, and one-call runners that build a
 * hierarchy plus the Table 2 workload and simulate it.
 *
 * Scale knobs (environment variables):
 *  - RAMPAGE_REFS=<n>     benchmark references per run (default 24 M)
 *  - RAMPAGE_QUANTUM=<n>  references per time slice (default 120 K)
 *  - RAMPAGE_FULL=1       paper scale: 1.1 G references, 500 K quantum
 *  - RAMPAGE_RATES=a,b,c  issue rates (default 200MHz,500MHz,1GHz,
 *                         2GHz,4GHz)
 */

#ifndef RAMPAGE_CORE_SWEEP_HH
#define RAMPAGE_CORE_SWEEP_HH

#include <cstdint>
#include <vector>

#include "core/config.hh"
#include "core/simulator.hh"

namespace rampage
{

/** Run-scale parameters resolved from the environment. */
struct ExperimentScale
{
    std::uint64_t refs = 24'000'000;
    std::uint64_t quantumRefs = 120'000;
};

/** Resolve the run scale from the environment (see file comment). */
ExperimentScale experimentScale();

/** Issue rates to sweep (RAMPAGE_RATES or the paper-like default). */
std::vector<std::uint64_t> issueRates();

/** The paper's block/page size sweep: 128 B ... 4 KB. */
std::vector<std::uint64_t> blockSizeSweep();

/** Common parameters at an issue rate (§4.3). */
CommonConfig defaultCommon(std::uint64_t issue_hz);

/** The §4.4 baseline: direct-mapped 4 MB L2. */
ConventionalConfig baselineConfig(std::uint64_t issue_hz,
                                  std::uint64_t l2_block_bytes);

/** The §4.7 system: 2-way random-replacement 4 MB L2. */
ConventionalConfig twoWayConfig(std::uint64_t issue_hz,
                                std::uint64_t l2_block_bytes);

/** The §4.5 RAMpage system at an SRAM page size. */
RampageConfig rampageConfig(std::uint64_t issue_hz,
                            std::uint64_t page_bytes,
                            bool switch_on_miss = false);

/** SimConfig at the environment scale. */
SimConfig defaultSimConfig(bool switch_on_miss = false);

/** Build, run and report a conventional system on the §4.2 workload. */
SimResult simulateConventional(const ConventionalConfig &config,
                               const SimConfig &sim);

/** Build, run and report a RAMpage system on the §4.2 workload. */
SimResult simulateRampage(const RampageConfig &config,
                          const SimConfig &sim);

} // namespace rampage

#endif // RAMPAGE_CORE_SWEEP_HH
