/**
 * @file
 * Model-level fault injection: deterministic corruptions of live
 * simulator state (a flipped cache tag, an unlinked page-table entry,
 * a stale dirty bit, a skewed cycle accumulator) used by tests and CI
 * to prove that every model-integrity audit checker actually fires
 * (src/core/audit.hh).  A fault plan names one corruption and an
 * optional seed selecting among eligible targets; the simulator
 * applies it once, at the first audit boundary after a clean audit,
 * so the corruption is attributable to the injector and not the run.
 */

#ifndef RAMPAGE_CORE_FAULT_INJECTION_HH
#define RAMPAGE_CORE_FAULT_INJECTION_HH

#include <cstdint>
#include <string>

#include "util/types.hh"

namespace rampage
{

class Hierarchy;
class Scheduler;

/** The catalogue of injectable model faults. */
enum class ModelFault
{
    None,        ///< no corruption (the default)
    L1TagFlip,   ///< flip a high tag bit of a valid L1 block
    L2TagFlip,   ///< flip a high tag bit of a valid L2 block
    TlbFrameXor, ///< XOR a TLB entry's frame number
    IptUnlink,   ///< unlink an IPT entry from its hash chain
    StaleDirty,  ///< set a dirty bit on an unmapped SRAM frame
    LeakFrame,   ///< unmap a cold-filled frame without reuse
    DirAlias,    ///< alias two pages onto one DRAM home
    VarOwnerDrop,///< drop a variable-pager frame back-pointer
    SchedBlock,  ///< block the running process past `now`
    SkewCycles,  ///< skew an event-count cycle accumulator
    TransCacheStale, ///< leave the last-translation cache stale
    StalePrivateCopy, ///< drop a core's frame-residency bit under a
                      ///< live TLB translation (coherence-lite)
};

/** Stable CLI/env name of a fault ("l1-tag-flip", ...). */
const char *modelFaultName(ModelFault fault);

/** One planned corruption. */
struct FaultPlan
{
    ModelFault kind = ModelFault::None;
    /** Selects among eligible targets where meaningful. */
    std::uint64_t seed = 1;
};

/**
 * Parse a "kind[:seed]" fault spec ("" => no fault).
 * @throws ConfigError on an unknown kind or unparsable seed.
 */
FaultPlan parseFaultPlan(const std::string &spec);

/**
 * Process-wide fault-plan override (the `--inject-fault` bench flag);
 * takes precedence over the RAMPAGE_INJECT_FAULT environment variable.
 */
void setFaultPlanOverride(const std::string &spec);

/** Resolve the effective fault spec: override, else env, else "". */
std::string resolveFaultPlanSpec();

/**
 * Sweep-execution faults: deterministic failure modes of the *runner*
 * rather than the model, used to prove SweepRunner's fault isolation
 * (deadlines, process isolation, crash-consistent checkpointing).
 * Unlike ModelFault these never corrupt simulator state — they make a
 * point hang, die, or tear its checkpoint line.
 */
enum class SweepFault
{
    None,             ///< no fault (the default)
    Hang,             ///< the point never finishes (polls the deadline)
    Crash,            ///< the point raises SIGSEGV mid-execution
    TornManifestLine, ///< the point's checkpoint append is cut short
};

/** Stable CLI/env name of a sweep fault ("hang", "crash", ...). */
const char *sweepFaultName(SweepFault fault);

/**
 * One planned sweep fault.  `pointId` selects the target point; an
 * empty id matches every point (useful for single-point smokes).
 */
struct SweepFaultPlan
{
    SweepFault kind = SweepFault::None;
    std::string pointId;

    /** Whether this plan targets the given sweep point. */
    bool matches(const std::string &id) const
    {
        return kind != SweepFault::None &&
               (pointId.empty() || pointId == id);
    }
};

/**
 * Parse a "kind[@point-id]" sweep-fault spec ("" => no fault).
 * @throws ConfigError on an unknown kind.
 */
SweepFaultPlan parseSweepFaultPlan(const std::string &spec);

/**
 * Process-wide sweep-fault override; takes precedence over the
 * RAMPAGE_SWEEP_FAULT environment variable.
 */
void setSweepFaultOverride(const std::string &spec);

/** Resolve the effective sweep-fault spec: override, else env, else "". */
std::string resolveSweepFaultSpec();

/**
 * Applies a fault plan to live model state, once.  Dispatches on the
 * concrete hierarchy type; a fault that does not apply to the run's
 * hierarchy (e.g. ipt-unlink on a conventional run) warns and injects
 * nothing.  The injector is a friend of the hierarchy classes: the
 * corruption hooks themselves live with the components they corrupt.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultPlan &plan_in) : plan(plan_in) {}

    /** A corruption is planned and has not been applied yet. */
    bool
    pending() const
    {
        return plan.kind != ModelFault::None && !applied;
    }

    /** The planned fault targets the scheduler, not the hierarchy. */
    bool
    targetsScheduler() const
    {
        return plan.kind == ModelFault::SchedBlock;
    }

    /**
     * Apply the planned hierarchy fault.  Marks the plan applied
     * whether or not a corruption landed, so the injector never fires
     * twice.
     * @retval true model state was corrupted.
     */
    bool apply(Hierarchy &hier);

    /**
     * Apply a SchedBlock fault: leave the running process marked
     * blocked beyond `now`, which the switch-on-miss queue audit
     * must reject.
     * @retval true scheduler state was corrupted.
     */
    bool applyScheduler(Scheduler &sched, Tick now);

    const FaultPlan &planned() const { return plan; }

  private:
    FaultPlan plan;
    bool applied = false;
};

} // namespace rampage

#endif // RAMPAGE_CORE_FAULT_INJECTION_HH
