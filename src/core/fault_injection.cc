#include "core/fault_injection.hh"

#include <cstdlib>
#include <vector>

#include "core/conventional.hh"
#include "core/paged.hh"
#include "os/scheduler.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace rampage
{

namespace
{

struct FaultName
{
    const char *name;
    ModelFault fault;
};

// Stable spec names: these appear in RAMPAGE_INJECT_FAULT, the
// --inject-fault flag and the CI smoke step.
constexpr FaultName faultNames[] = {
    {"none", ModelFault::None},
    {"l1-tag-flip", ModelFault::L1TagFlip},
    {"l2-tag-flip", ModelFault::L2TagFlip},
    {"tlb-frame-xor", ModelFault::TlbFrameXor},
    {"ipt-unlink", ModelFault::IptUnlink},
    {"stale-dirty", ModelFault::StaleDirty},
    {"leak-frame", ModelFault::LeakFrame},
    {"dir-alias", ModelFault::DirAlias},
    {"var-owner-drop", ModelFault::VarOwnerDrop},
    {"sched-block", ModelFault::SchedBlock},
    {"skew-cycles", ModelFault::SkewCycles},
    {"trans-cache-stale", ModelFault::TransCacheStale},
    {"stale-private-copy", ModelFault::StalePrivateCopy},
};

bool haveOverride = false;
std::string overrideSpec;

struct SweepFaultName
{
    const char *name;
    SweepFault fault;
};

constexpr SweepFaultName sweepFaultNames[] = {
    {"none", SweepFault::None},
    {"hang", SweepFault::Hang},
    {"crash", SweepFault::Crash},
    {"torn-manifest-line", SweepFault::TornManifestLine},
};

bool haveSweepOverride = false;
std::string sweepOverrideSpec;

/**
 * Tag-space XOR whose rebuilt address lands far above every address
 * the model legitimately caches (SRAM is a few MB, the conventional
 * page-table image sits at 2^40 and the OS image at 2^41): flipping
 * tag bit 40 moves the block address by at least 2^45.
 */
constexpr Addr tagFlipXor = Addr{1} << 40;

/** Collect a cache's valid block addresses (for seeded selection). */
std::vector<Addr>
validBlocks(const SetAssocCache &cache)
{
    std::vector<Addr> blocks;
    cache.forEachValidBlock([&](Addr addr, bool) {
        blocks.push_back(addr);
        return true;
    });
    return blocks;
}

void
warnInapplicable(const FaultPlan &plan, const char *why)
{
    warnOnce("fault injection: '%s' not applied: %s",
             modelFaultName(plan.kind), why);
}

} // namespace

const char *
modelFaultName(ModelFault fault)
{
    for (const FaultName &entry : faultNames)
        if (entry.fault == fault)
            return entry.name;
    return "unknown";
}

FaultPlan
parseFaultPlan(const std::string &spec)
{
    FaultPlan plan;
    if (spec.empty())
        return plan;

    std::string kind = spec;
    std::string::size_type colon = spec.find(':');
    if (colon != std::string::npos) {
        kind = spec.substr(0, colon);
        std::string seed_text = spec.substr(colon + 1);
        char *end = nullptr;
        unsigned long long seed =
            std::strtoull(seed_text.c_str(), &end, 10);
        if (seed_text.empty() || end == nullptr || *end != '\0')
            throw ConfigError(
                "bad fault seed '%s' in spec '%s' (want kind[:seed])",
                seed_text.c_str(), spec.c_str());
        plan.seed = seed;
    }

    for (const FaultName &entry : faultNames) {
        if (kind == entry.name) {
            plan.kind = entry.fault;
            return plan;
        }
    }
    throw ConfigError(
        "unknown model fault '%s' (try l1-tag-flip, l2-tag-flip, "
        "tlb-frame-xor, ipt-unlink, stale-dirty, leak-frame, "
        "dir-alias, var-owner-drop, sched-block, skew-cycles, "
        "trans-cache-stale or stale-private-copy)",
        kind.c_str());
}

void
setFaultPlanOverride(const std::string &spec)
{
    parseFaultPlan(spec); // validate eagerly: bad specs fail at the CLI
    haveOverride = true;
    overrideSpec = spec;
}

std::string
resolveFaultPlanSpec()
{
    if (haveOverride)
        return overrideSpec;
    if (const char *env = std::getenv("RAMPAGE_INJECT_FAULT"))
        return env;
    return "";
}

const char *
sweepFaultName(SweepFault fault)
{
    for (const SweepFaultName &entry : sweepFaultNames)
        if (entry.fault == fault)
            return entry.name;
    return "unknown";
}

SweepFaultPlan
parseSweepFaultPlan(const std::string &spec)
{
    SweepFaultPlan plan;
    if (spec.empty())
        return plan;

    std::string kind = spec;
    std::string::size_type at = spec.find('@');
    if (at != std::string::npos) {
        kind = spec.substr(0, at);
        plan.pointId = spec.substr(at + 1);
    }

    for (const SweepFaultName &entry : sweepFaultNames) {
        if (kind == entry.name) {
            plan.kind = entry.fault;
            return plan;
        }
    }
    throw ConfigError(
        "unknown sweep fault '%s' (try hang, crash or "
        "torn-manifest-line, optionally @<point-id>)",
        kind.c_str());
}

void
setSweepFaultOverride(const std::string &spec)
{
    parseSweepFaultPlan(spec); // validate eagerly, like model faults
    haveSweepOverride = true;
    sweepOverrideSpec = spec;
}

std::string
resolveSweepFaultSpec()
{
    if (haveSweepOverride)
        return sweepOverrideSpec;
    if (const char *env = std::getenv("RAMPAGE_SWEEP_FAULT"))
        return env;
    return "";
}

bool
FaultInjector::apply(Hierarchy &hier)
{
    if (!pending())
        return false;
    applied = true;

    // The unified core exposes two attachment points: the paged
    // (RAMpage) hierarchy's shared PageStore, and the conventional
    // hierarchy's L2.  Everything else (L1s, TLB, directory, event
    // counters) lives in the Hierarchy base.
    auto *paged = dynamic_cast<PagedHierarchy *>(&hier);
    auto *conv = dynamic_cast<ConventionalHierarchy *>(&hier);

    switch (plan.kind) {
      case ModelFault::None:
        return false;

      case ModelFault::L1TagFlip: {
        // Prefer the active core's L1D; an instruction-only window
        // may leave it empty, in which case the L1I serves just as
        // well.
        SetAssocCache *target = &hier.fe().l1dCache;
        std::vector<Addr> blocks = validBlocks(*target);
        if (blocks.empty()) {
            target = &hier.fe().l1iCache;
            blocks = validBlocks(*target);
        }
        if (blocks.empty()) {
            warnInapplicable(plan, "no valid L1 blocks yet");
            return false;
        }
        Addr addr = blocks[plan.seed % blocks.size()];
        return target->corruptTagXor(addr, tagFlipXor);
      }

      case ModelFault::L2TagFlip: {
        if (conv == nullptr || conv->columnL2) {
            warnInapplicable(plan,
                             "needs a plain set-associative L2");
            return false;
        }
        // Corrupt the L2 line backing a live L1 block: inclusion is
        // maintained, so the block is guaranteed present below, and
        // the flip is guaranteed to orphan the L1 copy.
        std::vector<Addr> blocks = validBlocks(hier.fe().l1dCache);
        if (blocks.empty())
            blocks = validBlocks(hier.fe().l1iCache);
        if (!blocks.empty()) {
            Addr chosen = blocks[plan.seed % blocks.size()];
            if (conv->l2Cache.corruptTagXor(chosen, tagFlipXor))
                return true;
        }
        for (Addr addr : blocks)
            if (conv->l2Cache.corruptTagXor(addr, tagFlipXor))
                return true;
        warnInapplicable(plan, "no L1 block found in the L2");
        return false;
      }

      case ModelFault::TlbFrameXor:
        if (!hier.fe().tlbUnit.corruptFrameXor(0x100000)) {
            warnInapplicable(plan, "no valid TLB entries yet");
            return false;
        }
        // The corrupted entry may be the one the last-translation
        // cache mirrors; drop the cache so the violation is
        // attributed to tlb.backing, the invariant this fault
        // exercises (trans-cache-stale covers the cache itself).
        hier.fe().transCacheInvalidate();
        return true;

      case ModelFault::IptUnlink:
        if (paged == nullptr) {
            warnInapplicable(plan, "needs the RAMpage hierarchy");
            return false;
        }
        if (!paged->store.corruptUnlinkEntry()) {
            warnInapplicable(plan, "no mapped user frames yet");
            return false;
        }
        return true;

      case ModelFault::StaleDirty:
        if (paged == nullptr || !paged->store.uniform()) {
            warnInapplicable(plan, "needs the RAMpage hierarchy");
            return false;
        }
        if (!paged->store.corruptStaleDirty()) {
            warnInapplicable(plan, "no unmapped user frames");
            return false;
        }
        return true;

      case ModelFault::LeakFrame:
        if (paged == nullptr || !paged->store.uniform()) {
            warnInapplicable(plan, "needs the RAMpage hierarchy");
            return false;
        }
        if (!paged->store.corruptLeakFrame()) {
            warnInapplicable(plan, "no cold-filled frames yet");
            return false;
        }
        return true;

      case ModelFault::DirAlias:
        // Every hierarchy shares one DRAM directory (MemoryBackend).
        if (!hier.memoryBackend().dir.corruptAlias()) {
            warnInapplicable(plan,
                             "needs two allocated DRAM pages");
            return false;
        }
        return true;

      case ModelFault::VarOwnerDrop:
        if (paged == nullptr || paged->store.uniform()) {
            warnInapplicable(plan,
                             "needs the variable-page-size hierarchy");
            return false;
        }
        if (!paged->store.corruptDropOwner()) {
            warnInapplicable(plan, "no owned user frames yet");
            return false;
        }
        return true;

      case ModelFault::SchedBlock:
        warnInapplicable(plan, "needs a switch-on-miss run");
        return false;

      case ModelFault::SkewCycles:
        // A prime cycle skew: every re-pricing of the run's events
        // now disagrees with the accumulated elapsed time, which the
        // time.conservation audit must catch at the next boundary.
        hier.evt.l2Cycles += 977;
        return true;

      case ModelFault::TransCacheStale:
        // Model the desynchronization bug the tlb.trans_cache
        // invariant guards against: a live cache entry whose frame
        // no longer matches its backing TLB slot.  Mutating the TLB
        // itself would advance its generation counter and retire the
        // cache (that is the self-maintaining validity rule working
        // as designed), so the fault skews the cached frame directly
        // — exactly what a forgotten re-capture after a remap would
        // leave behind.
        for (auto &stream : hier.fe().transCache) {
            for (Hierarchy::TranslationCache &tc : stream) {
                if (!tc.valid ||
                    tc.gen != hier.fe().tlbUnit.generation())
                    continue;
                tc.frame ^= 1;
                return true;
            }
        }
        warnInapplicable(plan, "no live cached translation yet");
        return false;

      case ModelFault::StalePrivateCopy: {
        // Model the coherence bug the residency masks guard against:
        // a core holds a live TLB translation (and possibly L1 lines)
        // for an SRAM frame, but the frame's residency mask has lost
        // the core's bit — page replacement would reassign the frame
        // without invalidating that core's private copies.  Clearing
        // the mask bit under a live translation is exactly the state
        // such a bug leaves behind; the coherence.residency audit
        // must reject it.
        if (paged == nullptr) {
            warnInapplicable(plan, "needs the RAMpage hierarchy");
            return false;
        }
        struct Target
        {
            std::uint64_t frame;
            CoreId core;
        };
        std::vector<Target> targets;
        MemoryBackend &backend = hier.memoryBackend();
        for (unsigned c = 0; c < hier.coreCount(); ++c) {
            CoreId core = static_cast<CoreId>(c);
            hier.fe(core).tlbUnit.forEachValidEntry(
                [&](Pid, std::uint64_t, std::uint64_t frame) {
                    if (backend.resident(frame, core))
                        targets.push_back(Target{frame, core});
                    return true;
                });
        }
        if (targets.empty()) {
            warnInapplicable(plan, "no resident translations yet");
            return false;
        }
        const Target &victim = targets[plan.seed % targets.size()];
        return backend.clearResidencyBit(victim.frame, victim.core);
      }
    }
    return false;
}

bool
FaultInjector::applyScheduler(Scheduler &sched, Tick now)
{
    if (!pending() || plan.kind != ModelFault::SchedBlock)
        return false;
    applied = true;
    // Park the running process a full simulated second in the future;
    // the queue audit requires the running pid to be unblocked.
    return sched.corruptBlockRunning(now + Tick{1'000'000'000'000});
}

} // namespace rampage
