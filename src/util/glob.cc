#include "util/glob.hh"

namespace rampage
{

bool
globMatch(const std::string &pattern, const std::string &text)
{
    // Iterative wildcard match with backtracking to the most recent
    // '*': linear in practice, never exponential.
    std::size_t p = 0, t = 0;
    std::size_t star = std::string::npos, star_t = 0;
    while (t < text.size()) {
        if (p < pattern.size() &&
            (pattern[p] == '?' || pattern[p] == text[t])) {
            ++p;
            ++t;
        } else if (p < pattern.size() && pattern[p] == '*') {
            star = p++;
            star_t = t;
        } else if (star != std::string::npos) {
            p = star + 1;
            t = ++star_t;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*')
        ++p;
    return p == pattern.size();
}

} // namespace rampage
