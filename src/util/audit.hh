/**
 * @file
 * Violation collector for runtime model-integrity audits.
 *
 * Every auditable component (cache, tlb, pager, var_pager,
 * inverted_page_table, dram_directory, scheduler, the hierarchies)
 * exposes an `auditState(AuditContext &)` member that walks its live
 * state and calls check() per invariant.  AuditContext records each
 * failed check as a structured AuditViolation, mirrors it into the
 * debug ring on the "audit" channel (so a post-mortem flush carries
 * the details) and counts every check so clean audits are visible in
 * the stats snapshot.  The Auditor (src/core/audit.hh) drives the
 * walk and raises AuditError from the collected report.
 *
 * AuditContext lives in util — below every audited component — so the
 * component libraries need no dependency on src/core.
 */

#ifndef RAMPAGE_UTIL_AUDIT_HH
#define RAMPAGE_UTIL_AUDIT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/error.hh"

namespace rampage
{

/** Collects invariant checks and violations during one audit run. */
class AuditContext
{
  public:
    /** @param scope where the audit runs ("quantum boundary ..."). */
    explicit AuditContext(std::string scope);

    /**
     * Check one invariant.  `invariant` is its stable dotted name
     * ("inclusion.l1", "time.conservation", ...); the printf-style
     * detail is only formatted on failure, so paranoid-level audits
     * stay cheap on the (overwhelmingly common) clean path.
     * @return `ok`, so callers can gate dependent checks.
     */
    bool check(bool ok, const char *invariant, const char *fmt, ...)
        __attribute__((format(printf, 4, 5)));

    /** Checks performed so far (clean or not). */
    std::uint64_t checksRun() const { return nChecks; }

    /** True when every check so far passed. */
    bool clean() const { return viol.empty(); }

    const std::string &scope() const { return scopeName; }
    const std::vector<AuditViolation> &violations() const
    {
        return viol;
    }

    /** Throw AuditError carrying the report; no-op when clean. */
    void raiseIfViolated();

  private:
    std::string scopeName;
    std::vector<AuditViolation> viol;
    std::uint64_t nChecks = 0;
    std::uint64_t nViolations = 0; ///< including ones past the cap
};

} // namespace rampage

#endif // RAMPAGE_UTIL_AUDIT_HH
