#include "util/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

namespace rampage
{

namespace
{
bool quietFlag = false;

constexpr std::uint64_t defaultWarnRateLimit = 5;
std::uint64_t rateLimit = defaultWarnRateLimit;

/** Occurrence count per warnOnce/warnRateLimited format string. */
std::map<std::string, std::uint64_t> &
warnCounts()
{
    static std::map<std::string, std::uint64_t> counts;
    return counts;
}

void
vreport(const char *tag, const char *fmt, va_list args)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}
} // namespace

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (quietFlag)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    if (quietFlag)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

void
warnOnce(const char *fmt, ...)
{
    std::uint64_t seen = ++warnCounts()[fmt];
    if (seen > 1 || quietFlag)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
warnRateLimited(const char *fmt, ...)
{
    std::uint64_t seen = ++warnCounts()[fmt];
    if (quietFlag)
        return;
    if (seen <= rateLimit) {
        va_list args;
        va_start(args, fmt);
        vreport("warn", fmt, args);
        va_end(args);
    } else if (seen == rateLimit + 1) {
        std::fprintf(stderr,
                     "warn: further occurrences of \"%s\" suppressed\n",
                     fmt);
    }
}

std::uint64_t
warnRateLimit()
{
    return rateLimit;
}

void
setWarnRateLimit(std::uint64_t limit)
{
    rateLimit = limit == 0 ? defaultWarnRateLimit : limit;
}

std::uint64_t
warnOccurrences(const char *fmt)
{
    auto found = warnCounts().find(fmt);
    return found == warnCounts().end() ? 0 : found->second;
}

void
resetWarnFilters()
{
    warnCounts().clear();
    rateLimit = defaultWarnRateLimit;
}

void
setQuiet(bool quiet_flag)
{
    quietFlag = quiet_flag;
}

bool
quiet()
{
    return quietFlag;
}

} // namespace rampage
