#include "util/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>

namespace rampage
{

namespace
{
std::atomic<bool> quietFlag{false};

constexpr std::uint64_t defaultWarnRateLimit = 5;
std::atomic<std::uint64_t> rateLimit{defaultWarnRateLimit};

/**
 * Occurrence count per warnOnce/warnRateLimited format string.  The
 * filters fire from SweepRunner worker threads, so the map is behind
 * a mutex; holding it across the print also keeps "exactly once" /
 * "exactly rateLimit times" true under concurrency.
 */
std::mutex warnMutex;

std::map<std::string, std::uint64_t> &
warnCounts()
{
    static std::map<std::string, std::uint64_t> counts;
    return counts;
}

void
vreport(const char *tag, const char *fmt, va_list args)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}
} // namespace

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (quietFlag.load(std::memory_order_relaxed))
        return;
    va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    if (quietFlag.load(std::memory_order_relaxed))
        return;
    va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

void
warnOnce(const char *fmt, ...)
{
    std::lock_guard<std::mutex> lock(warnMutex);
    std::uint64_t seen = ++warnCounts()[fmt];
    if (seen > 1 || quietFlag.load(std::memory_order_relaxed))
        return;
    va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
warnRateLimited(const char *fmt, ...)
{
    std::lock_guard<std::mutex> lock(warnMutex);
    std::uint64_t seen = ++warnCounts()[fmt];
    if (quietFlag.load(std::memory_order_relaxed))
        return;
    std::uint64_t limit = rateLimit.load(std::memory_order_relaxed);
    if (seen <= limit) {
        va_list args;
        va_start(args, fmt);
        vreport("warn", fmt, args);
        va_end(args);
    } else if (seen == limit + 1) {
        std::fprintf(stderr,
                     "warn: further occurrences of \"%s\" suppressed\n",
                     fmt);
    }
}

std::uint64_t
warnRateLimit()
{
    return rateLimit.load(std::memory_order_relaxed);
}

void
setWarnRateLimit(std::uint64_t limit)
{
    rateLimit.store(limit == 0 ? defaultWarnRateLimit : limit,
                    std::memory_order_relaxed);
}

std::uint64_t
warnOccurrences(const char *fmt)
{
    std::lock_guard<std::mutex> lock(warnMutex);
    auto found = warnCounts().find(fmt);
    return found == warnCounts().end() ? 0 : found->second;
}

void
resetWarnFilters()
{
    std::lock_guard<std::mutex> lock(warnMutex);
    warnCounts().clear();
    rateLimit.store(defaultWarnRateLimit, std::memory_order_relaxed);
}

void
setQuiet(bool quiet_flag)
{
    quietFlag.store(quiet_flag, std::memory_order_relaxed);
}

bool
quiet()
{
    return quietFlag.load(std::memory_order_relaxed);
}

} // namespace rampage
