#include "util/units.hh"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "util/error.hh"
#include "util/logging.hh"

namespace rampage
{

namespace
{

/**
 * Split "<number><suffix>" into its numeric value and lower-cased
 * suffix; throws ConfigError on an empty or non-numeric prefix.
 */
void
splitNumberSuffix(const std::string &text, double &number,
                  std::string &suffix)
{
    std::size_t pos = 0;
    try {
        number = std::stod(text, &pos);
    } catch (...) {
        throw ConfigError("cannot parse quantity '%s'", text.c_str());
    }
    if (pos == 0)
        throw ConfigError("cannot parse quantity '%s'", text.c_str());
    suffix.clear();
    for (std::size_t i = pos; i < text.size(); ++i) {
        if (!std::isspace(static_cast<unsigned char>(text[i])))
            suffix.push_back(static_cast<char>(
                std::tolower(static_cast<unsigned char>(text[i]))));
    }
}

} // namespace

std::uint64_t
parseByteSize(const std::string &text)
{
    double number = 0.0;
    std::string suffix;
    splitNumberSuffix(text, number, suffix);

    double scale = 1.0;
    if (suffix.empty() || suffix == "b") {
        scale = 1.0;
    } else if (suffix == "k" || suffix == "kb" || suffix == "kib") {
        scale = static_cast<double>(kib);
    } else if (suffix == "m" || suffix == "mb" || suffix == "mib") {
        scale = static_cast<double>(mib);
    } else if (suffix == "g" || suffix == "gb" || suffix == "gib") {
        scale = static_cast<double>(gib);
    } else {
        throw ConfigError("unknown byte-size suffix in '%s'", text.c_str());
    }
    double bytes = number * scale;
    if (bytes < 0 || bytes != std::floor(bytes))
        throw ConfigError("byte size '%s' is not a whole number of bytes",
                          text.c_str());
    return static_cast<std::uint64_t>(bytes);
}

std::uint64_t
parseFrequency(const std::string &text)
{
    double number = 0.0;
    std::string suffix;
    splitNumberSuffix(text, number, suffix);

    double scale = 1.0;
    if (suffix.empty() || suffix == "hz") {
        scale = 1.0;
    } else if (suffix == "khz") {
        scale = 1e3;
    } else if (suffix == "mhz") {
        scale = 1e6;
    } else if (suffix == "ghz") {
        scale = 1e9;
    } else {
        throw ConfigError("unknown frequency suffix in '%s'", text.c_str());
    }
    double hz = number * scale;
    if (hz <= 0)
        throw ConfigError("frequency '%s' must be positive", text.c_str());
    return static_cast<std::uint64_t>(hz + 0.5);
}

std::string
formatByteSize(std::uint64_t bytes)
{
    char buf[32];
    if (bytes >= gib && bytes % gib == 0)
        std::snprintf(buf, sizeof(buf), "%lluGB",
                      static_cast<unsigned long long>(bytes / gib));
    else if (bytes >= mib && bytes % mib == 0)
        std::snprintf(buf, sizeof(buf), "%lluMB",
                      static_cast<unsigned long long>(bytes / mib));
    else if (bytes >= kib && bytes % kib == 0)
        std::snprintf(buf, sizeof(buf), "%lluKB",
                      static_cast<unsigned long long>(bytes / kib));
    else
        std::snprintf(buf, sizeof(buf), "%lluB",
                      static_cast<unsigned long long>(bytes));
    return buf;
}

std::string
formatFrequency(std::uint64_t hz)
{
    char buf[32];
    if (hz >= 1000000000ull && hz % 1000000000ull == 0)
        std::snprintf(buf, sizeof(buf), "%lluGHz",
                      static_cast<unsigned long long>(hz / 1000000000ull));
    else if (hz >= 1000000ull && hz % 1000000ull == 0)
        std::snprintf(buf, sizeof(buf), "%lluMHz",
                      static_cast<unsigned long long>(hz / 1000000ull));
    else if (hz >= 1000ull && hz % 1000ull == 0)
        std::snprintf(buf, sizeof(buf), "%llukHz",
                      static_cast<unsigned long long>(hz / 1000ull));
    else
        std::snprintf(buf, sizeof(buf), "%lluHz",
                      static_cast<unsigned long long>(hz));
    return buf;
}

std::string
formatSeconds(Tick ps, int precision)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f",
                  precision, static_cast<double>(ps) / psPerSec);
    return buf;
}

Tick
cycleTimePs(std::uint64_t hz)
{
    RAMPAGE_ASSERT(hz > 0, "issue rate must be positive");
    // Round to nearest picosecond; all paper rates divide 1e12 evenly.
    return (psPerSec + hz / 2) / hz;
}

} // namespace rampage
