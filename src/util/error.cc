#include "util/error.hh"

#include <cstdio>
#include <cstdlib>

#include "util/debug.hh"
#include "util/logging.hh"

namespace rampage
{

const char *
errorCategoryName(ErrorCategory category)
{
    switch (category) {
      case ErrorCategory::Config:
        return "config";
      case ErrorCategory::Trace:
        return "trace";
      case ErrorCategory::Internal:
        return "internal";
      case ErrorCategory::Audit:
        return "audit";
      case ErrorCategory::Io:
        return "io";
      case ErrorCategory::Timeout:
        return "timeout";
    }
    return "unknown";
}

bool
isRetryableCategory(ErrorCategory category)
{
    switch (category) {
      case ErrorCategory::Trace:
      case ErrorCategory::Io:
        return true;
      case ErrorCategory::Config:
      case ErrorCategory::Internal:
      case ErrorCategory::Audit:
      case ErrorCategory::Timeout:
        return false;
    }
    return false;
}

namespace
{

std::string
formatAuditMessage(const std::string &scope,
                   const std::vector<AuditViolation> &violations)
{
    std::string msg = formatErrorMessage(
        "model-integrity audit failed at %s: %zu violation%s",
        scope.c_str(), violations.size(),
        violations.size() == 1 ? "" : "s");
    // Keep the what() line bounded; the full list stays available
    // through violations().
    constexpr std::size_t maxListed = 4;
    for (std::size_t i = 0; i < violations.size() && i < maxListed; ++i) {
        msg += i == 0 ? ": " : "; ";
        msg += "[" + violations[i].invariant + "] " +
               violations[i].detail;
    }
    if (violations.size() > maxListed)
        msg += formatErrorMessage(" (+%zu more)",
                                  violations.size() - maxListed);
    return msg;
}

} // namespace

AuditError::AuditError(std::string scope,
                       std::vector<AuditViolation> violations)
    : SimError(ErrorCategory::Audit,
               formatAuditMessage(scope, violations)),
      where(std::move(scope)), viol(std::move(violations))
{
}

const std::string &
AuditError::firstInvariant() const
{
    static const std::string none = "none";
    return viol.empty() ? none : viol.front().invariant;
}

std::string
vformatErrorMessage(const char *fmt, va_list args)
{
    va_list copy;
    va_copy(copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (needed < 0)
        return fmt; // formatting itself failed; keep the raw template

    std::string message(static_cast<std::size_t>(needed), '\0');
    std::vsnprintf(message.data(), message.size() + 1, fmt, args);
    return message;
}

std::string
formatErrorMessage(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string message = vformatErrorMessage(fmt, args);
    va_end(args);
    return message;
}

ConfigError::ConfigError(const char *fmt, ...)
    : SimError(ErrorCategory::Config, std::string())
{
    va_list args;
    va_start(args, fmt);
    setMessage(vformatErrorMessage(fmt, args));
    va_end(args);
}

TraceError::TraceError(const char *fmt, ...)
    : SimError(ErrorCategory::Trace, std::string())
{
    va_list args;
    va_start(args, fmt);
    setMessage(vformatErrorMessage(fmt, args));
    va_end(args);
}

InternalError::InternalError(const char *fmt, ...)
    : SimError(ErrorCategory::Internal, std::string())
{
    va_list args;
    va_start(args, fmt);
    setMessage(vformatErrorMessage(fmt, args));
    va_end(args);
}

IoError::IoError(const char *fmt, ...)
    : SimError(ErrorCategory::Io, std::string())
{
    va_list args;
    va_start(args, fmt);
    setMessage(vformatErrorMessage(fmt, args));
    va_end(args);
}

TimeoutError::TimeoutError(std::uint64_t refs_executed, const char *fmt,
                           ...)
    : SimError(ErrorCategory::Timeout, std::string()),
      refs(refs_executed)
{
    va_list args;
    va_start(args, fmt);
    setMessage(vformatErrorMessage(fmt, args));
    va_end(args);
}

int
cliMain(const std::function<int()> &body)
{
    try {
        return body();
    } catch (const AuditError &e) {
        // The model's live state failed an integrity audit: flush the
        // debug ring (the audit recorded every violation into it) and
        // exit with the distinct audit status so CI can tell a caught
        // model corruption from an ordinary fatal error.
        flushDebugRing(stderr);
        std::fprintf(stderr, "audit: %s\n", e.what());
        std::exit(auditExitStatus);
    } catch (const InternalError &e) {
        // A SimError escaped to the CLI: dump the recent debug-trace
        // events (if any channel was recording) as a post-mortem.
        flushDebugRing(stderr);
        panic("%s", e.what());
    } catch (const SimError &e) {
        flushDebugRing(stderr);
        fatal("%s", e.what());
    } catch (const std::exception &e) {
        fatal("%s", e.what());
    }
}

} // namespace rampage
