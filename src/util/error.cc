#include "util/error.hh"

#include <cstdio>

#include "util/debug.hh"
#include "util/logging.hh"

namespace rampage
{

const char *
errorCategoryName(ErrorCategory category)
{
    switch (category) {
      case ErrorCategory::Config:
        return "config";
      case ErrorCategory::Trace:
        return "trace";
      case ErrorCategory::Internal:
        return "internal";
    }
    return "unknown";
}

std::string
vformatErrorMessage(const char *fmt, va_list args)
{
    va_list copy;
    va_copy(copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (needed < 0)
        return fmt; // formatting itself failed; keep the raw template

    std::string message(static_cast<std::size_t>(needed), '\0');
    std::vsnprintf(message.data(), message.size() + 1, fmt, args);
    return message;
}

std::string
formatErrorMessage(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string message = vformatErrorMessage(fmt, args);
    va_end(args);
    return message;
}

ConfigError::ConfigError(const char *fmt, ...)
    : SimError(ErrorCategory::Config, std::string())
{
    va_list args;
    va_start(args, fmt);
    setMessage(vformatErrorMessage(fmt, args));
    va_end(args);
}

TraceError::TraceError(const char *fmt, ...)
    : SimError(ErrorCategory::Trace, std::string())
{
    va_list args;
    va_start(args, fmt);
    setMessage(vformatErrorMessage(fmt, args));
    va_end(args);
}

InternalError::InternalError(const char *fmt, ...)
    : SimError(ErrorCategory::Internal, std::string())
{
    va_list args;
    va_start(args, fmt);
    setMessage(vformatErrorMessage(fmt, args));
    va_end(args);
}

int
cliMain(const std::function<int()> &body)
{
    try {
        return body();
    } catch (const InternalError &e) {
        // A SimError escaped to the CLI: dump the recent debug-trace
        // events (if any channel was recording) as a post-mortem.
        flushDebugRing(stderr);
        panic("%s", e.what());
    } catch (const SimError &e) {
        flushDebugRing(stderr);
        fatal("%s", e.what());
    } catch (const std::exception &e) {
        fatal("%s", e.what());
    }
}

} // namespace rampage
