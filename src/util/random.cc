#include "util/random.hh"

#include "util/logging.hh"

namespace rampage
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;

    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);

    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    RAMPAGE_ASSERT(bound != 0, "Rng::below requires a nonzero bound");
    // Multiply-shift mapping of a 64-bit draw into [0, bound).
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
}

double
Rng::unit()
{
    // 53 high bits give a uniform double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return unit() < p;
}

std::uint64_t
Rng::skewedBelow(std::uint64_t bound, double hot_fraction,
                 double hot_probability)
{
    RAMPAGE_ASSERT(bound != 0, "skewedBelow requires a nonzero bound");
    std::uint64_t hot = static_cast<std::uint64_t>(
        static_cast<double>(bound) * hot_fraction);
    if (hot == 0)
        hot = 1;
    if (hot >= bound || !chance(hot_probability))
        return below(bound);
    return below(hot);
}

} // namespace rampage
