#include "util/random.hh"

namespace rampage
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s)
        word = splitmix64(sm);
}

} // namespace rampage
