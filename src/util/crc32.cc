#include "util/crc32.hh"

#include <array>

namespace rampage
{

namespace
{

std::array<std::uint32_t, 256>
buildTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t value = i;
        for (int bit = 0; bit < 8; ++bit)
            value = (value >> 1) ^ ((value & 1) ? 0xEDB88320u : 0u);
        table[i] = value;
    }
    return table;
}

} // namespace

std::uint32_t
crc32(const void *data, std::size_t size, std::uint32_t seed)
{
    static const std::array<std::uint32_t, 256> table = buildTable();
    const auto *bytes = static_cast<const unsigned char *>(data);
    std::uint32_t crc = ~seed;
    for (std::size_t i = 0; i < size; ++i)
        crc = (crc >> 8) ^ table[(crc ^ bytes[i]) & 0xffu];
    return ~crc;
}

std::uint32_t
crc32(const std::string &text)
{
    return crc32(text.data(), text.size());
}

} // namespace rampage
