#include "util/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.hh"

namespace rampage
{

JsonValue
JsonValue::object()
{
    JsonValue v;
    v.typ = Type::Object;
    return v;
}

JsonValue
JsonValue::array()
{
    JsonValue v;
    v.typ = Type::Array;
    return v;
}

JsonValue
JsonValue::str(std::string value)
{
    JsonValue v;
    v.typ = Type::String;
    v.strVal = std::move(value);
    return v;
}

JsonValue
JsonValue::integer(std::int64_t value)
{
    JsonValue v;
    v.typ = Type::Integer;
    v.intVal = value;
    return v;
}

JsonValue
JsonValue::integer(std::uint64_t value)
{
    // Counters beyond int64 range don't occur at simulated scales;
    // saturate rather than wrap if one ever does.
    std::int64_t clamped =
        value > static_cast<std::uint64_t>(INT64_MAX)
            ? INT64_MAX
            : static_cast<std::int64_t>(value);
    return integer(clamped);
}

JsonValue
JsonValue::number(double value)
{
    JsonValue v;
    v.typ = Type::Number;
    v.numVal = value;
    return v;
}

JsonValue
JsonValue::boolean(bool value)
{
    JsonValue v;
    v.typ = Type::Bool;
    v.boolVal = value;
    return v;
}

double
JsonValue::asDouble() const
{
    return typ == Type::Integer ? static_cast<double>(intVal) : numVal;
}

std::int64_t
JsonValue::asInt() const
{
    return typ == Type::Number ? static_cast<std::int64_t>(numVal)
                               : intVal;
}

std::size_t
JsonValue::size() const
{
    return typ == Type::Object ? object_.size() : array_.size();
}

const JsonValue &
JsonValue::at(std::size_t index) const
{
    if (typ != Type::Array || index >= array_.size())
        throw ConfigError("json: array index %llu out of range",
                          static_cast<unsigned long long>(index));
    return array_[index];
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &member : object_)
        if (member.first == key)
            return &member.second;
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const JsonValue *found = find(key);
    if (!found)
        throw ConfigError("json: missing object key '%s'", key.c_str());
    return *found;
}

void
JsonValue::set(const std::string &key, JsonValue value)
{
    typ = Type::Object;
    for (auto &member : object_) {
        if (member.first == key) {
            member.second = std::move(value);
            return;
        }
    }
    object_.emplace_back(key, std::move(value));
}

void
JsonValue::push(JsonValue value)
{
    typ = Type::Array;
    array_.push_back(std::move(value));
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (unsigned char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

void
JsonValue::dumpTo(std::string &out, int indent, int depth) const
{
    auto newline = [&](int level) {
        if (indent <= 0)
            return;
        out += '\n';
        out.append(static_cast<std::size_t>(indent * level), ' ');
    };

    switch (typ) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += boolVal ? "true" : "false";
        break;
      case Type::Integer: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(intVal));
        out += buf;
        break;
      }
      case Type::Number: {
        if (!std::isfinite(numVal)) {
            out += "null"; // JSON has no NaN/Inf
            break;
        }
        // Integral doubles print as integers; everything else with
        // enough digits to round-trip.
        char buf[40];
        if (numVal == std::floor(numVal) && std::fabs(numVal) < 1e15) {
            std::snprintf(buf, sizeof(buf), "%lld",
                          static_cast<long long>(numVal));
        } else {
            std::snprintf(buf, sizeof(buf), "%.17g", numVal);
        }
        out += buf;
        break;
      }
      case Type::String:
        out += '"';
        out += jsonEscape(strVal);
        out += '"';
        break;
      case Type::Array:
        if (array_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < array_.size(); ++i) {
            if (i)
                out += indent > 0 ? "," : ", ";
            newline(depth + 1);
            array_[i].dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += ']';
        break;
      case Type::Object:
        if (object_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < object_.size(); ++i) {
            if (i)
                out += indent > 0 ? "," : ", ";
            newline(depth + 1);
            out += '"';
            out += jsonEscape(object_[i].first);
            out += "\": ";
            object_[i].second.dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += '}';
        break;
    }
}

std::string
JsonValue::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    if (indent > 0)
        out += '\n';
    return out;
}

// --------------------------------------------------------------- parser

namespace
{

/** Recursive-descent parser over a complete in-memory document. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : src(text) {}

    JsonValue
    parseDocument()
    {
        JsonValue value = parseValue();
        skipSpace();
        if (pos != src.size())
            fail("trailing characters after document");
        return value;
    }

  private:
    [[noreturn]] void
    fail(const char *what) const
    {
        throw ConfigError("json: %s at offset %llu", what,
                          static_cast<unsigned long long>(pos));
    }

    void
    skipSpace()
    {
        while (pos < src.size() &&
               std::isspace(static_cast<unsigned char>(src[pos])))
            ++pos;
    }

    char
    peek()
    {
        skipSpace();
        if (pos >= src.size())
            fail("unexpected end of input");
        return src[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail("unexpected character");
        ++pos;
    }

    bool
    consumeLiteral(const char *word)
    {
        std::size_t len = std::char_traits<char>::length(word);
        if (src.compare(pos, len, word) != 0)
            return false;
        pos += len;
        return true;
    }

    /**
     * Deepest container nesting accepted.  The parser recurses once
     * per '{'/'[', so an adversarial document of nothing but open
     * brackets would otherwise convert input length into C++ stack
     * depth; 128 is far beyond any legitimate config or repro file.
     */
    static constexpr unsigned maxDepth = 128;

    JsonValue
    parseValue()
    {
        switch (peek()) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return JsonValue::str(parseString());
          case 't':
            if (!consumeLiteral("true"))
                fail("bad literal");
            return JsonValue::boolean(true);
          case 'f':
            if (!consumeLiteral("false"))
                fail("bad literal");
            return JsonValue::boolean(false);
          case 'n':
            if (!consumeLiteral("null"))
                fail("bad literal");
            return JsonValue();
          default:
            return parseNumber();
        }
    }

    /** Depth guard for one container; throws past maxDepth. */
    struct Nesting
    {
        explicit Nesting(JsonParser &p) : parser(p)
        {
            if (++parser.depth > maxDepth)
                parser.fail("nesting deeper than 128 levels");
        }
        ~Nesting() { --parser.depth; }
        JsonParser &parser;
    };

    JsonValue
    parseObject()
    {
        Nesting nesting(*this);
        expect('{');
        JsonValue obj = JsonValue::object();
        if (peek() == '}') {
            ++pos;
            return obj;
        }
        for (;;) {
            if (peek() != '"')
                fail("expected object key");
            std::string key = parseString();
            expect(':');
            obj.set(key, parseValue());
            char next = peek();
            ++pos;
            if (next == '}')
                return obj;
            if (next != ',')
                fail("expected ',' or '}'");
        }
    }

    JsonValue
    parseArray()
    {
        Nesting nesting(*this);
        expect('[');
        JsonValue arr = JsonValue::array();
        if (peek() == ']') {
            ++pos;
            return arr;
        }
        for (;;) {
            arr.push(parseValue());
            char next = peek();
            ++pos;
            if (next == ']')
                return arr;
            if (next != ',')
                fail("expected ',' or ']'");
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (pos < src.size()) {
            char c = src[pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= src.size())
                fail("unterminated escape");
            char esc = src[pos++];
            switch (esc) {
              case '"':
              case '\\':
              case '/':
                out += esc;
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                if (pos + 4 > src.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = src[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                // The dumps above only escape control characters, so
                // a basic Latin-1 decode is all the reader needs.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                fail("unknown escape");
            }
        }
        fail("unterminated string");
    }

    JsonValue
    parseNumber()
    {
        skipSpace();
        std::size_t start = pos;
        bool is_double = false;
        if (pos < src.size() && src[pos] == '-')
            ++pos;
        while (pos < src.size()) {
            char c = src[pos];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                ++pos;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                is_double = true;
                ++pos;
            } else {
                break;
            }
        }
        if (pos == start ||
            (pos == start + 1 && src[start] == '-'))
            fail("bad number");
        std::string text = src.substr(start, pos - start);
        if (is_double)
            return JsonValue::number(std::strtod(text.c_str(), nullptr));
        return JsonValue::integer(static_cast<std::int64_t>(
            std::strtoll(text.c_str(), nullptr, 10)));
    }

    const std::string &src;
    std::size_t pos = 0;
    unsigned depth = 0; ///< current container nesting (see maxDepth)
};

} // namespace

JsonValue
JsonValue::parse(const std::string &text)
{
    return JsonParser(text).parseDocument();
}

} // namespace rampage
