/**
 * @file
 * gem5-style status and error reporting.
 *
 * Two error channels with distinct intents:
 *  - panic():  an internal simulator invariant broke (a bug in this
 *              code base); aborts so a debugger/core dump is useful.
 *  - fatal():  the *user's* configuration or input is unusable; exits
 *              with status 1.
 *
 * Two advisory channels:
 *  - warn():   something is modelled approximately and might matter.
 *  - inform(): plain status output.
 */

#ifndef RAMPAGE_UTIL_LOGGING_HH
#define RAMPAGE_UTIL_LOGGING_HH

#include <cstdarg>
#include <string>

namespace rampage
{

/**
 * Abort with a formatted message. Call when an internal invariant is
 * violated — i.e. a simulator bug, never a user error.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Exit(1) with a formatted message. Call when the simulation cannot
 * continue because of a user-supplied configuration or input problem.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning about approximate or suspicious modelling. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Suppress / restore warn() and inform() output (used by tests and by
 * benches that format their own tables).
 */
void setQuiet(bool quiet);

/** @return true while advisory output is suppressed. */
bool quiet();

} // namespace rampage

/**
 * Check a simulator invariant; panics with location info on failure.
 * Unlike assert() this is active in release builds — the simulator is
 * always expected to self-check its core invariants.
 */
#define RAMPAGE_ASSERT(cond, msg)                                          \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::rampage::panic("assertion '%s' failed at %s:%d: %s", #cond,  \
                             __FILE__, __LINE__, msg);                     \
        }                                                                  \
    } while (0)

#endif // RAMPAGE_UTIL_LOGGING_HH
