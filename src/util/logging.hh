/**
 * @file
 * gem5-style status and error reporting.
 *
 * Two *top-level* error channels with distinct intents:
 *  - panic():  an internal simulator invariant broke (a bug in this
 *              code base); aborts so a debugger/core dump is useful.
 *  - fatal():  the *user's* configuration or input is unusable; exits
 *              with status 1.
 *
 * Library code must not call either: it throws the typed exceptions
 * of util/error.hh (ConfigError / TraceError / InternalError) so that
 * a sweep campaign can fail one point in isolation.  fatal()/panic()
 * remain only for CLI entry points — normally via cliMain(), which
 * maps escaped exceptions onto them.
 *
 * Two advisory channels:
 *  - warn():   something is modelled approximately and might matter.
 *  - inform(): plain status output.
 *
 * Hot-loop variants keep a 24M-reference run from flooding stderr:
 *  - warnOnce():        first occurrence of a format string only;
 *  - warnRateLimited(): first few occurrences, then one suppression
 *                       notice (occurrences keep being counted).
 *
 * All reporters are safe to call from SweepRunner worker threads: the
 * quiet flag and rate limit are atomic, and the once/rate-limited
 * occurrence filters update and print under one lock, so "exactly
 * once" holds even when points warn concurrently.
 */

#ifndef RAMPAGE_UTIL_LOGGING_HH
#define RAMPAGE_UTIL_LOGGING_HH

#include <cstdarg>
#include <cstdint>
#include <string>

#include "util/error.hh" // historical home of RAMPAGE_ASSERT

namespace rampage
{

/**
 * Abort with a formatted message. Call when an internal invariant is
 * violated — i.e. a simulator bug, never a user error.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Exit(1) with a formatted message. Call when the simulation cannot
 * continue because of a user-supplied configuration or input problem.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning about approximate or suspicious modelling. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Print a warning only the first time this format string is seen.
 * Keyed on the format-string text, so every call site sharing one
 * template warns once per process regardless of its arguments.
 */
void warnOnce(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Rate-limited warning for per-reference/per-record conditions: the
 * first warnRateLimit() occurrences of a format string print, then a
 * single "further ... suppressed" notice; later occurrences are
 * counted but silent.
 */
void warnRateLimited(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Printed occurrences allowed per format string (default 5). */
std::uint64_t warnRateLimit();

/** Change the rate limit (0 restores the default). */
void setWarnRateLimit(std::uint64_t limit);

/** Total occurrences seen for a format string (tests/inspection). */
std::uint64_t warnOccurrences(const char *fmt);

/** Forget all warnOnce/warnRateLimited history (tests). */
void resetWarnFilters();

/** Print an informational status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Suppress / restore warn() and inform() output (used by tests and by
 * benches that format their own tables).
 */
void setQuiet(bool quiet);

/** @return true while advisory output is suppressed. */
bool quiet();

} // namespace rampage

#endif // RAMPAGE_UTIL_LOGGING_HH
