/**
 * @file
 * Bit-manipulation helpers used throughout the cache, TLB and pager
 * models: power-of-two checks, integer log2 and mask extraction.
 */

#ifndef RAMPAGE_UTIL_BITOPS_HH
#define RAMPAGE_UTIL_BITOPS_HH

#include <bit>
#include <cstdint>

#include "util/types.hh"

namespace rampage
{

/** @return true when value is a nonzero power of two. */
constexpr bool
isPowerOfTwo(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** @return floor(log2(value)); value must be nonzero. */
constexpr unsigned
floorLog2(std::uint64_t value)
{
    return 63u - static_cast<unsigned>(std::countl_zero(value));
}

/** @return ceil(log2(value)); value must be nonzero. */
constexpr unsigned
ceilLog2(std::uint64_t value)
{
    return isPowerOfTwo(value) ? floorLog2(value) : floorLog2(value) + 1;
}

/** @return addr with the low `bits` bits cleared. */
constexpr Addr
alignDown(Addr addr, unsigned bits)
{
    return addr & ~((Addr{1} << bits) - 1);
}

/** @return the low `bits` bits of addr. */
constexpr Addr
lowBits(Addr addr, unsigned bits)
{
    return addr & ((Addr{1} << bits) - 1);
}

/** @return value divided by a power-of-two divisor, rounded up. */
constexpr std::uint64_t
divCeil(std::uint64_t value, std::uint64_t divisor)
{
    return (value + divisor - 1) / divisor;
}

} // namespace rampage

#endif // RAMPAGE_UTIL_BITOPS_HH
