/**
 * @file
 * Recoverable error taxonomy.
 *
 * Library code never terminates the process: unusable input raises a
 * typed exception so callers — above all the fault-tolerant
 * `SweepRunner` — can fail one experiment point in isolation, record
 * the category, and keep the campaign going.
 *
 *  - ConfigError:   a user-supplied configuration is unusable
 *                   (geometry, units, environment variables);
 *  - TraceError:    a trace file or stream is missing, malformed or
 *                   truncated;
 *  - InternalError: a simulator invariant broke — a bug in this code
 *                   base (also raised by RAMPAGE_ASSERT and the
 *                   runaway-point watchdog);
 *  - AuditError:    a runtime model-integrity audit found live
 *                   component state violating a cross-component
 *                   invariant (see src/core/audit.hh);
 *  - IoError:       the host filesystem failed underneath us
 *                   (ENOSPC/EIO on a checkpoint manifest or telemetry
 *                   write) — transient by nature, so sweep campaigns
 *                   classify it as retryable;
 *  - TimeoutError:  a sweep point exceeded its configured deadline
 *                   and was cancelled cooperatively at the watchdog
 *                   seam; carries the references executed at cancel.
 *
 * The legacy fatal()/panic() reporters (util/logging.hh) survive only
 * as *top-level CLI handlers*: a bench or example wraps its body in
 * cliMain(), which maps ConfigError/TraceError to the historical
 * "fatal: ... exit(1)" behaviour, AuditError to "audit: ...
 * exit(auditExitStatus)" and InternalError to "panic: ... abort()".
 */

#ifndef RAMPAGE_UTIL_ERROR_HH
#define RAMPAGE_UTIL_ERROR_HH

#include <cstdarg>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

namespace rampage
{

/** Which kind of failure a SimError reports. */
enum class ErrorCategory { Config, Trace, Internal, Audit, Io, Timeout };

/** Stable lower-case name for a category ("config", "trace", ...). */
const char *errorCategoryName(ErrorCategory category);

/**
 * Whether a sweep point failing with this category is worth retrying:
 * trace and host-I/O failures are frequently transient (a file being
 * rewritten, a full disk being drained), while config, audit and
 * internal errors are deterministic — the same inputs will fail the
 * same way — and a timeout has already consumed its deadline once.
 */
bool isRetryableCategory(ErrorCategory category);

/** printf-style formatting into a std::string. */
std::string formatErrorMessage(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** va_list flavour of formatErrorMessage(). */
std::string vformatErrorMessage(const char *fmt, va_list args);

/** Base of the taxonomy; catch this to handle any simulator error. */
class SimError : public std::runtime_error
{
  public:
    ErrorCategory category() const { return cat; }

    const char *what() const noexcept override { return msg.c_str(); }

  protected:
    SimError(ErrorCategory category, std::string message)
        : std::runtime_error(message), cat(category),
          msg(std::move(message))
    {
    }

    /** Used by the printf-style derived constructors. */
    void setMessage(std::string message) { msg = std::move(message); }

  private:
    ErrorCategory cat;
    std::string msg;
};

/** A user-supplied configuration is unusable. */
class ConfigError : public SimError
{
  public:
    explicit ConfigError(const std::string &message)
        : SimError(ErrorCategory::Config, message)
    {
    }

    ConfigError(const char *fmt, ...)
        __attribute__((format(printf, 2, 3)));
};

/** A trace file or stream is missing, malformed or truncated. */
class TraceError : public SimError
{
  public:
    explicit TraceError(const std::string &message)
        : SimError(ErrorCategory::Trace, message)
    {
    }

    TraceError(const char *fmt, ...) __attribute__((format(printf, 2, 3)));
};

/** A simulator invariant broke — a bug in this code base. */
class InternalError : public SimError
{
  public:
    explicit InternalError(const std::string &message)
        : SimError(ErrorCategory::Internal, message)
    {
    }

    InternalError(const char *fmt, ...)
        __attribute__((format(printf, 2, 3)));
};

/**
 * The host filesystem failed underneath the simulator (a checkpoint
 * manifest or telemetry write hit ENOSPC/EIO).  Recoverable: sweep
 * campaigns classify it as retryable, and the manifest/telemetry
 * writers themselves degrade to warnOnce() naming the path rather
 * than failing the run.
 */
class IoError : public SimError
{
  public:
    explicit IoError(const std::string &message)
        : SimError(ErrorCategory::Io, message)
    {
    }

    IoError(const char *fmt, ...) __attribute__((format(printf, 2, 3)));
};

/**
 * A sweep point exceeded its configured wall-clock deadline
 * (`--point-deadline` / `RAMPAGE_DEADLINE`) and was cancelled
 * cooperatively at the reference-count watchdog seam.  Carries the
 * number of hierarchy references the point had executed when the
 * cancellation fired, which SweepRunner records in the outcome.
 */
class TimeoutError : public SimError
{
  public:
    TimeoutError(std::uint64_t refs_executed, const std::string &message)
        : SimError(ErrorCategory::Timeout, message), refs(refs_executed)
    {
    }

    TimeoutError(std::uint64_t refs_executed, const char *fmt, ...)
        __attribute__((format(printf, 3, 4)));

    /** Hierarchy references executed when the cancel fired. */
    std::uint64_t refsExecuted() const { return refs; }

  private:
    std::uint64_t refs = 0;
};

/** One invariant the Auditor found violated in live model state. */
struct AuditViolation
{
    /** Stable invariant name ("inclusion.l1", "time.conservation"). */
    std::string invariant;
    /** Formatted description of the violating state. */
    std::string detail;
};

/**
 * A runtime model-integrity audit failed.  Carries the structured
 * violation report so SweepRunner can record *which* invariant broke
 * and the CLI handler can print every violation, not just the first.
 */
class AuditError : public SimError
{
  public:
    AuditError(std::string scope, std::vector<AuditViolation> violations);

    const std::vector<AuditViolation> &violations() const
    {
        return viol;
    }

    /** First violated invariant's stable name (manifest key). */
    const std::string &firstInvariant() const;

    /** Where the audit ran ("quantum boundary (ref 40000)", ...). */
    const std::string &scope() const { return where; }

  private:
    std::string where;
    std::vector<AuditViolation> viol;
};

/** Process exit status cliMain() uses for an escaped AuditError. */
constexpr int auditExitStatus = 2;

/**
 * Top-level CLI handler for benches and examples: run `body` and map
 * escaped errors to the historical process-exit behaviour — user /
 * trace errors print "fatal: ..." and exit(1), audit failures print
 * "audit: ..." and exit(auditExitStatus), internal errors print
 * "panic: ..." and abort so a core dump stays useful.
 */
int cliMain(const std::function<int()> &body);

} // namespace rampage

/**
 * Check a simulator invariant; throws InternalError with location info
 * on failure.  Unlike assert() this is active in release builds — the
 * simulator is always expected to self-check its core invariants.
 * Throwing (rather than aborting) lets a sweep campaign record the bug
 * and move to the next point; a standalone CLI still aborts via
 * cliMain().
 */
#define RAMPAGE_ASSERT(cond, msg)                                          \
    do {                                                                   \
        if (!(cond)) {                                                     \
            throw ::rampage::InternalError(                                \
                "assertion '%s' failed at %s:%d: %s", #cond, __FILE__,     \
                __LINE__, msg);                                            \
        }                                                                  \
    } while (0)

#endif // RAMPAGE_UTIL_ERROR_HH
