#include "util/debug.hh"

#include <algorithm>
#include <array>
#include <cstdarg>
#include <cstdlib>

#include "util/error.hh"
#include "util/logging.hh"

namespace rampage
{

namespace
{

constexpr std::size_t ringCapacity = 128;

struct DebugState
{
    unsigned enabledMask = 0;
    bool initialized = false;

    std::array<std::string, ringCapacity> ring;
    std::size_t ringNext = 0;  ///< slot the next event lands in
    std::size_t ringCount = 0; ///< valid events, <= ringCapacity
};

DebugState &
state()
{
    static DebugState instance;
    return instance;
}

const char *const channelNames[numDebugChannels] = {
    "cache", "tlb", "pager", "sched", "dram", "trace", "audit",
};

/** Parse one channel name; numDebugChannels when unknown. */
unsigned
channelIndex(const std::string &name)
{
    for (unsigned i = 0; i < numDebugChannels; ++i)
        if (name == channelNames[i])
            return i;
    return numDebugChannels;
}

void
initFromEnv()
{
    DebugState &st = state();
    if (st.initialized)
        return;
    st.initialized = true;
    const char *env = std::getenv("RAMPAGE_DEBUG");
    if (env && *env)
        setDebugChannels(env, /*strict=*/false);
}

} // namespace

const char *
debugChannelName(DebugChannel channel)
{
    unsigned idx = static_cast<unsigned>(channel);
    return idx < numDebugChannels ? channelNames[idx] : "unknown";
}

std::string
debugChannelList()
{
    std::string out;
    for (unsigned i = 0; i < numDebugChannels; ++i) {
        if (i)
            out += ',';
        out += channelNames[i];
    }
    return out;
}

void
setDebugChannels(const std::string &spec, bool strict)
{
    DebugState &st = state();
    st.initialized = true;
    st.enabledMask = 0;
    if (spec.empty() || spec == "none")
        return;

    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string name = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (name.empty())
            continue;
        if (name == "all") {
            st.enabledMask = (1u << numDebugChannels) - 1;
            continue;
        }
        unsigned idx = channelIndex(name);
        if (idx == numDebugChannels) {
            if (strict)
                throw ConfigError(
                    "unknown debug channel '%s' (known: %s,all)",
                    name.c_str(), debugChannelList().c_str());
            warn("RAMPAGE_DEBUG: ignoring unknown channel '%s' "
                 "(known: %s,all)",
                 name.c_str(), debugChannelList().c_str());
            continue;
        }
        st.enabledMask |= 1u << idx;
    }
}

bool
debugEnabled(DebugChannel channel)
{
    initFromEnv();
    unsigned idx = static_cast<unsigned>(channel);
    return idx < numDebugChannels &&
           (state().enabledMask & (1u << idx)) != 0;
}

void
debugRecord(DebugChannel channel, const std::string &message)
{
    DebugState &st = state();
    std::string line = debugChannelName(channel);
    line += ": ";
    line += message;
    st.ring[st.ringNext] = std::move(line);
    st.ringNext = (st.ringNext + 1) % ringCapacity;
    if (st.ringCount < ringCapacity)
        ++st.ringCount;
}

void
debugLog(DebugChannel channel, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string message = vformatErrorMessage(fmt, args);
    va_end(args);

    std::fprintf(stderr, "debug[%s]: %s\n", debugChannelName(channel),
                 message.c_str());
    debugRecord(channel, message);
}

std::vector<std::string>
debugRingTail(std::size_t max_events)
{
    const DebugState &st = state();
    std::size_t take = std::min(max_events, st.ringCount);
    std::vector<std::string> tail;
    tail.reserve(take);
    // ringNext is one past the newest event; walk back `take` slots.
    std::size_t start =
        (st.ringNext + ringCapacity - take) % ringCapacity;
    for (std::size_t i = 0; i < take; ++i)
        tail.push_back(st.ring[(start + i) % ringCapacity]);
    return tail;
}

std::size_t
debugRingSize()
{
    return state().ringCount;
}

void
clearDebugRing()
{
    DebugState &st = state();
    for (std::string &slot : st.ring)
        slot.clear();
    st.ringNext = 0;
    st.ringCount = 0;
}

void
flushDebugRing(std::FILE *out)
{
    std::vector<std::string> tail = debugRingTail();
    if (tail.empty())
        return;
    std::fprintf(out, "---- last %zu debug events ----\n", tail.size());
    for (const std::string &line : tail)
        std::fprintf(out, "  %s\n", line.c_str());
    std::fprintf(out, "---- end debug events ----\n");
    clearDebugRing();
}

} // namespace rampage
