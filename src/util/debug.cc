#include "util/debug.hh"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdarg>
#include <cstdint>
#include <cstdlib>
#include <mutex>

#include <unistd.h>

#include "util/error.hh"
#include "util/logging.hh"

namespace rampage
{

namespace
{

constexpr std::size_t ringCapacity = 128;

/**
 * The post-mortem ring is thread-local: each SweepRunner worker (and
 * the main thread) records into its own ring, so a concurrent
 * campaign's failing point flushes a tail holding only its own
 * events.  The channel mask stays process-global — which subsystems
 * are being traced is a per-run decision, not a per-thread one.
 */
struct RingState
{
    std::array<std::string, ringCapacity> ring;
    std::size_t next = 0;  ///< slot the next event lands in
    std::size_t count = 0; ///< valid events, <= ringCapacity
};

RingState &
ring()
{
    thread_local RingState instance;
    return instance;
}

std::atomic<unsigned> enabledMask{0};
std::atomic<bool> maskResolved{false};
std::mutex maskMutex; ///< serializes env-init against setDebugChannels

const char *const channelNames[numDebugChannels] = {
    "cache", "tlb", "pager", "sched", "dram", "trace", "audit",
};

/** Parse one channel name; numDebugChannels when unknown. */
unsigned
channelIndex(const std::string &name)
{
    for (unsigned i = 0; i < numDebugChannels; ++i)
        if (name == channelNames[i])
            return i;
    return numDebugChannels;
}

/** Parse a channel spec into a mask (throws/warns per `strict`). */
unsigned
parseChannelMask(const std::string &spec, bool strict)
{
    unsigned mask = 0;
    if (spec.empty() || spec == "none")
        return mask;

    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string name = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (name.empty())
            continue;
        if (name == "all") {
            mask = (1u << numDebugChannels) - 1;
            continue;
        }
        unsigned idx = channelIndex(name);
        if (idx == numDebugChannels) {
            if (strict)
                throw ConfigError(
                    "unknown debug channel '%s' (known: %s,all)",
                    name.c_str(), debugChannelList().c_str());
            warn("RAMPAGE_DEBUG: ignoring unknown channel '%s' "
                 "(known: %s,all)",
                 name.c_str(), debugChannelList().c_str());
            continue;
        }
        mask |= 1u << idx;
    }
    return mask;
}

void
initFromEnv()
{
    if (maskResolved.load(std::memory_order_acquire))
        return;
    std::lock_guard<std::mutex> lock(maskMutex);
    if (maskResolved.load(std::memory_order_relaxed))
        return;
    const char *env = std::getenv("RAMPAGE_DEBUG");
    if (env && *env)
        enabledMask.store(parseChannelMask(env, /*strict=*/false),
                          std::memory_order_relaxed);
    maskResolved.store(true, std::memory_order_release);
}

} // namespace

const char *
debugChannelName(DebugChannel channel)
{
    unsigned idx = static_cast<unsigned>(channel);
    return idx < numDebugChannels ? channelNames[idx] : "unknown";
}

std::string
debugChannelList()
{
    std::string out;
    for (unsigned i = 0; i < numDebugChannels; ++i) {
        if (i)
            out += ',';
        out += channelNames[i];
    }
    return out;
}

void
setDebugChannels(const std::string &spec, bool strict)
{
    // Parse first so a strict error leaves the mask unchanged.
    unsigned mask = parseChannelMask(spec, strict);
    std::lock_guard<std::mutex> lock(maskMutex);
    enabledMask.store(mask, std::memory_order_relaxed);
    maskResolved.store(true, std::memory_order_release);
}

bool
debugEnabled(DebugChannel channel)
{
    initFromEnv();
    unsigned idx = static_cast<unsigned>(channel);
    return idx < numDebugChannels &&
           (enabledMask.load(std::memory_order_relaxed) & (1u << idx)) !=
               0;
}

void
debugRecord(DebugChannel channel, const std::string &message)
{
    std::string line = debugChannelName(channel);
    line += ": ";
    line += message;
    debugRecordRaw(std::move(line));
}

void
debugRecordRaw(std::string line)
{
    RingState &st = ring();
    st.ring[st.next] = std::move(line);
    st.next = (st.next + 1) % ringCapacity;
    if (st.count < ringCapacity)
        ++st.count;
}

void
debugReplay(const std::vector<std::string> &events)
{
    for (const std::string &event : events)
        debugRecordRaw(event);
}

void
debugLog(DebugChannel channel, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string message = vformatErrorMessage(fmt, args);
    va_end(args);

    std::fprintf(stderr, "debug[%s]: %s\n", debugChannelName(channel),
                 message.c_str());
    debugRecord(channel, message);
}

std::vector<std::string>
debugRingTail(std::size_t max_events)
{
    const RingState &st = ring();
    std::size_t take = std::min(max_events, st.count);
    std::vector<std::string> tail;
    tail.reserve(take);
    // `next` is one past the newest event; walk back `take` slots.
    std::size_t start = (st.next + ringCapacity - take) % ringCapacity;
    for (std::size_t i = 0; i < take; ++i)
        tail.push_back(st.ring[(start + i) % ringCapacity]);
    return tail;
}

std::size_t
debugRingSize()
{
    return ring().count;
}

void
clearDebugRing()
{
    RingState &st = ring();
    for (std::string &slot : st.ring)
        slot.clear();
    st.next = 0;
    st.count = 0;
}

void
debugRingWriteFramed(int fd, char tag)
{
    const RingState &st = ring();
    std::size_t start =
        (st.next + ringCapacity - st.count) % ringCapacity;
    for (std::size_t i = 0; i < st.count; ++i) {
        const std::string &line = st.ring[(start + i) % ringCapacity];
        unsigned char header[5];
        header[0] = static_cast<unsigned char>(tag);
        std::uint32_t size = static_cast<std::uint32_t>(line.size());
        header[1] = static_cast<unsigned char>(size & 0xff);
        header[2] = static_cast<unsigned char>((size >> 8) & 0xff);
        header[3] = static_cast<unsigned char>((size >> 16) & 0xff);
        header[4] = static_cast<unsigned char>((size >> 24) & 0xff);
        if (::write(fd, header, sizeof(header)) !=
            static_cast<ssize_t>(sizeof(header)))
            return;
        if (!line.empty() &&
            ::write(fd, line.data(), line.size()) !=
                static_cast<ssize_t>(line.size()))
            return;
    }
}

void
flushDebugRing(std::FILE *out)
{
    std::vector<std::string> tail = debugRingTail();
    if (tail.empty())
        return;
    std::fprintf(out, "---- last %zu debug events ----\n", tail.size());
    for (const std::string &line : tail)
        std::fprintf(out, "  %s\n", line.c_str());
    std::fprintf(out, "---- end debug events ----\n");
    clearDebugRing();
}

} // namespace rampage
