/**
 * @file
 * CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven.
 *
 * Used by the sweep checkpoint manifest to make every appended line
 * self-verifying: a resume can tell a torn or bit-damaged line from a
 * genuine record without trusting the file's structure, so a
 * `kill -9` mid-append costs exactly one re-simulated point.
 */

#ifndef RAMPAGE_UTIL_CRC32_HH
#define RAMPAGE_UTIL_CRC32_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace rampage
{

/** CRC-32 of `size` bytes, optionally continuing a running `seed`. */
std::uint32_t crc32(const void *data, std::size_t size,
                    std::uint32_t seed = 0);

/** Convenience overload for text payloads (manifest lines). */
std::uint32_t crc32(const std::string &text);

} // namespace rampage

#endif // RAMPAGE_UTIL_CRC32_HH
