/**
 * @file
 * Shell-style glob matching for stat names ("tlb.*", "l1?.misses",
 * "sim.trace.*").  Used by the benches' --stats-filter flag and the
 * interval-stats writer to scope telemetry dumps to the counters an
 * experiment actually cares about.
 */

#ifndef RAMPAGE_UTIL_GLOB_HH
#define RAMPAGE_UTIL_GLOB_HH

#include <string>

namespace rampage
{

/**
 * Match `text` against `pattern`, where '*' matches any run of
 * characters (including none) and '?' matches exactly one.  All other
 * characters — including '.' — match literally, so "tlb.*" matches
 * every stat under the tlb component and nothing else.
 */
bool globMatch(const std::string &pattern, const std::string &text);

} // namespace rampage

#endif // RAMPAGE_UTIL_GLOB_HH
