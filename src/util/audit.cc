#include "util/audit.hh"

#include <cstdarg>

#include "util/debug.hh"

namespace rampage
{

namespace
{

/**
 * A single corrupted structure can violate one invariant thousands of
 * times (every L1 block of a leaked page, say); keep the report and
 * the what() line bounded while still counting everything.
 */
constexpr std::size_t maxRecordedViolations = 16;

} // namespace

AuditContext::AuditContext(std::string scope)
    : scopeName(std::move(scope))
{
}

bool
AuditContext::check(bool ok, const char *invariant, const char *fmt, ...)
{
    ++nChecks;
    if (ok)
        return true;

    ++nViolations;
    va_list args;
    va_start(args, fmt);
    std::string detail = vformatErrorMessage(fmt, args);
    va_end(args);

    // Mirror into the ring so a post-mortem flush (cliMain, sweep
    // failure outcomes) shows every violation, not just the first.
    debugRecord(DebugChannel::Audit,
                formatErrorMessage("violated %s at %s: %s", invariant,
                                   scopeName.c_str(), detail.c_str()));
    if (debugEnabled(DebugChannel::Audit))
        debugLog(DebugChannel::Audit, "violated %s: %s", invariant,
                 detail.c_str());

    if (viol.size() < maxRecordedViolations)
        viol.push_back(AuditViolation{invariant, std::move(detail)});
    return false;
}

void
AuditContext::raiseIfViolated()
{
    if (viol.empty())
        return;
    if (nViolations > viol.size())
        viol.push_back(AuditViolation{
            "audit.truncated",
            formatErrorMessage(
                "%llu further violations not recorded",
                static_cast<unsigned long long>(nViolations -
                                                viol.size()))});
    throw AuditError(scopeName, std::move(viol));
}

} // namespace rampage
