/**
 * @file
 * gem5-DPRINTF-style per-subsystem debug tracing.
 *
 * Seven channels — cache, tlb, pager, sched, dram, trace, audit — are
 * selected
 * at runtime via the RAMPAGE_DEBUG environment variable (a comma list
 * such as "pager,sched", or "all") or programmatically through
 * setDebugChannels() (the benches' --debug flag).  Trace points use
 *
 *     RAMPAGE_DPRINTF(Pager, "fault pid=%u vpn=%llx", pid, vpn);
 *
 * which compiles to nothing in Release builds (NDEBUG): the format
 * arguments are never evaluated, so tracing adds zero overhead to
 * production sweeps.  In Debug builds an enabled channel prints
 * "debug[pager]: ..." to stderr.
 *
 * Every emitted event is also copied into a small bounded ring
 * buffer.  When a SimError escapes to a CLI (cliMain) or fails a
 * sweep point (SweepRunner), the ring's tail is flushed into the
 * failure report, turning a bare error message into a post-mortem
 * with the events leading up to it.  The ring runtime itself is
 * built in every configuration (tests and tools can record into it
 * directly); only the macro is compiled out.
 *
 * Thread model: the channel mask is process-global (atomic reads on
 * the trace path; setDebugChannels() is safe against the lazy
 * RAMPAGE_DEBUG init), while the ring is *thread-local* — every
 * SweepRunner worker accumulates its own post-mortem tail, so
 * concurrently failing points never interleave events.  Ring
 * accessors (record/tail/clear/flush) therefore act on the calling
 * thread's ring only.
 */

#ifndef RAMPAGE_UTIL_DEBUG_HH
#define RAMPAGE_UTIL_DEBUG_HH

#include <cstdio>
#include <string>
#include <vector>

namespace rampage
{

/** The per-subsystem trace channels. */
enum class DebugChannel : unsigned
{
    Cache, ///< L1/L2 misses, evictions, inclusion traffic
    Tlb,   ///< TLB misses, fills, shoot-downs
    Pager, ///< SRAM main-memory faults, victims, write-backs
    Sched, ///< context switches, blocks, stalls
    Dram,  ///< DRAM transactions
    Trace, ///< trace ingestion (rewinds, malformed records)
    Audit, ///< model-integrity audit runs and violations
};

constexpr unsigned numDebugChannels = 7;

/** Stable lower-case channel name ("cache", "tlb", ...). */
const char *debugChannelName(DebugChannel channel);

/** Comma-separated list of every channel name (for usage text). */
std::string debugChannelList();

/**
 * Enable exactly the channels in `spec`: a comma-separated list of
 * channel names, "all", or "" / "none" to disable tracing.  With
 * `strict` (the --debug flag) an unknown name throws ConfigError;
 * without it (the RAMPAGE_DEBUG environment variable) unknown names
 * are warned about and skipped.
 */
void setDebugChannels(const std::string &spec, bool strict = true);

/** @return true when `channel` is enabled (RAMPAGE_DEBUG is read lazily). */
bool debugEnabled(DebugChannel channel);

/**
 * Format, print "debug[channel]: ..." to stderr and record the event
 * in the ring buffer.  Called via RAMPAGE_DPRINTF; callers should
 * check debugEnabled() first (the macro does).
 */
void debugLog(DebugChannel channel, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/**
 * Record an already-formatted event in the ring buffer without
 * printing it (used by debugLog and directly by tests).
 */
void debugRecord(DebugChannel channel, const std::string &message);

/**
 * Record a fully rendered "channel: message" line verbatim (no
 * channel prefix added) in the calling thread's ring.
 */
void debugRecordRaw(std::string line);

/**
 * Load a previously captured tail (e.g. a PointOutcome::debugTail
 * from a worker thread) into the calling thread's ring, so a
 * top-level flushDebugRing() post-mortem can show events that were
 * recorded on another thread.
 */
void debugReplay(const std::vector<std::string> &events);

/** Most recent ring events, oldest first, at most `max_events`. */
std::vector<std::string> debugRingTail(std::size_t max_events = 32);

/** Number of events currently held in the ring. */
std::size_t debugRingSize();

/** Discard all ring events (sweep points start with a clean ring). */
void clearDebugRing();

/**
 * Print the ring's tail to `out` with a framing header, then clear
 * it.  No-op when the ring is empty.  Called when a SimError escapes.
 */
void flushDebugRing(std::FILE *out);

/**
 * Write the calling thread's ring events to a file descriptor as
 * framed records (tag byte `tag`, 4-byte little-endian length,
 * payload), oldest first, using only write(2) — no allocation, no
 * stdio.  This is the `--isolate` crash relay: a child's fatal-signal
 * handler streams its post-mortem tail up the outcome pipe before
 * re-raising, so the parent can attach it to the Crashed outcome.
 */
void debugRingWriteFramed(int fd, char tag);

} // namespace rampage

/**
 * Subsystem trace point.  `channel` is a bare DebugChannel enumerator
 * (Cache, Tlb, Pager, Sched, Dram, Trace); the remaining arguments are
 * printf-style.  Compiled out entirely (arguments unevaluated) when
 * NDEBUG is defined, i.e. in Release and RelWithDebInfo builds.
 */
#ifndef NDEBUG
#define RAMPAGE_DPRINTF(channel, ...)                                      \
    do {                                                                   \
        if (::rampage::debugEnabled(                                       \
                ::rampage::DebugChannel::channel)) {                       \
            ::rampage::debugLog(::rampage::DebugChannel::channel,          \
                                __VA_ARGS__);                              \
        }                                                                  \
    } while (0)
#else
#define RAMPAGE_DPRINTF(channel, ...)                                      \
    do {                                                                   \
    } while (0)
#endif

#endif // RAMPAGE_UTIL_DEBUG_HH
