/**
 * @file
 * Parsing and formatting of human-readable quantities: byte sizes
 * ("128B", "4KB", "4.125MB"), frequencies ("200MHz", "4GHz") and
 * simulated time.  Used by benches, examples and environment-variable
 * configuration.
 */

#ifndef RAMPAGE_UTIL_UNITS_HH
#define RAMPAGE_UTIL_UNITS_HH

#include <cstdint>
#include <string>

#include "util/types.hh"

namespace rampage
{

/**
 * Parse a byte size such as "128", "128B", "4KB", "1MB", "2GiB".
 * Binary (1024-based) multipliers throughout, matching the paper's
 * usage. Throws ConfigError on malformed input.
 */
std::uint64_t parseByteSize(const std::string &text);

/**
 * Parse a frequency such as "200MHz", "4GHz", "1000000000" (Hz).
 * Throws ConfigError on malformed input.
 */
std::uint64_t parseFrequency(const std::string &text);

/** Format a byte count compactly, e.g. 4096 -> "4KB", 132 -> "132B". */
std::string formatByteSize(std::uint64_t bytes);

/** Format a frequency compactly, e.g. 200000000 -> "200MHz". */
std::string formatFrequency(std::uint64_t hz);

/** Format picoseconds as seconds with the given precision. */
std::string formatSeconds(Tick ps, int precision = 4);

/** @return the CPU cycle time in picoseconds for an issue rate in Hz. */
Tick cycleTimePs(std::uint64_t hz);

} // namespace rampage

#endif // RAMPAGE_UTIL_UNITS_HH
