/**
 * @file
 * Minimal JSON document model for machine-readable run telemetry.
 *
 * Every bench can write its results and a full stats dump as JSON
 * (`--json <path>`), the sweep runner records structured outcomes,
 * and the stats registry serializes snapshots — all through this one
 * small value type.  Objects preserve insertion order so dumps are
 * stable and diffable across runs.
 *
 * The parser exists so tests can genuinely round-trip a dump (and so
 * tools built on the library can read their own output); it accepts
 * strict JSON only and throws ConfigError on malformed input.
 */

#ifndef RAMPAGE_UTIL_JSON_HH
#define RAMPAGE_UTIL_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace rampage
{

/** One JSON value: null, bool, number, string, array or object. */
class JsonValue
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Integer, ///< stored exactly as a signed 64-bit integer
        Number,  ///< stored as a double
        String,
        Array,
        Object,
    };

    JsonValue() = default;

    // --- factories ---------------------------------------------------
    static JsonValue object();
    static JsonValue array();
    static JsonValue str(std::string value);
    static JsonValue integer(std::int64_t value);
    static JsonValue integer(std::uint64_t value);
    static JsonValue number(double value);
    static JsonValue boolean(bool value);

    // --- inspection --------------------------------------------------
    Type type() const { return typ; }
    bool isNull() const { return typ == Type::Null; }
    bool isObject() const { return typ == Type::Object; }
    bool isArray() const { return typ == Type::Array; }
    bool isNumber() const
    {
        return typ == Type::Number || typ == Type::Integer;
    }
    bool isString() const { return typ == Type::String; }

    bool asBool() const { return boolVal; }
    double asDouble() const;
    std::int64_t asInt() const;
    const std::string &asString() const { return strVal; }

    /** Array/object element count. */
    std::size_t size() const;

    /** Array element access (ConfigError when out of range). */
    const JsonValue &at(std::size_t index) const;

    /** Object member lookup; nullptr when absent. */
    const JsonValue *find(const std::string &key) const;

    /** Object member access (ConfigError when absent). */
    const JsonValue &at(const std::string &key) const;

    /** Object members in insertion order. */
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return object_;
    }

    // --- construction ------------------------------------------------
    /** Set an object member (replaces an existing key). */
    void set(const std::string &key, JsonValue value);

    /** Append an array element. */
    void push(JsonValue value);

    // --- serialization ------------------------------------------------
    /**
     * Serialize.  `indent` > 0 pretty-prints with that many spaces
     * per level; 0 emits a compact single line.  Non-finite numbers
     * serialize as null (JSON has no NaN/Inf).
     */
    std::string dump(int indent = 2) const;

    /** Parse strict JSON; throws ConfigError on malformed input. */
    static JsonValue parse(const std::string &text);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Type typ = Type::Null;
    bool boolVal = false;
    std::int64_t intVal = 0;
    double numVal = 0.0;
    std::string strVal;
    std::vector<JsonValue> array_;
    std::vector<std::pair<std::string, JsonValue>> object_;
};

/** Escape a string for embedding in JSON (no surrounding quotes). */
std::string jsonEscape(const std::string &text);

} // namespace rampage

#endif // RAMPAGE_UTIL_JSON_HH
