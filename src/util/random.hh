/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic element of the simulator (random cache/TLB
 * replacement, synthetic trace generation) draws from an explicitly
 * seeded Rng instance so that runs are bit-reproducible. std::mt19937
 * is avoided because its heavy state makes per-object generators
 * wasteful; this is the xoshiro256** generator seeded via splitmix64.
 */

#ifndef RAMPAGE_UTIL_RANDOM_HH
#define RAMPAGE_UTIL_RANDOM_HH

#include <cstdint>

#include "util/error.hh"

namespace rampage
{

/**
 * Small, fast, seedable PRNG (xoshiro256**).
 *
 * Statistically strong enough for replacement-policy and workload
 * randomness while being a few instructions per draw.
 */
class Rng
{
  public:
    /** Seed deterministically; the same seed yields the same stream. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    // The draw methods are defined inline: synthetic trace
    // generation makes tens of millions of draws per simulated
    // second, and the per-call overhead of out-of-line definitions
    // was visible in profiles.

    /** @return a uniformly distributed 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
        const std::uint64_t t = s[1] << 17;

        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);

        return result;
    }

    /**
     * @return a uniform integer in [0, bound); bound must be nonzero.
     * Uses Lemire's multiply-shift rejection-free mapping (the tiny
     * modulo bias is irrelevant at simulator scales).
     */
    std::uint64_t
    below(std::uint64_t bound)
    {
        RAMPAGE_ASSERT(bound != 0, "Rng::below requires a nonzero bound");
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** @return a uniform double in [0, 1). */
    double
    unit()
    {
        // 53 high bits give a uniform double in [0, 1).
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** @return true with probability p (clamped to [0, 1]). */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return unit() < p;
    }

    /**
     * @return a sample from a bounded geometric-ish distribution in
     * [0, bound), biased toward 0 with the given mean fraction; used
     * for temporally-skewed working set sampling.
     */
    std::uint64_t
    skewedBelow(std::uint64_t bound, double hot_fraction,
                double hot_probability)
    {
        RAMPAGE_ASSERT(bound != 0, "skewedBelow requires a nonzero bound");
        std::uint64_t hot = static_cast<std::uint64_t>(
            static_cast<double>(bound) * hot_fraction);
        if (hot == 0)
            hot = 1;
        return skewedBelowCached(bound, hot, hot_probability);
    }

    /**
     * skewedBelow() with the hot span precomputed by the caller —
     * identical draw sequence (the short-circuit on hot >= bound skips
     * the probability draw exactly as skewedBelow does).  The
     * synthetic trace generators cache the span per profile so the
     * per-reference floating-point hot computation disappears from
     * the trace_gen hot loop.
     */
    std::uint64_t
    skewedBelowCached(std::uint64_t bound, std::uint64_t hot,
                      double hot_probability)
    {
        RAMPAGE_ASSERT(bound != 0,
                       "skewedBelowCached requires a nonzero bound");
        if (hot >= bound || !chance(hot_probability))
            return below(bound);
        return below(hot);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s[4];
};

} // namespace rampage

#endif // RAMPAGE_UTIL_RANDOM_HH
