/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic element of the simulator (random cache/TLB
 * replacement, synthetic trace generation) draws from an explicitly
 * seeded Rng instance so that runs are bit-reproducible. std::mt19937
 * is avoided because its heavy state makes per-object generators
 * wasteful; this is the xoshiro256** generator seeded via splitmix64.
 */

#ifndef RAMPAGE_UTIL_RANDOM_HH
#define RAMPAGE_UTIL_RANDOM_HH

#include <cstdint>

namespace rampage
{

/**
 * Small, fast, seedable PRNG (xoshiro256**).
 *
 * Statistically strong enough for replacement-policy and workload
 * randomness while being a few instructions per draw.
 */
class Rng
{
  public:
    /** Seed deterministically; the same seed yields the same stream. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** @return a uniformly distributed 64-bit value. */
    std::uint64_t next();

    /**
     * @return a uniform integer in [0, bound); bound must be nonzero.
     * Uses Lemire's multiply-shift rejection-free mapping (the tiny
     * modulo bias is irrelevant at simulator scales).
     */
    std::uint64_t below(std::uint64_t bound);

    /** @return a uniform double in [0, 1). */
    double unit();

    /** @return true with probability p (clamped to [0, 1]). */
    bool chance(double p);

    /**
     * @return a sample from a bounded geometric-ish distribution in
     * [0, bound), biased toward 0 with the given mean fraction; used
     * for temporally-skewed working set sampling.
     */
    std::uint64_t skewedBelow(std::uint64_t bound, double hot_fraction,
                              double hot_probability);

  private:
    std::uint64_t s[4];
};

} // namespace rampage

#endif // RAMPAGE_UTIL_RANDOM_HH
