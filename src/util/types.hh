/**
 * @file
 * Fundamental scalar types shared by every module in the RAMpage
 * simulator: addresses, time (integer picoseconds), cycle counts and
 * process identifiers.
 *
 * All simulated time is kept in integer picoseconds so that costs such
 * as the Direct Rambus 1.25 ns transfer beat and a 4 GHz (250 ps) CPU
 * cycle compose without rounding drift.
 */

#ifndef RAMPAGE_UTIL_TYPES_HH
#define RAMPAGE_UTIL_TYPES_HH

#include <cstdint>

namespace rampage
{

/** A virtual or physical byte address. */
using Addr = std::uint64_t;

/** Simulated time in integer picoseconds. */
using Tick = std::uint64_t;

/** A count of CPU (issue) cycles. */
using Cycles = std::uint64_t;

/** Process (address-space) identifier; traces carry one per stream. */
using Pid = std::uint16_t;

/**
 * Identifier of one CPU core (one CoreFrontend) in a multicore
 * system.  Every request a frontend issues to the shared memory
 * backend carries one (see core/core_frontend.hh).
 */
using CoreId = std::uint32_t;

/** Reserved pid for operating-system handler references. */
constexpr Pid osPid = 0xffff;

/** Picoseconds per common units. */
constexpr Tick psPerNs = 1000;
constexpr Tick psPerUs = 1000 * psPerNs;
constexpr Tick psPerMs = 1000 * psPerUs;
constexpr Tick psPerSec = 1000 * psPerMs;

/** Bytes per common units. */
constexpr std::uint64_t kib = 1024;
constexpr std::uint64_t mib = 1024 * kib;
constexpr std::uint64_t gib = 1024 * mib;

} // namespace rampage

#endif // RAMPAGE_UTIL_TYPES_HH
