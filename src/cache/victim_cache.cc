#include "cache/victim_cache.hh"

#include "util/bitops.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace rampage
{

VictimCache::VictimCache(unsigned entries, std::uint64_t block_bytes)
{
    RAMPAGE_ASSERT(entries > 0, "victim cache needs at least one entry");
    if (!isPowerOfTwo(block_bytes))
        throw ConfigError("victim cache block size must be a power of two");
    entriesVec.assign(entries, Entry{});
    blockMaskBits = floorLog2(block_bytes);
}

VictimCache::Displaced
VictimCache::insert(Addr block_addr, bool dirty)
{
    Addr aligned = alignDown(block_addr, blockMaskBits);
    ++seq;

    // Refresh in place if already present (can happen when the same
    // block bounces between the main cache and the buffer).
    for (Entry &entry : entriesVec) {
        if (entry.valid && entry.addr == aligned) {
            entry.dirty = entry.dirty || dirty;
            entry.stamp = seq;
            return Displaced{};
        }
    }

    // Take an invalid slot, else displace the oldest (FIFO).
    Entry *slot = nullptr;
    for (Entry &entry : entriesVec) {
        if (!entry.valid) {
            slot = &entry;
            break;
        }
    }
    Displaced displaced;
    if (!slot) {
        slot = &entriesVec[0];
        for (Entry &entry : entriesVec)
            if (entry.stamp < slot->stamp)
                slot = &entry;
        displaced.valid = true;
        displaced.dirty = slot->dirty;
        displaced.addr = slot->addr;
    }
    slot->valid = true;
    slot->dirty = dirty;
    slot->addr = aligned;
    slot->stamp = seq;
    return displaced;
}

VictimCache::Extracted
VictimCache::extract(Addr block_addr)
{
    Addr aligned = alignDown(block_addr, blockMaskBits);
    ++lookupCount;
    for (Entry &entry : entriesVec) {
        if (entry.valid && entry.addr == aligned) {
            Extracted result{true, entry.dirty};
            entry.valid = false;
            entry.dirty = false;
            ++hitCount;
            return result;
        }
    }
    return Extracted{};
}

bool
VictimCache::probe(Addr block_addr) const
{
    Addr aligned = alignDown(block_addr, blockMaskBits);
    for (const Entry &entry : entriesVec)
        if (entry.valid && entry.addr == aligned)
            return true;
    return false;
}

void
VictimCache::flush()
{
    for (Entry &entry : entriesVec) {
        entry.valid = false;
        entry.dirty = false;
    }
}

} // namespace rampage
