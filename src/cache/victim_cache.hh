/**
 * @file
 * Victim cache (Jouppi 1990), discussed in the paper's §3.2 as a
 * hardware alternative for reducing conflict misses in a
 * direct-mapped cache — and mirrored in software by RAMpage's
 * standby-page-list replacement (src/os/page_replacement.hh).
 *
 * A small fully-associative buffer holds recently evicted blocks; a
 * main-cache miss that hits the victim buffer swaps the block back at
 * far less than a memory-level miss cost.  Used by the ablation
 * benches to quantify how much of RAMpage's conflict-miss advantage a
 * conventional hierarchy could claw back with modest hardware.
 */

#ifndef RAMPAGE_CACHE_VICTIM_CACHE_HH
#define RAMPAGE_CACHE_VICTIM_CACHE_HH

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace rampage
{

/** Small fully-associative buffer of evicted blocks. */
class VictimCache
{
  public:
    /**
     * @param entries number of blocks held (Jouppi used 1-5).
     * @param block_bytes block size, matching the main cache.
     */
    VictimCache(unsigned entries, std::uint64_t block_bytes);

    /**
     * Insert an evicted block (with its dirty state), displacing the
     * oldest entry.
     * @retval {displacedValid, displacedDirty, displacedAddr} — a
     *         displaced dirty block must be written back by the
     *         caller.
     */
    struct Displaced
    {
        bool valid = false;
        bool dirty = false;
        Addr addr = 0;
    };
    Displaced insert(Addr block_addr, bool dirty);

    /**
     * Look up a block after a main-cache miss; on hit the entry is
     * removed (it swaps back into the main cache).
     * @retval {hit, dirty}
     */
    struct Extracted
    {
        bool hit = false;
        bool dirty = false;
    };
    Extracted extract(Addr block_addr);

    /** @return true if the block is present (no state change). */
    bool probe(Addr block_addr) const;

    /** Drop all entries. */
    void flush();

    std::uint64_t hits() const { return hitCount; }
    std::uint64_t lookups() const { return lookupCount; }

  private:
    struct Entry
    {
        Addr addr = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t stamp = 0;
    };

    std::vector<Entry> entriesVec;
    std::uint64_t blockMaskBits;
    std::uint64_t seq = 0;
    std::uint64_t hitCount = 0;
    std::uint64_t lookupCount = 0;
};

} // namespace rampage

#endif // RAMPAGE_CACHE_VICTIM_CACHE_HH
