/**
 * @file
 * Generic set-associative cache model.
 *
 * Models tags and state only (no data payload): each access reports
 * hit/miss and any victim eviction, and the hierarchy composition in
 * src/core charges the timing.  Covers every configuration the paper
 * simulates — the direct-mapped 16 KB split L1 (§4.3), the 4 MB
 * direct-mapped baseline L2 (§4.4) and the 2-way random-replacement
 * L2 (§4.7) — plus fully-associative and LRU/FIFO configurations used
 * by the tests and ablation benches.
 */

#ifndef RAMPAGE_CACHE_CACHE_HH
#define RAMPAGE_CACHE_CACHE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/random.hh"
#include "util/types.hh"

namespace rampage
{

class AuditContext;
class StatsRegistry;

/** Block replacement policy within a set. */
enum class ReplPolicy : std::uint8_t
{
    LRU,    ///< least recently used
    Random, ///< uniform random victim (paper's 2-way L2, §4.7)
    FIFO,   ///< oldest-filled victim
};

/** Display name of a replacement policy. */
const char *replPolicyName(ReplPolicy policy);

/** Static configuration of one cache. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 16 * kib;
    std::uint64_t blockBytes = 32;
    unsigned assoc = 1;                    ///< 0 = fully associative
    ReplPolicy repl = ReplPolicy::LRU;
    std::uint64_t seed = 1;                ///< for Random replacement
};

/** Outcome of one cache access. */
struct CacheAccessResult
{
    bool hit = false;
    bool victimValid = false; ///< a valid block was evicted
    bool victimDirty = false; ///< ... and it was dirty
    Addr victimAddr = 0;      ///< block-aligned address of the victim
};

/** Cumulative cache statistics. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t dirtyEvictions = 0;
    std::uint64_t invalidations = 0;

    std::uint64_t accesses() const { return hits + misses; }
    double missRatio() const;
};

/**
 * Tag/state model of a set-associative cache.
 *
 * Addresses presented must already be in the cache's address domain
 * (physical for every cache in this study).  Misses allocate
 * (write-allocate); the caller performs any required fill/write-back
 * timing using the returned victim information.
 */
class SetAssocCache
{
  public:
    explicit SetAssocCache(const CacheParams &params);

    /**
     * Look up `addr`, allocating the block on a miss.
     * @param addr byte address (any offset within the block).
     * @param is_write marks the block dirty on hit or on allocate.
     * @return hit flag and victim details.
     *
     * The hit path is inline — the simulator probes an L1 on every
     * reference and the paper's L1s are direct-mapped, so a hit is
     * one tag compare; only the allocate/evict slow path lives out
     * of line.
     */
    CacheAccessResult
    access(Addr addr, bool is_write)
    {
        CacheAccessResult result;
        std::uint64_t set = setIndex(addr);
        Addr tag = tagOf(addr);
        Line *base = &lines[set * nWays];

        ++useCounter;
        for (unsigned w = 0; w < nWays; ++w) {
            Line &line = base[w];
            if (line.valid && line.tag == tag) {
                result.hit = true;
                if (is_write)
                    line.dirty = true;
                if (prm.repl == ReplPolicy::LRU)
                    line.stamp = useCounter;
                ++stat.hits;
                return result;
            }
        }
        accessMiss(result, addr, set, tag, is_write);
        return result;
    }

    /** @return true if the block holding addr is present (no state change). */
    bool probe(Addr addr) const;

    /** @return true if the block holding addr is present and dirty. */
    bool probeDirty(Addr addr) const;

    /**
     * Remove the block holding addr if present.
     * @retval {present, dirty-at-removal}
     */
    struct InvalidateResult
    {
        bool present = false;
        bool dirty = false;
    };
    InvalidateResult invalidate(Addr addr);

    /** Mark the block holding addr clean (after a write-back). */
    void markClean(Addr addr);

    /** Mark the block holding addr dirty (victim-cache swap-back). */
    void markDirty(Addr addr);

    /** Drop every block (e.g. at simulation boundaries). */
    void flushAll();

    /** Block-aligned base of the block containing addr. */
    Addr blockAddr(Addr addr) const;

    /** Count of valid blocks (test/inspection aid). */
    std::uint64_t validBlocks() const;

    const CacheParams &params() const { return prm; }
    const CacheStats &stats() const { return stat; }
    void clearStats() { stat = CacheStats{}; }

    /**
     * Register this cache's counters under `prefix` (e.g. "l1i").
     * The cache must outlive the registry's dumps.
     */
    void registerStats(StatsRegistry &reg,
                       const std::string &prefix) const;

    std::uint64_t numSets() const { return nSets; }
    unsigned ways() const { return nWays; }

    /**
     * Visit every valid block as (block-aligned address, dirty);
     * return false from the callback to stop early.  Pure inspection —
     * used by the model-integrity audits and the fault injector.
     */
    void forEachValidBlock(
        const std::function<bool(Addr, bool)> &visit) const;

    /**
     * Self-audit (`label` prefixes the detail, e.g. "l1d"): no set may
     * hold the same tag in two valid ways, and the stats must be
     * internally consistent.  Cross-level invariants (inclusion) are
     * checked by the owning hierarchy.
     */
    void auditState(AuditContext &ctx, const std::string &label) const;

    /**
     * Fault-injection hook (tests/CI only): XOR the stored tag of the
     * valid block holding `addr` with `tag_xor`, silently retagging it
     * as a different address — the audit must catch the resulting
     * inclusion violation.
     * @retval true a valid block was corrupted.
     */
    bool corruptTagXor(Addr addr, Addr tag_xor);

  private:
    /** One tag-array entry. */
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t stamp = 0; ///< LRU: last use; FIFO: fill order
    };

    std::uint64_t
    setIndex(Addr addr) const
    {
        return (addr >> blockBits) & (nSets - 1);
    }

    Addr
    tagOf(Addr addr) const
    {
        return addr >> blockBits >> setBits;
    }

    Addr rebuildAddr(std::uint64_t set, Addr tag) const;
    Line *findLine(Addr addr);
    const Line *findLine(Addr addr) const;
    unsigned pickVictim(std::uint64_t set);

    /** Allocate on a miss (write-allocate), possibly evicting. */
    void accessMiss(CacheAccessResult &result, Addr addr,
                    std::uint64_t set, Addr tag, bool is_write);

    CacheParams prm;
    std::uint64_t nSets;
    unsigned nWays;
    unsigned blockBits;
    unsigned setBits; ///< floorLog2(nSets)
    std::vector<Line> lines; ///< nSets * nWays, set-major
    std::uint64_t useCounter = 0;
    Rng rng;
    CacheStats stat;
};

} // namespace rampage

#endif // RAMPAGE_CACHE_CACHE_HH
