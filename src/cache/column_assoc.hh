/**
 * @file
 * Column-associative cache (Agarwal & Pudar, ISCA '93) — cited by the
 * paper (§3.2) as an alternative way of buying associativity cheaply:
 * a direct-mapped array in which a block that conflicts under the
 * primary index may live under a second index (the primary index with
 * its top bit flipped), found by a sequential "rehash" probe.
 *
 * Behaviour on an access to address a with primary set b(a) and
 * alternate set f(a):
 *
 *  1. probe b(a): tag match => first-time hit (direct-mapped speed);
 *  2. if the resident of b(a) is itself a rehashed block, it is the
 *     least useful occupant: replace it in place (no second probe —
 *     the requested block cannot be under f(a));
 *  3. otherwise probe f(a): a match is a rehash hit — the two blocks
 *     swap slots so the winner hits at direct-mapped speed next time;
 *  4. a miss in both: the occupant of f(a) is evicted, b(a)'s
 *     occupant moves to f(a) with its rehash bit set, and the new
 *     block fills b(a).
 *
 * The enclosing hierarchy charges one extra L2 access time for every
 * rehash probe and swap.
 */

#ifndef RAMPAGE_CACHE_COLUMN_ASSOC_HH
#define RAMPAGE_CACHE_COLUMN_ASSOC_HH

#include <cstdint>
#include <vector>

#include "cache/cache.hh" // CacheAccessResult
#include "util/types.hh"

namespace rampage
{

/** Statistics specific to the column-associative organisation. */
struct ColumnAssocStats
{
    std::uint64_t firstHits = 0;  ///< hits on the primary probe
    std::uint64_t rehashHits = 0; ///< hits on the alternate probe
    std::uint64_t misses = 0;
    std::uint64_t inPlaceReplacements = 0; ///< case 2 fast replaces

    std::uint64_t hits() const { return firstHits + rehashHits; }
};

/** Column-associative tag store. */
class ColumnAssocCache
{
  public:
    /**
     * @param size_bytes total capacity (power of two).
     * @param block_bytes block size (power of two).
     */
    ColumnAssocCache(std::uint64_t size_bytes, std::uint64_t block_bytes);

    /**
     * Look up `addr`, allocating on a miss.  `rehash_probe_out` is
     * set when the access needed the second (alternate-set) probe —
     * on a rehash hit or on a full miss — so the caller can charge
     * the extra access time.
     */
    CacheAccessResult access(Addr addr, bool is_write,
                             bool &rehash_probe_out);

    /** @return true when either slot holds the block (no change). */
    bool probe(Addr addr) const;

    /** Invalidate the block if present; reports its dirty state. */
    SetAssocCache::InvalidateResult invalidate(Addr addr);

    /** Mark the block dirty if present. */
    void markDirty(Addr addr);

    /** Block-aligned base of the block containing addr. */
    Addr blockAddr(Addr addr) const;

    std::uint64_t numSets() const { return nSets; }
    const ColumnAssocStats &stats() const { return stat; }

  private:
    struct Line
    {
        Addr block = 0;   ///< full block address (identity)
        bool valid = false;
        bool dirty = false;
        bool rehashed = false; ///< stored under its alternate set
    };

    std::uint64_t primarySet(Addr addr) const;
    std::uint64_t alternateSet(std::uint64_t set) const;
    Line *find(Addr addr);
    const Line *find(Addr addr) const;

    std::uint64_t nSets;
    unsigned blockBits;
    unsigned indexBits;
    std::vector<Line> lines;
    ColumnAssocStats stat;
};

} // namespace rampage

#endif // RAMPAGE_CACHE_COLUMN_ASSOC_HH
