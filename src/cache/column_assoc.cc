#include "cache/column_assoc.hh"

#include "util/bitops.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace rampage
{

ColumnAssocCache::ColumnAssocCache(std::uint64_t size_bytes,
                                   std::uint64_t block_bytes)
{
    if (!isPowerOfTwo(size_bytes) || !isPowerOfTwo(block_bytes))
        throw ConfigError(
            "column-associative cache sizes must be powers of two");
    if (size_bytes < 2 * block_bytes)
        throw ConfigError("column-associative cache needs at least two sets");
    nSets = size_bytes / block_bytes;
    blockBits = floorLog2(block_bytes);
    indexBits = floorLog2(nSets);
    lines.assign(nSets, Line{});
}

std::uint64_t
ColumnAssocCache::primarySet(Addr addr) const
{
    return (addr >> blockBits) & (nSets - 1);
}

std::uint64_t
ColumnAssocCache::alternateSet(std::uint64_t set) const
{
    return set ^ (std::uint64_t{1} << (indexBits - 1));
}

Addr
ColumnAssocCache::blockAddr(Addr addr) const
{
    return alignDown(addr, blockBits);
}

ColumnAssocCache::Line *
ColumnAssocCache::find(Addr addr)
{
    Addr block = blockAddr(addr);
    std::uint64_t set = primarySet(addr);
    if (lines[set].valid && lines[set].block == block)
        return &lines[set];
    std::uint64_t alt = alternateSet(set);
    if (lines[alt].valid && lines[alt].block == block)
        return &lines[alt];
    return nullptr;
}

const ColumnAssocCache::Line *
ColumnAssocCache::find(Addr addr) const
{
    return const_cast<ColumnAssocCache *>(this)->find(addr);
}

CacheAccessResult
ColumnAssocCache::access(Addr addr, bool is_write, bool &rehash_probe_out)
{
    rehash_probe_out = false;
    CacheAccessResult result;
    Addr block = blockAddr(addr);
    std::uint64_t set = primarySet(addr);
    Line &primary = lines[set];

    // 1. First-time probe at direct-mapped speed.
    if (primary.valid && primary.block == block) {
        result.hit = true;
        if (is_write)
            primary.dirty = true;
        ++stat.firstHits;
        return result;
    }

    // 2. A rehashed occupant of the primary slot cannot coexist with
    //    the requested block under f: replace it in place.
    if (primary.valid && primary.rehashed) {
        ++stat.misses;
        ++stat.inPlaceReplacements;
        result.victimValid = true;
        result.victimDirty = primary.dirty;
        result.victimAddr = primary.block;
        primary.block = block;
        primary.dirty = is_write;
        primary.rehashed = false;
        return result;
    }

    // 3. Rehash probe of the alternate set.
    rehash_probe_out = true;
    std::uint64_t alt = alternateSet(set);
    Line &alternate = lines[alt];
    if (alternate.valid && alternate.block == block) {
        // Rehash hit: swap so the winner hits first-time next round.
        ++stat.rehashHits;
        result.hit = true;
        if (is_write)
            alternate.dirty = true;
        Line tmp = primary;
        primary = alternate;
        primary.rehashed = false;
        alternate = tmp;
        alternate.rehashed = alternate.valid;
        return result;
    }

    // 4. Miss in both: evict the alternate occupant, demote the
    //    primary occupant into the alternate slot (rehashed), and
    //    fill the primary.  A cold primary slot fills directly
    //    without disturbing the alternate set.
    ++stat.misses;
    if (primary.valid) {
        if (alternate.valid) {
            result.victimValid = true;
            result.victimDirty = alternate.dirty;
            result.victimAddr = alternate.block;
        }
        alternate = primary;
        alternate.rehashed = true;
    }
    primary.block = block;
    primary.valid = true;
    primary.dirty = is_write;
    primary.rehashed = false;
    return result;
}

bool
ColumnAssocCache::probe(Addr addr) const
{
    return find(addr) != nullptr;
}

SetAssocCache::InvalidateResult
ColumnAssocCache::invalidate(Addr addr)
{
    SetAssocCache::InvalidateResult result;
    if (Line *line = find(addr)) {
        result.present = true;
        result.dirty = line->dirty;
        line->valid = false;
        line->dirty = false;
        line->rehashed = false;
    }
    return result;
}

void
ColumnAssocCache::markDirty(Addr addr)
{
    if (Line *line = find(addr))
        line->dirty = true;
}

} // namespace rampage
