#include "cache/cache.hh"

#include "stats/registry.hh"
#include "util/audit.hh"
#include "util/bitops.hh"
#include "util/debug.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace rampage
{

const char *
replPolicyName(ReplPolicy policy)
{
    switch (policy) {
      case ReplPolicy::LRU:
        return "LRU";
      case ReplPolicy::Random:
        return "random";
      case ReplPolicy::FIFO:
        return "FIFO";
    }
    return "?";
}

double
CacheStats::missRatio() const
{
    std::uint64_t total = accesses();
    return total == 0 ? 0.0
                      : static_cast<double>(misses) /
                            static_cast<double>(total);
}

void
SetAssocCache::registerStats(StatsRegistry &reg,
                             const std::string &prefix) const
{
    reg.addCounter(prefix + ".hits", prm.name + " hits", &stat.hits);
    reg.addCounter(prefix + ".misses", prm.name + " misses",
                   &stat.misses);
    reg.addCounter(prefix + ".evictions", prm.name + " victim evictions",
                   &stat.evictions);
    reg.addCounter(prefix + ".dirty_evictions",
                   prm.name + " dirty victim evictions",
                   &stat.dirtyEvictions);
    reg.addCounter(prefix + ".invalidations",
                   prm.name + " invalidations", &stat.invalidations);
    reg.addFormula(prefix + ".miss_ratio",
                   prm.name + " misses / accesses",
                   [this] { return stat.missRatio(); });
}

SetAssocCache::SetAssocCache(const CacheParams &params)
    : prm(params), rng(params.seed)
{
    if (!isPowerOfTwo(prm.blockBytes))
        throw ConfigError("cache '%s': block size %llu is not a power of two",
                          prm.name.c_str(),
                          static_cast<unsigned long long>(prm.blockBytes));
    if (prm.sizeBytes == 0 || prm.sizeBytes % prm.blockBytes != 0)
        throw ConfigError(
            "cache '%s': size must be a multiple of the block size",
            prm.name.c_str());

    std::uint64_t blocks = prm.sizeBytes / prm.blockBytes;
    nWays = prm.assoc == 0 ? static_cast<unsigned>(blocks) : prm.assoc;
    if (nWays > blocks)
        throw ConfigError("cache '%s': associativity %u exceeds %llu blocks",
                          prm.name.c_str(), nWays,
                          static_cast<unsigned long long>(blocks));
    if (blocks % nWays != 0)
        throw ConfigError("cache '%s': blocks not divisible by associativity",
                          prm.name.c_str());
    nSets = blocks / nWays;
    if (!isPowerOfTwo(nSets))
        throw ConfigError(
            "cache '%s': set count %llu is not a power of two",
            prm.name.c_str(), static_cast<unsigned long long>(nSets));

    blockBits = floorLog2(prm.blockBytes);
    setBits = floorLog2(nSets);
    lines.assign(nSets * nWays, Line{});
}

Addr
SetAssocCache::rebuildAddr(std::uint64_t set, Addr tag) const
{
    return ((tag << floorLog2(nSets)) | set) << blockBits;
}

Addr
SetAssocCache::blockAddr(Addr addr) const
{
    return alignDown(addr, blockBits);
}

SetAssocCache::Line *
SetAssocCache::findLine(Addr addr)
{
    std::uint64_t set = setIndex(addr);
    Addr tag = tagOf(addr);
    Line *base = &lines[set * nWays];
    for (unsigned w = 0; w < nWays; ++w)
        if (base[w].valid && base[w].tag == tag)
            return &base[w];
    return nullptr;
}

const SetAssocCache::Line *
SetAssocCache::findLine(Addr addr) const
{
    return const_cast<SetAssocCache *>(this)->findLine(addr);
}

unsigned
SetAssocCache::pickVictim(std::uint64_t set)
{
    Line *base = &lines[set * nWays];
    // Invalid way first, regardless of policy.
    for (unsigned w = 0; w < nWays; ++w)
        if (!base[w].valid)
            return w;

    switch (prm.repl) {
      case ReplPolicy::Random:
        return static_cast<unsigned>(rng.below(nWays));
      case ReplPolicy::LRU:
      case ReplPolicy::FIFO: {
        unsigned victim = 0;
        for (unsigned w = 1; w < nWays; ++w)
            if (base[w].stamp < base[victim].stamp)
                victim = w;
        return victim;
      }
    }
    throw InternalError("unreachable replacement policy");
}

void
SetAssocCache::accessMiss(CacheAccessResult &result,
                          [[maybe_unused]] Addr addr,
                          std::uint64_t set, Addr tag, bool is_write)
{
    // Miss: allocate (write-allocate), possibly evicting a victim.
    Line *base = &lines[set * nWays];
    ++stat.misses;
    RAMPAGE_DPRINTF(Cache, "%s miss %s addr=0x%llx set=%llu",
                    prm.name.c_str(), is_write ? "write" : "read",
                    static_cast<unsigned long long>(addr),
                    static_cast<unsigned long long>(set));
    unsigned way = pickVictim(set);
    Line &line = base[way];
    if (line.valid) {
        result.victimValid = true;
        result.victimDirty = line.dirty;
        result.victimAddr = rebuildAddr(set, line.tag);
        ++stat.evictions;
        if (line.dirty)
            ++stat.dirtyEvictions;
        RAMPAGE_DPRINTF(Cache, "%s evict addr=0x%llx dirty=%d",
                        prm.name.c_str(),
                        static_cast<unsigned long long>(result.victimAddr),
                        line.dirty ? 1 : 0);
    }
    line.valid = true;
    line.dirty = is_write;
    line.tag = tag;
    line.stamp = useCounter; // fill time == first use
}

bool
SetAssocCache::probe(Addr addr) const
{
    return findLine(addr) != nullptr;
}

bool
SetAssocCache::probeDirty(Addr addr) const
{
    const Line *line = findLine(addr);
    return line != nullptr && line->dirty;
}

SetAssocCache::InvalidateResult
SetAssocCache::invalidate(Addr addr)
{
    InvalidateResult result;
    Line *line = findLine(addr);
    if (line) {
        result.present = true;
        result.dirty = line->dirty;
        line->valid = false;
        line->dirty = false;
        ++stat.invalidations;
    }
    return result;
}

void
SetAssocCache::markClean(Addr addr)
{
    Line *line = findLine(addr);
    if (line)
        line->dirty = false;
}

void
SetAssocCache::markDirty(Addr addr)
{
    Line *line = findLine(addr);
    if (line)
        line->dirty = true;
}

void
SetAssocCache::flushAll()
{
    for (Line &line : lines) {
        line.valid = false;
        line.dirty = false;
    }
}

std::uint64_t
SetAssocCache::validBlocks() const
{
    std::uint64_t count = 0;
    for (const Line &line : lines)
        if (line.valid)
            ++count;
    return count;
}

void
SetAssocCache::forEachValidBlock(
    const std::function<bool(Addr, bool)> &visit) const
{
    for (std::uint64_t set = 0; set < nSets; ++set) {
        const Line *base = &lines[set * nWays];
        for (unsigned w = 0; w < nWays; ++w) {
            if (!base[w].valid)
                continue;
            if (!visit(rebuildAddr(set, base[w].tag), base[w].dirty))
                return;
        }
    }
}

void
SetAssocCache::auditState(AuditContext &ctx,
                          const std::string &label) const
{
    std::uint64_t valid = 0;
    for (std::uint64_t set = 0; set < nSets; ++set) {
        const Line *base = &lines[set * nWays];
        for (unsigned w = 0; w < nWays; ++w) {
            if (!base[w].valid)
                continue;
            ++valid;
            for (unsigned v = w + 1; v < nWays; ++v) {
                ctx.check(!base[v].valid || base[v].tag != base[w].tag,
                          "cache.dup_tag",
                          "%s set %llu holds tag 0x%llx in ways %u "
                          "and %u (addr 0x%llx cached twice)",
                          label.c_str(),
                          static_cast<unsigned long long>(set),
                          static_cast<unsigned long long>(base[w].tag),
                          w, v,
                          static_cast<unsigned long long>(
                              rebuildAddr(set, base[w].tag)));
            }
        }
    }
    // Fills minus removals must equal the blocks actually resident.
    std::uint64_t removed = stat.evictions + stat.invalidations;
    ctx.check(stat.misses >= removed && stat.misses - removed == valid,
              "cache.stats",
              "%s holds %llu valid blocks but counters imply %lld "
              "(misses %llu - evictions %llu - invalidations %llu)",
              label.c_str(), static_cast<unsigned long long>(valid),
              static_cast<long long>(stat.misses) -
                  static_cast<long long>(removed),
              static_cast<unsigned long long>(stat.misses),
              static_cast<unsigned long long>(stat.evictions),
              static_cast<unsigned long long>(stat.invalidations));
}

bool
SetAssocCache::corruptTagXor(Addr addr, Addr tag_xor)
{
    Line *line = findLine(addr);
    if (!line || tag_xor == 0)
        return false;
    line->tag ^= tag_xor;
    return true;
}

} // namespace rampage
