/**
 * @file
 * The RAMpage SRAM main-memory pager (paper §2.2, §4.5): the
 * software-managed, fully-associative paged view of the SRAM that a
 * conventional hierarchy would use as its lowest-level cache.
 *
 * Capacity follows the paper exactly: the cache-equivalent 4 MB plus
 * the bytes a cache of that size would have spent on tags
 * (4 B per block, i.e. 4.125 MB total at 128 B pages, scaling down
 * with page size).  A pinned operating-system reserve at the bottom
 * of the frame space holds the handler code/data and the inverted
 * page table, so TLB misses and page-fault handling never touch DRAM
 * except for the faulted transfer itself (§2.3).
 *
 * The pager is a pure placement/replacement engine: it answers
 * residency lookups and services faults, reporting everything the
 * hierarchy needs to charge time (table probe addresses for the
 * handler trace, the victim page for write-back and inclusion
 * flushes, and the clock hand's scan length).
 */

#ifndef RAMPAGE_OS_PAGER_HH
#define RAMPAGE_OS_PAGER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "os/inverted_page_table.hh"
#include "os/page_replacement.hh"
#include "util/types.hh"

namespace rampage
{

class AuditContext;
class StatsRegistry;

/** Static configuration of the SRAM main memory. */
struct PagerParams
{
    /** SRAM page size (the paper sweeps 128 B - 4 KB). */
    std::uint64_t pageBytes = 1024;
    /** Cache-equivalent SRAM capacity (paper: 4 MB). */
    std::uint64_t baseSramBytes = 4 * mib;
    /**
     * Tag bytes per page that the equivalent cache would have spent;
     * RAMpage gets them back as usable capacity (paper §4.5: +128 KB
     * at 128 B pages).
     */
    std::uint64_t tagBytesPerBlock = 4;
    /** Replacement policy (paper: clock). */
    PageReplKind repl = PageReplKind::Clock;
    /** Standby list length for PageReplKind::Standby. */
    std::uint64_t standbyPages = 16;
    std::uint64_t seed = 11;
    /** Fixed OS image (handler code + data) pinned besides the table. */
    std::uint64_t osFixedBytes = 12 * kib;
    /** Virtual base of the pinned OS region (code, data, then table). */
    Addr osVirtBase = 0x0001'0000;
};

/** Outcome of servicing a page fault. */
struct PageFaultResult
{
    std::uint64_t frame = 0;      ///< frame now holding the page
    bool victimValid = false;     ///< an occupied frame was reclaimed
    bool victimDirty = false;     ///< ... and must be written to DRAM
    Pid victimPid = 0;
    std::uint64_t victimVpn = 0;
    unsigned scanCost = 0;        ///< replacement-policy scan length
    /** Table words the fault handling touched (for the handler trace). */
    std::vector<Addr> probes;
};

/** Pager statistics. */
struct PagerStats
{
    std::uint64_t faults = 0;
    std::uint64_t dirtyWritebacks = 0;
    std::uint64_t coldFills = 0; ///< faults that found a free frame
};

/** The SRAM main memory manager. */
class SramPager
{
  public:
    explicit SramPager(const PagerParams &params);

    /** Total SRAM size (cache-equivalent + reclaimed tag bytes). */
    std::uint64_t sramBytes() const { return totalBytes; }

    /** Total page frames. */
    std::uint64_t totalFrames() const { return nFrames; }

    /** Pinned operating-system frames at the bottom of the space. */
    std::uint64_t osFrames() const { return nOsFrames; }

    /** Frames available to user pages. */
    std::uint64_t userFrames() const { return nFrames - nOsFrames; }

    std::uint64_t pageBytes() const { return prm.pageBytes; }

    /**
     * Residency lookup (the TLB-miss handler's table walk).
     * @param probes when non-null receives the table words touched.
     */
    IptLookup lookup(Pid pid, std::uint64_t vpn,
                     std::vector<Addr> *probes = nullptr) const;

    /** Record a reference to a resident frame (replacement state). */
    void touch(std::uint64_t frame);

    /** Mark a resident frame dirty (a store hit it). */
    void markDirty(std::uint64_t frame);

    /** @return dirty state of a frame. */
    bool isDirty(std::uint64_t frame) const;

    /**
     * Service a fault for (pid, vpn): choose a victim (never pinned),
     * unmap it, and map the new page.  The caller charges DRAM
     * transfer time, flushes the victim's TLB entry and maintains L1
     * inclusion using the returned details.
     */
    PageFaultResult handleFault(Pid pid, std::uint64_t vpn);

    /** Physical SRAM address of an offset within a frame. */
    Addr
    physAddr(std::uint64_t frame, Addr offset) const
    {
        return frame * prm.pageBytes + offset;
    }

    /**
     * Translate a virtual address in the pinned OS region to its SRAM
     * physical address.  OS references bypass the TLB (they are
     * direct-mapped into the reserve, like MIPS kseg0), which is how
     * the pinned-handler guarantee of §2.3 is realized.
     */
    Addr osPhysAddr(Addr os_vaddr) const;

    /** Extent of the pinned OS virtual region. */
    Addr osVirtBase() const { return prm.osVirtBase; }
    Addr osVirtEnd() const { return prm.osVirtBase + nOsFrames * prm.pageBytes; }

    /** Virtual base address of the inverted page table image. */
    Addr tableVirtBase() const { return tableVbase; }

    /** Register the pager's counters under `prefix` (e.g. "pager"). */
    void registerStats(StatsRegistry &reg,
                       const std::string &prefix) const;

    const PagerParams &params() const { return prm; }
    const PagerStats &stats() const { return stat; }
    const InvertedPageTable &table() const { return *ipt; }
    const PageReplacementPolicy &policy() const { return *repl; }

    /**
     * Self-audit: the pinned OS reserve never mapped, every cold-filled
     * user frame mapped (an unmapped one is leaked SRAM capacity), the
     * cold region beyond the fill cursor empty, no dirty bit on an
     * unmapped user frame, no (pid, vpn) resident in two frames — plus
     * the inverted page table's own chain/count audit.
     */
    void auditState(AuditContext &ctx) const;

    /**
     * Fault-injection hooks (tests/CI only).  Each models one classic
     * pager bug; every hook returns true when it corrupted state.
     */
    /** Unlink a mapped frame's table entry from its hash chain. */
    bool corruptUnlinkEntry();
    /** Set the dirty bit of a frame that maps no page. */
    bool corruptStaleDirty();
    /** Drop a cold-filled frame's mapping (leak the frame). */
    bool corruptLeakFrame();

  private:
    PagerParams prm;
    std::uint64_t totalBytes;
    std::uint64_t nFrames;
    std::uint64_t nOsFrames;
    Addr tableVbase;
    std::unique_ptr<InvertedPageTable> ipt;
    std::unique_ptr<PageReplacementPolicy> repl;
    std::vector<bool> dirty;
    std::uint64_t nextFreeFrame; ///< cold-fill cursor
    PagerStats stat;
};

} // namespace rampage

#endif // RAMPAGE_OS_PAGER_HH
