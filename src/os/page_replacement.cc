#include "os/page_replacement.hh"

#include "util/error.hh"
#include "util/logging.hh"

namespace rampage
{

const char *
pageReplKindName(PageReplKind kind)
{
    switch (kind) {
      case PageReplKind::Clock:
        return "clock";
      case PageReplKind::Fifo:
        return "FIFO";
      case PageReplKind::Random:
        return "random";
      case PageReplKind::Lru:
        return "LRU";
      case PageReplKind::Standby:
        return "clock+standby";
    }
    return "?";
}

PageReplacementPolicy::PageReplacementPolicy(std::uint64_t frames,
                                             std::uint64_t first_evictable)
    : nFrames(frames), firstEvictable(first_evictable)
{
    RAMPAGE_ASSERT(frames > first_evictable,
                   "no evictable frames left after the pinned reserve");
}

std::unique_ptr<PageReplacementPolicy>
makePageReplacement(PageReplKind kind, std::uint64_t frames,
                    std::uint64_t first_evictable, std::uint64_t seed,
                    std::uint64_t standby_pages)
{
    switch (kind) {
      case PageReplKind::Clock:
        return std::make_unique<ClockPolicy>(frames, first_evictable);
      case PageReplKind::Fifo:
        return std::make_unique<FifoPolicy>(frames, first_evictable);
      case PageReplKind::Random:
        return std::make_unique<RandomPolicy>(frames, first_evictable,
                                              seed);
      case PageReplKind::Lru:
        return std::make_unique<LruPolicy>(frames, first_evictable);
      case PageReplKind::Standby:
        return std::make_unique<StandbyPolicy>(frames, first_evictable,
                                               standby_pages);
    }
    throw InternalError("unreachable page replacement kind");
}

// ---------------------------------------------------------------- Clock

void
ClockPolicy::touch(std::uint64_t frame)
{
    referenced[frame] = true;
}

void
ClockPolicy::fill(std::uint64_t frame)
{
    referenced[frame] = true;
}

std::uint64_t
ClockPolicy::pickVictim(unsigned *scan_cost_out)
{
    unsigned scanned = 0;
    std::uint64_t evictable = nFrames - firstEvictable;
    // Two full sweeps guarantee an unreferenced frame (the first sweep
    // clears every mark).
    for (std::uint64_t step = 0; step < 2 * evictable + 1; ++step) {
        std::uint64_t frame = hand;
        hand = hand + 1 >= nFrames ? firstEvictable : hand + 1;
        ++scanned;
        if (referenced[frame]) {
            referenced[frame] = false;
        } else {
            if (scan_cost_out)
                *scan_cost_out = scanned;
            return frame;
        }
    }
    throw InternalError("clock hand failed to find a victim");
}

// ----------------------------------------------------------------- FIFO

FifoPolicy::FifoPolicy(std::uint64_t frames, std::uint64_t first_evictable)
    : PageReplacementPolicy(frames, first_evictable),
      fillSeq(frames, 0)
{
}

void
FifoPolicy::fill(std::uint64_t frame)
{
    fillSeq[frame] = ++seq;
}

std::uint64_t
FifoPolicy::pickVictim(unsigned *scan_cost_out)
{
    std::uint64_t victim = firstEvictable;
    for (std::uint64_t frame = firstEvictable + 1; frame < nFrames; ++frame)
        if (fillSeq[frame] < fillSeq[victim])
            victim = frame;
    // A real FIFO is a queue: O(1) victim selection.  The scan above
    // is only this model's way of finding the oldest fill.
    if (scan_cost_out)
        *scan_cost_out = 1;
    return victim;
}

// --------------------------------------------------------------- Random

RandomPolicy::RandomPolicy(std::uint64_t frames,
                           std::uint64_t first_evictable,
                           std::uint64_t seed)
    : PageReplacementPolicy(frames, first_evictable), rng(seed)
{
}

std::uint64_t
RandomPolicy::pickVictim(unsigned *scan_cost_out)
{
    if (scan_cost_out)
        *scan_cost_out = 1;
    return firstEvictable + rng.below(nFrames - firstEvictable);
}

// ------------------------------------------------------------------ LRU

LruPolicy::LruPolicy(std::uint64_t frames, std::uint64_t first_evictable)
    : PageReplacementPolicy(frames, first_evictable), lastUse(frames, 0)
{
}

void
LruPolicy::touch(std::uint64_t frame)
{
    lastUse[frame] = ++seq;
}

void
LruPolicy::fill(std::uint64_t frame)
{
    lastUse[frame] = ++seq;
}

std::uint64_t
LruPolicy::pickVictim(unsigned *scan_cost_out)
{
    std::uint64_t victim = firstEvictable;
    for (std::uint64_t frame = firstEvictable + 1; frame < nFrames; ++frame)
        if (lastUse[frame] < lastUse[victim])
            victim = frame;
    if (scan_cost_out)
        *scan_cost_out = static_cast<unsigned>(nFrames - firstEvictable);
    return victim;
}

// -------------------------------------------------------------- Standby

StandbyPolicy::StandbyPolicy(std::uint64_t frames,
                             std::uint64_t first_evictable,
                             std::uint64_t standby_pages)
    : PageReplacementPolicy(frames, first_evictable),
      referenced(frames, false),
      onStandby(frames, false),
      standbyTarget(standby_pages),
      hand(first_evictable)
{
    RAMPAGE_ASSERT(standby_pages < frames - first_evictable,
                   "standby list larger than evictable memory");
}

void
StandbyPolicy::touch(std::uint64_t frame)
{
    referenced[frame] = true;
    if (onStandby[frame]) {
        // Rescue: the page proved hot while awaiting discard.
        onStandby[frame] = false;
        for (auto it = standby.begin(); it != standby.end(); ++it) {
            if (*it == frame) {
                standby.erase(it);
                break;
            }
        }
        ++rescueCount;
    }
}

void
StandbyPolicy::fill(std::uint64_t frame)
{
    referenced[frame] = true;
}

std::uint64_t
StandbyPolicy::nominate(unsigned *scan_cost_out)
{
    unsigned scanned = 0;
    std::uint64_t evictable = nFrames - firstEvictable;
    for (std::uint64_t step = 0; step < 2 * evictable + 1; ++step) {
        std::uint64_t frame = hand;
        hand = hand + 1 >= nFrames ? firstEvictable : hand + 1;
        ++scanned;
        if (onStandby[frame])
            continue; // already awaiting discard
        if (referenced[frame]) {
            referenced[frame] = false;
        } else {
            if (scan_cost_out)
                *scan_cost_out += scanned;
            return frame;
        }
    }
    throw InternalError("standby clock hand failed to nominate a page");
}

std::uint64_t
StandbyPolicy::pickVictim(unsigned *scan_cost_out)
{
    if (scan_cost_out)
        *scan_cost_out = 0;
    // Keep nominating until the list is full, then discard its oldest.
    while (standby.size() < standbyTarget + 1) {
        std::uint64_t nominee = nominate(scan_cost_out);
        standby.push_back(nominee);
        onStandby[nominee] = true;
    }
    std::uint64_t victim = standby.front();
    standby.pop_front();
    onStandby[victim] = false;
    return victim;
}

} // namespace rampage
