#include "os/inverted_page_table.hh"

#include <algorithm>

#include "util/audit.hh"
#include "util/bitops.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace rampage
{

InvertedPageTable::InvertedPageTable(std::uint64_t frames, Addr table_vbase)
    : vbase(table_vbase)
{
    RAMPAGE_ASSERT(frames > 0, "page table needs at least one frame");
    entries.assign(frames, Entry{});
    // A quarter anchor per frame (load factor <= 4): the table must
    // stay close to the paper's ~20 bytes-per-frame reserve budget
    // (§4.5), so a full-width anchor array is deliberately avoided;
    // the slightly longer chains show up as extra TLB-miss handler
    // probes, which is the honest cost of the compact table.
    std::uint64_t buckets = std::uint64_t{1}
                            << floorLog2(std::max<std::uint64_t>(
                                   divCeil(frames, 4), 16));
    anchors.assign(buckets, noFrame);
    anchorMask = buckets - 1;
}

std::uint64_t
InvertedPageTable::hashOf(Pid pid, std::uint64_t vpn) const
{
    // Fibonacci-style mix of pid and vpn.
    std::uint64_t key = vpn * 0x9e3779b97f4a7c15ull;
    key ^= static_cast<std::uint64_t>(pid) * 0xc2b2ae3d27d4eb4full;
    key ^= key >> 29;
    return key & anchorMask;
}

Addr
InvertedPageTable::anchorAddr(std::uint64_t bucket) const
{
    // Anchor array precedes the entry array in the table's image.
    return vbase + bucket * 8;
}

Addr
InvertedPageTable::entryAddr(std::uint64_t frame) const
{
    return vbase + anchors.size() * 8 + frame * iptEntryBytes;
}

std::uint64_t
InvertedPageTable::tableBytes() const
{
    return anchors.size() * 8 + entries.size() * iptEntryBytes;
}

IptLookup
InvertedPageTable::lookup(Pid pid, std::uint64_t vpn,
                          std::vector<Addr> *probe_addrs) const
{
    std::uint64_t bucket = hashOf(pid, vpn);
    if (probe_addrs)
        probe_addrs->push_back(anchorAddr(bucket));

    IptLookup result;
    ++lookupCount;
    std::uint64_t frame = anchors[bucket];
    while (frame != noFrame) {
        const Entry &entry = entries[frame];
        RAMPAGE_ASSERT(entry.valid, "chained entry must be valid");
        ++result.probes;
        ++probeCount;
        if (probe_addrs)
            probe_addrs->push_back(entryAddr(frame));
        if (entry.pid == pid && entry.vpn == vpn) {
            result.found = true;
            result.frame = frame;
            return result;
        }
        frame = entry.next;
    }
    return result;
}

void
InvertedPageTable::insert(std::uint64_t frame, Pid pid, std::uint64_t vpn)
{
    RAMPAGE_ASSERT(frame < entries.size(), "frame out of range");
    RAMPAGE_ASSERT(!entries[frame].valid, "frame already mapped");

    std::uint64_t bucket = hashOf(pid, vpn);
    Entry &entry = entries[frame];
    entry.pid = pid;
    entry.vpn = vpn;
    entry.valid = true;
    entry.next = anchors[bucket];
    anchors[bucket] = frame;
    ++nMapped;
}

bool
InvertedPageTable::remove(std::uint64_t frame)
{
    RAMPAGE_ASSERT(frame < entries.size(), "frame out of range");
    Entry &entry = entries[frame];
    if (!entry.valid)
        return false;

    std::uint64_t bucket = hashOf(entry.pid, entry.vpn);
    std::uint64_t *link = &anchors[bucket];
    while (*link != noFrame && *link != frame)
        link = &entries[*link].next;
    RAMPAGE_ASSERT(*link == frame, "frame missing from its hash chain");
    *link = entry.next;

    entry.valid = false;
    entry.next = noFrame;
    --nMapped;
    return true;
}

bool
InvertedPageTable::mapped(std::uint64_t frame) const
{
    RAMPAGE_ASSERT(frame < entries.size(), "frame out of range");
    return entries[frame].valid;
}

Pid
InvertedPageTable::framePid(std::uint64_t frame) const
{
    RAMPAGE_ASSERT(mapped(frame), "frame not mapped");
    return entries[frame].pid;
}

std::uint64_t
InvertedPageTable::frameVpn(std::uint64_t frame) const
{
    RAMPAGE_ASSERT(mapped(frame), "frame not mapped");
    return entries[frame].vpn;
}

void
InvertedPageTable::auditState(AuditContext &ctx) const
{
    // Walk every anchor chain with explicit bounds (a cycle or a link
    // to an invalid entry must be reported, not crashed or looped on).
    std::vector<bool> reached(entries.size(), false);
    std::uint64_t reachable = 0;
    for (std::uint64_t bucket = 0; bucket < anchors.size(); ++bucket) {
        std::uint64_t frame = anchors[bucket];
        std::uint64_t hops = 0;
        while (frame != noFrame) {
            if (!ctx.check(frame < entries.size(), "ipt.chain",
                           "bucket %llu links to frame %llu beyond "
                           "the %zu-frame table",
                           static_cast<unsigned long long>(bucket),
                           static_cast<unsigned long long>(frame),
                           entries.size()))
                break;
            const Entry &entry = entries[frame];
            if (!ctx.check(entry.valid, "ipt.chain",
                           "bucket %llu chains through invalid frame "
                           "%llu",
                           static_cast<unsigned long long>(bucket),
                           static_cast<unsigned long long>(frame)))
                break;
            if (!ctx.check(!reached[frame], "ipt.chain",
                           "frame %llu reachable twice (chain cycle "
                           "or cross-link)",
                           static_cast<unsigned long long>(frame)))
                break;
            reached[frame] = true;
            ++reachable;
            ctx.check(hashOf(entry.pid, entry.vpn) == bucket,
                      "ipt.chain",
                      "frame %llu (pid=%u vpn=0x%llx) hashes to "
                      "bucket %llu but chains from bucket %llu",
                      static_cast<unsigned long long>(frame),
                      static_cast<unsigned>(entry.pid),
                      static_cast<unsigned long long>(entry.vpn),
                      static_cast<unsigned long long>(
                          hashOf(entry.pid, entry.vpn)),
                      static_cast<unsigned long long>(bucket));
            if (!ctx.check(++hops <= entries.size(), "ipt.chain",
                           "bucket %llu chain exceeds the table size "
                           "(cycle)",
                           static_cast<unsigned long long>(bucket)))
                break;
            frame = entry.next;
        }
    }

    // Every valid entry must be reachable, or lookup() will fault a
    // page that is in fact resident (then double-map its vpn).
    for (std::uint64_t frame = 0; frame < entries.size(); ++frame) {
        if (!entries[frame].valid)
            continue;
        ctx.check(reached[frame], "ipt.chain",
                  "valid frame %llu (pid=%u vpn=0x%llx) unreachable "
                  "from its anchor chain",
                  static_cast<unsigned long long>(frame),
                  static_cast<unsigned>(entries[frame].pid),
                  static_cast<unsigned long long>(entries[frame].vpn));
    }

    ctx.check(reachable == nMapped, "ipt.count",
              "%llu frames reachable through chains but mappedCount() "
              "says %llu",
              static_cast<unsigned long long>(reachable),
              static_cast<unsigned long long>(nMapped));
}

bool
InvertedPageTable::corruptUnlink(std::uint64_t frame)
{
    if (frame >= entries.size() || !entries[frame].valid)
        return false;
    Entry &entry = entries[frame];
    std::uint64_t bucket = hashOf(entry.pid, entry.vpn);
    std::uint64_t *link = &anchors[bucket];
    while (*link != noFrame && *link != frame)
        link = &entries[*link].next;
    if (*link != frame)
        return false;
    // Unlink but deliberately keep the entry valid and nMapped
    // untouched: the classic lost-update bug this models leaves a
    // resident page the lookup path can no longer find.
    *link = entry.next;
    entry.next = noFrame;
    return true;
}

double
InvertedPageTable::meanProbeDepth() const
{
    return lookupCount == 0 ? 0.0
                            : static_cast<double>(probeCount) /
                                  static_cast<double>(lookupCount);
}

} // namespace rampage
