#include "os/pager.hh"

#include <algorithm>
#include <unordered_set>

#include "stats/registry.hh"
#include "util/audit.hh"
#include "util/bitops.hh"
#include "util/debug.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace rampage
{

SramPager::SramPager(const PagerParams &params) : prm(params)
{
    if (!isPowerOfTwo(prm.pageBytes))
        throw ConfigError("SRAM page size must be a power of two");
    if (prm.baseSramBytes % prm.pageBytes != 0)
        throw ConfigError("SRAM capacity must be a multiple of the page size");

    // Capacity: cache-equivalent size plus the reclaimed tag bytes
    // (paper §4.5).  The bonus is rounded down to whole pages.
    std::uint64_t blocks = prm.baseSramBytes / prm.pageBytes;
    std::uint64_t bonus = blocks * prm.tagBytesPerBlock;
    totalBytes = prm.baseSramBytes + alignDown(bonus, floorLog2(prm.pageBytes));
    nFrames = totalBytes / prm.pageBytes;

    // The table is sized for every frame; the pinned reserve is the
    // table image plus the fixed OS code/data, rounded up to pages.
    tableVbase = prm.osVirtBase + prm.osFixedBytes;
    ipt = std::make_unique<InvertedPageTable>(nFrames, tableVbase);
    nOsFrames = divCeil(prm.osFixedBytes + ipt->tableBytes(),
                        prm.pageBytes);
    if (nOsFrames >= nFrames)
        throw ConfigError(
            "operating-system reserve (%llu pages) consumes the whole "
            "SRAM (%llu pages)",
            static_cast<unsigned long long>(nOsFrames),
            static_cast<unsigned long long>(nFrames));

    repl = makePageReplacement(prm.repl, nFrames, nOsFrames, prm.seed,
                               prm.standbyPages);
    dirty.assign(nFrames, false);
    nextFreeFrame = nOsFrames;
}

IptLookup
SramPager::lookup(Pid pid, std::uint64_t vpn,
                  std::vector<Addr> *probes) const
{
    return ipt->lookup(pid, vpn, probes);
}

void
SramPager::touch(std::uint64_t frame)
{
    repl->touch(frame);
}

void
SramPager::markDirty(std::uint64_t frame)
{
    RAMPAGE_ASSERT(frame < nFrames, "frame out of range");
    dirty[frame] = true;
}

bool
SramPager::isDirty(std::uint64_t frame) const
{
    RAMPAGE_ASSERT(frame < nFrames, "frame out of range");
    return dirty[frame];
}

void
SramPager::registerStats(StatsRegistry &reg,
                         const std::string &prefix) const
{
    reg.addCounter(prefix + ".faults", "SRAM main-memory page faults",
                   &stat.faults);
    reg.addCounter(prefix + ".dirty_writebacks",
                   "dirty victim pages written to DRAM",
                   &stat.dirtyWritebacks);
    reg.addCounter(prefix + ".cold_fills",
                   "faults satisfied by a free frame", &stat.coldFills);
}

PageFaultResult
SramPager::handleFault(Pid pid, std::uint64_t vpn)
{
    PageFaultResult result;
    ++stat.faults;

    // The handler re-walks the table (the TLB miss that preceded the
    // fault already did, but the fault path validates before acting).
    IptLookup walk = ipt->lookup(pid, vpn, &result.probes);
    RAMPAGE_ASSERT(!walk.found, "fault raised for a resident page");

    std::uint64_t frame;
    if (nextFreeFrame < nFrames) {
        // Cold fill: frames are handed out in order until the SRAM is
        // fully populated, as in the paper's warm-up discussion §4.2.
        frame = nextFreeFrame++;
        result.scanCost = 1;
        ++stat.coldFills;
    } else {
        frame = repl->pickVictim(&result.scanCost);
        RAMPAGE_ASSERT(frame >= nOsFrames, "victim from the pinned reserve");
    }

    if (ipt->mapped(frame)) {
        result.victimValid = true;
        result.victimPid = ipt->framePid(frame);
        result.victimVpn = ipt->frameVpn(frame);
        result.victimDirty = dirty[frame];
        if (dirty[frame])
            ++stat.dirtyWritebacks;
        // The handler updates the victim's table entry too.
        result.probes.push_back(ipt->entryAddr(frame));
        ipt->remove(frame);
    }

    dirty[frame] = false;
    ipt->insert(frame, pid, vpn);
    repl->fill(frame);
    result.probes.push_back(ipt->entryAddr(frame));
    result.frame = frame;
    RAMPAGE_DPRINTF(Pager,
                    "fault pid=%u vpn=0x%llx -> frame=%llu victim=%d "
                    "dirty=%d scan=%u",
                    static_cast<unsigned>(pid),
                    static_cast<unsigned long long>(vpn),
                    static_cast<unsigned long long>(frame),
                    result.victimValid ? 1 : 0,
                    result.victimDirty ? 1 : 0, result.scanCost);
    return result;
}

void
SramPager::auditState(AuditContext &ctx) const
{
    ipt->auditState(ctx);

    for (std::uint64_t f = 0; f < nOsFrames; ++f)
        ctx.check(!ipt->mapped(f), "pager.os_reserve",
                  "pinned OS frame %llu maps pid=%u vpn=0x%llx",
                  static_cast<unsigned long long>(f),
                  static_cast<unsigned>(
                      ipt->mapped(f) ? ipt->framePid(f) : 0),
                  static_cast<unsigned long long>(
                      ipt->mapped(f) ? ipt->frameVpn(f) : 0));

    // Outside handleFault(), every cold-filled user frame holds a page:
    // the fault path removes a victim and reinserts in one call, so an
    // unmapped frame below the cold-fill cursor is leaked capacity.
    std::uint64_t cursor = std::min(nextFreeFrame, nFrames);
    for (std::uint64_t f = nOsFrames; f < cursor; ++f)
        ctx.check(ipt->mapped(f), "pager.leak",
                  "user frame %llu below the cold-fill cursor (%llu) "
                  "maps no page",
                  static_cast<unsigned long long>(f),
                  static_cast<unsigned long long>(nextFreeFrame));

    for (std::uint64_t f = cursor; f < nFrames; ++f)
        ctx.check(!ipt->mapped(f), "pager.cold_region",
                  "frame %llu beyond the cold-fill cursor (%llu) maps "
                  "pid=%u vpn=0x%llx",
                  static_cast<unsigned long long>(f),
                  static_cast<unsigned long long>(nextFreeFrame),
                  static_cast<unsigned>(
                      ipt->mapped(f) ? ipt->framePid(f) : 0),
                  static_cast<unsigned long long>(
                      ipt->mapped(f) ? ipt->frameVpn(f) : 0));

    // A dirty bit on an unmapped user frame would either be lost (the
    // data is gone) or charged to whatever page lands there next.
    // OS frames are exempt: they are dirtied by handler stores but
    // pinned outside the table.
    for (std::uint64_t f = nOsFrames; f < nFrames; ++f) {
        if (dirty[f])
            ctx.check(ipt->mapped(f), "pager.stale_dirty",
                      "unmapped user frame %llu is marked dirty",
                      static_cast<unsigned long long>(f));
    }

    // Two frames holding the same page would make residency depend on
    // probe order (the chain audit cannot see this: both entries hash
    // to — and legitimately chain from — the same bucket).
    std::unordered_set<std::uint64_t> pages;
    pages.reserve(ipt->mappedCount());
    for (std::uint64_t f = nOsFrames; f < nFrames; ++f) {
        if (!ipt->mapped(f))
            continue;
        std::uint64_t key =
            (static_cast<std::uint64_t>(ipt->framePid(f)) << 48) ^
            ipt->frameVpn(f);
        ctx.check(pages.insert(key).second, "pager.double_map",
                  "pid=%u vpn=0x%llx resident in two frames (second: "
                  "%llu)",
                  static_cast<unsigned>(ipt->framePid(f)),
                  static_cast<unsigned long long>(ipt->frameVpn(f)),
                  static_cast<unsigned long long>(f));
    }
}

bool
SramPager::corruptUnlinkEntry()
{
    for (std::uint64_t f = nOsFrames; f < nFrames; ++f)
        if (ipt->mapped(f))
            return ipt->corruptUnlink(f);
    return false;
}

bool
SramPager::corruptStaleDirty()
{
    for (std::uint64_t f = nOsFrames; f < nFrames; ++f) {
        if (!ipt->mapped(f)) {
            dirty[f] = true;
            return true;
        }
    }
    return false;
}

bool
SramPager::corruptLeakFrame()
{
    for (std::uint64_t f = nOsFrames; f < nFrames; ++f) {
        if (f < nextFreeFrame && ipt->mapped(f))
            return ipt->remove(f);
    }
    return false;
}

Addr
SramPager::osPhysAddr(Addr os_vaddr) const
{
    RAMPAGE_ASSERT(os_vaddr >= prm.osVirtBase && os_vaddr < osVirtEnd(),
                   "address outside the pinned OS region");
    // The reserve occupies frames [0, nOsFrames) verbatim.
    return os_vaddr - prm.osVirtBase;
}

} // namespace rampage
