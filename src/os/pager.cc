#include "os/pager.hh"

#include "stats/registry.hh"
#include "util/bitops.hh"
#include "util/debug.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace rampage
{

SramPager::SramPager(const PagerParams &params) : prm(params)
{
    if (!isPowerOfTwo(prm.pageBytes))
        throw ConfigError("SRAM page size must be a power of two");
    if (prm.baseSramBytes % prm.pageBytes != 0)
        throw ConfigError("SRAM capacity must be a multiple of the page size");

    // Capacity: cache-equivalent size plus the reclaimed tag bytes
    // (paper §4.5).  The bonus is rounded down to whole pages.
    std::uint64_t blocks = prm.baseSramBytes / prm.pageBytes;
    std::uint64_t bonus = blocks * prm.tagBytesPerBlock;
    totalBytes = prm.baseSramBytes + alignDown(bonus, floorLog2(prm.pageBytes));
    nFrames = totalBytes / prm.pageBytes;

    // The table is sized for every frame; the pinned reserve is the
    // table image plus the fixed OS code/data, rounded up to pages.
    tableVbase = prm.osVirtBase + prm.osFixedBytes;
    ipt = std::make_unique<InvertedPageTable>(nFrames, tableVbase);
    nOsFrames = divCeil(prm.osFixedBytes + ipt->tableBytes(),
                        prm.pageBytes);
    if (nOsFrames >= nFrames)
        throw ConfigError(
            "operating-system reserve (%llu pages) consumes the whole "
            "SRAM (%llu pages)",
            static_cast<unsigned long long>(nOsFrames),
            static_cast<unsigned long long>(nFrames));

    repl = makePageReplacement(prm.repl, nFrames, nOsFrames, prm.seed,
                               prm.standbyPages);
    dirty.assign(nFrames, false);
    nextFreeFrame = nOsFrames;
}

IptLookup
SramPager::lookup(Pid pid, std::uint64_t vpn,
                  std::vector<Addr> *probes) const
{
    return ipt->lookup(pid, vpn, probes);
}

void
SramPager::touch(std::uint64_t frame)
{
    repl->touch(frame);
}

void
SramPager::markDirty(std::uint64_t frame)
{
    RAMPAGE_ASSERT(frame < nFrames, "frame out of range");
    dirty[frame] = true;
}

bool
SramPager::isDirty(std::uint64_t frame) const
{
    RAMPAGE_ASSERT(frame < nFrames, "frame out of range");
    return dirty[frame];
}

void
SramPager::registerStats(StatsRegistry &reg,
                         const std::string &prefix) const
{
    reg.addCounter(prefix + ".faults", "SRAM main-memory page faults",
                   &stat.faults);
    reg.addCounter(prefix + ".dirty_writebacks",
                   "dirty victim pages written to DRAM",
                   &stat.dirtyWritebacks);
    reg.addCounter(prefix + ".cold_fills",
                   "faults satisfied by a free frame", &stat.coldFills);
}

PageFaultResult
SramPager::handleFault(Pid pid, std::uint64_t vpn)
{
    PageFaultResult result;
    ++stat.faults;

    // The handler re-walks the table (the TLB miss that preceded the
    // fault already did, but the fault path validates before acting).
    IptLookup walk = ipt->lookup(pid, vpn, &result.probes);
    RAMPAGE_ASSERT(!walk.found, "fault raised for a resident page");

    std::uint64_t frame;
    if (nextFreeFrame < nFrames) {
        // Cold fill: frames are handed out in order until the SRAM is
        // fully populated, as in the paper's warm-up discussion §4.2.
        frame = nextFreeFrame++;
        result.scanCost = 1;
        ++stat.coldFills;
    } else {
        frame = repl->pickVictim(&result.scanCost);
        RAMPAGE_ASSERT(frame >= nOsFrames, "victim from the pinned reserve");
    }

    if (ipt->mapped(frame)) {
        result.victimValid = true;
        result.victimPid = ipt->framePid(frame);
        result.victimVpn = ipt->frameVpn(frame);
        result.victimDirty = dirty[frame];
        if (dirty[frame])
            ++stat.dirtyWritebacks;
        // The handler updates the victim's table entry too.
        result.probes.push_back(ipt->entryAddr(frame));
        ipt->remove(frame);
    }

    dirty[frame] = false;
    ipt->insert(frame, pid, vpn);
    repl->fill(frame);
    result.probes.push_back(ipt->entryAddr(frame));
    result.frame = frame;
    RAMPAGE_DPRINTF(Pager,
                    "fault pid=%u vpn=0x%llx -> frame=%llu victim=%d "
                    "dirty=%d scan=%u",
                    static_cast<unsigned>(pid),
                    static_cast<unsigned long long>(vpn),
                    static_cast<unsigned long long>(frame),
                    result.victimValid ? 1 : 0,
                    result.victimDirty ? 1 : 0, result.scanCost);
    return result;
}

Addr
SramPager::osPhysAddr(Addr os_vaddr) const
{
    RAMPAGE_ASSERT(os_vaddr >= prm.osVirtBase && os_vaddr < osVirtEnd(),
                   "address outside the pinned OS region");
    // The reserve occupies frames [0, nOsFrames) verbatim.
    return os_vaddr - prm.osVirtBase;
}

} // namespace rampage
