#include "os/var_pager.hh"

#include <unordered_set>

#include "stats/registry.hh"
#include "util/audit.hh"
#include "util/bitops.hh"
#include "util/debug.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace rampage
{

VarPager::VarPager(const VarPagerParams &params) : prm(params)
{
    if (!isPowerOfTwo(prm.baseFrameBytes))
        throw ConfigError("base frame size must be a power of two");
    if (prm.baseSramBytes % prm.baseFrameBytes != 0)
        throw ConfigError(
            "SRAM capacity must be a multiple of the base frame");
    auto check_size = [&](std::uint64_t bytes) {
        if (!isPowerOfTwo(bytes) || bytes < prm.baseFrameBytes)
            throw ConfigError(
                "page size %llu invalid for base frame %llu",
                static_cast<unsigned long long>(bytes),
                static_cast<unsigned long long>(prm.baseFrameBytes));
    };
    check_size(prm.defaultPageBytes);
    for (const auto &[pid, bytes] : prm.pageBytesByPid)
        check_size(bytes);

    std::uint64_t blocks = prm.baseSramBytes / prm.baseFrameBytes;
    std::uint64_t bonus = blocks * prm.tagBytesPerBlock;
    totalBytes = prm.baseSramBytes +
                 alignDown(bonus, floorLog2(prm.baseFrameBytes));
    nFrames = totalBytes / prm.baseFrameBytes;

    // Same reserve accounting as the fixed pager: fixed OS image plus
    // ~20 B of table per base frame (anchors folded into the figure).
    tableVbase = prm.osVirtBase + prm.osFixedBytes;
    std::uint64_t table_bytes = nFrames * 20 + (nFrames / 4) * 8;
    nOsFrames = divCeil(prm.osFixedBytes + table_bytes,
                        prm.baseFrameBytes);
    if (nOsFrames >= nFrames)
        throw ConfigError("operating-system reserve consumes the whole SRAM");

    frameOwner.assign(nFrames, -1);
    nextFreeFrame = nOsFrames;
    hand = nOsFrames;
}

std::uint64_t
VarPager::pageBytes(Pid pid) const
{
    auto it = prm.pageBytesByPid.find(pid);
    return it == prm.pageBytesByPid.end() ? prm.defaultPageBytes
                                          : it->second;
}

std::uint64_t
VarPager::pageFrames(Pid pid) const
{
    return pageBytes(pid) / prm.baseFrameBytes;
}

std::uint64_t
VarPager::keyOf(Pid pid, std::uint64_t vpn)
{
    return (static_cast<std::uint64_t>(pid) << 44) ^ vpn;
}

Addr
VarPager::probeAddr(Pid pid, std::uint64_t vpn) const
{
    // Synthesized table-word address for the handler trace: spread
    // over the pinned table image like the fixed pager's hash chains.
    std::uint64_t mix = keyOf(pid, vpn) * 0x9e3779b97f4a7c15ull;
    mix ^= mix >> 31;
    std::uint64_t span = nFrames * 20;
    return tableVbase + (mix % span) / 20 * 20;
}

VarPager::Lookup
VarPager::lookup(Pid pid, std::uint64_t vpn,
                 std::vector<Addr> *probes) const
{
    if (probes) {
        probes->push_back(probeAddr(pid, vpn));
        probes->push_back(probeAddr(pid, vpn ^ 0x5555));
    }
    auto it = table.find(keyOf(pid, vpn));
    if (it == table.end())
        return Lookup{};
    return Lookup{true, pages[it->second].start};
}

void
VarPager::touchFrame(std::uint64_t base_frame)
{
    RAMPAGE_ASSERT(base_frame < nFrames, "frame out of range");
    std::int32_t slot = frameOwner[base_frame];
    if (slot >= 0)
        pages[static_cast<std::uint32_t>(slot)].referenced = true;
}

void
VarPager::markDirtyFrame(std::uint64_t base_frame)
{
    RAMPAGE_ASSERT(base_frame < nFrames, "frame out of range");
    std::int32_t slot = frameOwner[base_frame];
    if (slot >= 0)
        pages[static_cast<std::uint32_t>(slot)].dirty = true;
}

void
VarPager::evictWindow(std::uint64_t start, std::uint64_t frames,
                      VarFaultResult &result)
{
    for (std::uint64_t f = start; f < start + frames; ++f) {
        std::int32_t slot = frameOwner[f];
        if (slot < 0)
            continue;
        Page &page = pages[static_cast<std::uint32_t>(slot)];
        VarFaultVictim victim;
        victim.pid = page.pid;
        victim.vpn = page.vpn;
        victim.startFrame = page.start;
        victim.frames = page.frames;
        victim.bytes = page.frames * prm.baseFrameBytes;
        victim.dirty = page.dirty;
        result.victims.push_back(victim);
        result.probes.push_back(probeAddr(page.pid, page.vpn));
        if (page.dirty)
            ++stat.dirtyWritebacks;
        ++stat.victimsEvicted;

        // Unmap the whole page (it may extend beyond the window).
        for (std::uint64_t g = page.start; g < page.start + page.frames;
             ++g)
            frameOwner[g] = -1;
        table.erase(keyOf(page.pid, page.vpn));
        page.valid = false;
        freeSlots.push_back(static_cast<std::uint32_t>(slot));
        --nResident;
    }
}

void
VarPager::registerStats(StatsRegistry &reg,
                        const std::string &prefix) const
{
    reg.addCounter(prefix + ".faults", "SRAM main-memory page faults",
                   &stat.faults);
    reg.addCounter(prefix + ".victims_evicted",
                   "pages evicted by the window clock",
                   &stat.victimsEvicted);
    reg.addCounter(prefix + ".dirty_writebacks",
                   "dirty victim pages written to DRAM",
                   &stat.dirtyWritebacks);
}

VarFaultResult
VarPager::handleFault(Pid pid, std::uint64_t vpn)
{
    VarFaultResult result;
    ++stat.faults;
    result.probes.push_back(probeAddr(pid, vpn));

    std::uint64_t k = pageFrames(pid);
    std::uint64_t start;

    // Cold fill: bump-allocate an aligned run while space remains.
    std::uint64_t aligned_next =
        (nextFreeFrame + k - 1) / k * k; // align up to k
    if (aligned_next + k <= nFrames) {
        start = aligned_next;
        nextFreeFrame = aligned_next + k;
        result.scanCost = 1;
    } else {
        // Window clock: find a k-aligned window whose pages are all
        // unreferenced (second chance clears marks as the hand moves).
        std::uint64_t first_window = divCeil(nOsFrames, k) * k;
        if (first_window + k > nFrames)
            throw ConfigError(
                "page size %llu too large for the evictable SRAM",
                static_cast<unsigned long long>(k * prm.baseFrameBytes));
        if (hand < first_window || hand + k > nFrames)
            hand = first_window;
        hand = hand / k * k;

        std::uint64_t windows = (nFrames - first_window) / k;
        unsigned scanned = 0;
        std::uint64_t chosen = first_window;
        bool found = false;
        for (std::uint64_t step = 0; step < 2 * windows + 1; ++step) {
            std::uint64_t w = hand;
            hand += k;
            if (hand + k > nFrames)
                hand = first_window;
            ++scanned;

            bool referenced = false;
            for (std::uint64_t f = w; f < w + k; ++f) {
                std::int32_t slot = frameOwner[f];
                if (slot >= 0 &&
                    pages[static_cast<std::uint32_t>(slot)].referenced)
                    referenced = true;
            }
            if (referenced) {
                // Second chance for every page in the window.
                for (std::uint64_t f = w; f < w + k; ++f) {
                    std::int32_t slot = frameOwner[f];
                    if (slot >= 0)
                        pages[static_cast<std::uint32_t>(slot)]
                            .referenced = false;
                }
            } else {
                chosen = w;
                found = true;
                break;
            }
        }
        if (!found)
            throw InternalError(
                "window clock failed to choose a victim window");
        result.scanCost = scanned;
        evictWindow(chosen, k, result);
        start = chosen;
    }

    // Map the new page.
    std::uint32_t slot;
    if (!freeSlots.empty()) {
        slot = freeSlots.back();
        freeSlots.pop_back();
    } else {
        slot = static_cast<std::uint32_t>(pages.size());
        pages.push_back(Page{});
    }
    Page &page = pages[slot];
    page.pid = pid;
    page.vpn = vpn;
    page.start = start;
    page.frames = k;
    page.dirty = false;
    page.referenced = true;
    page.valid = true;
    for (std::uint64_t f = start; f < start + k; ++f)
        frameOwner[f] = static_cast<std::int32_t>(slot);
    table[keyOf(pid, vpn)] = slot;
    ++nResident;

    result.probes.push_back(probeAddr(pid, vpn));
    result.startFrame = start;
    RAMPAGE_DPRINTF(Pager,
                    "var fault pid=%u vpn=0x%llx -> frames=[%llu,+%llu) "
                    "victims=%zu scan=%u",
                    static_cast<unsigned>(pid),
                    static_cast<unsigned long long>(vpn),
                    static_cast<unsigned long long>(start),
                    static_cast<unsigned long long>(k),
                    result.victims.size(), result.scanCost);
    return result;
}

Addr
VarPager::osPhysAddr(Addr os_vaddr) const
{
    RAMPAGE_ASSERT(os_vaddr >= prm.osVirtBase && os_vaddr < osVirtEnd(),
                   "address outside the pinned OS region");
    return os_vaddr - prm.osVirtBase;
}

void
VarPager::auditState(AuditContext &ctx) const
{
    std::unordered_set<std::uint32_t> free_set(freeSlots.begin(),
                                               freeSlots.end());
    for (std::uint32_t slot : free_set)
        ctx.check(slot < pages.size() && !pages[slot].valid,
                  "var.count", "free slot %u holds a valid page", slot);

    std::uint64_t valid_pages = 0;
    for (std::uint32_t slot = 0; slot < pages.size(); ++slot) {
        const Page &page = pages[slot];
        if (!page.valid) {
            ctx.check(free_set.count(slot) != 0, "var.count",
                      "invalid slot %u is not on the free list", slot);
            continue;
        }
        ++valid_pages;

        bool placed = ctx.check(
            page.frames > 0 && page.start % page.frames == 0 &&
                page.start >= nOsFrames &&
                page.start + page.frames <= nFrames,
            "var.frame_map",
            "page pid=%u vpn=0x%llx misplaced: frames [%llu,+%llu) "
            "(reserve %llu, total %llu, alignment %llu)",
            static_cast<unsigned>(page.pid),
            static_cast<unsigned long long>(page.vpn),
            static_cast<unsigned long long>(page.start),
            static_cast<unsigned long long>(page.frames),
            static_cast<unsigned long long>(nOsFrames),
            static_cast<unsigned long long>(nFrames),
            static_cast<unsigned long long>(page.frames));
        if (placed) {
            for (std::uint64_t f = page.start;
                 f < page.start + page.frames; ++f)
                ctx.check(frameOwner[f] ==
                              static_cast<std::int32_t>(slot),
                          "var.frame_map",
                          "frame %llu of page pid=%u vpn=0x%llx is "
                          "owned by slot %d, not %u",
                          static_cast<unsigned long long>(f),
                          static_cast<unsigned>(page.pid),
                          static_cast<unsigned long long>(page.vpn),
                          frameOwner[f], slot);
        }

        auto it = table.find(keyOf(page.pid, page.vpn));
        ctx.check(it != table.end() && it->second == slot,
                  "var.frame_map",
                  "valid page pid=%u vpn=0x%llx (slot %u) missing "
                  "from the residency table",
                  static_cast<unsigned>(page.pid),
                  static_cast<unsigned long long>(page.vpn), slot);
    }

    // Frames may legitimately be unowned below the bump cursor
    // (cold-fill alignment holes), but an owner must always be a
    // live, in-range slot, and the OS reserve is never owned.
    for (std::uint64_t f = 0; f < nFrames; ++f) {
        std::int32_t slot = frameOwner[f];
        if (slot < 0)
            continue;
        ctx.check(f >= nOsFrames, "var.frame_map",
                  "pinned OS frame %llu is owned by slot %d",
                  static_cast<unsigned long long>(f), slot);
        ctx.check(static_cast<std::uint32_t>(slot) < pages.size() &&
                      pages[static_cast<std::uint32_t>(slot)].valid,
                  "var.frame_map",
                  "frame %llu owned by dead slot %d",
                  static_cast<unsigned long long>(f), slot);
    }

    ctx.check(valid_pages == nResident && table.size() == nResident,
              "var.count",
              "%llu valid pages, %zu table entries, but "
              "residentPages() says %llu",
              static_cast<unsigned long long>(valid_pages),
              table.size(),
              static_cast<unsigned long long>(nResident));
}

bool
VarPager::corruptDropOwner()
{
    for (std::uint64_t f = nOsFrames; f < nFrames; ++f) {
        if (frameOwner[f] >= 0) {
            frameOwner[f] = -1;
            return true;
        }
    }
    return false;
}

} // namespace rampage
