#include "os/dram_directory.hh"

#include <iterator>
#include <unordered_set>

#include "util/audit.hh"
#include "util/bitops.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace rampage
{

DramDirectory::DramDirectory(std::uint64_t page_bytes, Addr table_base,
                             std::uint64_t phys_pages)
    : pageSize(page_bytes), tableBase(table_base)
{
    if (!isPowerOfTwo(page_bytes))
        throw ConfigError("DRAM page size must be a power of two");
    if (!isPowerOfTwo(phys_pages))
        throw ConfigError("physical frame pool must be a power of two");
    pageBits = floorLog2(page_bytes);
    used.assign(phys_pages, false);
}

std::uint64_t
DramDirectory::keyOf(Pid pid, std::uint64_t vpn)
{
    return (static_cast<std::uint64_t>(pid) << 48) ^ vpn;
}

std::uint64_t
DramDirectory::frameOf(Pid pid, std::uint64_t vpn, bool *allocated_out)
{
    std::uint64_t key = keyOf(pid, vpn);
    auto [it, inserted] = map.try_emplace(key, 0);
    if (inserted) {
        if (nAllocated >= used.size())
            throw ConfigError("DRAM frame pool exhausted (%llu frames): raise "
                              "phys_pages for this workload",
                              static_cast<unsigned long long>(used.size()));
        // Randomized placement: hash the page identity into the frame
        // pool and linearly probe to the first free frame.
        std::uint64_t mix = key * 0xd6e8feb86659fd93ull;
        mix ^= mix >> 32;
        std::uint64_t frame = mix & (used.size() - 1);
        while (used[frame])
            frame = (frame + 1) & (used.size() - 1);
        used[frame] = true;
        ++nAllocated;
        it->second = frame;
    }
    if (allocated_out)
        *allocated_out = inserted;
    return it->second;
}

Addr
DramDirectory::physAddr(Pid pid, Addr vaddr)
{
    std::uint64_t frame = frameOf(pid, vaddr >> pageBits);
    return (frame << pageBits) | lowBits(vaddr, pageBits);
}

bool
DramDirectory::lookup(Pid pid, std::uint64_t vpn,
                      std::uint64_t *frame_out) const
{
    auto it = map.find(keyOf(pid, vpn));
    if (it == map.end())
        return false;
    if (frame_out)
        *frame_out = it->second;
    return true;
}

void
DramDirectory::auditState(AuditContext &ctx) const
{
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(map.size());
    for (const auto &[key, frame] : map) {
        Pid pid = static_cast<Pid>(key >> 48);
        std::uint64_t vpn = key ^ (static_cast<std::uint64_t>(pid) << 48);
        if (!ctx.check(frame < used.size(), "dir.count",
                       "pid=%u vpn=0x%llx maps to frame %llu beyond "
                       "the %zu-frame pool",
                       static_cast<unsigned>(pid),
                       static_cast<unsigned long long>(vpn),
                       static_cast<unsigned long long>(frame),
                       used.size()))
            continue;
        ctx.check(used[frame], "dir.count",
                  "pid=%u vpn=0x%llx maps to frame %llu whose "
                  "occupancy bit is clear",
                  static_cast<unsigned>(pid),
                  static_cast<unsigned long long>(vpn),
                  static_cast<unsigned long long>(frame));
        ctx.check(seen.insert(frame).second, "dir.alias",
                  "DRAM frame %llu is home to two pages (second: "
                  "pid=%u vpn=0x%llx)",
                  static_cast<unsigned long long>(frame),
                  static_cast<unsigned>(pid),
                  static_cast<unsigned long long>(vpn));
    }

    std::uint64_t occupied = 0;
    for (bool bit : used)
        occupied += bit ? 1 : 0;
    ctx.check(map.size() == nAllocated && occupied == nAllocated,
              "dir.count",
              "%zu directory entries, %llu occupancy bits, but "
              "allocatedFrames() says %llu",
              map.size(), static_cast<unsigned long long>(occupied),
              static_cast<unsigned long long>(nAllocated));
}

bool
DramDirectory::corruptAlias()
{
    if (map.size() < 2)
        return false;
    auto first = map.begin();
    auto second = std::next(first);
    second->second = first->second;
    return true;
}

void
DramDirectory::probeAddrs(Pid pid, std::uint64_t vpn,
                          std::vector<Addr> &out) const
{
    // Inverted-table image: a hash anchor word, then the probed
    // entry.  The hash mirrors the SRAM table's mixing so probe
    // addresses spread over the table the same way.
    std::uint64_t key = vpn * 0x9e3779b97f4a7c15ull;
    key ^= static_cast<std::uint64_t>(pid) * 0xc2b2ae3d27d4eb4full;
    key ^= key >> 29;
    // A generous fixed table extent: 64 K anchors + entries.
    std::uint64_t bucket = key & 0xffff;
    constexpr std::uint64_t entry_bytes = 20; // matches iptEntryBytes
    out.push_back(tableBase + bucket * 8);
    out.push_back(tableBase + 64 * kib * 8 + bucket * entry_bytes);
}

} // namespace rampage
