#include "os/page_store.hh"

#include <algorithm>
#include <unordered_set>

#include "stats/registry.hh"
#include "util/audit.hh"
#include "util/bitops.hh"
#include "util/debug.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace rampage
{

PageStoreParams
PageStore::normalized(PageStoreParams params)
{
    // A per-pid configuration where every page equals the base frame
    // is the uniform policy; collapse it so the two spellings share
    // one code path (and one stats layout, reserve size, probe
    // stream, DRAM pricing).
    if (params.defaultPageBytes == 0 ||
        params.defaultPageBytes != params.pageBytes)
        return params;
    for (const auto &[pid, bytes] : params.pageBytesByPid) {
        (void)pid;
        if (bytes != params.pageBytes)
            return params;
    }
    params.defaultPageBytes = 0;
    params.pageBytesByPid.clear();
    return params;
}

PageStore::PageStore(const PageStoreParams &params)
    : prm(normalized(params))
{
    if (uniform()) {
        if (!isPowerOfTwo(prm.pageBytes))
            throw ConfigError("SRAM page size must be a power of two");
        if (prm.baseSramBytes % prm.pageBytes != 0)
            throw ConfigError(
                "SRAM capacity must be a multiple of the page size");
    } else {
        if (!isPowerOfTwo(prm.pageBytes))
            throw ConfigError("base frame size must be a power of two");
        if (prm.baseSramBytes % prm.pageBytes != 0)
            throw ConfigError(
                "SRAM capacity must be a multiple of the base frame");
        auto check_size = [&](std::uint64_t bytes) {
            if (!isPowerOfTwo(bytes) || bytes < prm.pageBytes)
                throw ConfigError(
                    "page size %llu invalid for base frame %llu",
                    static_cast<unsigned long long>(bytes),
                    static_cast<unsigned long long>(prm.pageBytes));
        };
        check_size(prm.defaultPageBytes);
        for (const auto &[pid, bytes] : prm.pageBytesByPid) {
            (void)pid;
            check_size(bytes);
        }
    }

    // Capacity: cache-equivalent size plus the reclaimed tag bytes
    // (paper §4.5).  The bonus is rounded down to whole frames.
    std::uint64_t blocks = prm.baseSramBytes / prm.pageBytes;
    std::uint64_t bonus = blocks * prm.tagBytesPerBlock;
    totalBytes = prm.baseSramBytes + alignDown(bonus, floorLog2(prm.pageBytes));
    nFrames = totalBytes / prm.pageBytes;

    // The table is sized for every frame; the pinned reserve is the
    // table image plus the fixed OS code/data, rounded up to frames.
    tableVbase = prm.osVirtBase + prm.osFixedBytes;
    ipt = std::make_unique<InvertedPageTable>(nFrames, tableVbase);
    if (uniform()) {
        nOsFrames = divCeil(prm.osFixedBytes + ipt->tableBytes(),
                            prm.pageBytes);
        if (nOsFrames >= nFrames)
            throw ConfigError(
                "operating-system reserve (%llu pages) consumes the whole "
                "SRAM (%llu pages)",
                static_cast<unsigned long long>(nOsFrames),
                static_cast<unsigned long long>(nFrames));
        if (prm.repl == PageReplKind::Standby &&
            prm.standbyPages >= nFrames - nOsFrames)
            throw ConfigError(
                "standbyPages (%llu) must be smaller than the "
                "evictable SRAM (%llu frames)",
                static_cast<unsigned long long>(prm.standbyPages),
                static_cast<unsigned long long>(nFrames - nOsFrames));
        repl = makePageReplacement(prm.repl, nFrames, nOsFrames, prm.seed,
                                   prm.standbyPages);
    } else {
        // Same reserve accounting as the uniform policy: fixed OS
        // image plus ~20 B of table per base frame (anchors folded).
        std::uint64_t table_bytes = nFrames * 20 + (nFrames / 4) * 8;
        nOsFrames = divCeil(prm.osFixedBytes + table_bytes,
                            prm.pageBytes);
        if (nOsFrames >= nFrames)
            throw ConfigError(
                "operating-system reserve consumes the whole SRAM");
        frameStart.assign(nFrames, noFrame);
        refd.assign(nFrames, false);
        hand = nOsFrames;
    }
    dirty.assign(nFrames, false);
    nextFreeFrame = nOsFrames;
}

std::uint64_t
PageStore::pageFrames(Pid pid) const
{
    return pageBytes(pid) / prm.pageBytes;
}

std::uint64_t
PageStore::residentPages() const
{
    return uniform() ? ipt->mappedCount() : nResident;
}

Addr
PageStore::probeAddr(Pid pid, std::uint64_t vpn) const
{
    // Synthesized table-word address for the handler trace: spread
    // over the pinned table image like the uniform hash chains.
    std::uint64_t key = (static_cast<std::uint64_t>(pid) << 44) ^ vpn;
    std::uint64_t mix = key * 0x9e3779b97f4a7c15ull;
    mix ^= mix >> 31;
    std::uint64_t span = nFrames * 20;
    return tableVbase + (mix % span) / 20 * 20;
}

IptLookup
PageStore::lookup(Pid pid, std::uint64_t vpn,
                  std::vector<Addr> *probes) const
{
    if (uniform())
        return ipt->lookup(pid, vpn, probes);
    // The per-pid handler walks a shallower structure; its trace uses
    // synthesized table words rather than the live hash chain.
    if (probes) {
        probes->push_back(probeAddr(pid, vpn));
        probes->push_back(probeAddr(pid, vpn ^ 0x5555));
    }
    return ipt->lookup(pid, vpn, nullptr);
}

void
PageStore::markDirty(std::uint64_t frame)
{
    RAMPAGE_ASSERT(frame < nFrames, "frame out of range");
    if (uniform()) {
        dirty[frame] = true;
        return;
    }
    std::uint64_t start = frameStart[frame];
    if (start != noFrame)
        dirty[start] = true;
}

bool
PageStore::isDirty(std::uint64_t frame) const
{
    RAMPAGE_ASSERT(frame < nFrames, "frame out of range");
    if (uniform())
        return dirty[frame];
    std::uint64_t start = frameStart[frame];
    return start != noFrame && dirty[start];
}

bool
PageStore::frameOwned(std::uint64_t frame) const
{
    RAMPAGE_ASSERT(frame < nFrames, "frame out of range");
    return uniform() ? ipt->mapped(frame)
                     : frameStart[frame] != noFrame;
}

const PageReplacementPolicy &
PageStore::policy() const
{
    RAMPAGE_ASSERT(repl != nullptr,
                   "no frame replacement policy under the per-pid "
                   "page-size policy");
    return *repl;
}

void
PageStore::registerStats(StatsRegistry &reg,
                         const std::string &prefix) const
{
    reg.addCounter(prefix + ".faults", "SRAM main-memory page faults",
                   &stat.faults);
    if (uniform()) {
        reg.addCounter(prefix + ".dirty_writebacks",
                       "dirty victim pages written to DRAM",
                       &stat.dirtyWritebacks);
        reg.addCounter(prefix + ".cold_fills",
                       "faults satisfied by a free frame",
                       &stat.coldFills);
    } else {
        reg.addCounter(prefix + ".victims_evicted",
                       "pages evicted by the window clock",
                       &stat.victimsEvicted);
        reg.addCounter(prefix + ".dirty_writebacks",
                       "dirty victim pages written to DRAM",
                       &stat.dirtyWritebacks);
    }
}

void
PageStore::evictWindow(std::uint64_t start, std::uint64_t frames,
                       PageFaultResult &result)
{
    for (std::uint64_t f = start; f < start + frames; ++f) {
        std::uint64_t s = frameStart[f];
        if (s == noFrame)
            continue;
        Pid vpid = ipt->framePid(s);
        std::uint64_t vvpn = ipt->frameVpn(s);
        std::uint64_t k = pageFrames(vpid);
        PageVictim victim;
        victim.pid = vpid;
        victim.vpn = vvpn;
        victim.startFrame = s;
        victim.frames = k;
        victim.bytes = k * prm.pageBytes;
        victim.dirty = dirty[s];
        result.victims.push_back(victim);
        result.probes.push_back(probeAddr(vpid, vvpn));
        if (dirty[s])
            ++stat.dirtyWritebacks;
        ++stat.victimsEvicted;

        // Unmap the whole page (it may extend beyond the window).
        for (std::uint64_t g = s; g < s + k; ++g)
            frameStart[g] = noFrame;
        ipt->remove(s);
        dirty[s] = false;
        refd[s] = false;
        --nResident;
    }
}

PageFaultResult
PageStore::handleFault(Pid pid, std::uint64_t vpn)
{
    if (uniform()) {
        PageFaultResult result;
        ++stat.faults;

        // The handler re-walks the table (the TLB miss that preceded
        // the fault already did, but the fault path validates before
        // acting).
        IptLookup walk = ipt->lookup(pid, vpn, &result.probes);
        RAMPAGE_ASSERT(!walk.found, "fault raised for a resident page");

        std::uint64_t frame;
        if (nextFreeFrame < nFrames) {
            // Cold fill: frames are handed out in order until the SRAM
            // is fully populated, as in the paper's warm-up discussion
            // §4.2.
            frame = nextFreeFrame++;
            result.scanCost = 1;
            ++stat.coldFills;
        } else {
            frame = repl->pickVictim(&result.scanCost);
            RAMPAGE_ASSERT(frame >= nOsFrames,
                           "victim from the pinned reserve");
        }

        if (ipt->mapped(frame)) {
            PageVictim victim;
            victim.pid = ipt->framePid(frame);
            victim.vpn = ipt->frameVpn(frame);
            victim.startFrame = frame;
            victim.frames = 1;
            victim.bytes = prm.pageBytes;
            victim.dirty = dirty[frame];
            if (dirty[frame])
                ++stat.dirtyWritebacks;
            // The handler updates the victim's table entry too.
            result.probes.push_back(ipt->entryAddr(frame));
            ipt->remove(frame);
            result.victims.push_back(victim);
        }

        dirty[frame] = false;
        ipt->insert(frame, pid, vpn);
        repl->fill(frame);
        result.probes.push_back(ipt->entryAddr(frame));
        result.frame = frame;
        [[maybe_unused]] bool victim_valid = !result.victims.empty();
        [[maybe_unused]] bool victim_dirty =
            victim_valid && result.victims[0].dirty;
        RAMPAGE_DPRINTF(Pager,
                        "fault pid=%u vpn=0x%llx -> frame=%llu victim=%d "
                        "dirty=%d scan=%u",
                        static_cast<unsigned>(pid),
                        static_cast<unsigned long long>(vpn),
                        static_cast<unsigned long long>(frame),
                        victim_valid ? 1 : 0, victim_dirty ? 1 : 0,
                        result.scanCost);
        return result;
    }

    PageFaultResult result;
    ++stat.faults;
    result.probes.push_back(probeAddr(pid, vpn));

    std::uint64_t k = pageFrames(pid);
    std::uint64_t start;

    // Cold fill: bump-allocate an aligned run while space remains.
    std::uint64_t aligned_next =
        (nextFreeFrame + k - 1) / k * k; // align up to k
    if (aligned_next + k <= nFrames) {
        start = aligned_next;
        nextFreeFrame = aligned_next + k;
        result.scanCost = 1;
    } else {
        // Window clock: find a k-aligned window whose pages are all
        // unreferenced (second chance clears marks as the hand moves).
        std::uint64_t first_window = divCeil(nOsFrames, k) * k;
        if (first_window + k > nFrames)
            throw ConfigError(
                "page size %llu too large for the evictable SRAM",
                static_cast<unsigned long long>(k * prm.pageBytes));
        if (hand < first_window || hand + k > nFrames)
            hand = first_window;
        hand = hand / k * k;

        std::uint64_t windows = (nFrames - first_window) / k;
        unsigned scanned = 0;
        std::uint64_t chosen = first_window;
        bool found = false;
        for (std::uint64_t step = 0; step < 2 * windows + 1; ++step) {
            std::uint64_t w = hand;
            hand += k;
            if (hand + k > nFrames)
                hand = first_window;
            ++scanned;

            bool referenced = false;
            for (std::uint64_t f = w; f < w + k; ++f) {
                std::uint64_t s = frameStart[f];
                if (s != noFrame && refd[s])
                    referenced = true;
            }
            if (referenced) {
                // Second chance for every page in the window.
                for (std::uint64_t f = w; f < w + k; ++f) {
                    std::uint64_t s = frameStart[f];
                    if (s != noFrame)
                        refd[s] = false;
                }
            } else {
                chosen = w;
                found = true;
                break;
            }
        }
        if (!found)
            throw InternalError(
                "window clock failed to choose a victim window");
        result.scanCost = scanned;
        evictWindow(chosen, k, result);
        start = chosen;
    }

    // Map the new page.
    ipt->insert(start, pid, vpn);
    for (std::uint64_t f = start; f < start + k; ++f)
        frameStart[f] = start;
    dirty[start] = false;
    refd[start] = true;
    ++nResident;

    result.probes.push_back(probeAddr(pid, vpn));
    result.frame = start;
    RAMPAGE_DPRINTF(Pager,
                    "var fault pid=%u vpn=0x%llx -> frames=[%llu,+%llu) "
                    "victims=%zu scan=%u",
                    static_cast<unsigned>(pid),
                    static_cast<unsigned long long>(vpn),
                    static_cast<unsigned long long>(start),
                    static_cast<unsigned long long>(k),
                    result.victims.size(), result.scanCost);
    return result;
}

void
PageStore::auditState(AuditContext &ctx) const
{
    ipt->auditState(ctx);
    if (uniform())
        auditUniform(ctx);
    else
        auditPerPid(ctx);
}

void
PageStore::auditUniform(AuditContext &ctx) const
{
    for (std::uint64_t f = 0; f < nOsFrames; ++f)
        ctx.check(!ipt->mapped(f), "pager.os_reserve",
                  "pinned OS frame %llu maps pid=%u vpn=0x%llx",
                  static_cast<unsigned long long>(f),
                  static_cast<unsigned>(
                      ipt->mapped(f) ? ipt->framePid(f) : 0),
                  static_cast<unsigned long long>(
                      ipt->mapped(f) ? ipt->frameVpn(f) : 0));

    // Outside handleFault(), every cold-filled user frame holds a page:
    // the fault path removes a victim and reinserts in one call, so an
    // unmapped frame below the cold-fill cursor is leaked capacity.
    std::uint64_t cursor = std::min(nextFreeFrame, nFrames);
    for (std::uint64_t f = nOsFrames; f < cursor; ++f)
        ctx.check(ipt->mapped(f), "pager.leak",
                  "user frame %llu below the cold-fill cursor (%llu) "
                  "maps no page",
                  static_cast<unsigned long long>(f),
                  static_cast<unsigned long long>(nextFreeFrame));

    for (std::uint64_t f = cursor; f < nFrames; ++f)
        ctx.check(!ipt->mapped(f), "pager.cold_region",
                  "frame %llu beyond the cold-fill cursor (%llu) maps "
                  "pid=%u vpn=0x%llx",
                  static_cast<unsigned long long>(f),
                  static_cast<unsigned long long>(nextFreeFrame),
                  static_cast<unsigned>(
                      ipt->mapped(f) ? ipt->framePid(f) : 0),
                  static_cast<unsigned long long>(
                      ipt->mapped(f) ? ipt->frameVpn(f) : 0));

    // A dirty bit on an unmapped user frame would either be lost (the
    // data is gone) or charged to whatever page lands there next.
    // OS frames are exempt: they are dirtied by handler stores but
    // pinned outside the table.
    for (std::uint64_t f = nOsFrames; f < nFrames; ++f) {
        if (dirty[f])
            ctx.check(ipt->mapped(f), "pager.stale_dirty",
                      "unmapped user frame %llu is marked dirty",
                      static_cast<unsigned long long>(f));
    }

    // Two frames holding the same page would make residency depend on
    // probe order (the chain audit cannot see this: both entries hash
    // to — and legitimately chain from — the same bucket).
    std::unordered_set<std::uint64_t> pages;
    pages.reserve(ipt->mappedCount());
    for (std::uint64_t f = nOsFrames; f < nFrames; ++f) {
        if (!ipt->mapped(f))
            continue;
        std::uint64_t key =
            (static_cast<std::uint64_t>(ipt->framePid(f)) << 48) ^
            ipt->frameVpn(f);
        ctx.check(pages.insert(key).second, "pager.double_map",
                  "pid=%u vpn=0x%llx resident in two frames (second: "
                  "%llu)",
                  static_cast<unsigned>(ipt->framePid(f)),
                  static_cast<unsigned long long>(ipt->frameVpn(f)),
                  static_cast<unsigned long long>(f));
    }
}

void
PageStore::auditPerPid(AuditContext &ctx) const
{
    std::uint64_t valid_pages = 0;
    for (std::uint64_t s = 0; s < nFrames; ++s) {
        if (!ipt->mapped(s))
            continue;
        ++valid_pages;
        Pid pid = ipt->framePid(s);
        std::uint64_t vpn = ipt->frameVpn(s);
        std::uint64_t k = pageFrames(pid);

        bool placed = ctx.check(
            k > 0 && s % k == 0 && s >= nOsFrames && s + k <= nFrames,
            "var.frame_map",
            "page pid=%u vpn=0x%llx misplaced: frames [%llu,+%llu) "
            "(reserve %llu, total %llu, alignment %llu)",
            static_cast<unsigned>(pid),
            static_cast<unsigned long long>(vpn),
            static_cast<unsigned long long>(s),
            static_cast<unsigned long long>(k),
            static_cast<unsigned long long>(nOsFrames),
            static_cast<unsigned long long>(nFrames),
            static_cast<unsigned long long>(k));
        if (placed) {
            for (std::uint64_t f = s; f < s + k; ++f)
                ctx.check(frameStart[f] == s, "var.frame_map",
                          "frame %llu of page pid=%u vpn=0x%llx is "
                          "owned by start %lld, not %llu",
                          static_cast<unsigned long long>(f),
                          static_cast<unsigned>(pid),
                          static_cast<unsigned long long>(vpn),
                          frameStart[f] == noFrame
                              ? -1ll
                              : static_cast<long long>(frameStart[f]),
                          static_cast<unsigned long long>(s));
        }
    }

    // Frames may legitimately be unowned below the bump cursor
    // (cold-fill alignment holes), but an owner must always be a
    // live resident page, and the OS reserve is never owned.
    for (std::uint64_t f = 0; f < nFrames; ++f) {
        std::uint64_t s = frameStart[f];
        if (s == noFrame)
            continue;
        ctx.check(f >= nOsFrames, "var.frame_map",
                  "pinned OS frame %llu is owned by page start %llu",
                  static_cast<unsigned long long>(f),
                  static_cast<unsigned long long>(s));
        ctx.check(s < nFrames && ipt->mapped(s), "var.frame_map",
                  "frame %llu owned by dead page start %llu",
                  static_cast<unsigned long long>(f),
                  static_cast<unsigned long long>(s));
    }

    ctx.check(valid_pages == nResident &&
                  ipt->mappedCount() == nResident,
              "var.count",
              "%llu valid pages, %llu table entries, but "
              "residentPages() says %llu",
              static_cast<unsigned long long>(valid_pages),
              static_cast<unsigned long long>(ipt->mappedCount()),
              static_cast<unsigned long long>(nResident));
}

bool
PageStore::corruptUnlinkEntry()
{
    for (std::uint64_t f = nOsFrames; f < nFrames; ++f)
        if (ipt->mapped(f))
            return ipt->corruptUnlink(f);
    return false;
}

bool
PageStore::corruptStaleDirty()
{
    if (!uniform())
        return false;
    for (std::uint64_t f = nOsFrames; f < nFrames; ++f) {
        if (!ipt->mapped(f)) {
            dirty[f] = true;
            return true;
        }
    }
    return false;
}

bool
PageStore::corruptLeakFrame()
{
    if (!uniform())
        return false;
    for (std::uint64_t f = nOsFrames; f < nFrames; ++f) {
        if (f < nextFreeFrame && ipt->mapped(f))
            return ipt->remove(f);
    }
    return false;
}

bool
PageStore::corruptDropOwner()
{
    if (uniform())
        return false;
    for (std::uint64_t f = nOsFrames; f < nFrames; ++f) {
        if (frameStart[f] != noFrame) {
            frameStart[f] = noFrame;
            return true;
        }
    }
    return false;
}

} // namespace rampage
