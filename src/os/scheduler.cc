#include "os/scheduler.hh"

#include "stats/registry.hh"
#include "util/audit.hh"
#include "util/debug.hh"
#include "util/logging.hh"

namespace rampage
{

void
Scheduler::registerStats(StatsRegistry &reg,
                         const std::string &prefix) const
{
    reg.addCounter(prefix + ".quantum_switches",
                   "time-slice context switches",
                   &stat.quantumSwitches);
    reg.addCounter(prefix + ".miss_switches",
                   "context switches taken on page faults",
                   &stat.missSwitches);
    reg.addCounter(prefix + ".stalls", "all-blocked CPU idles",
                   &stat.stalls);
    reg.addCounter(prefix + ".stall_ps", "total CPU idle picoseconds",
                   &stat.stallTime);
}

Scheduler::Scheduler(std::size_t nprocs, std::uint64_t quantum_refs)
    : blockedUntil(nprocs, 0), quantumRefs(quantum_refs)
{
    RAMPAGE_ASSERT(nprocs > 0, "scheduler needs at least one process");
    RAMPAGE_ASSERT(quantum_refs > 0, "quantum must be positive");
}

bool
Scheduler::onRef()
{
    if (++refsInSlice >= quantumRefs) {
        refsInSlice = 0;
        return true;
    }
    return false;
}

bool
Scheduler::onRefs(std::uint64_t n)
{
    RAMPAGE_ASSERT(n <= refsUntilQuantum(),
                   "bulk slice accounting overran the quantum");
    refsInSlice += n;
    if (refsInSlice >= quantumRefs) {
        refsInSlice = 0;
        return true;
    }
    return false;
}

bool
Scheduler::ready(std::size_t index, Tick now) const
{
    return blockedUntil[index] <= now;
}

std::size_t
Scheduler::readyCount(Tick now) const
{
    std::size_t count = 0;
    for (Tick until : blockedUntil)
        if (until <= now)
            ++count;
    return count;
}

SchedPick
Scheduler::pickFrom(std::size_t from, Tick now)
{
    std::size_t n = blockedUntil.size();
    for (std::size_t step = 0; step < n; ++step) {
        std::size_t candidate = (from + step) % n;
        if (blockedUntil[candidate] <= now) {
            running = candidate;
            refsInSlice = 0;
            return SchedPick{candidate, now, false};
        }
    }

    // Everyone is blocked: the CPU stalls until the earliest transfer
    // completes, then runs that process.
    std::size_t earliest = 0;
    for (std::size_t i = 1; i < n; ++i)
        if (blockedUntil[i] < blockedUntil[earliest])
            earliest = i;
    Tick resume = blockedUntil[earliest];
    RAMPAGE_ASSERT(resume > now, "stall with a ready process available");
    ++stat.stalls;
    stat.stallTime += resume - now;
    RAMPAGE_DPRINTF(Sched, "stall %llu ps until proc %zu unblocks",
                    static_cast<unsigned long long>(resume - now),
                    earliest);
    running = earliest;
    refsInSlice = 0;
    return SchedPick{earliest, resume, true};
}

SchedPick
Scheduler::rotate(Tick now)
{
    ++stat.quantumSwitches;
    return pickFrom((running + 1) % blockedUntil.size(), now);
}

void
Scheduler::auditState(AuditContext &ctx, Tick now) const
{
    ctx.check(running < blockedUntil.size(), "sched.queue",
              "running index %zu out of range (%zu processes)",
              running, blockedUntil.size());
    if (running < blockedUntil.size())
        ctx.check(blockedUntil[running] <= now, "sched.queue",
                  "running process %zu is blocked until %llu ps "
                  "(now %llu ps)",
                  running,
                  static_cast<unsigned long long>(
                      blockedUntil[running]),
                  static_cast<unsigned long long>(now));
    ctx.check(refsInSlice <= quantumRefs, "sched.queue",
              "slice counter %llu exceeds the %llu-ref quantum",
              static_cast<unsigned long long>(refsInSlice),
              static_cast<unsigned long long>(quantumRefs));
}

bool
Scheduler::corruptBlockRunning(Tick until)
{
    blockedUntil[running] = until;
    return true;
}

SchedPick
Scheduler::blockCurrent(Tick now, Tick until)
{
    blockedUntil[running] = until;
    ++stat.missSwitches;
    RAMPAGE_DPRINTF(Sched, "block proc %zu until %llu ps", running,
                    static_cast<unsigned long long>(until));
    return pickFrom((running + 1) % blockedUntil.size(), now);
}

} // namespace rampage
