/**
 * @file
 * DRAM page directory: the allocate-on-first-touch mapping from
 * (pid, virtual page) to DRAM physical frames.
 *
 * Serves two roles, matching the paper:
 *
 *  - under the conventional hierarchy it is the operating system's
 *    page table: the TLB caches its translations (fixed 4 KB pages),
 *    and the TLB-miss handler's table probes are ordinary cacheable
 *    physical references into the table's memory image;
 *  - under RAMpage it is the DRAM *paging device* directory (§2.4),
 *    consulted only when a page faults out of the SRAM main memory.
 *
 * DRAM is modelled as infinite (no misses to disk, §4.3): frames are
 * never reclaimed.  Placement is *randomized* (hashed first-touch
 * with linear probing), modelling an operating system that does no
 * cache-conscious page coloring — precisely the situation in which a
 * direct-mapped L2 suffers the conflict misses that associativity
 * (hardware 2-way, or RAMpage's full software associativity) removes
 * (§3.2 cites Kessler & Hill on placement).  Per the paper §2.4, the
 * directory uses the same inverted (hash-probed) organization as the
 * SRAM main memory's table.
 */

#ifndef RAMPAGE_OS_DRAM_DIRECTORY_HH
#define RAMPAGE_OS_DRAM_DIRECTORY_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/types.hh"

namespace rampage
{

class AuditContext;

/** DRAM frame mapping with first-touch allocation. */
class DramDirectory
{
  public:
    /**
     * @param page_bytes DRAM page size (paper: fixed 4 KB).
     * @param table_base physical address of the table image, placed
     *        far above any allocatable frame so probes never alias
     *        program data.
     * @param phys_pages size of the physical frame pool placement
     *        randomizes over (default 64 Ki frames = 256 MB); must
     *        be a power of two and exceed the workload's footprint.
     */
    explicit DramDirectory(std::uint64_t page_bytes = 4096,
                           Addr table_base = Addr{1} << 40,
                           std::uint64_t phys_pages = 64 * 1024);

    /**
     * Frame for (pid, vpn), allocated on first touch.
     * @param allocated_out set true when this call allocated.
     */
    std::uint64_t frameOf(Pid pid, std::uint64_t vpn,
                          bool *allocated_out = nullptr);

    /** Translate a full virtual address to a DRAM physical address. */
    Addr physAddr(Pid pid, Addr vaddr);

    /**
     * Physical addresses the page-table lookup for (pid, vpn)
     * touches: the hash anchor and the probed entry.  Used to build
     * the TLB-miss handler's data references under the conventional
     * hierarchy.
     */
    void probeAddrs(Pid pid, std::uint64_t vpn,
                    std::vector<Addr> &out) const;

    std::uint64_t pageBytes() const { return pageSize; }
    std::uint64_t allocatedFrames() const { return nAllocated; }
    std::uint64_t allocatedBytes() const { return nAllocated * pageSize; }
    std::uint64_t physPages() const { return used.size(); }

    /**
     * Counter-free residency query: unlike frameOf() this never
     * allocates, so audits can consult the directory without
     * perturbing first-touch placement.
     * @retval true (pid, vpn) has a DRAM home; `*frame_out` receives it.
     */
    bool lookup(Pid pid, std::uint64_t vpn,
                std::uint64_t *frame_out = nullptr) const;

    /**
     * Self-audit: the (pid, vpn) -> frame mapping must be injective
     * (DRAM is infinite, frames are never shared or reclaimed), every
     * mapped frame's occupancy bit must be set, and the allocation
     * counters must agree with both structures.
     */
    void auditState(AuditContext &ctx) const;

    /**
     * Fault-injection hook (tests/CI only): redirect one mapping onto
     * another mapping's frame, silently aliasing two pages in DRAM.
     * @retval true two mappings existed and now alias.
     */
    bool corruptAlias();

  private:
    static std::uint64_t keyOf(Pid pid, std::uint64_t vpn);

    std::uint64_t pageSize;
    unsigned pageBits;
    Addr tableBase;
    std::unordered_map<std::uint64_t, std::uint64_t> map;
    std::vector<bool> used; ///< frame occupancy for probing
    std::uint64_t nAllocated = 0;
};

} // namespace rampage

#endif // RAMPAGE_OS_DRAM_DIRECTORY_HH
