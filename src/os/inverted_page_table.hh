/**
 * @file
 * Inverted page table (paper §2.2).
 *
 * RAMpage translates virtual pages to SRAM main-memory frames with an
 * inverted page table — one entry per physical frame, found through a
 * hash on the virtual address — because (a) the SRAM main memory is
 * small, so a frame-indexed table stays small; (b) the table size is
 * fixed, so the whole table can be pinned in the SRAM main memory;
 * and (c) with the table pinned, a TLB miss never references DRAM
 * unless the access itself page-faults.
 *
 * The entry size is 20 bytes; together with the pinned-frame
 * calculation in src/os/page_store.hh this reproduces the paper's §4.5
 * operating-system reserve (6 pages at 4 KB pages, ~5300 at 128 B).
 *
 * The table also reports which of its own (virtual) words a lookup
 * touches, so the TLB-miss handler trace (src/trace/handlers.hh) can
 * replay the same probe sequence through the memory hierarchy.
 */

#ifndef RAMPAGE_OS_INVERTED_PAGE_TABLE_HH
#define RAMPAGE_OS_INVERTED_PAGE_TABLE_HH

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace rampage
{

class AuditContext;

/** Bytes per inverted-page-table entry (see file comment). */
constexpr std::uint64_t iptEntryBytes = 20;

/** Result of an inverted-page-table lookup. */
struct IptLookup
{
    bool found = false;
    std::uint64_t frame = 0; ///< frame holding (pid, vpn) when found
    unsigned probes = 0;     ///< hash-chain entries inspected
};

/**
 * Frame-indexed page table with hash-anchor lookup.
 *
 * The anchor table has one head per hash bucket; collisions chain
 * through the frame entries.  remove() and insert() keep the chains
 * consistent as the pager reassigns frames.
 */
class InvertedPageTable
{
  public:
    /**
     * @param frames number of physical frames mapped.
     * @param table_vbase virtual address where the table resides (the
     *        pinned OS region under RAMpage); probe addresses are
     *        reported relative to this base.
     */
    InvertedPageTable(std::uint64_t frames, Addr table_vbase);

    /**
     * Find the frame mapping (pid, vpn).
     * @param probe_addrs when non-null, receives the virtual address
     *        of each table word the lookup touched (anchor slot plus
     *        each chain entry), for handler-trace synthesis.
     */
    IptLookup lookup(Pid pid, std::uint64_t vpn,
                     std::vector<Addr> *probe_addrs = nullptr) const;

    /** Map frame -> (pid, vpn); the frame must be unmapped. */
    void insert(std::uint64_t frame, Pid pid, std::uint64_t vpn);

    /**
     * Unmap a frame.
     * @retval true the frame was mapped and has been removed.
     */
    bool remove(std::uint64_t frame);

    /** @return true if the frame currently maps some page. */
    bool mapped(std::uint64_t frame) const;

    /** Virtual pid/vpn held by a mapped frame. */
    Pid framePid(std::uint64_t frame) const;
    std::uint64_t frameVpn(std::uint64_t frame) const;

    /** Number of mapped frames. */
    std::uint64_t mappedCount() const { return nMapped; }

    /** Total table footprint in bytes (anchors + entries). */
    std::uint64_t tableBytes() const;

    /** Virtual address of a frame's table entry. */
    Addr entryAddr(std::uint64_t frame) const;

    /** Mean hash-chain probes over all lookups so far. */
    double meanProbeDepth() const;

    /**
     * Self-audit: every chain entry valid and bucketed under its own
     * hash, every valid entry reachable from exactly one anchor chain,
     * no chain longer than the table, and the reachable count equal to
     * mappedCount().  Walks chains with explicit bounds, so it stays
     * safe on state lookup() would assert on.
     */
    void auditState(AuditContext &ctx) const;

    /**
     * Fault-injection hook (tests/CI only): unlink `frame` from its
     * hash chain while leaving the entry valid and mappedCount()
     * untouched — a mapped page the lookup path can no longer reach.
     * @retval true the frame was valid and has been unlinked.
     */
    bool corruptUnlink(std::uint64_t frame);

  private:
    struct Entry
    {
        Pid pid = 0;
        std::uint64_t vpn = 0;
        std::uint64_t next = noFrame; ///< hash chain link
        bool valid = false;
    };

    static constexpr std::uint64_t noFrame = ~std::uint64_t{0};

    std::uint64_t hashOf(Pid pid, std::uint64_t vpn) const;
    Addr anchorAddr(std::uint64_t bucket) const;

    std::vector<Entry> entries;
    std::vector<std::uint64_t> anchors; ///< bucket -> first frame
    std::uint64_t anchorMask;
    Addr vbase;
    std::uint64_t nMapped = 0;

    mutable std::uint64_t lookupCount = 0;
    mutable std::uint64_t probeCount = 0;
};

} // namespace rampage

#endif // RAMPAGE_OS_INVERTED_PAGE_TABLE_HH
