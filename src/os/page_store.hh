/**
 * @file
 * The SRAM main-memory page store — one placement/replacement engine
 * behind every RAMpage configuration (paper §2.2, §4.5, §6.2/§6.3).
 *
 * The store manages the software-paged SRAM at a fixed frame
 * granularity (`pageBytes`) and composes one of two page-size
 * policies on top:
 *
 *  - **uniform** (`defaultPageBytes == 0`): every page is exactly one
 *    frame.  This is the paper's §4.5 system: residency lives in the
 *    pinned inverted page table, replacement is a pluggable policy
 *    (clock by default), and cold fill hands frames out in order.
 *  - **per-pid** (`defaultPageBytes != 0`): each process is assigned
 *    its own page size, a power-of-two multiple of the base frame
 *    (§6.2/§6.3 "dynamic tuning").  A page of k frames occupies k
 *    contiguous frames aligned to k; replacement is a window clock
 *    with second chance; cold fill is bump allocation with alignment.
 *
 * A per-pid configuration whose page sizes are all equal to the base
 * frame is *normalized to the uniform policy at construction*: the
 * degenerate case is not a near-copy of the fixed-size pager, it IS
 * the fixed-size pager, bit for bit (stats names, probe addresses,
 * reserve size, DRAM pricing hints — everything).
 *
 * Capacity follows the paper exactly in both modes: the
 * cache-equivalent 4 MB plus the bytes a cache of that size would
 * have spent on tags (§4.5).  A pinned operating-system reserve at
 * the bottom of the frame space holds the handler image and the
 * residency table, so TLB misses and fault handling never touch DRAM
 * except for the faulted transfer itself (§2.3).
 *
 * The store is a pure placement/replacement engine: it answers
 * residency lookups and services faults, reporting everything the
 * hierarchy needs to charge time (table probe addresses for the
 * handler trace, the victim pages for write-back and inclusion
 * flushes, and the scan length).
 */

#ifndef RAMPAGE_OS_PAGE_STORE_HH
#define RAMPAGE_OS_PAGE_STORE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "os/inverted_page_table.hh"
#include "os/page_replacement.hh"
#include "util/error.hh"
#include "util/types.hh"

namespace rampage
{

class AuditContext;
class StatsRegistry;

/** Static configuration of the SRAM main memory. */
struct PageStoreParams
{
    /**
     * SRAM frame size: the page size under the uniform policy (the
     * paper sweeps 128 B - 4 KB), the base frame (granularity and
     * smallest page) under the per-pid policy.
     */
    std::uint64_t pageBytes = 1024;
    /** Cache-equivalent SRAM capacity (paper: 4 MB). */
    std::uint64_t baseSramBytes = 4 * mib;
    /**
     * Tag bytes per frame that the equivalent cache would have spent;
     * RAMpage gets them back as usable capacity (paper §4.5: +128 KB
     * at 128 B pages).
     */
    std::uint64_t tagBytesPerBlock = 4;
    /** Replacement policy (uniform mode only; paper: clock). */
    PageReplKind repl = PageReplKind::Clock;
    /** Standby list length for PageReplKind::Standby. */
    std::uint64_t standbyPages = 16;
    std::uint64_t seed = 11;
    /** Fixed OS image (handler code + data) pinned besides the table. */
    std::uint64_t osFixedBytes = 12 * kib;
    /** Virtual base of the pinned OS region (code, data, then table). */
    Addr osVirtBase = 0x0001'0000;

    // --- per-pid page-size policy (§6.2/§6.3) -----------------------
    /**
     * Page size for pids without an explicit entry; 0 selects the
     * uniform policy (every page is one `pageBytes` frame).
     */
    std::uint64_t defaultPageBytes = 0;
    /** Per-pid page sizes (powers of two in [pageBytes, dramPage]). */
    std::unordered_map<Pid, std::uint64_t> pageBytesByPid;
};

/** One evicted page during a fault (uniform faults evict 0 or 1). */
struct PageVictim
{
    Pid pid = 0;
    std::uint64_t vpn = 0;
    std::uint64_t startFrame = 0;
    std::uint64_t frames = 0; ///< length in frames
    std::uint64_t bytes = 0;
    bool dirty = false;
};

/** Outcome of servicing a page fault. */
struct PageFaultResult
{
    /** Frame (uniform) / start frame (per-pid) now holding the page. */
    std::uint64_t frame = 0;
    unsigned scanCost = 0; ///< replacement-policy scan length
    std::vector<PageVictim> victims;
    /** Table words the fault handling touched (for the handler trace). */
    std::vector<Addr> probes;
};

/** Page-store statistics (mode decides which counters register). */
struct PageStoreStats
{
    std::uint64_t faults = 0;
    std::uint64_t dirtyWritebacks = 0;
    std::uint64_t coldFills = 0;      ///< uniform: free-frame faults
    std::uint64_t victimsEvicted = 0; ///< per-pid: window-clock victims
};

/** The SRAM main-memory manager. */
class PageStore
{
  public:
    explicit PageStore(const PageStoreParams &params);

    /** @return true under the uniform (fixed page size) policy. */
    bool uniform() const { return prm.defaultPageBytes == 0; }

    /** Frame size: uniform page, or per-pid base frame. */
    std::uint64_t frameBytes() const { return prm.pageBytes; }

    /** Uniform page size (same as frameBytes()). */
    std::uint64_t pageBytes() const { return prm.pageBytes; }

    /**
     * Page size for a pid (frameBytes() under the uniform policy).
     * Inline: the hierarchy derives its translation shift from this
     * on every reference.
     */
    std::uint64_t
    pageBytes(Pid pid) const
    {
        if (uniform())
            return prm.pageBytes;
        auto it = prm.pageBytesByPid.find(pid);
        return it == prm.pageBytesByPid.end() ? prm.defaultPageBytes
                                              : it->second;
    }

    /** Page size in frames for a pid (1 under the uniform policy). */
    std::uint64_t pageFrames(Pid pid) const;

    /** Total SRAM size (cache-equivalent + reclaimed tag bytes). */
    std::uint64_t sramBytes() const { return totalBytes; }

    /** Total page frames. */
    std::uint64_t totalFrames() const { return nFrames; }

    /** Pinned operating-system frames at the bottom of the space. */
    std::uint64_t osFrames() const { return nOsFrames; }

    /** Frames available to user pages. */
    std::uint64_t userFrames() const { return nFrames - nOsFrames; }

    /** Number of resident (mapped) pages. */
    std::uint64_t residentPages() const;

    /**
     * Residency lookup (the TLB-miss handler's table walk).  `frame`
     * is the page's start frame under the per-pid policy.
     * @param probes when non-null receives the table words touched.
     */
    IptLookup lookup(Pid pid, std::uint64_t vpn,
                     std::vector<Addr> *probes = nullptr) const;

    /** Record a reference to a frame (replacement state); inline —
     *  the hierarchy touches the referenced frame on every access. */
    void
    touch(std::uint64_t frame)
    {
        if (uniform()) {
            repl->touch(frame);
            return;
        }
        RAMPAGE_ASSERT(frame < nFrames, "frame out of range");
        std::uint64_t start = frameStart[frame];
        if (start != noFrame)
            refd[start] = true;
    }

    /** Mark the page holding a frame dirty (a store hit it). */
    void markDirty(std::uint64_t frame);

    /** @return dirty state of the page holding a frame. */
    bool isDirty(std::uint64_t frame) const;

    /** @return true when a page (or the OS reserve) owns the frame. */
    bool frameOwned(std::uint64_t frame) const;

    /** @return frame is pinned or belongs to a resident page. */
    bool
    frameBacked(std::uint64_t frame) const
    {
        return frame < nOsFrames || frameOwned(frame);
    }

    /**
     * Service a fault for (pid, vpn): choose victims (never pinned),
     * unmap them, and map the new page.  The caller charges DRAM
     * transfer time, flushes the victims' TLB entries and maintains
     * L1 inclusion using the returned details.
     */
    PageFaultResult handleFault(Pid pid, std::uint64_t vpn);

    /** Physical SRAM address of an offset within a frame. */
    Addr
    physAddr(std::uint64_t frame, Addr offset) const
    {
        return frame * prm.pageBytes + offset;
    }

    /**
     * Translate a virtual address in the pinned OS region to its SRAM
     * physical address.  OS references bypass the TLB (they are
     * direct-mapped into the reserve, like MIPS kseg0), which is how
     * the pinned-handler guarantee of §2.3 is realized.
     */
    Addr
    osPhysAddr(Addr os_vaddr) const
    {
        RAMPAGE_ASSERT(os_vaddr >= prm.osVirtBase &&
                           os_vaddr < osVirtEnd(),
                       "address outside the pinned OS region");
        // The reserve occupies frames [0, nOsFrames) verbatim.
        return os_vaddr - prm.osVirtBase;
    }

    /** Extent of the pinned OS virtual region. */
    Addr osVirtBase() const { return prm.osVirtBase; }
    Addr osVirtEnd() const
    {
        return prm.osVirtBase + nOsFrames * prm.pageBytes;
    }

    /** Virtual base address of the residency-table image. */
    Addr tableVirtBase() const { return tableVbase; }

    /** Register the store's counters under `prefix` (e.g. "pager"). */
    void registerStats(StatsRegistry &reg,
                       const std::string &prefix) const;

    const PageStoreParams &params() const { return prm; }
    const PageStoreStats &stats() const { return stat; }
    const InvertedPageTable &table() const { return *ipt; }
    /** Uniform-mode replacement policy (ConfigError otherwise). */
    const PageReplacementPolicy &policy() const;

    /**
     * Self-audit.  Uniform: the pinned OS reserve never mapped, every
     * cold-filled user frame mapped (an unmapped one is leaked SRAM
     * capacity), the cold region beyond the fill cursor empty, no
     * dirty bit on an unmapped user frame, no (pid, vpn) resident in
     * two frames.  Per-pid: every resident page aligned to its own
     * length, inside the user frame range, owning exactly its frames
     * (back-pointers agree); no frame owned by the reserve or by a
     * dead page; counts consistent.  Both modes include the inverted
     * page table's own chain/count audit.
     */
    void auditState(AuditContext &ctx) const;

    /**
     * Fault-injection hooks (tests/CI only).  Each models one classic
     * pager bug; every hook returns true when it corrupted state.
     */
    /** Unlink a mapped frame's table entry from its hash chain. */
    bool corruptUnlinkEntry();
    /** Uniform: set the dirty bit of a frame that maps no page. */
    bool corruptStaleDirty();
    /** Uniform: drop a cold-filled frame's mapping (leak the frame). */
    bool corruptLeakFrame();
    /** Per-pid: clear one owned frame's back-pointer. */
    bool corruptDropOwner();

  private:
    static PageStoreParams normalized(PageStoreParams params);

    Addr probeAddr(Pid pid, std::uint64_t vpn) const;

    void auditUniform(AuditContext &ctx) const;
    void auditPerPid(AuditContext &ctx) const;

    /** Per-pid: evict every page overlapping [start, start+frames). */
    void evictWindow(std::uint64_t start, std::uint64_t frames,
                     PageFaultResult &result);

    static constexpr std::uint64_t noFrame = ~std::uint64_t{0};

    PageStoreParams prm;
    std::uint64_t totalBytes;
    std::uint64_t nFrames;
    std::uint64_t nOsFrames;
    Addr tableVbase;
    /** Residency, in both modes: one entry per page, at its start. */
    std::unique_ptr<InvertedPageTable> ipt;
    /** Uniform-mode replacement policy (null under per-pid). */
    std::unique_ptr<PageReplacementPolicy> repl;
    /** Dirty bits, indexed by frame (uniform) / start frame (per-pid). */
    std::vector<bool> dirty;
    std::uint64_t nextFreeFrame; ///< cold-fill cursor

    // --- per-pid policy state ---------------------------------------
    /** Owning page's start frame per frame, or noFrame. */
    std::vector<std::uint64_t> frameStart;
    /** Window-clock reference bits, indexed by start frame. */
    std::vector<bool> refd;
    std::uint64_t nResident = 0;
    std::uint64_t hand = 0; ///< window-clock hand

    PageStoreStats stat;
};

} // namespace rampage

#endif // RAMPAGE_OS_PAGE_STORE_HH
