/**
 * @file
 * Page-replacement policies for the RAMpage SRAM main memory.
 *
 * The paper's policy (§4.5) is the standard clock algorithm: a hand
 * sweeps the frame table clearing "in use" marks until it finds an
 * unused frame, which becomes the victim.  Alternatives are provided
 * for the ablation benches: FIFO, random, true LRU, and clock with a
 * standby page list — the §3.2 victim-cache analogue, where a
 * replaced page sits on a standby list and the page longest on the
 * list is the one actually discarded (Crowley's textbook scheme the
 * paper cites).
 *
 * Policies operate on frame numbers in [0, frames); pinned frames are
 * never offered as victims.
 */

#ifndef RAMPAGE_OS_PAGE_REPLACEMENT_HH
#define RAMPAGE_OS_PAGE_REPLACEMENT_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "util/random.hh"
#include "util/types.hh"

namespace rampage
{

/** Replacement policy selector. */
enum class PageReplKind : std::uint8_t
{
    Clock,   ///< paper's policy (§4.5)
    Fifo,    ///< oldest fill
    Random,  ///< uniform over unpinned frames
    Lru,     ///< true LRU (upper bound for the ablation)
    Standby, ///< clock + standby page list (§3.2 victim analogue)
};

const char *pageReplKindName(PageReplKind kind);

/**
 * Abstract page-replacement policy.
 *
 * The pager notifies the policy of every frame touch and fill; when a
 * fault needs a frame, pickVictim() returns an unpinned victim.
 */
class PageReplacementPolicy
{
  public:
    /**
     * @param frames total frame count.
     * @param first_evictable frames below this index are pinned
     *        (operating-system reserve) and never chosen.
     */
    PageReplacementPolicy(std::uint64_t frames,
                          std::uint64_t first_evictable);
    virtual ~PageReplacementPolicy() = default;

    /** A frame was referenced. */
    virtual void touch(std::uint64_t frame) = 0;

    /** A frame was (re)filled with a new page. */
    virtual void fill(std::uint64_t frame) = 0;

    /**
     * Choose a victim frame (never pinned).
     * @param scan_cost_out when non-null, receives the number of
     *        frame-table entries the policy inspected — the clock
     *        hand's travel, charged to the fault handler's work.
     */
    virtual std::uint64_t pickVictim(unsigned *scan_cost_out) = 0;

    virtual std::string name() const = 0;

  protected:
    std::uint64_t nFrames;
    std::uint64_t firstEvictable;
};

/** Factory for the selected policy. */
std::unique_ptr<PageReplacementPolicy>
makePageReplacement(PageReplKind kind, std::uint64_t frames,
                    std::uint64_t first_evictable,
                    std::uint64_t seed = 11,
                    std::uint64_t standby_pages = 16);

/** The paper's clock (second-chance) algorithm. */
class ClockPolicy : public PageReplacementPolicy
{
  public:
    using PageReplacementPolicy::PageReplacementPolicy;

    void touch(std::uint64_t frame) override;
    void fill(std::uint64_t frame) override;
    std::uint64_t pickVictim(unsigned *scan_cost_out) override;
    std::string name() const override { return "clock"; }

  private:
    std::vector<bool> referenced = std::vector<bool>(nFrames, false);
    std::uint64_t hand = firstEvictable;
};

/** FIFO (oldest fill) replacement. */
class FifoPolicy : public PageReplacementPolicy
{
  public:
    FifoPolicy(std::uint64_t frames, std::uint64_t first_evictable);

    void touch(std::uint64_t) override {}
    void fill(std::uint64_t frame) override;
    std::uint64_t pickVictim(unsigned *scan_cost_out) override;
    std::string name() const override { return "FIFO"; }

  private:
    std::vector<std::uint64_t> fillSeq;
    std::uint64_t seq = 0;
};

/** Uniform random replacement over unpinned frames. */
class RandomPolicy : public PageReplacementPolicy
{
  public:
    RandomPolicy(std::uint64_t frames, std::uint64_t first_evictable,
                 std::uint64_t seed);

    void touch(std::uint64_t) override {}
    void fill(std::uint64_t) override {}
    std::uint64_t pickVictim(unsigned *scan_cost_out) override;
    std::string name() const override { return "random"; }

  private:
    Rng rng;
};

/**
 * True least-recently-used replacement.  Software LRU has no free
 * implementation: either every touch maintains an ordered list (a
 * cost this simulator does not charge) or the victim is found by a
 * scan (charged here via scan_cost).  The ablation bench therefore
 * shows LRU's *miss* advantage and its *software* disadvantage —
 * precisely the trade-off that makes clock the textbook choice.
 */
class LruPolicy : public PageReplacementPolicy
{
  public:
    LruPolicy(std::uint64_t frames, std::uint64_t first_evictable);

    void touch(std::uint64_t frame) override;
    void fill(std::uint64_t frame) override;
    std::uint64_t pickVictim(unsigned *scan_cost_out) override;
    std::string name() const override { return "LRU"; }

  private:
    std::vector<std::uint64_t> lastUse;
    std::uint64_t seq = 0;
};

/**
 * Clock with a standby page list: clock nominates pages onto a FIFO
 * standby list; the actual victim is the page that has been on the
 * list longest.  A touched standby page is rescued (removed from the
 * list), giving recently replaced pages a grace period exactly as a
 * victim cache gives evicted blocks one.
 */
class StandbyPolicy : public PageReplacementPolicy
{
  public:
    StandbyPolicy(std::uint64_t frames, std::uint64_t first_evictable,
                  std::uint64_t standby_pages);

    void touch(std::uint64_t frame) override;
    void fill(std::uint64_t frame) override;
    std::uint64_t pickVictim(unsigned *scan_cost_out) override;
    std::string name() const override { return "clock+standby"; }

    /** Pages rescued from the standby list so far. */
    std::uint64_t rescues() const { return rescueCount; }

  private:
    /** Clock nomination (same as ClockPolicy). */
    std::uint64_t nominate(unsigned *scan_cost_out);

    std::vector<bool> referenced;
    std::vector<bool> onStandby;
    std::deque<std::uint64_t> standby;
    std::uint64_t standbyTarget;
    std::uint64_t hand;
    std::uint64_t rescueCount = 0;
};

} // namespace rampage

#endif // RAMPAGE_OS_PAGE_REPLACEMENT_HH
