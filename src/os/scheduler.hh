/**
 * @file
 * Multiprogramming scheduler for context-switch-on-miss (paper §4.6).
 *
 * Under plain RAMpage and the conventional hierarchies, time slicing
 * is pure round-robin (src/trace/interleaver.hh).  With context
 * switches on misses, scheduling becomes timing-coupled: a process
 * that faults to DRAM blocks until its page transfer completes, the
 * CPU switches to another ready process, and if every process is
 * blocked the CPU stalls until the earliest transfer finishes.  This
 * class keeps the ready/blocked state and picks the next process;
 * the simulator charges the context-switch trace and advances time.
 */

#ifndef RAMPAGE_OS_SCHEDULER_HH
#define RAMPAGE_OS_SCHEDULER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hh"

namespace rampage
{

class AuditContext;
class StatsRegistry;

/** Result of a scheduling decision. */
struct SchedPick
{
    std::size_t index = 0; ///< process chosen to run next
    Tick resumeAt = 0;     ///< time the pick can start (>= now)
    bool stalled = false;  ///< CPU idled waiting for an unblock
};

/** Scheduler statistics. */
struct SchedStats
{
    std::uint64_t quantumSwitches = 0; ///< time-slice expiries
    std::uint64_t missSwitches = 0;    ///< switches taken on faults
    std::uint64_t stalls = 0;          ///< all-blocked CPU idles
    Tick stallTime = 0;                ///< total idle picoseconds
};

/** Round-robin scheduler with blocked-on-fault states. */
class Scheduler
{
  public:
    /**
     * @param nprocs number of processes (trace streams).
     * @param quantum_refs references per time slice (paper: 500 000).
     */
    Scheduler(std::size_t nprocs, std::uint64_t quantum_refs);

    /** Currently running process. */
    std::size_t current() const { return running; }

    /**
     * Account one executed reference against the quantum.
     * @retval true the quantum just expired (caller should charge a
     *         context switch and call rotate()).
     */
    bool onRef();

    /**
     * Account `n` executed references at once; `n` must not exceed
     * refsUntilQuantum().  Exactly equivalent to calling onRef() `n`
     * times (only the last call can return true, by the precondition).
     */
    bool onRefs(std::uint64_t n);

    /** References the running slice can still execute before expiry. */
    std::uint64_t
    refsUntilQuantum() const
    {
        return quantumRefs - refsInSlice;
    }

    /**
     * Time-slice switch: advance round-robin to the next ready
     * process.  If none is ready the CPU stalls until the earliest
     * unblock.
     */
    SchedPick rotate(Tick now);

    /**
     * Block the running process until `until` (its page transfer
     * completes) and pick the next process to run.
     */
    SchedPick blockCurrent(Tick now, Tick until);

    /** @return true if process `index` is ready at time `now`. */
    bool ready(std::size_t index, Tick now) const;

    /** Number of ready processes at time `now`. */
    std::size_t readyCount(Tick now) const;

    std::size_t processCount() const { return blockedUntil.size(); }
    std::uint64_t quantum() const { return quantumRefs; }
    const SchedStats &stats() const { return stat; }

    /** Register the scheduler's counters under `prefix` (e.g. "sched"). */
    void registerStats(StatsRegistry &reg,
                       const std::string &prefix) const;

    /**
     * Self-audit at time `now`: the running process must exist and be
     * ready (the simulator always advances time to the pick's
     * resumeAt before executing), and the slice counter must not
     * exceed the quantum (onRef() resets it at expiry).
     */
    void auditState(AuditContext &ctx, Tick now) const;

    /**
     * Fault-injection hook (tests/CI only): block the *running*
     * process until `until` without switching away, modelling a
     * lost-wakeup scheduler bug.
     * @retval true always (the running process always exists).
     */
    bool corruptBlockRunning(Tick until);

  private:
    /**
     * Pick the next ready process after `from` in round-robin order,
     * stalling to the earliest unblock when everyone is blocked.
     */
    SchedPick pickFrom(std::size_t from, Tick now);

    std::vector<Tick> blockedUntil; ///< 0 = ready
    std::size_t running = 0;
    std::uint64_t quantumRefs;
    std::uint64_t refsInSlice = 0;
    SchedStats stat;
};

} // namespace rampage

#endif // RAMPAGE_OS_SCHEDULER_HH
