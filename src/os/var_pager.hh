/**
 * @file
 * Variable-page-size SRAM pager — the paper's §6.2/§6.3 "dynamic
 * tuning" extension: "other possibilities ... include the ability to
 * change block size dynamically. The only hardware support needed for
 * this is a TLB capable of managing variable page sizes (already an
 * option on some architectures such as MIPS)."
 *
 * Each process is assigned its own SRAM page size (a power-of-two
 * multiple of a base frame).  The SRAM is managed at base-frame
 * granularity:
 *
 *  - a page of size k base frames occupies k contiguous frames
 *    aligned to k (so the TLB translation stays a mask, as on MIPS);
 *  - replacement is a window clock: the hand inspects k-aligned
 *    windows, gives referenced pages a second chance, and evicts
 *    every page overlapping the chosen window (larger victims are
 *    evicted whole);
 *  - cold fill is bump allocation with alignment, so mixing sizes
 *    costs real fragmentation — the honest price of the flexibility.
 *
 * The pinned operating-system reserve follows the same accounting as
 * the fixed-size pager (handler image + ~20 B table entry per frame).
 */

#ifndef RAMPAGE_OS_VAR_PAGER_HH
#define RAMPAGE_OS_VAR_PAGER_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/types.hh"

namespace rampage
{

class AuditContext;
class StatsRegistry;

/** Configuration of the variable-page-size SRAM main memory. */
struct VarPagerParams
{
    /** Base frame: granularity and the smallest page size. */
    std::uint64_t baseFrameBytes = 512;
    /** Cache-equivalent SRAM capacity (paper: 4 MB). */
    std::uint64_t baseSramBytes = 4 * mib;
    /** Reclaimed tag bytes per base frame (paper §4.5). */
    std::uint64_t tagBytesPerBlock = 4;
    /** Page size for pids without an explicit entry. */
    std::uint64_t defaultPageBytes = 1024;
    /** Per-pid page sizes (powers of two in [base, dramPage]). */
    std::unordered_map<Pid, std::uint64_t> pageBytesByPid;
    /** Fixed OS image (handler code + data). */
    std::uint64_t osFixedBytes = 12 * kib;
    Addr osVirtBase = 0x0001'0000;
};

/** One evicted page during a variable-size fault. */
struct VarFaultVictim
{
    Pid pid = 0;
    std::uint64_t vpn = 0;
    std::uint64_t startFrame = 0;
    std::uint64_t frames = 0; ///< length in base frames
    std::uint64_t bytes = 0;
    bool dirty = false;
};

/** Outcome of a variable-size page fault. */
struct VarFaultResult
{
    std::uint64_t startFrame = 0;
    unsigned scanCost = 0;
    std::vector<VarFaultVictim> victims;
    /** Table words touched (for the handler trace). */
    std::vector<Addr> probes;
};

/** Pager statistics. */
struct VarPagerStats
{
    std::uint64_t faults = 0;
    std::uint64_t victimsEvicted = 0;
    std::uint64_t dirtyWritebacks = 0;
};

/** The variable-page-size SRAM main-memory manager. */
class VarPager
{
  public:
    explicit VarPager(const VarPagerParams &params);

    /** Page size for a pid. */
    std::uint64_t pageBytes(Pid pid) const;

    /** Page size in base frames for a pid. */
    std::uint64_t pageFrames(Pid pid) const;

    std::uint64_t baseFrameBytes() const { return prm.baseFrameBytes; }
    std::uint64_t totalFrames() const { return nFrames; }
    std::uint64_t osFrames() const { return nOsFrames; }
    std::uint64_t sramBytes() const { return totalBytes; }

    /** Residency lookup; fills probe addresses for the handler. */
    struct Lookup
    {
        bool found = false;
        std::uint64_t startFrame = 0;
    };
    Lookup lookup(Pid pid, std::uint64_t vpn,
                  std::vector<Addr> *probes = nullptr) const;

    /** Record a reference to the page owning a base frame. */
    void touchFrame(std::uint64_t base_frame);

    /** Mark the page owning a base frame dirty. */
    void markDirtyFrame(std::uint64_t base_frame);

    /** Service a fault for (pid, vpn): may evict several pages. */
    VarFaultResult handleFault(Pid pid, std::uint64_t vpn);

    /** SRAM physical address of an offset within a page. */
    Addr
    physAddr(std::uint64_t start_frame, Addr offset) const
    {
        return start_frame * prm.baseFrameBytes + offset;
    }

    /** OS region mapping (identical contract to SramPager). */
    Addr osPhysAddr(Addr os_vaddr) const;
    Addr osVirtBase() const { return prm.osVirtBase; }
    Addr osVirtEnd() const
    {
        return prm.osVirtBase + nOsFrames * prm.baseFrameBytes;
    }
    Addr tableVirtBase() const { return tableVbase; }

    /** Number of resident (mapped) pages. */
    std::uint64_t residentPages() const { return nResident; }

    /** @return true when a page owns `base_frame` (audit/inspection). */
    bool
    frameOwned(std::uint64_t base_frame) const
    {
        return base_frame < frameOwner.size() &&
               frameOwner[base_frame] >= 0;
    }

    const VarPagerStats &stats() const { return stat; }

    /** Register the pager's counters under `prefix` (e.g. "pager"). */
    void registerStats(StatsRegistry &reg,
                       const std::string &prefix) const;

    /**
     * Self-audit: every valid page aligned to its own length, inside
     * the user frame range, owning exactly its frames (back-pointers
     * agree), indexed by the table under its (pid, vpn); counts
     * consistent; free slots invalid; no frame owned by a free or
     * invalid slot.  Cold-fill alignment holes below the bump cursor
     * are legitimate, so unowned frames are only audited against slot
     * validity, not demanded to be full.
     */
    void auditState(AuditContext &ctx) const;

    /**
     * Fault-injection hook (tests/CI only): clear one owned frame's
     * back-pointer, leaving its page claiming a frame the frame map
     * says is free.
     * @retval true a frame back-pointer was dropped.
     */
    bool corruptDropOwner();

  private:
    struct Page
    {
        Pid pid = 0;
        std::uint64_t vpn = 0;
        std::uint64_t start = 0;
        std::uint64_t frames = 0;
        bool dirty = false;
        bool referenced = false;
        bool valid = false;
    };

    static std::uint64_t keyOf(Pid pid, std::uint64_t vpn);
    Addr probeAddr(Pid pid, std::uint64_t vpn) const;

    /** Evict every page overlapping [start, start+frames). */
    void evictWindow(std::uint64_t start, std::uint64_t frames,
                     VarFaultResult &result);

    VarPagerParams prm;
    std::uint64_t totalBytes;
    std::uint64_t nFrames;
    std::uint64_t nOsFrames;
    Addr tableVbase;

    std::vector<std::int32_t> frameOwner; ///< page slot or -1
    std::vector<Page> pages;              ///< slot-allocated
    std::vector<std::uint32_t> freeSlots;
    std::unordered_map<std::uint64_t, std::uint32_t> table;
    std::uint64_t nResident = 0;

    std::uint64_t nextFreeFrame; ///< cold-fill bump cursor
    std::uint64_t hand;          ///< window-clock hand
    VarPagerStats stat;
};

} // namespace rampage

#endif // RAMPAGE_OS_VAR_PAGER_HH
