#include "tlb/tlb.hh"

#include "stats/registry.hh"
#include "util/audit.hh"
#include "util/bitops.hh"
#include "util/debug.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace rampage
{

double
TlbStats::missRatio() const
{
    std::uint64_t total = lookups();
    return total == 0 ? 0.0
                      : static_cast<double>(misses) /
                            static_cast<double>(total);
}

void
Tlb::registerStats(StatsRegistry &reg, const std::string &prefix) const
{
    reg.addCounter(prefix + ".hits", "TLB hits", &stat.hits);
    reg.addCounter(prefix + ".misses", "TLB misses", &stat.misses);
    reg.addCounter(prefix + ".flushes",
                   "TLB single-entry invalidations", &stat.flushes);
    reg.addFormula(prefix + ".miss_ratio", "TLB misses / lookups",
                   [this] { return stat.missRatio(); });
}

Tlb::Tlb(const TlbParams &params) : prm(params), rng(params.seed)
{
    if (prm.entries == 0)
        throw ConfigError("TLB must have at least one entry");
    nWays = prm.assoc == 0 ? prm.entries : prm.assoc;
    if (nWays > prm.entries || prm.entries % nWays != 0)
        throw ConfigError("TLB associativity %u incompatible with %u entries",
                          nWays, prm.entries);
    nSets = prm.entries / nWays;
    if (!isPowerOfTwo(nSets))
        throw ConfigError("TLB set count must be a power of two");
    entries.assign(prm.entries, Entry{});
}

std::uint64_t
Tlb::setOf(Pid pid, std::uint64_t vpn) const
{
    // Mix pid into the index so processes do not collide trivially.
    std::uint64_t key = vpn ^ (static_cast<std::uint64_t>(pid) << 13);
    return key & (nSets - 1);
}

Tlb::Entry *
Tlb::find(Pid pid, std::uint64_t vpn)
{
    Entry *base = &entries[setOf(pid, vpn) * nWays];
    for (unsigned w = 0; w < nWays; ++w) {
        Entry &entry = base[w];
        if (entry.valid && entry.pid == pid && entry.vpn == vpn)
            return &entry;
    }
    return nullptr;
}

const Tlb::Entry *
Tlb::find(Pid pid, std::uint64_t vpn) const
{
    return const_cast<Tlb *>(this)->find(pid, vpn);
}

TlbLookup
Tlb::lookup(Pid pid, std::uint64_t vpn)
{
    std::uint32_t slot;
    return lookup(pid, vpn, slot);
}

TlbLookup
Tlb::lookup(Pid pid, std::uint64_t vpn, std::uint32_t &slot_out)
{
    ++useCounter;
    Entry *entry = find(pid, vpn);
    if (entry) {
        ++stat.hits;
        if (prm.lruReplacement)
            entry->stamp = useCounter;
        slot_out = static_cast<std::uint32_t>(entry - entries.data());
        return TlbLookup{true, entry->frame};
    }
    ++stat.misses;
    RAMPAGE_DPRINTF(Tlb, "miss pid=%u vpn=0x%llx",
                    static_cast<unsigned>(pid),
                    static_cast<unsigned long long>(vpn));
    return TlbLookup{};
}

std::uint32_t
Tlb::slotOf(Pid pid, std::uint64_t vpn) const
{
    const Entry *entry = find(pid, vpn);
    return entry ? static_cast<std::uint32_t>(entry - entries.data())
                 : noSlot;
}

bool
Tlb::probe(Pid pid, std::uint64_t vpn) const
{
    return find(pid, vpn) != nullptr;
}

bool
Tlb::peek(Pid pid, std::uint64_t vpn, std::uint64_t &frame_out) const
{
    const Entry *entry = find(pid, vpn);
    if (!entry)
        return false;
    frame_out = entry->frame;
    return true;
}

void
Tlb::insert(Pid pid, std::uint64_t vpn, std::uint64_t frame)
{
    ++useCounter;
    ++gen;
    // Refresh in place when the mapping is already present.
    if (Entry *entry = find(pid, vpn)) {
        entry->frame = frame;
        entry->stamp = useCounter;
        return;
    }

    Entry *base = &entries[setOf(pid, vpn) * nWays];
    Entry *slot = nullptr;
    for (unsigned w = 0; w < nWays; ++w) {
        if (!base[w].valid) {
            slot = &base[w];
            break;
        }
    }
    if (!slot) {
        if (prm.lruReplacement) {
            slot = base;
            for (unsigned w = 1; w < nWays; ++w)
                if (base[w].stamp < slot->stamp)
                    slot = &base[w];
        } else {
            slot = &base[rng.below(nWays)];
        }
    }
    slot->valid = true;
    slot->pid = pid;
    slot->vpn = vpn;
    slot->frame = frame;
    slot->stamp = useCounter;
}

bool
Tlb::invalidate(Pid pid, std::uint64_t vpn)
{
    Entry *entry = find(pid, vpn);
    if (!entry)
        return false;
    entry->valid = false;
    ++gen;
    ++stat.flushes;
    RAMPAGE_DPRINTF(Tlb, "invalidate pid=%u vpn=0x%llx",
                    static_cast<unsigned>(pid),
                    static_cast<unsigned long long>(vpn));
    return true;
}

void
Tlb::flushAll()
{
    ++gen;
    for (Entry &entry : entries)
        entry.valid = false;
}

unsigned
Tlb::validEntries() const
{
    unsigned count = 0;
    for (const Entry &entry : entries)
        if (entry.valid)
            ++count;
    return count;
}

void
Tlb::forEachValidEntry(
    const std::function<bool(Pid, std::uint64_t, std::uint64_t)> &visit)
    const
{
    for (const Entry &entry : entries) {
        if (!entry.valid)
            continue;
        if (!visit(entry.pid, entry.vpn, entry.frame))
            return;
    }
}

void
Tlb::auditState(AuditContext &ctx) const
{
    // A duplicated (pid, vpn) would make the translation depend on
    // probe order; insert() refreshes in place precisely to prevent
    // this.  O(entries^2) but the TLB is tiny (paper: 64 entries).
    for (std::size_t i = 0; i < entries.size(); ++i) {
        if (!entries[i].valid)
            continue;
        for (std::size_t j = i + 1; j < entries.size(); ++j) {
            ctx.check(!entries[j].valid ||
                          entries[j].pid != entries[i].pid ||
                          entries[j].vpn != entries[i].vpn,
                      "tlb.dup_entry",
                      "pid=%u vpn=0x%llx mapped twice (frames %llu "
                      "and %llu)",
                      static_cast<unsigned>(entries[i].pid),
                      static_cast<unsigned long long>(entries[i].vpn),
                      static_cast<unsigned long long>(entries[i].frame),
                      static_cast<unsigned long long>(
                          entries[j].frame));
        }
    }
}

bool
Tlb::corruptFrameXor(std::uint64_t frame_xor)
{
    if (frame_xor == 0)
        return false;
    for (Entry &entry : entries) {
        if (!entry.valid)
            continue;
        entry.frame ^= frame_xor;
        ++gen;
        return true;
    }
    return false;
}

} // namespace rampage
