/**
 * @file
 * Translation lookaside buffer model (paper §2.3, §4.3).
 *
 * The paper's TLB: 64 entries, fully associative, random replacement,
 * 1-cycle (pipelined) hit.  Under the conventional hierarchy it maps
 * virtual pages to DRAM physical frames (fixed 4 KB pages); under
 * RAMpage it maps virtual pages to *SRAM main memory* frames at the
 * current SRAM page size, and an entry is flushed whenever its page
 * is replaced from the SRAM main memory.
 *
 * Set-associative geometries are supported for the §6.3 future-work
 * configuration (1 K entries, 2-way).
 */

#ifndef RAMPAGE_TLB_TLB_HH
#define RAMPAGE_TLB_TLB_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/random.hh"
#include "util/types.hh"

namespace rampage
{

class AuditContext;
class StatsRegistry;

/** TLB geometry and policy. */
struct TlbParams
{
    unsigned entries = 64; ///< total entries (paper: 64)
    unsigned assoc = 0;    ///< 0 = fully associative (paper), else ways
    bool lruReplacement = false; ///< false = random (paper)
    std::uint64_t seed = 7;
};

/** TLB statistics. */
struct TlbStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t flushes = 0; ///< single-entry invalidations

    std::uint64_t lookups() const { return hits + misses; }
    double missRatio() const;
};

/** Result of a TLB lookup. */
struct TlbLookup
{
    bool hit = false;
    std::uint64_t frame = 0; ///< translated frame number on hit
};

/**
 * The TLB.  Entries are keyed on (pid, virtual page number) and hold
 * a frame number whose meaning belongs to the enclosing hierarchy
 * (DRAM frame conventionally, SRAM frame under RAMpage).
 */
class Tlb
{
  public:
    explicit Tlb(const TlbParams &params = TlbParams{});

    /** Translate; counts a hit or a miss. */
    TlbLookup lookup(Pid pid, std::uint64_t vpn);

    /**
     * lookup() that additionally reports which slot answered a hit,
     * so the caller may cache the translation and later replay the
     * hit through recordHitAt() without re-scanning the ways.
     * `slot_out` is only written on a hit.
     */
    TlbLookup lookup(Pid pid, std::uint64_t vpn,
                     std::uint32_t &slot_out);

    /** Probe without statistics or LRU update. */
    bool probe(Pid pid, std::uint64_t vpn) const;

    /**
     * Probe for (pid, vpn) and return its frame, with no statistics
     * or LRU side effects — used by the hierarchy's audit of the
     * last-translation cache against its backing entry.
     * @retval true the entry is present; `frame_out` is set.
     */
    bool peek(Pid pid, std::uint64_t vpn,
              std::uint64_t &frame_out) const;

    /**
     * Replay a hit on `slot` (from the slot-reporting lookup() or
     * slotOf()) on behalf of the hierarchy's last-translation cache.
     * Bit-exact replica of lookup()'s hit path minus the way scan:
     * same useCounter increment, same hit count, same conditional
     * LRU restamp — so a run that short-circuits any number of
     * lookups through it is indistinguishable from one that does
     * not.  Only valid while generation() is unchanged since the
     * slot was obtained.
     */
    void
    recordHitAt(std::uint32_t slot)
    {
        ++useCounter;
        ++stat.hits;
        if (prm.lruReplacement)
            entries[slot].stamp = useCounter;
    }

    /**
     * Slot currently holding (pid, vpn), or `noSlot` if absent; no
     * statistics or LRU side effects.  Used to prime a translation
     * cache right after insert().
     */
    static constexpr std::uint32_t noSlot = ~std::uint32_t{0};
    std::uint32_t slotOf(Pid pid, std::uint64_t vpn) const;

    /**
     * Mutation generation: incremented by every state change that
     * can move, replace or drop an entry (insert, invalidate,
     * flushAll, corruptFrameXor).  A cached slot or translation is
     * valid exactly while the generation it was captured under still
     * matches — the self-maintaining validity rule for the
     * hierarchy's last-translation cache.
     */
    std::uint64_t generation() const { return gen; }

    /** Install (pid, vpn) -> frame, replacing per policy. */
    void insert(Pid pid, std::uint64_t vpn, std::uint64_t frame);

    /**
     * Invalidate the entry for (pid, vpn) if present (used when a
     * RAMpage SRAM page is replaced, §2.3).
     * @retval true an entry was flushed.
     */
    bool invalidate(Pid pid, std::uint64_t vpn);

    /** Drop every entry. */
    void flushAll();

    /** Number of currently valid entries. */
    unsigned validEntries() const;

    const TlbParams &params() const { return prm; }
    const TlbStats &stats() const { return stat; }
    void clearStats() { stat = TlbStats{}; }

    /** Register the TLB's counters under `prefix` (e.g. "tlb"). */
    void registerStats(StatsRegistry &reg,
                       const std::string &prefix) const;

    /**
     * Visit every valid entry as (pid, vpn, frame); return false from
     * the callback to stop early.  Pure inspection — used by the
     * model-integrity audits and the fault injector.
     */
    void forEachValidEntry(
        const std::function<bool(Pid, std::uint64_t, std::uint64_t)>
            &visit) const;

    /**
     * Self-audit: no two valid entries may translate the same
     * (pid, vpn).  Whether each frame is *backed* by a live mapping
     * is a cross-component question checked by the hierarchy.
     */
    void auditState(AuditContext &ctx) const;

    /**
     * Fault-injection hook (tests/CI only): XOR the first valid
     * entry's frame with `frame_xor`, making the TLB translate to a
     * frame the page tables never assigned.
     * @retval true an entry was corrupted.
     */
    bool corruptFrameXor(std::uint64_t frame_xor);

  private:
    struct Entry
    {
        Pid pid = 0;
        std::uint64_t vpn = 0;
        std::uint64_t frame = 0;
        std::uint64_t stamp = 0;
        bool valid = false;
    };

    std::uint64_t setOf(Pid pid, std::uint64_t vpn) const;
    Entry *find(Pid pid, std::uint64_t vpn);
    const Entry *find(Pid pid, std::uint64_t vpn) const;

    TlbParams prm;
    unsigned nWays;
    std::uint64_t nSets;
    std::vector<Entry> entries; ///< set-major
    std::uint64_t useCounter = 0;
    std::uint64_t gen = 0; ///< see generation()
    Rng rng;
    TlbStats stat;
};

} // namespace rampage

#endif // RAMPAGE_TLB_TLB_HH
