#include "trace/interleaver.hh"

#include "util/error.hh"
#include "util/logging.hh"

namespace rampage
{

Interleaver::Interleaver(
    std::vector<std::unique_ptr<TraceSource>> sources,
    std::uint64_t quantum_refs)
    : srcs(std::move(sources)), quantum(quantum_refs)
{
    RAMPAGE_ASSERT(!srcs.empty(), "interleaver needs at least one source");
    RAMPAGE_ASSERT(quantum > 0, "quantum must be positive");
}

Pid
Interleaver::pid() const
{
    return srcs[current]->pid();
}

bool
Interleaver::next(MemRef &ref)
{
    switchFlag = false;
    if (!started) {
        started = true;
        switchFlag = true;
        ++switches;
    } else if (inSlice >= quantum) {
        inSlice = 0;
        current = (current + 1) % srcs.size();
        switchFlag = true;
        ++switches;
    }

    if (!srcs[current]->next(ref)) {
        // Finite source exhausted: rewind and replay, as the paper's
        // workload replays its shorter traces over the 1.1 G run.
        srcs[current]->reset();
        if (!srcs[current]->next(ref))
            throw InternalError("trace source '%s' empty even after reset",
                                srcs[current]->name().c_str());
    }
    ++inSlice;
    return true;
}

void
Interleaver::reset()
{
    for (auto &src : srcs)
        src->reset();
    inSlice = 0;
    current = 0;
    switchFlag = false;
    started = false;
    switches = 0;
}

} // namespace rampage
