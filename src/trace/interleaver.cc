#include "trace/interleaver.hh"

#include "util/error.hh"
#include "util/logging.hh"

namespace rampage
{

Interleaver::Interleaver(
    std::vector<std::unique_ptr<TraceSource>> sources,
    std::uint64_t quantum_refs)
    : srcs(std::move(sources)), quantum(quantum_refs)
{
    RAMPAGE_ASSERT(!srcs.empty(), "interleaver needs at least one source");
    RAMPAGE_ASSERT(quantum > 0, "quantum must be positive");
}

Pid
Interleaver::pid() const
{
    return srcs[current]->pid();
}

bool
Interleaver::next(MemRef &ref)
{
    switchFlag = false;
    if (!started) {
        started = true;
        switchFlag = true;
        ++switches;
    } else if (inSlice >= quantum) {
        inSlice = 0;
        current = (current + 1) % srcs.size();
        switchFlag = true;
        ++switches;
    }

    if (!srcs[current]->next(ref)) {
        // Finite source exhausted: rewind and replay, as the paper's
        // workload replays its shorter traces over the 1.1 G run.
        srcs[current]->reset();
        if (!srcs[current]->next(ref))
            throw InternalError("trace source '%s' empty even after reset",
                                srcs[current]->name().c_str());
    }
    ++inSlice;
    return true;
}

std::size_t
Interleaver::fill(MemRef *buf, std::size_t n)
{
    std::size_t got = 0;
    while (got < n) {
        // Slice bookkeeping, exactly as next() does per reference.
        bool rotated = false;
        if (!started) {
            started = true;
            rotated = true;
            ++switches;
        } else if (inSlice >= quantum) {
            inSlice = 0;
            current = (current + 1) % srcs.size();
            rotated = true;
            ++switches;
        }

        // Draw the rest of this slice in bulk from the scheduled
        // source; its fill() devirtualizes the per-reference draw
        // when the source class is final.
        std::size_t want = n - got;
        std::uint64_t slice_left = quantum - inSlice;
        if (slice_left < want)
            want = static_cast<std::size_t>(slice_left);
        std::size_t drew = srcs[current]->fill(buf + got, want);
        got += drew;
        inSlice += drew;
        if (drew < want) {
            // Finite source exhausted mid-slice: rewind and replay,
            // as next() does.
            srcs[current]->reset();
            if (!srcs[current]->next(buf[got]))
                throw InternalError(
                    "trace source '%s' empty even after reset",
                    srcs[current]->name().c_str());
            ++got;
            ++inSlice;
            ++drew;
        }
        // switchedProcess() describes the most recent reference: it
        // started a slice only when the iteration that rotated drew
        // nothing after it.
        switchFlag = rotated && drew == 1;
    }
    return got;
}

void
Interleaver::reset()
{
    for (auto &src : srcs)
        src->reset();
    inSlice = 0;
    current = 0;
    switchFlag = false;
    started = false;
    switches = 0;
}

} // namespace rampage
