#include "trace/file_format.hh"

#include <cinttypes>
#include <cstring>

#include "util/logging.hh"

namespace rampage
{

namespace
{

/** On-disk record layout for the native format (little-endian). */
struct PackedRef
{
    std::uint64_t vaddr;
    std::uint16_t pid;
    std::uint8_t kind;
} __attribute__((packed));

static_assert(sizeof(PackedRef) == 11, "packed trace record size");

} // namespace

TraceWriter::TraceWriter(const std::string &path, bool din)
    : dinFormat(din), filePath(path)
{
    file = std::fopen(path.c_str(), din ? "w" : "wb");
    if (!file)
        fatal("cannot create trace file '%s'", path.c_str());
    if (!dinFormat) {
        if (std::fwrite(traceMagic, 1, sizeof(traceMagic), file) !=
            sizeof(traceMagic))
            fatal("cannot write trace header to '%s'", path.c_str());
    }
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::write(const MemRef &ref)
{
    RAMPAGE_ASSERT(file != nullptr, "write to closed trace file");
    if (dinFormat) {
        int label = ref.kind == RefKind::IFetch ? 2
                    : ref.kind == RefKind::Store ? 1
                                                 : 0;
        std::fprintf(file, "%d %" PRIx64 "\n", label, ref.vaddr);
    } else {
        PackedRef packed;
        packed.vaddr = ref.vaddr;
        packed.pid = ref.pid;
        packed.kind = static_cast<std::uint8_t>(ref.kind);
        if (std::fwrite(&packed, sizeof(packed), 1, file) != 1)
            fatal("short write to trace file '%s'", filePath.c_str());
    }
    ++written;
}

void
TraceWriter::close()
{
    if (file) {
        std::fclose(file);
        file = nullptr;
    }
}

FileTraceSource::FileTraceSource(const std::string &path, Pid fallback_pid)
    : filePath(path), filePid(fallback_pid)
{
    file = std::fopen(path.c_str(), "rb");
    if (!file)
        fatal("cannot open trace file '%s'", path.c_str());

    char magic[sizeof(traceMagic)] = {};
    std::size_t got = std::fread(magic, 1, sizeof(magic), file);
    if (got == sizeof(magic) &&
        std::memcmp(magic, traceMagic, sizeof(magic)) == 0) {
        native = true;
        dataStart = static_cast<long>(sizeof(magic));
    } else {
        native = false;
        dataStart = 0;
        std::fseek(file, 0, SEEK_SET);
    }
}

FileTraceSource::~FileTraceSource()
{
    if (file)
        std::fclose(file);
}

bool
FileTraceSource::nextNative(MemRef &ref)
{
    PackedRef packed;
    if (std::fread(&packed, sizeof(packed), 1, file) != 1)
        return false;
    ref.vaddr = packed.vaddr;
    ref.pid = packed.pid;
    if (packed.kind > static_cast<std::uint8_t>(RefKind::Store))
        fatal("corrupt record kind %u in '%s'", packed.kind,
              filePath.c_str());
    ref.kind = static_cast<RefKind>(packed.kind);
    return true;
}

bool
FileTraceSource::nextDin(MemRef &ref)
{
    int label = 0;
    std::uint64_t addr = 0;
    for (;;) {
        int got = std::fscanf(file, "%d %" SCNx64, &label, &addr);
        if (got == EOF)
            return false;
        if (got != 2) {
            // Skip a malformed line and keep going.
            int ch;
            while ((ch = std::fgetc(file)) != EOF && ch != '\n') {
            }
            if (ch == EOF)
                return false;
            continue;
        }
        break;
    }
    ref.vaddr = addr;
    ref.pid = filePid;
    switch (label) {
      case 0:
        ref.kind = RefKind::Load;
        break;
      case 1:
        ref.kind = RefKind::Store;
        break;
      case 2:
        ref.kind = RefKind::IFetch;
        break;
      default:
        // Dinero defines other labels (escapes); treat them as loads.
        ref.kind = RefKind::Load;
        break;
    }
    return true;
}

bool
FileTraceSource::next(MemRef &ref)
{
    return native ? nextNative(ref) : nextDin(ref);
}

void
FileTraceSource::reset()
{
    std::fseek(file, dataStart, SEEK_SET);
}

std::vector<MemRef>
readTraceFile(const std::string &path, Pid fallback_pid)
{
    FileTraceSource source(path, fallback_pid);
    std::vector<MemRef> refs;
    MemRef ref;
    while (source.next(ref))
        refs.push_back(ref);
    return refs;
}

} // namespace rampage
