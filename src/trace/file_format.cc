#include "trace/file_format.hh"

#include <algorithm>
#include <cinttypes>
#include <cstring>

#include "util/debug.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace rampage
{

namespace
{

/** On-disk record layout for the native format (little-endian). */
struct PackedRef
{
    std::uint64_t vaddr;
    std::uint16_t pid;
    std::uint8_t kind;
} __attribute__((packed));

static_assert(sizeof(PackedRef) == 11, "packed trace record size");

} // namespace

TraceWriter::TraceWriter(const std::string &path, bool din)
    : dinFormat(din), filePath(path)
{
    file = std::fopen(path.c_str(), din ? "w" : "wb");
    if (!file)
        throw TraceError("cannot create trace file '%s'", path.c_str());
    if (!dinFormat) {
        if (std::fwrite(traceMagic, 1, sizeof(traceMagic), file) !=
            sizeof(traceMagic))
            throw TraceError("cannot write trace header to '%s'",
                             path.c_str());
    }
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::write(const MemRef &ref)
{
    RAMPAGE_ASSERT(file != nullptr, "write to closed trace file");
    if (dinFormat) {
        int label = ref.kind == RefKind::IFetch ? 2
                    : ref.kind == RefKind::Store ? 1
                                                 : 0;
        std::fprintf(file, "%d %" PRIx64 "\n", label, ref.vaddr);
    } else {
        PackedRef packed;
        packed.vaddr = ref.vaddr;
        packed.pid = ref.pid;
        packed.kind = static_cast<std::uint8_t>(ref.kind);
        if (std::fwrite(&packed, sizeof(packed), 1, file) != 1)
            throw TraceError("short write to trace file '%s'",
                             filePath.c_str());
    }
    ++written;
}

void
TraceWriter::close()
{
    if (file) {
        std::fclose(file);
        file = nullptr;
    }
}

FileTraceSource::FileTraceSource(const std::string &path, Pid fallback_pid,
                                 const TraceReadOptions &options)
    : filePath(path), filePid(fallback_pid), opts(options)
{
    file = std::fopen(path.c_str(), "rb");
    if (!file)
        throw TraceError("cannot open trace file '%s'", path.c_str());

    std::fseek(file, 0, SEEK_END);
    long file_bytes = std::ftell(file);
    std::fseek(file, 0, SEEK_SET);

    char magic[sizeof(traceMagic)] = {};
    std::size_t got = std::fread(magic, 1, sizeof(magic), file);

    // A file opening with at least half the magic is a native trace
    // (no din line starts with 'RPTR'); anything shorter or different
    // is handed to the din reader, whose lenient mode copes.
    bool magic_prefix =
        got >= 4 &&
        std::memcmp(magic, traceMagic, std::min(got, sizeof(magic))) == 0;
    if (magic_prefix && got < sizeof(magic)) {
        std::fclose(file);
        file = nullptr;
        throw TraceError("truncated native trace header in '%s' "
                         "(%ld bytes, need %zu)",
                         path.c_str(), file_bytes, sizeof(traceMagic));
    }
    if (got == sizeof(magic) &&
        std::memcmp(magic, traceMagic, sizeof(magic) - 1) == 0 &&
        magic[sizeof(magic) - 1] != traceMagic[sizeof(magic) - 1]) {
        char version = magic[sizeof(magic) - 1];
        std::fclose(file);
        file = nullptr;
        throw TraceError("unsupported native trace version '%c' in '%s' "
                         "(expected '%c')",
                         version, path.c_str(),
                         traceMagic[sizeof(traceMagic) - 1]);
    }

    if (got == sizeof(magic) &&
        std::memcmp(magic, traceMagic, sizeof(magic)) == 0) {
        native = true;
        dataStart = static_cast<long>(sizeof(magic));

        std::uint64_t payload =
            static_cast<std::uint64_t>(file_bytes) - sizeof(magic);
        nRecords = payload / sizeof(PackedRef);
        std::uint64_t tail = payload % sizeof(PackedRef);
        if (tail != 0) {
            if (opts.strict) {
                std::fclose(file);
                file = nullptr;
                throw TraceError(
                    "truncated record tail in '%s': %llu trailing bytes "
                    "after %llu whole records",
                    path.c_str(), static_cast<unsigned long long>(tail),
                    static_cast<unsigned long long>(nRecords));
            }
            warn("trace '%s': ignoring %llu-byte truncated tail after "
                 "%llu whole records",
                 path.c_str(), static_cast<unsigned long long>(tail),
                 static_cast<unsigned long long>(nRecords));
        }
    } else {
        native = false;
        dataStart = 0;
        std::fseek(file, 0, SEEK_SET);
    }
}

FileTraceSource::~FileTraceSource()
{
    if (file)
        std::fclose(file);
}

void
FileTraceSource::reportMalformed(const std::string &what)
{
    if (opts.strict)
        throw TraceError("%s", what.c_str());
    ++malformed;
    RAMPAGE_DPRINTF(Trace, "malformed record in '%s': %s",
                    filePath.c_str(), what.c_str());
    // Rate-limited: a rotten multi-million-line trace would otherwise
    // emit one warning per record.
    warnRateLimited("malformed trace record (skipped): %s",
                    what.c_str());
    if (malformed > opts.malformedBudget)
        throw TraceError("trace '%s': more than %llu malformed "
                         "records/lines; refusing to continue",
                         filePath.c_str(),
                         static_cast<unsigned long long>(
                             opts.malformedBudget));
}

bool
FileTraceSource::nextNative(MemRef &ref)
{
    while (recordIndex < nRecords) {
        PackedRef packed;
        if (std::fread(&packed, sizeof(packed), 1, file) != 1)
            return false; // I/O error mid-file; end the pass
        ++recordIndex;
        if (packed.kind > static_cast<std::uint8_t>(RefKind::Store)) {
            reportMalformed(formatErrorMessage(
                "corrupt record kind %u at record %llu of '%s'",
                packed.kind,
                static_cast<unsigned long long>(recordIndex - 1),
                filePath.c_str()));
            continue;
        }
        ref.vaddr = packed.vaddr;
        ref.pid = packed.pid;
        ref.kind = static_cast<RefKind>(packed.kind);
        return true;
    }
    return false;
}

bool
FileTraceSource::nextDin(MemRef &ref)
{
    char line[256];
    while (std::fgets(line, sizeof(line), file)) {
        ++lineNo;
        std::size_t len = std::strlen(line);
        if (len + 1 == sizeof(line) && line[len - 1] != '\n') {
            // Overlong line: drop the remainder so the next read
            // starts on a fresh line.
            int ch;
            while ((ch = std::fgetc(file)) != EOF && ch != '\n') {
            }
        }

        // Whitespace-only lines are silently ignored (trailing
        // newlines are common in concatenated traces).
        std::size_t at = 0;
        while (at < len && (line[at] == ' ' || line[at] == '\t' ||
                            line[at] == '\r' || line[at] == '\n'))
            ++at;
        if (at == len)
            continue;

        int label = 0;
        std::uint64_t addr = 0;
        if (std::sscanf(line, "%d %" SCNx64, &label, &addr) != 2) {
            reportMalformed(formatErrorMessage(
                "malformed din line %llu in '%s'",
                static_cast<unsigned long long>(lineNo),
                filePath.c_str()));
            continue;
        }

        ref.vaddr = addr;
        ref.pid = filePid;
        switch (label) {
          case 0:
            ref.kind = RefKind::Load;
            break;
          case 1:
            ref.kind = RefKind::Store;
            break;
          case 2:
            ref.kind = RefKind::IFetch;
            break;
          default:
            // Dinero defines other labels (escapes); treat them as
            // loads.
            ref.kind = RefKind::Load;
            break;
        }
        return true;
    }
    return false;
}

bool
FileTraceSource::next(MemRef &ref)
{
    return native ? nextNative(ref) : nextDin(ref);
}

std::size_t
FileTraceSource::fill(MemRef *buf, std::size_t n)
{
    // One format branch for the whole buffer instead of one virtual
    // dispatch per record; stops short at end-of-stream like next().
    std::size_t got = 0;
    if (native) {
        while (got < n && nextNative(buf[got]))
            ++got;
    } else {
        while (got < n && nextDin(buf[got]))
            ++got;
    }
    return got;
}

void
FileTraceSource::reset()
{
    std::fseek(file, dataStart, SEEK_SET);
    recordIndex = 0;
    lineNo = 0;
    malformed = 0; // the budget is per pass
}

std::vector<MemRef>
readTraceFile(const std::string &path, Pid fallback_pid,
              const TraceReadOptions &options)
{
    FileTraceSource source(path, fallback_pid, options);
    std::vector<MemRef> refs;
    MemRef ref;
    while (source.next(ref))
        refs.push_back(ref);
    return refs;
}

} // namespace rampage
