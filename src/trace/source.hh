/**
 * @file
 * Abstract source of memory references.  Concrete sources are the
 * synthetic program models (src/trace/synthetic.hh), trace files
 * (src/trace/file_format.hh) and the multiprogramming interleaver
 * (src/trace/interleaver.hh).
 */

#ifndef RAMPAGE_TRACE_SOURCE_HH
#define RAMPAGE_TRACE_SOURCE_HH

#include <cstddef>
#include <string>

#include "trace/record.hh"

namespace rampage
{

/**
 * A stream of memory references.  Sources may be finite (trace files)
 * or endless (synthetic programs); finite sources return false from
 * next() at end-of-stream and may be rewound with reset().
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next reference.
     * @param ref receives the reference on success.
     * @retval true a reference was produced.
     * @retval false the stream is exhausted.
     */
    virtual bool next(MemRef &ref) = 0;

    /**
     * Produce up to `n` references into `buf`, in exactly the order
     * repeated next() calls would (proven per trace family by
     * tests/test_dispatch_equivalence.cc).  The bulk form exists for
     * the simulator's hot loop: a `final` source fills a contiguous
     * buffer through one virtual call instead of one per reference.
     * @return references produced; < n only at end-of-stream.
     */
    virtual std::size_t
    fill(MemRef *buf, std::size_t n)
    {
        std::size_t got = 0;
        while (got < n && next(buf[got]))
            ++got;
        return got;
    }

    /** Rewind to the beginning of the stream. */
    virtual void reset() = 0;

    /** Human-readable stream name (benchmark or file name). */
    virtual std::string name() const = 0;

    /** Address-space id carried by this source's references. */
    virtual Pid pid() const = 0;
};

} // namespace rampage

#endif // RAMPAGE_TRACE_SOURCE_HH
