#include "trace/benchmarks.hh"

#include "util/error.hh"
#include "util/logging.hh"
#include "util/types.hh"

namespace rampage
{

namespace
{

/**
 * Build one profile.  dataPerInstr is derived from Table 2's
 * instruction and total reference counts (total/instr - 1), so the
 * synthetic streams reproduce the published fetch/data mix exactly.
 */
ProgramProfile
make(const char *name, const char *desc, double instr_m, double total_m,
     std::uint64_t code_kb, std::uint64_t global_kb, std::uint64_t heap_kb,
     double stream_fraction, unsigned stream_stride, double hot_data_prob,
     std::uint64_t seed)
{
    ProgramProfile p;
    p.name = name;
    p.description = desc;
    p.instrMillions = instr_m;
    p.totalMillions = total_m;
    p.dataPerInstr = total_m / instr_m - 1.0;
    p.codeBytes = code_kb * kib;
    p.globalBytes = global_kb * kib;
    p.heapBytes = heap_kb * kib;
    p.streamFraction = stream_fraction;
    p.streamStride = stream_stride;
    p.hotDataProb = hot_data_prob;
    p.seed = 0x52414d50u + seed * 0x9e3779b9u; // "RAMP" + golden salt
    return p;
}

/**
 * The roster.  Footprints are not published in the paper; they are
 * chosen per program class (SPECfp92 array codes stream through
 * multi-megabyte heaps, the integer codes and Unix utilities work in
 * hundreds of kilobytes) so the combined working set pressures the
 * 4 MB lowest SRAM level as the paper's 1.1 G-reference workload does.
 */
std::vector<ProgramProfile>
buildRoster()
{
    std::vector<ProgramProfile> roster;
    //                 name         description                 Minstr Mrefs  code glob  heap   strm  strd  hot   seed
    roster.push_back(make("alvinn", "neural net training (fp92)", 59.0, 72.8, 160, 256, 2048, 0.65, 8, 0.97, 1));
    roster.push_back(make("awk", "unix text utility", 62.8, 86.4, 256, 128, 512, 0.05, 4, 0.99, 2));
    roster.push_back(make("cexp", "C compiler (int92)", 28.5, 37.5, 512, 192, 768, 0.02, 4, 0.99, 3));
    roster.push_back(make("compress", "file compression (int92)", 8.0, 10.5, 96, 448, 512, 0.30, 4, 0.98, 4));
    roster.push_back(make("ear", "human ear simulator (fp92)", 65.0, 80.4, 192, 128, 1024, 0.55, 8, 0.97, 5));
    roster.push_back(make("gcc", "C compiler (int92)", 78.8, 100.0, 1024, 256, 1536, 0.02, 4, 0.985, 6));
    roster.push_back(make("hydro2d", "physics computation (fp92)", 8.2, 11.0, 160, 128, 2560, 0.70, 8, 0.96, 7));
    roster.push_back(make("mdljdp2", "solves motion eqns (fp92)", 65.0, 84.2, 160, 128, 1536, 0.50, 8, 0.97, 8));
    roster.push_back(make("mdljsp2", "solves motion eqns (fp92)", 65.0, 77.0, 160, 128, 1536, 0.50, 4, 0.97, 9));
    roster.push_back(make("nasa7", "NASA applications (fp92)", 65.0, 99.7, 224, 192, 4096, 0.75, 8, 0.95, 10));
    roster.push_back(make("ora", "ray tracing (fp92)", 65.0, 82.9, 128, 96, 512, 0.10, 8, 0.995, 11));
    roster.push_back(make("sed", "unix text utility", 7.7, 9.8, 128, 64, 256, 0.08, 4, 0.995, 12));
    roster.push_back(make("su2cor", "physics computation (fp92)", 65.0, 88.8, 192, 128, 3072, 0.65, 8, 0.96, 13));
    roster.push_back(make("swm256", "physics computation (fp92)", 65.0, 87.4, 128, 128, 3584, 0.78, 8, 0.95, 14));
    roster.push_back(make("tex", "unix text utility", 50.3, 66.8, 512, 256, 1024, 0.05, 4, 0.99, 15));
    roster.push_back(make("uncompress", "file decompression (int92)", 5.7, 7.5, 96, 448, 512, 0.30, 4, 0.98, 16));
    roster.push_back(make("wave5", "solves particle equations", 65.0, 78.3, 192, 128, 2560, 0.60, 8, 0.96, 17));
    roster.push_back(make("yacc", "unix text utility", 9.7, 12.1, 192, 96, 384, 0.05, 4, 0.995, 18));
    return roster;
}

} // namespace

const std::vector<ProgramProfile> &
benchmarkRoster()
{
    static const std::vector<ProgramProfile> roster = buildRoster();
    return roster;
}

const ProgramProfile &
benchmarkProfile(const std::string &name)
{
    for (const auto &profile : benchmarkRoster())
        if (profile.name == name)
            return profile;
    throw ConfigError("unknown benchmark '%s'", name.c_str());
}

std::vector<std::unique_ptr<TraceSource>>
makeWorkload(std::uint64_t seed_salt)
{
    std::vector<std::unique_ptr<TraceSource>> sources;
    const auto &roster = benchmarkRoster();
    sources.reserve(roster.size());
    Pid pid = 0;
    for (const auto &entry : roster) {
        ProgramProfile profile = entry;
        profile.seed += seed_salt * 0x6a09e667f3bcc909ull;
        sources.push_back(
            std::make_unique<SyntheticProgram>(profile, pid));
        ++pid;
    }
    return sources;
}

} // namespace rampage
