/**
 * @file
 * Trace file input/output.
 *
 * Two formats are supported so real traces (captured with Pin,
 * Valgrind/lackey, etc.) can replace the synthetic workload:
 *
 *  - the native binary format ("RPTRACE1"): a small header followed
 *    by packed {vaddr, pid, kind} records — compact and fast;
 *  - the classic Dinero "din" text format: one "<label> <hex-addr>"
 *    pair per line with label 0 = read, 1 = write, 2 = ifetch, the
 *    format of the NMSU Tracebase traces the paper used.
 *
 * Ingestion is hardened against real-world trace damage: the header
 * magic and version are validated, a payload that is not a whole
 * number of records is detected as a truncated tail, and malformed
 * records/lines are either rejected (strict mode) or skipped with a
 * warning up to a capped budget (lenient mode, the default — matching
 * how the classic din readers tolerated comment lines).  All failures
 * throw TraceError so a sweep campaign survives a bad trace file.
 */

#ifndef RAMPAGE_TRACE_FILE_FORMAT_HH
#define RAMPAGE_TRACE_FILE_FORMAT_HH

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "trace/source.hh"

namespace rampage
{

/** Magic bytes opening a native binary trace; the '1' is the version. */
constexpr char traceMagic[8] = {'R', 'P', 'T', 'R', 'A', 'C', 'E', '1'};

/** How forgiving trace ingestion is about damaged input. */
struct TraceReadOptions
{
    /**
     * Strict: any malformed record, din line or truncated tail throws
     * TraceError.  Lenient (default): skip-and-warn, bounded by
     * `malformedBudget`.
     */
    bool strict = false;

    /**
     * Lenient mode only: maximum malformed records/lines skipped per
     * pass before the file is rejected as unusable.
     */
    std::uint64_t malformedBudget = 1000;
};

/**
 * Write references to a trace file.  The format is chosen by the
 * `din` flag; the native format records pids, din does not.
 */
class TraceWriter
{
  public:
    /**
     * Open `path` for writing; throws TraceError if the file cannot
     * be created.
     * @param din write Dinero text instead of native binary.
     */
    TraceWriter(const std::string &path, bool din = false);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one reference. */
    void write(const MemRef &ref);

    /** Flush and close; implied by destruction. */
    void close();

    /** References written so far. */
    std::uint64_t count() const { return written; }

  private:
    std::FILE *file = nullptr;
    bool dinFormat;
    std::uint64_t written = 0;
    std::string filePath;
};

/**
 * Replayable trace-file source.  Auto-detects the format from the
 * file's first bytes.  din traces carry no pid, so one is assigned
 * at construction.
 */
class FileTraceSource final : public TraceSource
{
  public:
    /**
     * Open `path`; throws TraceError when missing, truncated at the
     * header, or carrying an unsupported version.
     * @param fallback_pid pid for din records (native records carry
     *        their own).
     * @param options strict/lenient handling of damaged content.
     */
    explicit FileTraceSource(const std::string &path, Pid fallback_pid = 0,
                             const TraceReadOptions &options = {});
    ~FileTraceSource() override;

    FileTraceSource(const FileTraceSource &) = delete;
    FileTraceSource &operator=(const FileTraceSource &) = delete;

    bool next(MemRef &ref) override;
    std::size_t fill(MemRef *buf, std::size_t n) override;
    void reset() override;
    std::string name() const override { return filePath; }
    Pid pid() const override { return filePid; }

    /** True when the file was recognized as native binary. */
    bool isNative() const { return native; }

    /** Whole records in a native file (0 for din). */
    std::uint64_t recordCount() const { return nRecords; }

    /** Malformed records/lines skipped so far this pass (lenient). */
    std::uint64_t malformedSkipped() const { return malformed; }

  private:
    bool nextNative(MemRef &ref);
    bool nextDin(MemRef &ref);

    /** Strict: throw; lenient: count, warn and enforce the budget. */
    void reportMalformed(const std::string &what);

    std::FILE *file = nullptr;
    std::string filePath;
    Pid filePid;
    TraceReadOptions opts;
    bool native = false;
    long dataStart = 0;
    std::uint64_t nRecords = 0;    ///< native: whole records on disk
    std::uint64_t recordIndex = 0; ///< native: next record to read
    std::uint64_t lineNo = 0;      ///< din: current line number
    std::uint64_t malformed = 0;   ///< skipped this pass (lenient)
};

/** Convenience: read an entire trace file into memory. */
std::vector<MemRef> readTraceFile(const std::string &path,
                                  Pid fallback_pid = 0,
                                  const TraceReadOptions &options = {});

} // namespace rampage

#endif // RAMPAGE_TRACE_FILE_FORMAT_HH
