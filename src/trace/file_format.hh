/**
 * @file
 * Trace file input/output.
 *
 * Two formats are supported so real traces (captured with Pin,
 * Valgrind/lackey, etc.) can replace the synthetic workload:
 *
 *  - the native binary format ("RPTRACE1"): a small header followed
 *    by packed {vaddr, pid, kind} records — compact and fast;
 *  - the classic Dinero "din" text format: one "<label> <hex-addr>"
 *    pair per line with label 0 = read, 1 = write, 2 = ifetch, the
 *    format of the NMSU Tracebase traces the paper used.
 */

#ifndef RAMPAGE_TRACE_FILE_FORMAT_HH
#define RAMPAGE_TRACE_FILE_FORMAT_HH

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "trace/source.hh"

namespace rampage
{

/** Magic bytes opening a native binary trace. */
constexpr char traceMagic[8] = {'R', 'P', 'T', 'R', 'A', 'C', 'E', '1'};

/**
 * Write references to a trace file.  The format is chosen by the
 * `din` flag; the native format records pids, din does not.
 */
class TraceWriter
{
  public:
    /**
     * Open `path` for writing; fatal() if the file cannot be created.
     * @param din write Dinero text instead of native binary.
     */
    TraceWriter(const std::string &path, bool din = false);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one reference. */
    void write(const MemRef &ref);

    /** Flush and close; implied by destruction. */
    void close();

    /** References written so far. */
    std::uint64_t count() const { return written; }

  private:
    std::FILE *file = nullptr;
    bool dinFormat;
    std::uint64_t written = 0;
    std::string filePath;
};

/**
 * Replayable trace-file source.  Auto-detects the format from the
 * file's first bytes.  din traces carry no pid, so one is assigned
 * at construction.
 */
class FileTraceSource : public TraceSource
{
  public:
    /**
     * Open `path`; fatal() when missing or unrecognized.
     * @param fallback_pid pid for din records (native records carry
     *        their own).
     */
    explicit FileTraceSource(const std::string &path,
                             Pid fallback_pid = 0);
    ~FileTraceSource() override;

    FileTraceSource(const FileTraceSource &) = delete;
    FileTraceSource &operator=(const FileTraceSource &) = delete;

    bool next(MemRef &ref) override;
    void reset() override;
    std::string name() const override { return filePath; }
    Pid pid() const override { return filePid; }

    /** True when the file was recognized as native binary. */
    bool isNative() const { return native; }

  private:
    bool nextNative(MemRef &ref);
    bool nextDin(MemRef &ref);

    std::FILE *file = nullptr;
    std::string filePath;
    Pid filePid;
    bool native = false;
    long dataStart = 0;
};

/** Convenience: read an entire trace file into memory. */
std::vector<MemRef> readTraceFile(const std::string &path,
                                  Pid fallback_pid = 0);

} // namespace rampage

#endif // RAMPAGE_TRACE_FILE_FORMAT_HH
