/**
 * @file
 * Synthesis of operating-system handler reference traces.
 *
 * The paper charges all software memory-management work by
 * *interleaving traces of handler code* through the simulated
 * hierarchy (§4.3: "misses modeled by interleaving a trace of page
 * lookup software"; §4.6: "approximately 400 references per context
 * switch ... based on a standard textbook algorithm").  This module
 * produces equivalent handler reference streams:
 *
 *  - TLB miss handler: a hashed inverted-page-table lookup
 *    (~40 references — instruction fetches through a short handler
 *    body plus probes of the supplied page-table entry addresses);
 *  - page-fault handler: victim selection, table update and transfer
 *    setup (~130 references — the paper's Atlas comparison puts the
 *    whole miss at "a few hundred to over 1,000 instructions"
 *    including the transfer);
 *  - context switch: state save/restore and scheduler queue work
 *    (~400 references, the paper's number).
 *
 * Callers supply the actual page-table entry addresses to probe, so
 * the handler's data traffic exercises the same physical structures
 * (the pinned inverted page table under RAMpage, an in-memory table
 * under the conventional hierarchy) as the real software would.
 */

#ifndef RAMPAGE_TRACE_HANDLERS_HH
#define RAMPAGE_TRACE_HANDLERS_HH

#include <cstdint>
#include <vector>

#include "trace/record.hh"

namespace rampage
{

/** Virtual placement of the OS handler code and data. */
struct HandlerLayout
{
    /** Handler text segment base. */
    Addr codeBase = 0x0001'0000;
    /**
     * Scheduler / process-table data base: one 4 KB page above the
     * text so the whole fixed OS image stays compact (the pinned
     * reserve should track the paper's §4.5 accounting).
     */
    Addr dataBase = 0x0001'1000;
};

/** Reference counts for each synthesized handler (tunable). */
struct HandlerCosts
{
    /** Instructions in the TLB-miss lookup body. */
    unsigned tlbMissInstrs = 18;
    /** Instructions in the page-fault service body. */
    unsigned pageFaultInstrs = 56;
    /** Data references in the page-fault body (beyond probes). */
    unsigned pageFaultData = 10;
    /** Instructions in the context-switch body. */
    unsigned contextSwitchInstrs = 300;
    /** Data references in the context-switch body. */
    unsigned contextSwitchData = 100;
};

/**
 * Generator of handler reference streams.  All references carry
 * osPid; the OS code/data pages they touch are pinned in the SRAM
 * main memory under RAMpage and are ordinary cacheable pages under
 * the conventional hierarchy.
 */
class HandlerTraces
{
  public:
    explicit HandlerTraces(const HandlerLayout &layout = HandlerLayout{},
                           const HandlerCosts &costs = HandlerCosts{});

    /**
     * Append the TLB-miss handler body.
     * @param out receives the references.
     * @param probes page-table entry addresses the lookup touches
     *        (hash bucket head plus any chain links).
     */
    void tlbMiss(std::vector<MemRef> &out,
                 const std::vector<Addr> &probes);

    /**
     * Append the page-fault handler body.
     * @param probes page-table entries read/written (faulting entry,
     *        victim entry, free-frame bookkeeping).
     */
    void pageFault(std::vector<MemRef> &out,
                   const std::vector<Addr> &probes);

    /** Append the ~400-reference context-switch body (§4.6). */
    void contextSwitch(std::vector<MemRef> &out);

    const HandlerLayout &layout() const { return lay; }
    const HandlerCosts &costs() const { return cost; }

    /** Reference count of one context switch (for sizing checks). */
    std::size_t contextSwitchLength() const;

  private:
    /**
     * Emit a handler body: `instrs` sequential fetches from
     * `entry`, with the `data` addresses interleaved evenly.
     */
    void emitBody(std::vector<MemRef> &out, Addr entry, unsigned instrs,
                  const std::vector<Addr> &data, double store_fraction);

    HandlerLayout lay;
    HandlerCosts cost;
    std::uint64_t switchSeq = 0; ///< rotates process-table slots
};

} // namespace rampage

#endif // RAMPAGE_TRACE_HANDLERS_HH
