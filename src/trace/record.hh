/**
 * @file
 * The memory-reference record that flows through every simulator: one
 * virtual address, a reference kind, and the process it belongs to.
 *
 * This mirrors the information content of the NMSU Tracebase R2000
 * traces the paper drives its simulations with (§4.2): address traces
 * of instruction fetches, loads and stores.
 */

#ifndef RAMPAGE_TRACE_RECORD_HH
#define RAMPAGE_TRACE_RECORD_HH

#include <cstdint>

#include "util/types.hh"

namespace rampage
{

/** Kind of memory reference. */
enum class RefKind : std::uint8_t
{
    IFetch,  ///< instruction fetch
    Load,    ///< data read
    Store,   ///< data write
};

/** One memory reference. */
struct MemRef
{
    Addr vaddr = 0;                 ///< virtual address
    RefKind kind = RefKind::IFetch; ///< fetch / load / store
    Pid pid = 0;                    ///< owning address space

    bool isInstr() const { return kind == RefKind::IFetch; }
    bool isWrite() const { return kind == RefKind::Store; }
};

/** Display name for a reference kind. */
inline const char *
refKindName(RefKind kind)
{
    switch (kind) {
      case RefKind::IFetch:
        return "ifetch";
      case RefKind::Load:
        return "load";
      case RefKind::Store:
        return "store";
    }
    return "?";
}

} // namespace rampage

#endif // RAMPAGE_TRACE_RECORD_HH
