/**
 * @file
 * Round-robin multiprogramming interleaver (paper §4.2): references
 * are drawn from one program at a time, switching to the next program
 * every `quantum` references, which models a multiprogrammed workload
 * with a fixed time slice.  Exhausted finite sources are rewound, as
 * the paper's 1.1 G-reference run replays its shorter traces.
 *
 * The interleaver reports quantum boundaries so callers can charge the
 * context-switch trace the paper inserts between slices (§4.6).  The
 * context-switch-on-miss scheduler in src/os/scheduler.hh supersedes
 * this class when scheduling must react to page faults.
 */

#ifndef RAMPAGE_TRACE_INTERLEAVER_HH
#define RAMPAGE_TRACE_INTERLEAVER_HH

#include <memory>
#include <vector>

#include "trace/source.hh"

namespace rampage
{

/** Round-robin interleaving of several trace sources. */
class Interleaver final : public TraceSource
{
  public:
    /**
     * @param sources the programs; ownership is taken.
     * @param quantum references per time slice (paper: 500 000).
     */
    Interleaver(std::vector<std::unique_ptr<TraceSource>> sources,
                std::uint64_t quantum);

    bool next(MemRef &ref) override;
    std::size_t fill(MemRef *buf, std::size_t n) override;
    void reset() override;
    std::string name() const override { return "interleaved"; }
    Pid pid() const override;

    /**
     * True exactly once per slice boundary: set when the most recent
     * next() call started a new time slice (including the first).
     * Callers use this to interleave the context-switch trace.
     */
    bool switchedProcess() const { return switchFlag; }

    /** Index of the currently scheduled source. */
    std::size_t currentIndex() const { return current; }

    /** Number of slice switches so far (first slice included). */
    std::uint64_t switchCount() const { return switches; }

    /** Access to the owned sources (for inspection in tests). */
    const std::vector<std::unique_ptr<TraceSource>> &
    programs() const
    {
        return srcs;
    }

  private:
    std::vector<std::unique_ptr<TraceSource>> srcs;
    std::uint64_t quantum;
    std::uint64_t inSlice = 0;
    std::size_t current = 0;
    bool switchFlag = false;
    bool started = false;
    std::uint64_t switches = 0;
};

} // namespace rampage

#endif // RAMPAGE_TRACE_INTERLEAVER_HH
