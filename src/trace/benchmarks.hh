/**
 * @file
 * The Table 2 benchmark roster: eighteen program profiles named after
 * the traces the paper pulled from the NMSU Tracebase (SPEC92 codes
 * and Unix text utilities), with instruction/data mixes matched to the
 * published per-trace reference counts and footprints chosen to load a
 * 4 MB lowest SRAM level the way the paper's workload does.
 */

#ifndef RAMPAGE_TRACE_BENCHMARKS_HH
#define RAMPAGE_TRACE_BENCHMARKS_HH

#include <memory>
#include <vector>

#include "trace/synthetic.hh"

namespace rampage
{

/** The full Table 2 roster, in the paper's order. */
const std::vector<ProgramProfile> &benchmarkRoster();

/** Look up one profile by name; throws ConfigError when unknown. */
const ProgramProfile &benchmarkProfile(const std::string &name);

/**
 * Instantiate the multiprogramming workload: one SyntheticProgram per
 * roster entry, pids assigned in roster order starting at 0.
 *
 * @param seed_salt mixed into each program's seed so distinct
 *        experiments can decorrelate their workloads if desired
 *        (benches use 0 so every table sees the identical workload).
 */
std::vector<std::unique_ptr<TraceSource>>
makeWorkload(std::uint64_t seed_salt = 0);

} // namespace rampage

#endif // RAMPAGE_TRACE_BENCHMARKS_HH
