#include "trace/handlers.hh"

#include "util/logging.hh"

namespace rampage
{

namespace
{

// Entry points of the three handler bodies within the OS text
// segment, packed so the whole handler text fits in ~4 KB — the
// pinned operating-system reserve should stay close to the paper's
// §4.5 numbers, which budget only a few KB beyond the page table.
constexpr Addr tlbMissEntryOff = 0x000;       // 30 instrs = 120 B
constexpr Addr pageFaultEntryOff = 0x100;     // 100 instrs = 400 B
constexpr Addr contextSwitchEntryOff = 0x300; // 300 instrs = 1.2 KB

} // namespace

HandlerTraces::HandlerTraces(const HandlerLayout &layout,
                             const HandlerCosts &costs)
    : lay(layout), cost(costs)
{
    RAMPAGE_ASSERT(cost.tlbMissInstrs > 0, "empty TLB handler");
    RAMPAGE_ASSERT(cost.pageFaultInstrs > 0, "empty fault handler");
    RAMPAGE_ASSERT(cost.contextSwitchInstrs > 0, "empty switch handler");
}

void
HandlerTraces::emitBody(std::vector<MemRef> &out, Addr entry,
                        unsigned instrs, const std::vector<Addr> &data,
                        double store_fraction)
{
    // Interleave the data references evenly through the fetch stream,
    // marking the trailing fraction of them as stores (handlers read
    // state, compute, then write results back).
    std::size_t n_data = data.size();
    std::size_t stores_from = n_data -
        static_cast<std::size_t>(static_cast<double>(n_data) *
                                 store_fraction);
    unsigned per_data = n_data > 0
                            ? (instrs / static_cast<unsigned>(n_data) + 1)
                            : instrs + 1;
    std::size_t next_data = 0;
    for (unsigned i = 0; i < instrs; ++i) {
        MemRef fetch;
        fetch.vaddr = entry + 4 * i;
        fetch.kind = RefKind::IFetch;
        fetch.pid = osPid;
        out.push_back(fetch);

        if (next_data < n_data && (i + 1) % per_data == 0) {
            MemRef dref;
            dref.vaddr = data[next_data];
            dref.kind = next_data >= stores_from ? RefKind::Store
                                                 : RefKind::Load;
            dref.pid = osPid;
            out.push_back(dref);
            ++next_data;
        }
    }
    // Any data refs not yet placed trail the body.
    for (; next_data < n_data; ++next_data) {
        MemRef dref;
        dref.vaddr = data[next_data];
        dref.kind = next_data >= stores_from ? RefKind::Store
                                             : RefKind::Load;
        dref.pid = osPid;
        out.push_back(dref);
    }
}

void
HandlerTraces::tlbMiss(std::vector<MemRef> &out,
                       const std::vector<Addr> &probes)
{
    emitBody(out, lay.codeBase + tlbMissEntryOff, cost.tlbMissInstrs,
             probes, 0.0);
}

void
HandlerTraces::pageFault(std::vector<MemRef> &out,
                         const std::vector<Addr> &probes)
{
    // The fault body touches the supplied table entries plus its own
    // bookkeeping data (free lists, statistics, transfer descriptors).
    std::vector<Addr> data = probes;
    // Bookkeeping data sits above the 18 PCB slots (18 * 0x100).
    for (unsigned i = 0; i < cost.pageFaultData; ++i)
        data.push_back(lay.dataBase + 0x1400 + 8 * i);
    emitBody(out, lay.codeBase + pageFaultEntryOff, cost.pageFaultInstrs,
             data, 0.4);
}

void
HandlerTraces::contextSwitch(std::vector<MemRef> &out)
{
    // Save one process-control block, restore another: the data refs
    // rotate through a few PCB slots so consecutive switches touch
    // different table entries, as a real ready queue would.
    std::vector<Addr> data;
    data.reserve(cost.contextSwitchData);
    Addr pcb_out = lay.dataBase + 0x100 * (switchSeq % 18);
    Addr pcb_in = lay.dataBase + 0x100 * ((switchSeq + 1) % 18);
    ++switchSeq;
    for (unsigned i = 0; i < cost.contextSwitchData / 2; ++i)
        data.push_back(pcb_out + 8 * (i % 32));
    for (unsigned i = 0; i < cost.contextSwitchData -
                                 cost.contextSwitchData / 2; ++i)
        data.push_back(pcb_in + 8 * (i % 32));
    emitBody(out, lay.codeBase + contextSwitchEntryOff,
             cost.contextSwitchInstrs, data, 0.5);
}

std::size_t
HandlerTraces::contextSwitchLength() const
{
    return cost.contextSwitchInstrs + cost.contextSwitchData;
}

} // namespace rampage
