#include "trace/synthetic.hh"

#include <algorithm>

#include "util/bitops.hh"
#include "util/logging.hh"

namespace rampage
{

SyntheticProgram::SyntheticProgram(const ProgramProfile &profile, Pid pid)
    : prof(profile), streamPid(pid), rng(profile.seed)
{
    RAMPAGE_ASSERT(prof.codeBytes >= 4096, "text segment too small");
    RAMPAGE_ASSERT(prof.heapBytes >= 4096, "heap too small");
    RAMPAGE_ASSERT(prof.stackBytes >= 256, "stack too small");
    reset();
}

void
SyntheticProgram::cacheProfileConstants()
{
    hotCodeCached = hotCodeBytes();
    globalHotBytes =
        std::min<std::uint64_t>(prof.globalBytes, 12 * 1024);
    // The skewed regions' hot spans, exactly as Rng::skewedBelow
    // derives them (fraction 0.08, floored at 1).
    auto skew_hot = [](std::uint64_t bound) {
        std::uint64_t hot = static_cast<std::uint64_t>(
            static_cast<double>(bound) * 0.08);
        return hot == 0 ? std::uint64_t{1} : hot;
    };
    stackSkewHot = skew_hot(prof.stackBytes);
    globalSkewHot = skew_hot(prof.globalBytes);
}

void
SyntheticProgram::reset()
{
    rng = Rng(prof.seed);
    cacheProfileConstants();
    pc = codeBase;
    hotCodeBase = codeBase;
    hotHeapBytes = prof.hotDataBytes;
    if (hotHeapBytes < 4096)
        hotHeapBytes = 4096;
    if (hotHeapBytes > prof.heapBytes)
        hotHeapBytes = prof.heapBytes;
    hotHeapBase = heapBase;
    streamPtr = heapBase;
    coldPtr = heapBase;
    hotPtr = 0;
    globalPtr = 0;
    instrSincePhase = 0;
    refCount = 0;
    dataPending = false;
    changePhase();
}

std::uint64_t
SyntheticProgram::hotCodeBytes() const
{
    std::uint64_t hot = static_cast<std::uint64_t>(
        static_cast<double>(prof.codeBytes) * prof.hotCodeFraction);
    if (hot < 1024)
        hot = 1024;
    if (hot > prof.hotCodeBytesCap)
        hot = prof.hotCodeBytesCap;
    return hot;
}

void
SyntheticProgram::changePhase()
{
    // Pick a new hot heap window and a new loop nest, aligned to 256 B
    // so windows overlap cache/page boundaries realistically.
    std::uint64_t heap_span = prof.heapBytes > hotHeapBytes
                                  ? prof.heapBytes - hotHeapBytes
                                  : 1;
    hotHeapBase = heapBase + alignDown(rng.below(heap_span), 8);

    std::uint64_t hot_code = hotCodeCached;
    std::uint64_t code_span = prof.codeBytes > hot_code
                                  ? prof.codeBytes - hot_code
                                  : 1;
    hotCodeBase = codeBase + alignDown(rng.below(code_span), 6);
    instrSincePhase = 0;
}

Addr
SyntheticProgram::nextFetch()
{
    if (rng.chance(prof.branchTakenRate)) {
        std::uint64_t hot_code = hotCodeCached;
        if (rng.chance(prof.hotCodeProb)) {
            // Branch within the current loop nest.
            pc = hotCodeBase + alignDown(rng.below(hot_code), 2);
        } else {
            // Long-range call/jump anywhere in the text segment.
            pc = codeBase + alignDown(rng.below(prof.codeBytes), 2);
        }
    } else {
        pc += 4;
        if (pc >= codeBase + prof.codeBytes)
            pc = hotCodeBase;
    }
    return pc;
}

Addr
SyntheticProgram::burstWalk(Addr &ptr, Addr base, std::uint64_t span,
                            double jump_prob)
{
    if (ptr < base || ptr >= base + span || rng.chance(jump_prob)) {
        ptr = base + alignDown(rng.below(span), 3);
    } else {
        std::uint64_t step = 4 + rng.below(28);
        if (rng.chance(0.5)) {
            ptr = ptr >= base + step ? ptr - step : base;
        } else {
            ptr += step;
            if (ptr + 8 >= base + span)
                ptr = base;
        }
    }
    return alignDown(ptr, 2);
}

Addr
SyntheticProgram::nextData()
{
    double region = rng.unit();
    if (region < prof.stackFraction) {
        // Stack: intensely hot within the top frame or two.
        return stackTop - alignDown(
            rng.skewedBelowCached(prof.stackBytes, stackSkewHot, 0.99),
            2);
    }
    region -= prof.stackFraction;
    if (region < prof.globalFraction) {
        // Bursty accesses against a hot slice of the static data,
        // with a rare skewed excursion over the whole region.
        if (rng.chance(0.995)) {
            return burstWalk(globalPtr, globalBase, globalHotBytes,
                             prof.globalJumpProb);
        }
        return globalBase + alignDown(
            rng.skewedBelowCached(prof.globalBytes, globalSkewHot,
                                  0.95),
            2);
    }
    // Heap reference: streaming or hot-window.
    if (prof.streamFraction > 0 && rng.chance(prof.streamFraction)) {
        streamPtr += prof.streamStride;
        if (streamPtr + 8 >= heapBase + prof.heapBytes)
            streamPtr = heapBase;
        // Occasionally restart a stream elsewhere (new array sweep).
        if (rng.chance(0.0005))
            streamPtr = heapBase + alignDown(rng.below(prof.heapBytes), 6);
        return alignDown(streamPtr, 2);
    }
    if (rng.chance(prof.hotDataProb)) {
        return burstWalk(hotPtr, hotHeapBase, hotHeapBytes,
                         prof.hotJumpProb);
    }
    // Cold heap traffic is a pointer chase: a local meander with rare
    // long jumps, so consecutive cold references cluster in a page or
    // two (real linked-structure traversals do) rather than spraying
    // the TLB with uniform addresses.
    if (rng.chance(prof.coldJumpProb)) {
        coldPtr = heapBase + alignDown(rng.below(prof.heapBytes), 6);
    } else {
        std::uint64_t step = 16 + rng.below(112);
        if (rng.chance(0.5)) {
            coldPtr = coldPtr >= heapBase + step ? coldPtr - step
                                                 : heapBase;
        } else {
            coldPtr += step;
            if (coldPtr + 8 >= heapBase + prof.heapBytes)
                coldPtr = heapBase;
        }
    }
    return alignDown(coldPtr, 2);
}

bool
SyntheticProgram::next(MemRef &ref)
{
    if (dataPending) {
        dataPending = false;
        ref = pendingRef;
        ++refCount;
        return true;
    }

    ref.vaddr = nextFetch();
    ref.kind = RefKind::IFetch;
    ref.pid = streamPid;
    ++refCount;

    if (++instrSincePhase >= prof.phaseLength)
        changePhase();

    if (rng.chance(prof.dataPerInstr)) {
        pendingRef.vaddr = nextData();
        pendingRef.kind = rng.chance(prof.storeFraction) ? RefKind::Store
                                                         : RefKind::Load;
        pendingRef.pid = streamPid;
        dataPending = true;
    }
    return true;
}

std::size_t
SyntheticProgram::fill(MemRef *buf, std::size_t n)
{
    // Flattened copy of the next() state machine writing straight
    // into the caller's batch buffer: the per-reference pending-data
    // bounce through member state happens only across call
    // boundaries, not per reference.  Draw order is identical to
    // next(), so the stream is bit-identical to the per-call path
    // (tests/test_dispatch_equivalence.cc holds this to account).
    std::size_t got = 0;
    if (dataPending && got < n) {
        dataPending = false;
        buf[got++] = pendingRef;
    }
    while (got < n) {
        MemRef &fetch = buf[got++];
        fetch.vaddr = nextFetch();
        fetch.kind = RefKind::IFetch;
        fetch.pid = streamPid;

        if (++instrSincePhase >= prof.phaseLength)
            changePhase();

        if (rng.chance(prof.dataPerInstr)) {
            // The data reference's draws happen with the fetch that
            // carries it, exactly as next() stages them.
            MemRef data;
            data.vaddr = nextData();
            data.kind = rng.chance(prof.storeFraction)
                            ? RefKind::Store
                            : RefKind::Load;
            data.pid = streamPid;
            if (got < n) {
                buf[got++] = data;
            } else {
                pendingRef = data;
                dataPending = true;
            }
        }
    }
    refCount += n;
    return n;
}

} // namespace rampage
