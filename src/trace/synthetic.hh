/**
 * @file
 * Synthetic program model: a deterministic, endless reference stream
 * with controllable code/data locality.
 *
 * Substitutes for the NMSU Tracebase R2000 traces the paper drives its
 * simulations with (§4.2), which are no longer distributable.  Each
 * modelled program has:
 *
 *  - a code region walked mostly sequentially with skewed branch
 *    targets (hot loop nests);
 *  - a small, hot stack; a medium global/static region; a large heap;
 *  - optional strided streaming through the heap (the SPECfp92 array
 *    codes);
 *  - slow phase drift of the hot heap window, so working sets change
 *    over time as they do across a real program's phases.
 *
 * All draws come from a per-program seeded Rng, so a profile always
 * regenerates the identical trace.  Real traces captured with Pin or
 * Valgrind can be substituted via FileTraceSource without touching the
 * simulators.
 */

#ifndef RAMPAGE_TRACE_SYNTHETIC_HH
#define RAMPAGE_TRACE_SYNTHETIC_HH

#include <cstdint>
#include <string>

#include "trace/source.hh"
#include "util/random.hh"

namespace rampage
{

/**
 * Tunable description of one synthetic program.  The Table 2 roster
 * (src/trace/benchmarks.hh) instantiates eighteen of these.
 */
struct ProgramProfile
{
    std::string name;        ///< benchmark name (Table 2)
    std::string description; ///< Table 2 description

    double instrMillions = 65.0; ///< Table 2 instruction-fetch count
    double totalMillions = 80.0; ///< Table 2 total reference count

    // --- address-space layout ------------------------------------
    std::uint64_t codeBytes = 256 * 1024;   ///< text segment size
    std::uint64_t stackBytes = 8 * 1024;    ///< hot stack extent
    std::uint64_t globalBytes = 128 * 1024; ///< static/global data
    std::uint64_t heapBytes = 1024 * 1024;  ///< heap extent

    // --- instruction stream behaviour -----------------------------
    double branchTakenRate = 0.15; ///< P(fetch redirects) per instr
    double hotCodeFraction = 0.02; ///< loop-nest share of text
    /** Loop-nest byte cap; larger nests thrash the L1I unrealistically
     *  often across the whole roster. */
    std::uint64_t hotCodeBytesCap = 3 * 1024;
    double hotCodeProb = 0.997;    ///< P(branch target in loop nest)

    // --- data stream behaviour -------------------------------------
    double dataPerInstr = 0.30;   ///< P(an instr carries a data ref)
    double storeFraction = 0.32;  ///< stores among data refs
    double stackFraction = 0.35;  ///< data refs hitting the stack
    double globalFraction = 0.15; ///< data refs hitting globals
    double streamFraction = 0.0;  ///< heap refs that stream (fp codes)
    unsigned streamStride = 8;    ///< streaming stride in bytes
    /** Hot heap window size (absolute; must fit the TLB's reach the
     *  way the paper's traces do — their baseline TLB overhead is
     *  flat and small). */
    std::uint64_t hotDataBytes = 16 * 1024;
    double hotDataProb = 0.99;    ///< P(heap ref lands in hot window)
    /**
     * P(the hot-window cursor jumps to a fresh spot) per hot ref.
     * Between jumps, references walk locally: real data accesses come
     * in bursts against one structure at a time, which is what keeps
     * a 64-entry TLB effective even at small RAMpage page sizes.
     */
    double hotJumpProb = 0.05;
    /** P(a cold heap walk jumps to a fresh region) per cold ref;
     *  between jumps the walk meanders locally (pointer chasing). */
    double coldJumpProb = 0.02;
    /** Hot share of the global/static region (absolute cap 12 KB). */
    double globalJumpProb = 0.05;

    /**
     * Instructions between re-seating the hot heap window and loop
     * nest.  Phase drift (plus the fp streams) is what creates the
     * capacity/conflict traffic at the 4 MB level; per-reference
     * locality stays tight, as in the paper's traces.
     */
    std::uint64_t phaseLength = 400 * 1000;

    std::uint64_t seed = 1; ///< per-program determinism seed
};

/**
 * Endless reference stream generated from a ProgramProfile.  `final`
 * so the fill() override's inner next() calls bind statically.
 */
class SyntheticProgram final : public TraceSource
{
  public:
    /**
     * @param profile program behaviour description.
     * @param pid address-space id stamped on every reference.
     */
    SyntheticProgram(const ProgramProfile &profile, Pid pid);

    bool next(MemRef &ref) override;
    std::size_t fill(MemRef *buf, std::size_t n) override;
    void reset() override;
    std::string name() const override { return prof.name; }
    Pid pid() const override { return streamPid; }

    /** References produced since construction / last reset. */
    std::uint64_t generated() const { return refCount; }

    const ProgramProfile &profile() const { return prof; }

    // Virtual address-space layout (MIPS-like, shared by all
    // programs; distinct pids keep the spaces apart).
    static constexpr Addr codeBase = 0x0040'0000;
    static constexpr Addr globalBase = 0x1000'0000;
    static constexpr Addr heapBase = 0x2000'0000;
    static constexpr Addr stackTop = 0x7fff'f000;

  private:
    /** Draw the next instruction-fetch address. */
    Addr nextFetch();

    /** Draw a data address per the region mix. */
    Addr nextData();

    /** Re-seat the hot heap window (phase change). */
    void changePhase();

    /** Loop-nest size: fraction of the text, capped. */
    std::uint64_t hotCodeBytes() const;

    /** Recompute the cached per-profile constants (reset()). */
    void cacheProfileConstants();

    /**
     * Advance a bursty cursor within [base, base+span): a local
     * meander with probability (1 - jump_prob), a uniform jump
     * otherwise.
     */
    Addr burstWalk(Addr &ptr, Addr base, std::uint64_t span,
                   double jump_prob);

    ProgramProfile prof;
    Pid streamPid;
    Rng rng;

    Addr pc = codeBase;
    Addr hotCodeBase = codeBase;  ///< current loop-nest origin
    Addr hotHeapBase = 0;         ///< current hot heap window origin
    std::uint64_t hotHeapBytes = 0;
    Addr streamPtr = 0;           ///< current streaming cursor
    Addr coldPtr = 0;             ///< cold pointer-chase cursor
    Addr hotPtr = 0;              ///< hot-window burst cursor
    Addr globalPtr = 0;           ///< global-region burst cursor
    std::uint64_t instrSincePhase = 0;
    std::uint64_t refCount = 0;

    // Per-profile constants the generators previously recomputed per
    // reference (floating-point multiplies visible in trace_gen
    // profiles); cacheProfileConstants() derives them once.  The
    // cached values feed the exact expressions they replace, so the
    // generated stream is bit-identical.
    std::uint64_t hotCodeCached = 0;  ///< hotCodeBytes() memoised
    std::uint64_t globalHotBytes = 0; ///< bursty hot slice of globals
    std::uint64_t stackSkewHot = 0;   ///< skewedBelow span (stack)
    std::uint64_t globalSkewHot = 0;  ///< skewedBelow span (globals)

    bool dataPending = false;
    MemRef pendingRef{};
};

} // namespace rampage

#endif // RAMPAGE_TRACE_SYNTHETIC_HH
