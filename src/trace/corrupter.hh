/**
 * @file
 * Deterministic fault injection for trace files.
 *
 * Test support for the hardened ingestion path: each function damages
 * an on-disk trace in one specific, reproducible way so the recovery
 * tests (and sweep-campaign rehearsals) can prove the reader fails —
 * or degrades — exactly as specified.  Nothing here is random; the
 * caller chooses what breaks and where.
 */

#ifndef RAMPAGE_TRACE_CORRUPTER_HH
#define RAMPAGE_TRACE_CORRUPTER_HH

#include <cstdint>
#include <string>

namespace rampage
{

/** Shrink the file to `keep_bytes` (no-op when already smaller). */
void truncateTraceFile(const std::string &path, std::uint64_t keep_bytes);

/** Overwrite the single byte at `offset` with `value`. */
void corruptTraceByte(const std::string &path, std::uint64_t offset,
                      std::uint8_t value);

/** Flip the first magic byte so the header no longer matches. */
void corruptTraceMagic(const std::string &path);

/**
 * Overwrite the version byte (last byte of the magic) of a native
 * trace with `version`.
 */
void corruptTraceVersion(const std::string &path, char version);

/**
 * Set the kind byte of native record `record_index` (0-based) to
 * `kind`, typically an out-of-range value.
 */
void corruptNativeRecordKind(const std::string &path,
                             std::uint64_t record_index,
                             std::uint8_t kind);

/** Append `count` unparseable text lines (din damage). */
void appendMalformedDinLines(const std::string &path, std::uint64_t count);

} // namespace rampage

#endif // RAMPAGE_TRACE_CORRUPTER_HH
