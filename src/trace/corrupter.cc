#include "trace/corrupter.hh"

#include <cstdio>
#include <filesystem>
#include <system_error>

#include "trace/file_format.hh"
#include "util/error.hh"

namespace rampage
{

namespace
{

/** Bytes of header before the first native record. */
constexpr std::uint64_t nativeHeaderBytes = sizeof(traceMagic);

/** On-disk size of one native record (see file_format.cc). */
constexpr std::uint64_t nativeRecordBytes = 11;

/** Offset of the kind byte within a native record. */
constexpr std::uint64_t kindByteOffset = 10;

} // namespace

void
truncateTraceFile(const std::string &path, std::uint64_t keep_bytes)
{
    std::error_code ec;
    std::uint64_t size = std::filesystem::file_size(path, ec);
    if (ec)
        throw TraceError("cannot stat trace file '%s': %s", path.c_str(),
                         ec.message().c_str());
    if (size <= keep_bytes)
        return;
    std::filesystem::resize_file(path, keep_bytes, ec);
    if (ec)
        throw TraceError("cannot truncate trace file '%s': %s",
                         path.c_str(), ec.message().c_str());
}

void
corruptTraceByte(const std::string &path, std::uint64_t offset,
                 std::uint8_t value)
{
    std::FILE *file = std::fopen(path.c_str(), "r+b");
    if (!file)
        throw TraceError("cannot open trace file '%s' for corruption",
                         path.c_str());
    if (std::fseek(file, static_cast<long>(offset), SEEK_SET) != 0 ||
        std::fwrite(&value, 1, 1, file) != 1) {
        std::fclose(file);
        throw TraceError("cannot overwrite byte %llu of '%s'",
                         static_cast<unsigned long long>(offset),
                         path.c_str());
    }
    std::fclose(file);
}

void
corruptTraceMagic(const std::string &path)
{
    corruptTraceByte(path, 0,
                     static_cast<std::uint8_t>(traceMagic[0]) ^ 0xff);
}

void
corruptTraceVersion(const std::string &path, char version)
{
    corruptTraceByte(path, nativeHeaderBytes - 1,
                     static_cast<std::uint8_t>(version));
}

void
corruptNativeRecordKind(const std::string &path,
                        std::uint64_t record_index, std::uint8_t kind)
{
    corruptTraceByte(path,
                     nativeHeaderBytes +
                         record_index * nativeRecordBytes + kindByteOffset,
                     kind);
}

void
appendMalformedDinLines(const std::string &path, std::uint64_t count)
{
    std::FILE *file = std::fopen(path.c_str(), "a");
    if (!file)
        throw TraceError("cannot append to trace file '%s'", path.c_str());
    for (std::uint64_t i = 0; i < count; ++i)
        std::fprintf(file, "<malformed line %llu>\n",
                     static_cast<unsigned long long>(i));
    std::fclose(file);
}

} // namespace rampage
