#include "check/shrink.hh"

#include <algorithm>
#include <functional>
#include <vector>

#include "core/factory.hh"
#include "util/error.hh"

namespace rampage
{

namespace
{

/** Re-arm the watchdog after the reference budget changed. */
void
rearmWatchdog(FuzzPoint &point)
{
    point.sim.watchdogRefBudget =
        point.sim.maxRefs * 20 + 10'000'000;
}

using Transform = std::function<bool(FuzzPoint &)>;

/**
 * The transform roster, most-aggressive first — halving the run
 * length buys the most wall time per accepted step, so it is tried
 * before the structural simplifications.  Each transform returns
 * false when it does not apply (already minimal).
 */
std::vector<Transform>
transformsFor(const FuzzPoint &point)
{
    std::vector<Transform> out;

    out.push_back([](FuzzPoint &p) {
        if (p.sim.maxRefs <= 250)
            return false;
        p.sim.maxRefs /= 2;
        p.sim.quantumRefs =
            std::min(p.sim.quantumRefs, p.sim.maxRefs);
        rearmWatchdog(p);
        return true;
    });
    out.push_back([](FuzzPoint &p) {
        if (p.sim.quantumRefs <= 100)
            return false;
        p.sim.quantumRefs /= 2;
        return true;
    });
    out.push_back([](FuzzPoint &p) {
        if (p.workloadSalt == 0)
            return false;
        p.workloadSalt = 0;
        return true;
    });

    out.push_back([](FuzzPoint &p) {
        CommonConfig &c = p.hier.common();
        if (c.l1SizeBytes <= c.l1BlockBytes * 4)
            return false;
        c.l1SizeBytes /= 2;
        return true;
    });
    out.push_back([](FuzzPoint &p) {
        CommonConfig &c = p.hier.common();
        if (c.l1Assoc == 1)
            return false;
        c.l1Assoc = 1;
        return true;
    });
    out.push_back([](FuzzPoint &p) {
        CommonConfig &c = p.hier.common();
        if (c.tlb.entries <= 1)
            return false;
        c.tlb.entries /= 2;
        if (c.tlb.assoc > c.tlb.entries)
            c.tlb.assoc = c.tlb.entries;
        return true;
    });
    out.push_back([](FuzzPoint &p) {
        CommonConfig &c = p.hier.common();
        if (c.tlb.assoc == 0)
            return false;
        c.tlb.assoc = 0; // fully associative: the simplest geometry
        return true;
    });

    if (point.hier.family == HierarchyConfig::Family::Conventional) {
        out.push_back([](FuzzPoint &p) {
            ConventionalConfig &cc = p.hier.conventional;
            if (cc.l2SizeBytes <= cc.l2BlockBytes * 8)
                return false;
            cc.l2SizeBytes /= 2;
            return true;
        });
        out.push_back([](FuzzPoint &p) {
            ConventionalConfig &cc = p.hier.conventional;
            if (cc.l2Assoc == 1)
                return false;
            cc.l2Assoc = 1;
            return true;
        });
        out.push_back([](FuzzPoint &p) {
            ConventionalConfig &cc = p.hier.conventional;
            if (cc.victimEntries == 0)
                return false;
            cc.victimEntries = 0;
            return true;
        });
        out.push_back([](FuzzPoint &p) {
            ConventionalConfig &cc = p.hier.conventional;
            if (cc.l2Style == ConventionalConfig::L2Style::SetAssoc)
                return false;
            cc.l2Style = ConventionalConfig::L2Style::SetAssoc;
            return true;
        });
        out.push_back([](FuzzPoint &p) {
            ConventionalConfig &cc = p.hier.conventional;
            if (cc.l2Repl == ReplPolicy::LRU)
                return false;
            cc.l2Repl = ReplPolicy::LRU;
            return true;
        });
    } else {
        out.push_back([](FuzzPoint &p) {
            if (!p.hier.paged.switchOnMiss)
                return false;
            p.hier.paged.switchOnMiss = false;
            return true;
        });
        out.push_back([](FuzzPoint &p) {
            PageStoreParams &pg = p.hier.paged.pager;
            if (pg.baseSramBytes <= pg.pageBytes * 8)
                return false;
            pg.baseSramBytes /= 2;
            return true;
        });
        out.push_back([](FuzzPoint &p) {
            PageStoreParams &pg = p.hier.paged.pager;
            if (pg.tagBytesPerBlock == 0)
                return false;
            pg.tagBytesPerBlock = 0;
            return true;
        });
        out.push_back([](FuzzPoint &p) {
            PageStoreParams &pg = p.hier.paged.pager;
            if (pg.pageBytesByPid.empty())
                return false;
            pg.pageBytesByPid.erase(pg.pageBytesByPid.begin());
            return true;
        });
        out.push_back([](FuzzPoint &p) {
            PageStoreParams &pg = p.hier.paged.pager;
            if (pg.defaultPageBytes == 0 ||
                pg.defaultPageBytes == pg.pageBytes)
                return false;
            pg.defaultPageBytes = pg.pageBytes;
            return true;
        });
        out.push_back([](FuzzPoint &p) {
            PageStoreParams &pg = p.hier.paged.pager;
            if (pg.defaultPageBytes == 0)
                return false;
            pg.defaultPageBytes = 0; // true uniform policy
            pg.pageBytesByPid.clear();
            return true;
        });
        out.push_back([](FuzzPoint &p) {
            PageStoreParams &pg = p.hier.paged.pager;
            if (pg.defaultPageBytes != 0 ||
                pg.repl == PageReplKind::Clock)
                return false;
            pg.repl = PageReplKind::Clock;
            pg.standbyPages = 0;
            return true;
        });
    }
    return out;
}

bool
validPoint(const FuzzPoint &point)
{
    try {
        validateHierarchyConfig(point.hier);
        return true;
    } catch (const ConfigError &) {
        return false;
    }
}

} // namespace

ShrinkResult
shrinkPoint(const FuzzPoint &failing, const ShrinkOptions &options)
{
    ShrinkResult result;
    result.point = failing;

    PropertyReport report = checkPoint(failing, options.properties);
    ++result.evaluations;
    if (report.ok())
        return result; // not failing: nothing to shrink

    result.failure = report.summary();
    bool progressed = true;
    while (progressed && result.evaluations < options.maxEvaluations) {
        progressed = false;
        for (const Transform &transform :
             transformsFor(result.point)) {
            if (result.evaluations >= options.maxEvaluations)
                break;
            FuzzPoint candidate = result.point;
            if (!transform(candidate) || !validPoint(candidate))
                continue;
            PropertyReport again =
                checkPoint(candidate, options.properties);
            ++result.evaluations;
            if (again.ok())
                continue; // transform lost the failure: reject
            result.point = candidate;
            result.failure = again.summary();
            ++result.accepted;
            progressed = true;
            break; // restart from the most aggressive transform
        }
    }
    result.point.note = "shrunk from seed " +
                        std::to_string(failing.generatorSeed) +
                        " point " +
                        std::to_string(failing.pointIndex);
    return result;
}

} // namespace rampage
