#include "check/properties.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>

#include <unistd.h>

#include "core/sweep.hh"
// simulateFuzzPoint needs the raw Simulator seam
#include "trace/benchmarks.hh"
#include "util/error.hh"

namespace rampage
{

namespace
{

/** The suite's baseline SimConfig: no audits, no observability. */
SimConfig
baseSimConfig(const FuzzPoint &point)
{
    SimConfig sim = point.sim;
    sim.auditLevel = AuditLevel::Off;
    sim.faultPlan = point.faultSpec;
    sim.traceOutBase.clear();
    sim.intervalOutBase.clear();
    sim.statsIntervalRefs = 0;
    return sim;
}

void
fail(PropertyReport &report, const char *property, std::string detail)
{
    report.failures.push_back(PropertyFailure{property,
                                              std::move(detail)});
}

/**
 * Run the engine, translating any escaped SimError into a property
 * failure.  @retval true the run completed and `out` is valid.
 */
bool
runEngine(const FuzzPoint &point, const SimConfig &sim,
          const char *property, PropertyReport &report, SimResult &out)
{
    try {
        out = simulateFuzzPoint(point, sim);
        return true;
    } catch (const SimError &err) {
        fail(report, property,
             formatErrorMessage("engine raised %s error: %s",
                                errorCategoryName(err.category()),
                                err.what()));
        return false;
    }
}

bool
sameBits(double a, double b)
{
    std::uint64_t ba = 0, bb = 0;
    std::memcpy(&ba, &a, sizeof(ba));
    std::memcpy(&bb, &b, sizeof(bb));
    return ba == bb;
}

bool
excluded(const std::string &name,
         const std::vector<std::string> &prefixes)
{
    for (const std::string &prefix : prefixes)
        if (name.compare(0, prefix.size(), prefix) == 0)
            return true;
    return false;
}

/**
 * Bit-exact snapshot comparison, optionally ignoring entries whose
 * names start with one of `skip`.  Returns "" when equal, else a
 * description of the first difference.
 */
std::string
diffSnapshots(const StatsSnapshot &lhs, const StatsSnapshot &rhs,
              const std::vector<std::string> &skip = {})
{
    std::vector<const StatsSnapshot::Entry *> a, b;
    for (const auto &entry : lhs.entries())
        if (!excluded(entry.name, skip))
            a.push_back(&entry);
    for (const auto &entry : rhs.entries())
        if (!excluded(entry.name, skip))
            b.push_back(&entry);

    std::size_t n = std::min(a.size(), b.size());
    for (std::size_t i = 0; i < n; ++i) {
        const auto &x = *a[i];
        const auto &y = *b[i];
        if (x.name != y.name)
            return formatErrorMessage(
                "entry %zu named '%s' vs '%s'", i, x.name.c_str(),
                y.name.c_str());
        if (x.kind != y.kind)
            return formatErrorMessage("'%s': kind differs",
                                      x.name.c_str());
        if (x.counter != y.counter)
            return formatErrorMessage(
                "'%s': %llu vs %llu", x.name.c_str(),
                static_cast<unsigned long long>(x.counter),
                static_cast<unsigned long long>(y.counter));
        if (!sameBits(x.value, y.value))
            return formatErrorMessage("'%s': %.17g vs %.17g",
                                      x.name.c_str(), x.value, y.value);
        if (x.buckets != y.buckets || x.samples != y.samples ||
            x.sum != y.sum)
            return formatErrorMessage("'%s': histogram differs",
                                      x.name.c_str());
    }
    if (a.size() != b.size())
        return formatErrorMessage("entry counts differ: %zu vs %zu",
                                  a.size(), b.size());
    return "";
}

void
checkOracle(const FuzzPoint &point, const SimResult &base,
            PropertyReport &report)
{
    OracleReport oracle = crossCheckOracle(point, base.stats);
    report.oracleMode = oracle.mode;
    for (const std::string &mismatch : oracle.mismatches)
        fail(report, "oracle",
             formatErrorMessage("[%s] %s", oracleModeName(oracle.mode),
                                mismatch.c_str()));
}

void
checkDeterminism(const FuzzPoint &point, const SimResult &base,
                 PropertyReport &report)
{
    SimResult again;
    if (!runEngine(point, baseSimConfig(point), "determinism", report,
                   again))
        return;
    std::string diff = diffSnapshots(base.stats, again.stats);
    if (!diff.empty())
        fail(report, "determinism",
             "same seed, different snapshot: " + diff);
}

void
checkDegeneracy(const FuzzPoint &point, const SimResult &base,
                PropertyReport &report)
{
    if (point.hier.family != HierarchyConfig::Family::Paged ||
        point.hier.paged.pager.defaultPageBytes != 0)
        return;
    // Rewrite the uniform policy as the equivalent per-pid policy:
    // every process at the base frame size.  Same machine, so the
    // snapshot must not move at all.
    FuzzPoint degen = point;
    PageStoreParams &pg = degen.hier.paged.pager;
    pg.defaultPageBytes = pg.pageBytes;
    pg.pageBytesByPid.clear();
    pg.pageBytesByPid[3] = pg.pageBytes;

    SimResult other;
    if (!runEngine(degen, baseSimConfig(degen), "degeneracy", report,
                   other))
        return;
    std::string diff = diffSnapshots(base.stats, other.stats);
    if (!diff.empty())
        fail(report, "degeneracy",
             "degenerate per-pid policy diverged from uniform: " +
                 diff);
}

void
checkSweepHarness(const FuzzPoint &point, const SimResult &base,
                  PropertyReport &report)
{
    struct Variant
    {
        const char *label;
        unsigned jobs;
        int isolate;
    };
    // jobs=2 runs two copies of the point concurrently (exercising the
    // worker pool), --isolate forks and streams the result back.
    const Variant variants[] = {
        {"jobs=1", 1, 0},
        {"jobs=2", 2, 0},
        {"isolate", 1, 1},
    };
    for (const Variant &variant : variants) {
        SweepRunner::Options options;
        options.jobs = variant.jobs;
        options.isolate = variant.isolate;
        options.maxRetries = 0;
        options.pointDeadlineSeconds = -1; // override any environment
        SweepRunner runner(options);
        auto body = [&point] {
            return simulateFuzzPoint(point, baseSimConfig(point));
        };
        runner.add("p0", body);
        if (variant.jobs > 1)
            runner.add("p1", body);
        SweepReport sweep;
        try {
            sweep = runner.run();
        } catch (const SimError &err) {
            fail(report, "sweep-harness",
                 formatErrorMessage("%s: runner raised: %s",
                                    variant.label, err.what()));
            continue;
        }
        for (const PointOutcome &outcome : sweep.outcomes) {
            if (outcome.status != PointStatus::Ok) {
                fail(report, "sweep-harness",
                     formatErrorMessage(
                         "%s: point %s ended %s: %s", variant.label,
                         outcome.id.c_str(),
                         pointStatusName(outcome.status),
                         outcome.error.c_str()));
                continue;
            }
            std::string diff =
                diffSnapshots(base.stats, outcome.result.stats);
            if (!diff.empty())
                fail(report, "sweep-harness",
                     formatErrorMessage(
                         "%s: snapshot diverged from the in-process "
                         "run: %s",
                         variant.label, diff.c_str()));
        }
    }
}

void
checkAudit(const FuzzPoint &point, const SimResult &base,
           PropertyReport &report)
{
    SimConfig sim = baseSimConfig(point);
    sim.auditLevel = AuditLevel::Paranoid;
    SimResult audited;
    if (!runEngine(point, sim, "audit", report, audited))
        return;
    std::string diff =
        diffSnapshots(base.stats, audited.stats, {"audit."});
    if (!diff.empty())
        fail(report, "audit",
             "paranoid audits perturbed the simulation: " + diff);
}

void
checkObservability(const FuzzPoint &point, const SimResult &base,
                   PropertyReport &report)
{
    static std::atomic<std::uint64_t> sequence{0};
    std::string scratch = formatErrorMessage(
        "fuzz_obs_%d_%llu", static_cast<int>(getpid()),
        static_cast<unsigned long long>(
            sequence.fetch_add(1, std::memory_order_relaxed)));

    SimConfig sim = baseSimConfig(point);
    sim.traceOutBase = scratch;
    sim.intervalOutBase = scratch;
    sim.statsIntervalRefs =
        std::max<std::uint64_t>(1, point.sim.quantumRefs / 2);

    SimResult traced;
    bool ran =
        runEngine(point, sim, "observability", report, traced);
    if (ran) {
        std::string diff = diffSnapshots(
            base.stats, traced.stats, {"sim.trace.", "sim.interval."});
        if (!diff.empty())
            fail(report, "observability",
                 "tracing/interval stats perturbed the simulation: " +
                     diff);
    }
    if (!traced.traceFile.empty())
        std::remove(traced.traceFile.c_str());
    if (!traced.intervalFile.empty())
        std::remove(traced.intervalFile.c_str());
}

} // namespace

SimResult
simulateFuzzPoint(const FuzzPoint &point, const SimConfig &sim)
{
    std::unique_ptr<Hierarchy> hierarchy = makeHierarchy(point.hier);
    SimConfig effective = sim;
    if (point.hier.family == HierarchyConfig::Family::Paged)
        effective.switchOnMiss = point.hier.paged.switchOnMiss;
    Simulator simulator(*hierarchy,
                        makeWorkload(point.workloadSalt), effective);
    return simulator.run();
}

std::string
PropertyReport::summary() const
{
    std::string out;
    for (const PropertyFailure &failure : failures) {
        if (!out.empty())
            out += '\n';
        out += failure.property;
        out += ": ";
        out += failure.detail;
    }
    return out;
}

PropertyReport
checkPoint(const FuzzPoint &point, const PropertyOptions &options)
{
    PropertyReport report;

    SimResult base;
    if (!runEngine(point, baseSimConfig(point), "base-run", report,
                   base))
        return report; // nothing downstream can run

    if (options.oracle)
        checkOracle(point, base, report);
    if (options.determinism)
        checkDeterminism(point, base, report);
    if (options.degeneracy)
        checkDegeneracy(point, base, report);
    if (options.sweepHarness)
        checkSweepHarness(point, base, report);
    if (options.audit)
        checkAudit(point, base, report);
    if (options.observability)
        checkObservability(point, base, report);
    return report;
}

} // namespace rampage
