#include "check/repro.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "util/error.hh"
#include "util/json.hh"

namespace rampage
{

namespace
{

constexpr int reproSchemaVersion = 1;

const char *
familyName(HierarchyConfig::Family family)
{
    return family == HierarchyConfig::Family::Paged ? "paged"
                                                    : "conventional";
}

HierarchyConfig::Family
familyFromName(const std::string &name)
{
    if (name == "paged")
        return HierarchyConfig::Family::Paged;
    if (name == "conventional")
        return HierarchyConfig::Family::Conventional;
    throw ConfigError("fuzz repro: unknown hierarchy family '%s'",
                      name.c_str());
}

const char *
l2StyleName(ConventionalConfig::L2Style style)
{
    return style == ConventionalConfig::L2Style::ColumnAssoc
               ? "column-assoc"
               : "set-assoc";
}

ConventionalConfig::L2Style
l2StyleFromName(const std::string &name)
{
    if (name == "set-assoc")
        return ConventionalConfig::L2Style::SetAssoc;
    if (name == "column-assoc")
        return ConventionalConfig::L2Style::ColumnAssoc;
    throw ConfigError("fuzz repro: unknown L2 style '%s'", name.c_str());
}

const char *
cacheReplName(ReplPolicy policy)
{
    switch (policy) {
      case ReplPolicy::LRU:
        return "lru";
      case ReplPolicy::Random:
        return "random";
      case ReplPolicy::FIFO:
        return "fifo";
    }
    return "lru";
}

ReplPolicy
cacheReplFromName(const std::string &name)
{
    if (name == "lru")
        return ReplPolicy::LRU;
    if (name == "random")
        return ReplPolicy::Random;
    if (name == "fifo")
        return ReplPolicy::FIFO;
    throw ConfigError("fuzz repro: unknown cache replacement '%s'",
                      name.c_str());
}

const char *
pageReplName(PageReplKind kind)
{
    switch (kind) {
      case PageReplKind::Clock:
        return "clock";
      case PageReplKind::Fifo:
        return "fifo";
      case PageReplKind::Random:
        return "random";
      case PageReplKind::Lru:
        return "lru";
      case PageReplKind::Standby:
        return "standby";
    }
    return "clock";
}

PageReplKind
pageReplFromName(const std::string &name)
{
    if (name == "clock")
        return PageReplKind::Clock;
    if (name == "fifo")
        return PageReplKind::Fifo;
    if (name == "random")
        return PageReplKind::Random;
    if (name == "lru")
        return PageReplKind::Lru;
    if (name == "standby")
        return PageReplKind::Standby;
    throw ConfigError("fuzz repro: unknown page replacement '%s'",
                      name.c_str());
}

const char *
dramKindName(CommonConfig::DramKind kind)
{
    return kind == CommonConfig::DramKind::Sdram ? "sdram"
                                                 : "direct-rambus";
}

CommonConfig::DramKind
dramKindFromName(const std::string &name)
{
    if (name == "direct-rambus")
        return CommonConfig::DramKind::DirectRambus;
    if (name == "sdram")
        return CommonConfig::DramKind::Sdram;
    throw ConfigError("fuzz repro: unknown DRAM kind '%s'",
                      name.c_str());
}

std::uint64_t
getU64(const JsonValue &obj, const char *key)
{
    const JsonValue &v = obj.at(key);
    if (!v.isNumber())
        throw ConfigError("fuzz repro: key '%s' is not a number", key);
    std::int64_t raw = v.asInt();
    if (raw < 0)
        throw ConfigError("fuzz repro: key '%s' is negative", key);
    return static_cast<std::uint64_t>(raw);
}

bool
getBool(const JsonValue &obj, const char *key)
{
    const JsonValue &v = obj.at(key);
    if (v.type() != JsonValue::Type::Bool)
        throw ConfigError("fuzz repro: key '%s' is not a bool", key);
    return v.asBool();
}

std::string
getStr(const JsonValue &obj, const char *key)
{
    const JsonValue &v = obj.at(key);
    if (!v.isString())
        throw ConfigError("fuzz repro: key '%s' is not a string", key);
    return v.asString();
}

} // namespace

std::string
fuzzPointToJson(const FuzzPoint &point)
{
    JsonValue doc = JsonValue::object();
    doc.set("schema", JsonValue::integer(
                          static_cast<std::int64_t>(reproSchemaVersion)));
    doc.set("generator_seed", JsonValue::integer(point.generatorSeed));
    doc.set("point_index", JsonValue::integer(point.pointIndex));
    doc.set("note", JsonValue::str(point.note));
    doc.set("family", JsonValue::str(familyName(point.hier.family)));

    const CommonConfig &c = point.hier.common();
    JsonValue common = JsonValue::object();
    common.set("issue_hz", JsonValue::integer(c.issueHz));
    common.set("l1_size_bytes", JsonValue::integer(c.l1SizeBytes));
    common.set("l1_block_bytes", JsonValue::integer(c.l1BlockBytes));
    common.set("l1_assoc",
               JsonValue::integer(std::uint64_t{c.l1Assoc}));
    common.set("tlb_entries",
               JsonValue::integer(std::uint64_t{c.tlb.entries}));
    common.set("tlb_assoc",
               JsonValue::integer(std::uint64_t{c.tlb.assoc}));
    common.set("tlb_lru", JsonValue::boolean(c.tlb.lruReplacement));
    common.set("dram_kind", JsonValue::str(dramKindName(c.dramKind)));
    common.set("dram_page_bytes", JsonValue::integer(c.dramPageBytes));
    doc.set("common", std::move(common));

    if (point.hier.family == HierarchyConfig::Family::Conventional) {
        const ConventionalConfig &cc = point.hier.conventional;
        JsonValue conv = JsonValue::object();
        conv.set("l2_size_bytes", JsonValue::integer(cc.l2SizeBytes));
        conv.set("l2_block_bytes", JsonValue::integer(cc.l2BlockBytes));
        conv.set("l2_assoc",
                 JsonValue::integer(std::uint64_t{cc.l2Assoc}));
        conv.set("l2_style", JsonValue::str(l2StyleName(cc.l2Style)));
        conv.set("l2_repl", JsonValue::str(cacheReplName(cc.l2Repl)));
        conv.set("victim_entries",
                 JsonValue::integer(std::uint64_t{cc.victimEntries}));
        doc.set("conventional", std::move(conv));
    } else {
        const PagedConfig &pc = point.hier.paged;
        JsonValue paged = JsonValue::object();
        paged.set("page_bytes", JsonValue::integer(pc.pager.pageBytes));
        paged.set("base_sram_bytes",
                  JsonValue::integer(pc.pager.baseSramBytes));
        paged.set("tag_bytes_per_block",
                  JsonValue::integer(pc.pager.tagBytesPerBlock));
        paged.set("repl", JsonValue::str(pageReplName(pc.pager.repl)));
        paged.set("standby_pages",
                  JsonValue::integer(pc.pager.standbyPages));
        paged.set("seed", JsonValue::integer(pc.pager.seed));
        paged.set("default_page_bytes",
                  JsonValue::integer(pc.pager.defaultPageBytes));
        // Map entries sorted by pid so dumps are stable and diffable.
        JsonValue by_pid = JsonValue::object();
        std::vector<Pid> pids;
        for (const auto &entry : pc.pager.pageBytesByPid)
            pids.push_back(entry.first);
        std::sort(pids.begin(), pids.end());
        for (Pid pid : pids) {
            char key[16];
            std::snprintf(key, sizeof(key), "%u", unsigned{pid});
            by_pid.set(key, JsonValue::integer(
                                pc.pager.pageBytesByPid.at(pid)));
        }
        paged.set("page_bytes_by_pid", std::move(by_pid));
        paged.set("switch_on_miss",
                  JsonValue::boolean(pc.switchOnMiss));
        doc.set("paged", std::move(paged));
    }

    JsonValue sim = JsonValue::object();
    sim.set("max_refs", JsonValue::integer(point.sim.maxRefs));
    sim.set("quantum_refs", JsonValue::integer(point.sim.quantumRefs));
    sim.set("insert_switch_trace",
            JsonValue::boolean(point.sim.insertSwitchTrace));
    doc.set("sim", std::move(sim));
    doc.set("workload_salt", JsonValue::integer(point.workloadSalt));
    doc.set("fault", JsonValue::str(point.faultSpec));
    return doc.dump(2);
}

FuzzPoint
fuzzPointFromJson(const std::string &text)
{
    JsonValue doc = JsonValue::parse(text);
    if (!doc.isObject())
        throw ConfigError("fuzz repro: document is not an object");
    std::uint64_t schema = getU64(doc, "schema");
    if (schema != reproSchemaVersion)
        throw ConfigError("fuzz repro: unsupported schema version %llu",
                          static_cast<unsigned long long>(schema));

    FuzzPoint point;
    point.generatorSeed = getU64(doc, "generator_seed");
    point.pointIndex = getU64(doc, "point_index");
    point.note = getStr(doc, "note");
    point.hier.family = familyFromName(getStr(doc, "family"));

    const JsonValue &common = doc.at("common");
    CommonConfig c{};
    c.issueHz = getU64(common, "issue_hz");
    c.l1SizeBytes = getU64(common, "l1_size_bytes");
    c.l1BlockBytes = getU64(common, "l1_block_bytes");
    c.l1Assoc = static_cast<unsigned>(getU64(common, "l1_assoc"));
    c.tlb.entries =
        static_cast<unsigned>(getU64(common, "tlb_entries"));
    c.tlb.assoc = static_cast<unsigned>(getU64(common, "tlb_assoc"));
    c.tlb.lruReplacement = getBool(common, "tlb_lru");
    c.dramKind = dramKindFromName(getStr(common, "dram_kind"));
    c.dramPageBytes = getU64(common, "dram_page_bytes");

    if (point.hier.family == HierarchyConfig::Family::Conventional) {
        const JsonValue &conv = doc.at("conventional");
        ConventionalConfig cc{};
        cc.common = c;
        cc.l2SizeBytes = getU64(conv, "l2_size_bytes");
        cc.l2BlockBytes = getU64(conv, "l2_block_bytes");
        cc.l2Assoc = static_cast<unsigned>(getU64(conv, "l2_assoc"));
        cc.l2Style = l2StyleFromName(getStr(conv, "l2_style"));
        cc.l2Repl = cacheReplFromName(getStr(conv, "l2_repl"));
        cc.victimEntries =
            static_cast<unsigned>(getU64(conv, "victim_entries"));
        point.hier.conventional = cc;
    } else {
        const JsonValue &paged = doc.at("paged");
        PagedConfig pc{};
        pc.common = c;
        pc.pager.pageBytes = getU64(paged, "page_bytes");
        pc.pager.baseSramBytes = getU64(paged, "base_sram_bytes");
        pc.pager.tagBytesPerBlock =
            getU64(paged, "tag_bytes_per_block");
        pc.pager.repl = pageReplFromName(getStr(paged, "repl"));
        pc.pager.standbyPages = getU64(paged, "standby_pages");
        pc.pager.seed = getU64(paged, "seed");
        pc.pager.defaultPageBytes =
            getU64(paged, "default_page_bytes");
        const JsonValue &by_pid = paged.at("page_bytes_by_pid");
        if (!by_pid.isObject())
            throw ConfigError(
                "fuzz repro: page_bytes_by_pid is not an object");
        for (const auto &member : by_pid.members()) {
            char *end = nullptr;
            unsigned long pid =
                std::strtoul(member.first.c_str(), &end, 10);
            if (member.first.empty() || end == nullptr ||
                *end != '\0' || pid > 0xfffe)
                throw ConfigError(
                    "fuzz repro: bad pid key '%s' in "
                    "page_bytes_by_pid",
                    member.first.c_str());
            if (!member.second.isNumber() || member.second.asInt() < 0)
                throw ConfigError(
                    "fuzz repro: page size for pid %s is not a "
                    "non-negative number",
                    member.first.c_str());
            pc.pager.pageBytesByPid[static_cast<Pid>(pid)] =
                static_cast<std::uint64_t>(member.second.asInt());
        }
        pc.switchOnMiss = getBool(paged, "switch_on_miss");
        point.hier.paged = pc;
    }

    const JsonValue &sim = doc.at("sim");
    point.sim = SimConfig{};
    point.sim.maxRefs = getU64(sim, "max_refs");
    point.sim.quantumRefs = getU64(sim, "quantum_refs");
    point.sim.insertSwitchTrace = getBool(sim, "insert_switch_trace");
    if (point.sim.maxRefs == 0 || point.sim.quantumRefs == 0)
        throw ConfigError(
            "fuzz repro: max_refs and quantum_refs must be positive");
    // Replays always run with an armed runaway watchdog.
    point.sim.watchdogRefBudget =
        point.sim.maxRefs * 20 + 10'000'000;
    point.workloadSalt = getU64(doc, "workload_salt");
    point.faultSpec = getStr(doc, "fault");
    return point;
}

FuzzPoint
loadFuzzPoint(const std::string &path)
{
    std::FILE *fh = std::fopen(path.c_str(), "rb");
    if (!fh)
        throw ConfigError("fuzz repro: cannot open '%s'", path.c_str());
    std::string text;
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), fh)) > 0)
        text.append(buf, got);
    std::fclose(fh);
    try {
        return fuzzPointFromJson(text);
    } catch (const ConfigError &err) {
        throw ConfigError("%s: %s", path.c_str(), err.what());
    }
}

void
saveFuzzPoint(const FuzzPoint &point, const std::string &path)
{
    std::string text = fuzzPointToJson(point);
    std::FILE *fh = std::fopen(path.c_str(), "wb");
    if (!fh)
        throw ConfigError("fuzz repro: cannot write '%s'",
                          path.c_str());
    bool ok = std::fwrite(text.data(), 1, text.size(), fh) ==
              text.size();
    ok = std::fclose(fh) == 0 && ok;
    if (!ok)
        throw ConfigError("fuzz repro: short write to '%s'",
                          path.c_str());
}

} // namespace rampage
