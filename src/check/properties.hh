/**
 * @file
 * The metamorphic property suite the fuzzer runs per design point.
 *
 * Each property states a relation the simulator must satisfy that
 * needs no knowledge of the "right" absolute numbers:
 *
 *  - P0 oracle:        the frozen StatsSnapshot agrees with the
 *                      independent reference model (check/ref_model.hh)
 *                      at that point's coverage tier.
 *  - P1 determinism:   re-running the identical point reproduces the
 *                      snapshot bit for bit (doubles compared as bit
 *                      patterns).
 *  - P2 degeneracy:    a uniform-page RAMpage config and the same
 *                      config written as a *degenerate per-pid policy*
 *                      (every pid at the base frame size) are the same
 *                      machine and must produce identical snapshots.
 *  - P3 sweep harness: running the point through SweepRunner with
 *                      jobs=1, jobs=2 and --isolate (forked child,
 *                      bit-exact IPC) yields the in-process snapshot.
 *  - P4 audit:         enabling paranoid audits neither throws nor
 *                      changes any non-audit statistic.
 *  - P5 observability: enabling event tracing and interval stats
 *                      changes nothing but the sim.trace.* /
 *                      sim.interval.* bookkeeping counters.
 *
 * A point whose faultSpec is non-empty runs with that model fault
 * injected, so properties are *expected* to fail — that is how the
 * shrinker's failure predicate and the detector-coverage meta-check
 * reuse this suite.
 */

#ifndef RAMPAGE_CHECK_PROPERTIES_HH
#define RAMPAGE_CHECK_PROPERTIES_HH

#include <string>
#include <vector>

#include "check/ref_model.hh"
#include "check/repro.hh"

namespace rampage
{

/** One failed property instance. */
struct PropertyFailure
{
    std::string property; ///< stable name ("oracle", "determinism"...)
    std::string detail;   ///< human-readable disagreement
};

/** Outcome of running the suite on one point. */
struct PropertyReport
{
    OracleReport::Mode oracleMode = OracleReport::Mode::Identities;
    std::vector<PropertyFailure> failures;

    bool ok() const { return failures.empty(); }
    /** "property: detail" lines joined with newlines ("" when ok). */
    std::string summary() const;
};

/** Which properties to run (all by default). */
struct PropertyOptions
{
    bool oracle = true;
    bool determinism = true;
    bool degeneracy = true;
    bool sweepHarness = true;
    bool audit = true;
    bool observability = true;
};

/**
 * Run the configured properties against one design point.  Engine
 * errors (SimError) are captured as failures of the property that
 * triggered them, never propagated — a valid config that throws *is*
 * a finding.
 */
PropertyReport checkPoint(const FuzzPoint &point,
                          const PropertyOptions &options = {});

/**
 * Build and run one engine simulation of `point` under `sim` —
 * simulateSystem() plus the point's workload salt (which the stock
 * runner has no seam for).  Exceptions propagate.
 */
SimResult simulateFuzzPoint(const FuzzPoint &point,
                            const SimConfig &sim);

} // namespace rampage

#endif // RAMPAGE_CHECK_PROPERTIES_HH
