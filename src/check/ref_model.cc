#include "check/ref_model.hh"

#include <algorithm>
#include <cstddef>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/factory.hh"
#include "os/inverted_page_table.hh"
#include "trace/benchmarks.hh"
#include "trace/handlers.hh"
#include "trace/source.hh"
#include "util/bitops.hh"
#include "util/error.hh"
#include "util/random.hh"

namespace rampage
{

namespace
{

// ===================================================================
// Replica components.  These re-implement the *functional* behaviour
// of the engine's caches, TLB and pager from their specifications —
// including replacement-state details (stamp updates, hand motion,
// RNG draws) that determine which counters tick.  They deliberately
// share no code with src/cache, src/tlb or src/os; the shared pieces
// (Rng, HandlerTraces, makeWorkload, InvertedPageTable) are inputs to
// both models, as documented in ref_model.hh.
// ===================================================================

// ------------------------------------------------------------ caches

struct RefCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t dirtyEvictions = 0;
    std::uint64_t invalidations = 0;
};

/** Functional set-associative write-back cache (the L1 replica). */
class RefCache
{
  public:
    RefCache(std::uint64_t size_bytes, std::uint64_t block_bytes,
             unsigned assoc, ReplPolicy repl, std::uint64_t seed)
        : repl(repl), rng(seed)
    {
        std::uint64_t blocks = size_bytes / block_bytes;
        nWays = assoc == 0 ? static_cast<unsigned>(blocks) : assoc;
        nSets = blocks / nWays;
        blockBits = floorLog2(block_bytes);
        setBits = floorLog2(nSets);
        lines.assign(nSets * nWays, Line{});
    }

    struct AccessResult
    {
        bool hit = false;
        bool victimValid = false;
        bool victimDirty = false;
        Addr victimAddr = 0;
    };

    AccessResult
    access(Addr addr, bool is_write)
    {
        AccessResult result;
        std::uint64_t set = (addr >> blockBits) & (nSets - 1);
        Addr tag = addr >> blockBits >> setBits;
        Line *base = &lines[set * nWays];

        ++useCounter;
        for (unsigned w = 0; w < nWays; ++w) {
            Line &line = base[w];
            if (line.valid && line.tag == tag) {
                result.hit = true;
                if (is_write)
                    line.dirty = true;
                if (repl == ReplPolicy::LRU)
                    line.stamp = useCounter;
                ++stat.hits;
                return result;
            }
        }

        ++stat.misses;
        unsigned way = pickVictim(base);
        Line &line = base[way];
        if (line.valid) {
            result.victimValid = true;
            result.victimDirty = line.dirty;
            result.victimAddr = ((line.tag << setBits) | set)
                                << blockBits;
            ++stat.evictions;
            if (line.dirty)
                ++stat.dirtyEvictions;
        }
        line.valid = true;
        line.dirty = is_write;
        line.tag = tag;
        line.stamp = useCounter;
        return result;
    }

    struct InvalidateResult
    {
        bool present = false;
        bool dirty = false;
    };

    InvalidateResult
    invalidate(Addr addr)
    {
        InvalidateResult result;
        if (Line *line = findLine(addr)) {
            result.present = true;
            result.dirty = line->dirty;
            line->valid = false;
            line->dirty = false;
            ++stat.invalidations;
        }
        return result;
    }

    const RefCacheStats &stats() const { return stat; }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        std::uint64_t stamp = 0;
    };

    Line *
    findLine(Addr addr)
    {
        std::uint64_t set = (addr >> blockBits) & (nSets - 1);
        Addr tag = addr >> blockBits >> setBits;
        Line *base = &lines[set * nWays];
        for (unsigned w = 0; w < nWays; ++w)
            if (base[w].valid && base[w].tag == tag)
                return &base[w];
        return nullptr;
    }

    unsigned
    pickVictim(Line *base)
    {
        for (unsigned w = 0; w < nWays; ++w)
            if (!base[w].valid)
                return w;
        if (repl == ReplPolicy::Random)
            return static_cast<unsigned>(rng.below(nWays));
        unsigned victim = 0; // LRU and FIFO: oldest stamp
        for (unsigned w = 1; w < nWays; ++w)
            if (base[w].stamp < base[victim].stamp)
                victim = w;
        return victim;
    }

    ReplPolicy repl;
    Rng rng;
    unsigned nWays;
    std::uint64_t nSets;
    unsigned blockBits;
    unsigned setBits;
    std::uint64_t useCounter = 0;
    std::vector<Line> lines;
    RefCacheStats stat;
};

// --------------------------------------------------------------- TLB

struct RefTlbStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t flushes = 0;
};

/** Functional TLB replica (set-assoc, LRU or seeded-random victim). */
class RefTlb
{
  public:
    explicit RefTlb(const TlbParams &params)
        : lru(params.lruReplacement), rng(params.seed)
    {
        nWays = params.assoc == 0 ? params.entries : params.assoc;
        nSets = params.entries / nWays;
        entries.assign(params.entries, Entry{});
    }

    /** @retval true hit; miss otherwise (the frame is out-param). */
    bool
    lookup(Pid pid, std::uint64_t vpn, std::uint64_t &frame_out)
    {
        ++useCounter;
        if (Entry *entry = find(pid, vpn)) {
            ++stat.hits;
            if (lru)
                entry->stamp = useCounter;
            frame_out = entry->frame;
            return true;
        }
        ++stat.misses;
        return false;
    }

    void
    insert(Pid pid, std::uint64_t vpn, std::uint64_t frame)
    {
        ++useCounter;
        if (Entry *entry = find(pid, vpn)) {
            entry->frame = frame;
            entry->stamp = useCounter;
            return;
        }
        Entry *base = &entries[setOf(pid, vpn) * nWays];
        Entry *slot = nullptr;
        for (unsigned w = 0; w < nWays; ++w) {
            if (!base[w].valid) {
                slot = &base[w];
                break;
            }
        }
        if (!slot) {
            if (lru) {
                slot = base;
                for (unsigned w = 1; w < nWays; ++w)
                    if (base[w].stamp < slot->stamp)
                        slot = &base[w];
            } else {
                slot = &base[rng.below(nWays)];
            }
        }
        slot->valid = true;
        slot->pid = pid;
        slot->vpn = vpn;
        slot->frame = frame;
        slot->stamp = useCounter;
    }

    void
    invalidate(Pid pid, std::uint64_t vpn)
    {
        if (Entry *entry = find(pid, vpn)) {
            entry->valid = false;
            ++stat.flushes;
        }
    }

    const RefTlbStats &stats() const { return stat; }

  private:
    struct Entry
    {
        bool valid = false;
        Pid pid = 0;
        std::uint64_t vpn = 0;
        std::uint64_t frame = 0;
        std::uint64_t stamp = 0;
    };

    std::uint64_t
    setOf(Pid pid, std::uint64_t vpn) const
    {
        std::uint64_t key = vpn ^ (static_cast<std::uint64_t>(pid) << 13);
        return key & (nSets - 1);
    }

    Entry *
    find(Pid pid, std::uint64_t vpn)
    {
        Entry *base = &entries[setOf(pid, vpn) * nWays];
        for (unsigned w = 0; w < nWays; ++w) {
            Entry &entry = base[w];
            if (entry.valid && entry.pid == pid && entry.vpn == vpn)
                return &entry;
        }
        return nullptr;
    }

    bool lru;
    Rng rng;
    unsigned nWays;
    unsigned nSets;
    std::uint64_t useCounter = 0;
    std::vector<Entry> entries;
    RefTlbStats stat;
};

// -------------------------------------------- page replacement (uniform)

/** All five uniform-mode replacement policies in one replica. */
class RefPageRepl
{
  public:
    RefPageRepl(PageReplKind kind, std::uint64_t frames,
                std::uint64_t first_evictable, std::uint64_t seed,
                std::uint64_t standby_pages)
        : kind(kind), nFrames(frames), firstEvictable(first_evictable),
          rng(seed), standbyTarget(standby_pages),
          hand(first_evictable)
    {
        referenced.assign(frames, false);
        onStandby.assign(frames, false);
        seqTable.assign(frames, 0);
    }

    void
    touch(std::uint64_t frame)
    {
        switch (kind) {
          case PageReplKind::Clock:
            referenced[frame] = true;
            break;
          case PageReplKind::Lru:
            seqTable[frame] = ++seq;
            break;
          case PageReplKind::Standby:
            referenced[frame] = true;
            if (onStandby[frame]) {
                onStandby[frame] = false;
                for (auto it = standby.begin(); it != standby.end();
                     ++it) {
                    if (*it == frame) {
                        standby.erase(it);
                        break;
                    }
                }
            }
            break;
          case PageReplKind::Fifo:
          case PageReplKind::Random:
            break;
        }
    }

    void
    fill(std::uint64_t frame)
    {
        switch (kind) {
          case PageReplKind::Clock:
          case PageReplKind::Standby:
            referenced[frame] = true;
            break;
          case PageReplKind::Fifo:
          case PageReplKind::Lru:
            seqTable[frame] = ++seq;
            break;
          case PageReplKind::Random:
            break;
        }
    }

    std::uint64_t
    pickVictim()
    {
        switch (kind) {
          case PageReplKind::Clock:
            return clockScan();
          case PageReplKind::Fifo:
          case PageReplKind::Lru: {
            std::uint64_t victim = firstEvictable;
            for (std::uint64_t f = firstEvictable + 1; f < nFrames; ++f)
                if (seqTable[f] < seqTable[victim])
                    victim = f;
            return victim;
          }
          case PageReplKind::Random:
            return firstEvictable + rng.below(nFrames - firstEvictable);
          case PageReplKind::Standby: {
            while (standby.size() < standbyTarget + 1) {
                std::uint64_t nominee = standbyScan();
                standby.push_back(nominee);
                onStandby[nominee] = true;
            }
            std::uint64_t victim = standby.front();
            standby.pop_front();
            onStandby[victim] = false;
            return victim;
          }
        }
        throw InternalError("oracle: unreachable replacement kind");
    }

  private:
    std::uint64_t
    clockScan()
    {
        std::uint64_t evictable = nFrames - firstEvictable;
        for (std::uint64_t step = 0; step < 2 * evictable + 1; ++step) {
            std::uint64_t frame = hand;
            hand = hand + 1 >= nFrames ? firstEvictable : hand + 1;
            if (referenced[frame])
                referenced[frame] = false;
            else
                return frame;
        }
        throw InternalError("oracle: clock hand found no victim");
    }

    std::uint64_t
    standbyScan()
    {
        std::uint64_t evictable = nFrames - firstEvictable;
        for (std::uint64_t step = 0; step < 2 * evictable + 1; ++step) {
            std::uint64_t frame = hand;
            hand = hand + 1 >= nFrames ? firstEvictable : hand + 1;
            if (onStandby[frame])
                continue;
            if (referenced[frame])
                referenced[frame] = false;
            else
                return frame;
        }
        throw InternalError("oracle: standby clock nominated nothing");
    }

    PageReplKind kind;
    std::uint64_t nFrames;
    std::uint64_t firstEvictable;
    Rng rng;
    std::uint64_t standbyTarget;
    std::uint64_t hand;
    std::vector<bool> referenced;
    std::vector<bool> onStandby;
    std::deque<std::uint64_t> standby;
    std::vector<std::uint64_t> seqTable; ///< FIFO fill / LRU use seq
    std::uint64_t seq = 0;
};

// ------------------------------------------------------------- pager

struct RefVictim
{
    Pid pid = 0;
    std::uint64_t vpn = 0;
    std::uint64_t startFrame = 0;
    std::uint64_t bytes = 0;
    bool dirty = false;
};

struct RefFault
{
    std::uint64_t frame = 0;
    std::vector<RefVictim> victims;
    std::vector<Addr> probes;
};

struct RefPagerStats
{
    std::uint64_t faults = 0;
    std::uint64_t dirtyWritebacks = 0;
    std::uint64_t coldFills = 0;
    std::uint64_t victimsEvicted = 0;
};

/**
 * Functional page-store replica: uniform and per-pid policies, the
 * same capacity accounting, cold-fill and victim-selection order, and
 * the same table-probe synthesis (the probes feed HandlerTraces, so
 * they shape the overhead reference stream both models consume).
 * Holds its own InvertedPageTable instance — same insert/remove
 * sequence in, same probe addresses out.
 */
class RefPager
{
  public:
    explicit RefPager(const PageStoreParams &params)
        : prm(normalized(params))
    {
        std::uint64_t blocks = prm.baseSramBytes / prm.pageBytes;
        std::uint64_t bonus = blocks * prm.tagBytesPerBlock;
        std::uint64_t total_bytes =
            prm.baseSramBytes +
            alignDown(bonus, floorLog2(prm.pageBytes));
        nFrames = total_bytes / prm.pageBytes;

        tableVbase = prm.osVirtBase + prm.osFixedBytes;
        ipt = std::make_unique<InvertedPageTable>(nFrames, tableVbase);
        if (uniform()) {
            nOsFrames = divCeil(prm.osFixedBytes + ipt->tableBytes(),
                                prm.pageBytes);
            repl = std::make_unique<RefPageRepl>(
                prm.repl, nFrames, nOsFrames, prm.seed,
                prm.standbyPages);
        } else {
            std::uint64_t table_bytes =
                nFrames * 20 + (nFrames / 4) * 8;
            nOsFrames = divCeil(prm.osFixedBytes + table_bytes,
                                prm.pageBytes);
            frameStart.assign(nFrames, noFrame);
            refd.assign(nFrames, false);
            hand = nOsFrames;
        }
        dirty.assign(nFrames, false);
        nextFreeFrame = nOsFrames;
    }

    bool uniform() const { return prm.defaultPageBytes == 0; }
    std::uint64_t frameBytes() const { return prm.pageBytes; }

    std::uint64_t
    pageBytes(Pid pid) const
    {
        if (uniform())
            return prm.pageBytes;
        auto it = prm.pageBytesByPid.find(pid);
        return it == prm.pageBytesByPid.end() ? prm.defaultPageBytes
                                              : it->second;
    }

    std::uint64_t pageFrames(Pid pid) const
    {
        return pageBytes(pid) / prm.pageBytes;
    }

    bool
    lookup(Pid pid, std::uint64_t vpn, std::vector<Addr> &probes,
           std::uint64_t &frame_out) const
    {
        IptLookup walk;
        if (uniform()) {
            walk = ipt->lookup(pid, vpn, &probes);
        } else {
            probes.push_back(probeAddr(pid, vpn));
            probes.push_back(probeAddr(pid, vpn ^ 0x5555));
            walk = ipt->lookup(pid, vpn, nullptr);
        }
        frame_out = walk.frame;
        return walk.found;
    }

    void
    touch(std::uint64_t frame)
    {
        if (uniform()) {
            repl->touch(frame);
            return;
        }
        std::uint64_t start = frameStart[frame];
        if (start != noFrame)
            refd[start] = true;
    }

    void
    markDirty(std::uint64_t frame)
    {
        if (uniform()) {
            dirty[frame] = true;
            return;
        }
        std::uint64_t start = frameStart[frame];
        if (start != noFrame)
            dirty[start] = true;
    }

    RefFault
    handleFault(Pid pid, std::uint64_t vpn)
    {
        if (uniform())
            return handleFaultUniform(pid, vpn);
        return handleFaultPerPid(pid, vpn);
    }

    Addr
    physAddr(std::uint64_t frame, Addr offset) const
    {
        return frame * prm.pageBytes + offset;
    }

    Addr
    osPhysAddr(Addr os_vaddr) const
    {
        return os_vaddr - prm.osVirtBase;
    }

    const RefPagerStats &stats() const { return stat; }

  private:
    static PageStoreParams
    normalized(PageStoreParams params)
    {
        if (params.defaultPageBytes == 0 ||
            params.defaultPageBytes != params.pageBytes)
            return params;
        for (const auto &[pid, bytes] : params.pageBytesByPid) {
            (void)pid;
            if (bytes != params.pageBytes)
                return params;
        }
        params.defaultPageBytes = 0;
        params.pageBytesByPid.clear();
        return params;
    }

    Addr
    probeAddr(Pid pid, std::uint64_t vpn) const
    {
        std::uint64_t key =
            (static_cast<std::uint64_t>(pid) << 44) ^ vpn;
        std::uint64_t mix = key * 0x9e3779b97f4a7c15ull;
        mix ^= mix >> 31;
        std::uint64_t span = nFrames * 20;
        return tableVbase + (mix % span) / 20 * 20;
    }

    RefFault
    handleFaultUniform(Pid pid, std::uint64_t vpn)
    {
        RefFault result;
        ++stat.faults;
        ipt->lookup(pid, vpn, &result.probes);

        std::uint64_t frame;
        if (nextFreeFrame < nFrames) {
            frame = nextFreeFrame++;
            ++stat.coldFills;
        } else {
            frame = repl->pickVictim();
        }

        if (ipt->mapped(frame)) {
            RefVictim victim;
            victim.pid = ipt->framePid(frame);
            victim.vpn = ipt->frameVpn(frame);
            victim.startFrame = frame;
            victim.bytes = prm.pageBytes;
            victim.dirty = dirty[frame];
            if (dirty[frame])
                ++stat.dirtyWritebacks;
            result.probes.push_back(ipt->entryAddr(frame));
            ipt->remove(frame);
            result.victims.push_back(victim);
        }

        dirty[frame] = false;
        ipt->insert(frame, pid, vpn);
        repl->fill(frame);
        result.probes.push_back(ipt->entryAddr(frame));
        result.frame = frame;
        return result;
    }

    RefFault
    handleFaultPerPid(Pid pid, std::uint64_t vpn)
    {
        RefFault result;
        ++stat.faults;
        result.probes.push_back(probeAddr(pid, vpn));

        std::uint64_t k = pageFrames(pid);
        std::uint64_t start;

        std::uint64_t aligned_next = (nextFreeFrame + k - 1) / k * k;
        if (aligned_next + k <= nFrames) {
            start = aligned_next;
            nextFreeFrame = aligned_next + k;
        } else {
            std::uint64_t first_window = divCeil(nOsFrames, k) * k;
            if (first_window + k > nFrames)
                throw ConfigError(
                    "oracle: page size %llu too large for the "
                    "evictable SRAM",
                    static_cast<unsigned long long>(k * prm.pageBytes));
            if (hand < first_window || hand + k > nFrames)
                hand = first_window;
            hand = hand / k * k;

            std::uint64_t windows = (nFrames - first_window) / k;
            std::uint64_t chosen = first_window;
            bool found = false;
            for (std::uint64_t step = 0; step < 2 * windows + 1;
                 ++step) {
                std::uint64_t w = hand;
                hand += k;
                if (hand + k > nFrames)
                    hand = first_window;

                bool referenced = false;
                for (std::uint64_t f = w; f < w + k; ++f) {
                    std::uint64_t s = frameStart[f];
                    if (s != noFrame && refd[s])
                        referenced = true;
                }
                if (referenced) {
                    for (std::uint64_t f = w; f < w + k; ++f) {
                        std::uint64_t s = frameStart[f];
                        if (s != noFrame)
                            refd[s] = false;
                    }
                } else {
                    chosen = w;
                    found = true;
                    break;
                }
            }
            if (!found)
                throw InternalError(
                    "oracle: window clock found no victim window");
            evictWindow(chosen, k, result);
            start = chosen;
        }

        ipt->insert(start, pid, vpn);
        for (std::uint64_t f = start; f < start + k; ++f)
            frameStart[f] = start;
        dirty[start] = false;
        refd[start] = true;

        result.probes.push_back(probeAddr(pid, vpn));
        result.frame = start;
        return result;
    }

    void
    evictWindow(std::uint64_t start, std::uint64_t frames,
                RefFault &result)
    {
        for (std::uint64_t f = start; f < start + frames; ++f) {
            std::uint64_t s = frameStart[f];
            if (s == noFrame)
                continue;
            Pid vpid = ipt->framePid(s);
            std::uint64_t vvpn = ipt->frameVpn(s);
            std::uint64_t k = pageFrames(vpid);
            RefVictim victim;
            victim.pid = vpid;
            victim.vpn = vvpn;
            victim.startFrame = s;
            victim.bytes = k * prm.pageBytes;
            victim.dirty = dirty[s];
            result.victims.push_back(victim);
            result.probes.push_back(probeAddr(vpid, vvpn));
            if (dirty[s])
                ++stat.dirtyWritebacks;
            ++stat.victimsEvicted;
            for (std::uint64_t g = s; g < s + k; ++g)
                frameStart[g] = noFrame;
            ipt->remove(s);
            dirty[s] = false;
            refd[s] = false;
        }
    }

    static constexpr std::uint64_t noFrame = ~std::uint64_t{0};

    PageStoreParams prm;
    std::uint64_t nFrames;
    std::uint64_t nOsFrames;
    Addr tableVbase;
    std::unique_ptr<InvertedPageTable> ipt;
    std::unique_ptr<RefPageRepl> repl;
    std::vector<bool> dirty;
    std::uint64_t nextFreeFrame;
    std::vector<std::uint64_t> frameStart;
    std::vector<bool> refd;
    std::uint64_t hand = 0;
    RefPagerStats stat;
};

// ----------------------------------------- full paged-system replay

/** The functional counters both models must agree on. */
struct RefCounts
{
    std::uint64_t refs = 0;
    std::uint64_t traceRefs = 0;
    std::uint64_t overheadRefs = 0;
    std::uint64_t instrFetches = 0;
    std::uint64_t l1iMisses = 0;
    std::uint64_t l1dMisses = 0;
    std::uint64_t l1Writebacks = 0;
    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t tlbMisses = 0;
    std::uint64_t tlbMissOverheadRefs = 0;
    std::uint64_t faultOverheadRefs = 0;
    std::uint64_t inclusionProbes = 0;
    std::uint64_t inclusionWritebacks = 0;
    std::uint64_t contextSwitches = 0;
    std::uint64_t dramReads = 0;
    std::uint64_t dramWrites = 0;
};

enum class RefOverheadKind
{
    TlbMiss,
    PageFault,
    ContextSwitch,
};

/**
 * Functional replay of a RAMpage (paged, blocking) run: the same
 * reference stream through the replica components, mirroring the
 * engine's access sequencing exactly — translation, handler
 * interleaving, fault service, inclusion flushes, DRAM transaction
 * counting — minus every timing charge.
 */
class RefPagedSystem
{
  public:
    explicit RefPagedSystem(const PagedConfig &config)
        : cfg(config.common),
          l1i(cfg.l1SizeBytes, cfg.l1BlockBytes, cfg.l1Assoc,
              ReplPolicy::LRU, 101),
          l1d(cfg.l1SizeBytes, cfg.l1BlockBytes, cfg.l1Assoc,
              ReplPolicy::LRU, 102),
          tlb(cfg.tlb),
          pager(config.pager),
          handlers(cfg.handlerLayout, cfg.handlerCosts)
    {
    }

    void
    access(const MemRef &ref)
    {
        ++evt.refs;
        ++evt.traceRefs;

        Addr paddr;
        if (ref.pid == osPid) {
            paddr = pager.osPhysAddr(ref.vaddr);
        } else {
            // The engine's last-translation fast path
            // (core/access_engine.hh) only short-circuits a lookup
            // that would hit — same frame, same tlb.hits count — so
            // this replica deliberately models a plain lookup per
            // reference and the oracle comparison stays exact.
            unsigned page_bits = floorLog2(pager.pageBytes(ref.pid));
            std::uint64_t vpn = ref.vaddr >> page_bits;
            std::uint64_t frame = 0;
            if (!tlb.lookup(ref.pid, vpn, frame)) {
                ++evt.tlbMisses;
                probeScratch.clear();
                std::uint64_t walked = 0;
                bool resident =
                    pager.lookup(ref.pid, vpn, probeScratch, walked);
                handlerScratch.clear();
                handlers.tlbMiss(handlerScratch, probeScratch);
                runHandlerRefs(RefOverheadKind::TlbMiss);

                frame = resident ? walked
                                 : servicePageFault(ref.pid, vpn);
                tlb.insert(ref.pid, vpn, frame);
            }
            pager.touch(frame); // framePhysAddr touches before use
            paddr = pager.physAddr(frame,
                                   lowBits(ref.vaddr, page_bits));
        }
        cachedAccess(ref.isInstr(), ref.isWrite(), paddr);
    }

    void
    runContextSwitchTrace()
    {
        handlerScratch.clear();
        handlers.contextSwitch(handlerScratch);
        ++evt.contextSwitches;
        runHandlerRefs(RefOverheadKind::ContextSwitch);
    }

    const RefCounts &counts() const { return evt; }
    const RefCacheStats &l1iStats() const { return l1i.stats(); }
    const RefCacheStats &l1dStats() const { return l1d.stats(); }
    const RefTlbStats &tlbStats() const { return tlb.stats(); }
    const RefPagerStats &pagerStats() const { return pager.stats(); }

  private:
    void
    cachedAccess(bool is_fetch, bool is_write, Addr paddr)
    {
        if (is_fetch)
            ++evt.instrFetches;
        RefCache &l1 = is_fetch ? l1i : l1d;
        RefCache::AccessResult res =
            l1.access(paddr, is_write && !is_fetch);
        if (!res.hit) {
            if (is_fetch)
                ++evt.l1iMisses;
            else
                ++evt.l1dMisses;
            if (res.victimValid && res.victimDirty) {
                ++evt.l1Writebacks;
                // writebackBelow: the victim drains into its SRAM page
                std::uint64_t frame =
                    res.victimAddr / pager.frameBytes();
                pager.markDirty(frame);
                pager.touch(frame);
            }
            // fillFromBelow
            ++evt.l2Accesses;
            pager.touch(paddr / pager.frameBytes());
        }
    }

    bool
    invalidateL1Range(Addr base, std::uint64_t bytes)
    {
        bool flushed_dirty = false;
        for (Addr block = base; block < base + bytes;
             block += cfg.l1BlockBytes) {
            evt.inclusionProbes += 2;
            l1i.invalidate(block);
            auto inv = l1d.invalidate(block);
            if (inv.present && inv.dirty) {
                ++evt.inclusionWritebacks;
                flushed_dirty = true;
            }
        }
        return flushed_dirty;
    }

    void
    runHandlerRefs(RefOverheadKind kind)
    {
        // handlerScratch is consumed in place; servicePageFault (the
        // only caller that could recurse) rebuilds it per call, and
        // the engine's scratch is clobbered the same way.
        std::vector<MemRef> refs;
        refs.swap(handlerScratch);
        for (const MemRef &ref : refs) {
            ++evt.refs;
            ++evt.overheadRefs;
            switch (kind) {
              case RefOverheadKind::TlbMiss:
                ++evt.tlbMissOverheadRefs;
                break;
              case RefOverheadKind::PageFault:
                ++evt.faultOverheadRefs;
                break;
              case RefOverheadKind::ContextSwitch:
                break;
            }
            cachedAccess(ref.isInstr(), ref.isWrite(),
                         pager.osPhysAddr(ref.vaddr));
        }
    }

    std::uint64_t
    servicePageFault(Pid pid, std::uint64_t vpn)
    {
        ++evt.l2Misses;
        RefFault fault = pager.handleFault(pid, vpn);

        handlerScratch.clear();
        handlers.pageFault(handlerScratch, fault.probes);
        runHandlerRefs(RefOverheadKind::PageFault);

        bool paired = pager.uniform();
        bool write_victim = false;
        for (const RefVictim &victim : fault.victims) {
            tlb.invalidate(victim.pid, victim.vpn);
            Addr victim_base = victim.startFrame * pager.frameBytes();
            bool dirty = victim.dirty;
            dirty |= invalidateL1Range(victim_base, victim.bytes);
            if (paired)
                write_victim |= dirty;
            else if (dirty)
                ++evt.dramWrites;
        }

        // The engine's DramDirectory allocation has no counter side
        // effects, so the replay skips it.
        if (paired && write_victim) {
            ++evt.dramWrites;
            ++evt.dramReads;
        } else {
            ++evt.dramReads;
        }
        return fault.frame;
    }

    CommonConfig cfg;
    RefCache l1i;
    RefCache l1d;
    RefTlb tlb;
    RefPager pager;
    HandlerTraces handlers;
    RefCounts evt;
    std::vector<MemRef> handlerScratch;
    std::vector<Addr> probeScratch;
};

// ----------------------------------------------- replayed driver loop

MemRef
pullRef(std::vector<std::unique_ptr<TraceSource>> &sources,
        std::size_t index)
{
    MemRef ref;
    if (!sources[index]->next(ref)) {
        sources[index]->reset();
        if (!sources[index]->next(ref))
            throw InternalError(
                "oracle: trace source '%s' empty after reset",
                sources[index]->name().c_str());
    }
    return ref;
}

/** Replay of Simulator::runBlocking()'s scheduling skeleton. */
template <typename PerRef>
void
replayBlocking(const FuzzPoint &point, const PerRef &per_ref,
               const std::function<void()> &on_switch)
{
    auto sources = makeWorkload(point.workloadSalt);
    std::size_t current = 0;
    std::uint64_t in_slice = 0;
    for (std::uint64_t executed = 0; executed < point.sim.maxRefs;
         ++executed) {
        if (in_slice == 0 && point.sim.insertSwitchTrace)
            on_switch();
        per_ref(pullRef(sources, current));
        if (++in_slice >= point.sim.quantumRefs) {
            in_slice = 0;
            current = (current + 1) % sources.size();
        }
    }
}

// --------------------------------------------------- snapshot access

/** Fetch a counter; records a mismatch when absent or not a counter. */
bool
getCounter(const StatsSnapshot &stats, const std::string &name,
           std::uint64_t &out, std::vector<std::string> &mismatches)
{
    const StatsSnapshot::Entry *entry = stats.find(name);
    if (!entry || entry->kind != StatsSnapshot::Kind::Counter) {
        mismatches.push_back(formatErrorMessage(
            "counter '%s' missing from the engine snapshot",
            name.c_str()));
        return false;
    }
    out = entry->counter;
    return true;
}

void
expectCounter(const StatsSnapshot &stats, const std::string &name,
              std::uint64_t expected,
              std::vector<std::string> &mismatches)
{
    std::uint64_t got = 0;
    if (!getCounter(stats, name, got, mismatches))
        return;
    if (got != expected)
        mismatches.push_back(formatErrorMessage(
            "%s: engine %llu, oracle %llu", name.c_str(),
            static_cast<unsigned long long>(got),
            static_cast<unsigned long long>(expected)));
}

/** Check `lhs_name == sum of rhs` as an accounting identity. */
void
expectIdentity(const StatsSnapshot &stats, const std::string &label,
               const std::vector<std::string> &lhs,
               const std::vector<std::string> &rhs,
               std::vector<std::string> &mismatches)
{
    std::uint64_t left = 0, right = 0;
    for (const std::string &name : lhs) {
        std::uint64_t v = 0;
        if (!getCounter(stats, name, v, mismatches))
            return;
        left += v;
    }
    for (const std::string &name : rhs) {
        std::uint64_t v = 0;
        if (!getCounter(stats, name, v, mismatches))
            return;
        right += v;
    }
    if (left != right)
        mismatches.push_back(formatErrorMessage(
            "identity '%s' violated: %llu != %llu", label.c_str(),
            static_cast<unsigned long long>(left),
            static_cast<unsigned long long>(right)));
}

// ------------------------------------------------------ mode drivers

void
checkPagedFullReplay(const FuzzPoint &point, const StatsSnapshot &stats,
                     std::vector<std::string> &mismatches)
{
    RefPagedSystem sys(point.hier.paged);
    replayBlocking(
        point, [&](const MemRef &ref) { sys.access(ref); },
        [&] { sys.runContextSwitchTrace(); });

    const RefCounts &evt = sys.counts();
    expectCounter(stats, "sim.refs", evt.refs, mismatches);
    expectCounter(stats, "sim.trace_refs", evt.traceRefs, mismatches);
    expectCounter(stats, "sim.overhead_refs", evt.overheadRefs,
                  mismatches);
    expectCounter(stats, "sim.instr_fetches", evt.instrFetches,
                  mismatches);
    expectCounter(stats, "sim.l1i_misses", evt.l1iMisses, mismatches);
    expectCounter(stats, "sim.l1d_misses", evt.l1dMisses, mismatches);
    expectCounter(stats, "sim.l1_writebacks", evt.l1Writebacks,
                  mismatches);
    expectCounter(stats, "sim.l2_accesses", evt.l2Accesses, mismatches);
    expectCounter(stats, "sim.l2_misses", evt.l2Misses, mismatches);
    expectCounter(stats, "sim.tlb_misses", evt.tlbMisses, mismatches);
    expectCounter(stats, "sim.tlb_miss_overhead_refs",
                  evt.tlbMissOverheadRefs, mismatches);
    expectCounter(stats, "sim.fault_overhead_refs",
                  evt.faultOverheadRefs, mismatches);
    expectCounter(stats, "sim.inclusion_probes", evt.inclusionProbes,
                  mismatches);
    expectCounter(stats, "sim.inclusion_writebacks",
                  evt.inclusionWritebacks, mismatches);
    expectCounter(stats, "sim.context_switches", evt.contextSwitches,
                  mismatches);
    expectCounter(stats, "sim.victim_cache_hits", 0, mismatches);
    expectCounter(stats, "dram.reads", evt.dramReads, mismatches);
    expectCounter(stats, "dram.writes", evt.dramWrites, mismatches);

    auto check_cache = [&](const char *prefix,
                           const RefCacheStats &c) {
        std::string p(prefix);
        expectCounter(stats, p + ".hits", c.hits, mismatches);
        expectCounter(stats, p + ".misses", c.misses, mismatches);
        expectCounter(stats, p + ".evictions", c.evictions,
                      mismatches);
        expectCounter(stats, p + ".dirty_evictions", c.dirtyEvictions,
                      mismatches);
        expectCounter(stats, p + ".invalidations", c.invalidations,
                      mismatches);
    };
    check_cache("l1i", sys.l1iStats());
    check_cache("l1d", sys.l1dStats());

    expectCounter(stats, "tlb.hits", sys.tlbStats().hits, mismatches);
    expectCounter(stats, "tlb.misses", sys.tlbStats().misses,
                  mismatches);
    expectCounter(stats, "tlb.flushes", sys.tlbStats().flushes,
                  mismatches);

    const RefPagerStats &pg = sys.pagerStats();
    expectCounter(stats, "pager.faults", pg.faults, mismatches);
    expectCounter(stats, "pager.dirty_writebacks", pg.dirtyWritebacks,
                  mismatches);
    // The two page-size policies register different extra counters.
    RefPager probe(point.hier.paged.pager);
    if (probe.uniform())
        expectCounter(stats, "pager.cold_fills", pg.coldFills,
                      mismatches);
    else
        expectCounter(stats, "pager.victims_evicted",
                      pg.victimsEvicted, mismatches);
}

void
checkConventionalTlbReplay(const FuzzPoint &point,
                           const StatsSnapshot &stats,
                           std::vector<std::string> &mismatches)
{
    const CommonConfig &cfg = point.hier.conventional.common;
    const HandlerCosts &costs = cfg.handlerCosts;
    unsigned page_bits = floorLog2(cfg.dramPageBytes);

    // Exact TLB replay: conventional translation is fault-free, the
    // walk costs a fixed two directory probes, and OS handler refs
    // bypass the TLB — so the TLB stream depends only on the workload
    // interleaving, which the blocking scheduler replays verbatim.
    RefTlb tlb(cfg.tlb);
    std::uint64_t trace_ifetches = 0;
    replayBlocking(
        point,
        [&](const MemRef &ref) {
            if (ref.isInstr())
                ++trace_ifetches;
            std::uint64_t vpn = ref.vaddr >> page_bits;
            std::uint64_t frame = 0;
            if (!tlb.lookup(ref.pid, vpn, frame))
                tlb.insert(ref.pid, vpn, 0); // frame value irrelevant
        },
        [] {});

    std::uint64_t misses = tlb.stats().misses;
    std::uint64_t switches =
        point.sim.insertSwitchTrace
            ? divCeil(point.sim.maxRefs, point.sim.quantumRefs)
            : 0;
    std::uint64_t switch_len =
        costs.contextSwitchInstrs + costs.contextSwitchData;

    expectCounter(stats, "tlb.hits", tlb.stats().hits, mismatches);
    expectCounter(stats, "tlb.misses", misses, mismatches);
    expectCounter(stats, "tlb.flushes", 0, mismatches);
    expectCounter(stats, "sim.tlb_misses", misses, mismatches);
    expectCounter(stats, "sim.trace_refs", point.sim.maxRefs,
                  mismatches);
    expectCounter(stats, "sim.context_switches", switches, mismatches);
    // TLB-miss handler: body instructions plus two directory probes.
    expectCounter(stats, "sim.tlb_miss_overhead_refs",
                  (costs.tlbMissInstrs + 2) * misses, mismatches);
    expectCounter(stats, "sim.fault_overhead_refs", 0, mismatches);
    expectCounter(stats, "sim.overhead_refs",
                  (costs.tlbMissInstrs + 2) * misses +
                      switch_len * switches,
                  mismatches);
    expectCounter(stats, "sim.refs",
                  point.sim.maxRefs + (costs.tlbMissInstrs + 2) * misses +
                      switch_len * switches,
                  mismatches);
    expectCounter(stats, "sim.instr_fetches",
                  trace_ifetches + costs.tlbMissInstrs * misses +
                      costs.contextSwitchInstrs * switches,
                  mismatches);

    // Cache counters ride on DRAM frame placement the oracle does not
    // model; hold them to the conservation identities instead.
    expectIdentity(stats, "l1i accesses", {"l1i.hits", "l1i.misses"},
                   {"sim.instr_fetches"}, mismatches);
    std::uint64_t refs = 0, fetches = 0;
    if (getCounter(stats, "sim.refs", refs, mismatches) &&
        getCounter(stats, "sim.instr_fetches", fetches, mismatches)) {
        std::uint64_t l1d_hits = 0, l1d_misses = 0;
        if (getCounter(stats, "l1d.hits", l1d_hits, mismatches) &&
            getCounter(stats, "l1d.misses", l1d_misses, mismatches) &&
            l1d_hits + l1d_misses != refs - fetches)
            mismatches.push_back(formatErrorMessage(
                "identity 'l1d accesses' violated: %llu != %llu",
                static_cast<unsigned long long>(l1d_hits + l1d_misses),
                static_cast<unsigned long long>(refs - fetches)));
    }
    expectIdentity(stats, "evt l1i misses", {"sim.l1i_misses"},
                   {"l1i.misses"}, mismatches);
    expectIdentity(stats, "evt l1d misses", {"sim.l1d_misses"},
                   {"l1d.misses"}, mismatches);
    expectIdentity(stats, "L2 accesses",
                   {"sim.l2_accesses"},
                   {"sim.l1i_misses", "sim.l1d_misses"}, mismatches);
    expectIdentity(stats, "L1 writebacks", {"sim.l1_writebacks"},
                   {"l1i.dirty_evictions", "l1d.dirty_evictions"},
                   mismatches);
    if (point.hier.conventional.l2Style ==
        ConventionalConfig::L2Style::SetAssoc) {
        expectIdentity(stats, "L2 conservation",
                       {"l2.hits", "l2.misses"}, {"sim.l2_accesses"},
                       mismatches);
        expectIdentity(stats, "L2 miss agreement", {"sim.l2_misses"},
                       {"l2.misses"}, mismatches);
    } else {
        expectIdentity(stats, "column L2 conservation",
                       {"l2.first_hits", "l2.rehash_hits",
                        "l2.misses"},
                       {"sim.l2_accesses"}, mismatches);
        expectIdentity(stats, "L2 miss agreement", {"sim.l2_misses"},
                       {"l2.misses"}, mismatches);
    }
    // Every L2 miss reads DRAM unless the victim cache intercepted it.
    expectIdentity(stats, "DRAM read sourcing",
                   {"dram.reads", "sim.victim_cache_hits"},
                   {"sim.l2_misses"}, mismatches);
}

void
checkPagedIdentities(const FuzzPoint &point, const StatsSnapshot &stats,
                     std::vector<std::string> &mismatches)
{
    expectCounter(stats, "sim.trace_refs", point.sim.maxRefs,
                  mismatches);
    expectIdentity(stats, "ref conservation", {"sim.refs"},
                   {"sim.trace_refs", "sim.overhead_refs"}, mismatches);
    expectIdentity(stats, "TLB lookups",
                   {"tlb.hits", "tlb.misses"}, {"sim.trace_refs"},
                   mismatches);
    expectIdentity(stats, "TLB miss agreement", {"sim.tlb_misses"},
                   {"tlb.misses"}, mismatches);
    expectIdentity(stats, "evt l1i misses", {"sim.l1i_misses"},
                   {"l1i.misses"}, mismatches);
    expectIdentity(stats, "evt l1d misses", {"sim.l1d_misses"},
                   {"l1d.misses"}, mismatches);
    expectIdentity(stats, "L1i accesses", {"l1i.hits", "l1i.misses"},
                   {"sim.instr_fetches"}, mismatches);
    expectIdentity(stats, "L2 accesses", {"sim.l2_accesses"},
                   {"sim.l1i_misses", "sim.l1d_misses"}, mismatches);
    expectIdentity(stats, "L1 writebacks", {"sim.l1_writebacks"},
                   {"l1i.dirty_evictions", "l1d.dirty_evictions"},
                   mismatches);
    expectIdentity(stats, "fault agreement", {"pager.faults"},
                   {"sim.l2_misses"}, mismatches);
    // Every fault streams exactly one page in from DRAM (paired or
    // not), and RAMpage has no victim cache.
    expectIdentity(stats, "DRAM reads", {"dram.reads"},
                   {"pager.faults"}, mismatches);
    expectCounter(stats, "sim.victim_cache_hits", 0, mismatches);
    // Writes: at most one per fault (uniform pairing) and at least
    // one per pager-recorded dirty writeback... not exactly — the
    // inclusion flush can dirty an otherwise-clean victim, so only a
    // bound holds.
    std::uint64_t writes = 0, faults = 0;
    if (getCounter(stats, "dram.writes", writes, mismatches) &&
        getCounter(stats, "pager.faults", faults, mismatches)) {
        std::uint64_t per_fault_max =
            point.hier.paged.pager.defaultPageBytes == 0
                ? 1
                : std::numeric_limits<std::uint64_t>::max();
        if (per_fault_max == 1 && writes > faults)
            mismatches.push_back(formatErrorMessage(
                "dram.writes %llu exceeds one per fault (%llu faults)",
                static_cast<unsigned long long>(writes),
                static_cast<unsigned long long>(faults)));
    }
}

} // namespace

const char *
oracleModeName(OracleReport::Mode mode)
{
    switch (mode) {
      case OracleReport::Mode::FullReplay:
        return "full-replay";
      case OracleReport::Mode::TlbReplay:
        return "tlb-replay";
      case OracleReport::Mode::Identities:
        return "identities";
    }
    return "?";
}

OracleReport
crossCheckOracle(const FuzzPoint &point, const StatsSnapshot &stats)
{
    OracleReport report;
    if (point.hier.family == HierarchyConfig::Family::Conventional) {
        report.mode = OracleReport::Mode::TlbReplay;
        checkConventionalTlbReplay(point, stats, report.mismatches);
    } else if (point.hier.paged.switchOnMiss) {
        report.mode = OracleReport::Mode::Identities;
        checkPagedIdentities(point, stats, report.mismatches);
    } else {
        report.mode = OracleReport::Mode::FullReplay;
        checkPagedFullReplay(point, stats, report.mismatches);
    }
    return report;
}

} // namespace rampage
