/**
 * @file
 * Fuzz-point repro artifacts: one self-contained JSON document that
 * pins everything a differential-fuzzing run needs to be replayed
 * bit-for-bit — the full HierarchyConfig (family tag plus every
 * generator-varied field), the SimConfig scale, the workload seed
 * salt and an optional model-fault spec.
 *
 * The codec is the contract between the fuzzer and the regression
 * corpus under tests/corpus/: a shrunk failure is saved with
 * fuzzPointToJson(), committed, and replayed forever after by
 * `rampage_fuzz --fuzz-replay <file>` (and by ctest over the corpus
 * directory).  Loading is strict — unknown families, non-power-of-two
 * nonsense and missing keys all throw ConfigError, never crash —
 * because corpus files are also an attack surface the fuzzer itself
 * feeds back in.
 */

#ifndef RAMPAGE_CHECK_REPRO_HH
#define RAMPAGE_CHECK_REPRO_HH

#include <cstdint>
#include <string>

#include "core/factory.hh"
#include "core/simulator.hh"

namespace rampage
{

/** One fuzzable design point: everything a replay needs. */
struct FuzzPoint
{
    HierarchyConfig hier{};
    /** Only the scale/determinism fields are meaningful here; audit
     *  level and observability are chosen per property at run time. */
    SimConfig sim{};
    /** Seed salt for makeWorkload() — pins the reference stream. */
    std::uint64_t workloadSalt = 0;
    /** Model-fault spec "kind[:seed]" ("" = none) applied on replay. */
    std::string faultSpec;

    // --- provenance (informational, round-tripped verbatim) ----------
    std::uint64_t generatorSeed = 0;
    std::uint64_t pointIndex = 0;
    /** Why this point was saved (the failing property's message). */
    std::string note;
};

/** Serialize a point as a pretty-printed JSON document. */
std::string fuzzPointToJson(const FuzzPoint &point);

/**
 * Rebuild a point from fuzzPointToJson() output.
 * @throws ConfigError on malformed or unknown-schema input.
 */
FuzzPoint fuzzPointFromJson(const std::string &text);

/** Load a point from a JSON file (ConfigError on I/O or parse). */
FuzzPoint loadFuzzPoint(const std::string &path);

/** Write a point to a JSON file (IoError semantics via ConfigError). */
void saveFuzzPoint(const FuzzPoint &point, const std::string &path);

} // namespace rampage

#endif // RAMPAGE_CHECK_REPRO_HH
