/**
 * @file
 * Greedy automatic shrinking of failing fuzz points.
 *
 * Given a design point whose property suite fails, shrinkPoint()
 * repeatedly applies size-reducing transforms — halve the reference
 * budget and quantum, halve cache/SRAM/TLB geometry, drop per-pid
 * page-size entries, collapse policies to their simplest form
 * (direct-mapped, clock, set-assoc, no victim cache, blocking
 * faults), zero the workload salt — keeping a transform only when the
 * transformed point (a) still validates and (b) still fails the same
 * property suite.  The loop restarts after every accepted transform
 * and stops at a fixpoint or when the evaluation budget runs out, so
 * the result is locally minimal: no single transform can shrink it
 * further while preserving the failure.
 *
 * The minimized point serializes to a small JSON repro
 * (check/repro.hh) replayable with `rampage_fuzz --fuzz-replay`, and
 * committed repros under tests/corpus/ become regression tests.
 */

#ifndef RAMPAGE_CHECK_SHRINK_HH
#define RAMPAGE_CHECK_SHRINK_HH

#include <string>

#include "check/properties.hh"
#include "check/repro.hh"

namespace rampage
{

/** Shrinking knobs. */
struct ShrinkOptions
{
    /** Property-suite evaluations allowed (each is a full re-check). */
    unsigned maxEvaluations = 200;
    /** Which properties constitute the failure predicate. */
    PropertyOptions properties{};
};

/** What shrinking produced. */
struct ShrinkResult
{
    FuzzPoint point;          ///< the minimized failing point
    unsigned evaluations = 0; ///< property-suite runs spent
    unsigned accepted = 0;    ///< transforms that kept the failure
    std::string failure;      ///< the minimized point's failure summary
};

/**
 * Minimize `failing` while its property suite keeps failing.  If the
 * input point unexpectedly passes, it is returned unshrunk with an
 * empty `failure`.
 */
ShrinkResult shrinkPoint(const FuzzPoint &failing,
                         const ShrinkOptions &options = {});

} // namespace rampage

#endif // RAMPAGE_CHECK_SHRINK_HH
