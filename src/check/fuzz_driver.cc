#include "check/fuzz_driver.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include <dirent.h>
#include <errno.h>
#include <sys/stat.h>
#include <sys/types.h>

#include "check/shrink.hh"
#include "core/audit.hh"
#include "core/factory.hh"
#include "core/simulator.hh"
#include "core/sweep.hh"
#include "trace/benchmarks.hh"
#include "util/error.hh"

namespace rampage
{

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/**
 * Hostile-mutation probe: corrupt one field of a valid configuration
 * and require validation to either accept it or reject it with
 * ConfigError.  Any other escape is a validation bug.
 * @return a finding description, or "" when the contract held.
 */
std::string
hostileProbe(Rng &rng, const FuzzPoint &point)
{
    HierarchyConfig corrupted = point.hier;
    std::string mutation = mutateHostile(rng, corrupted);
    try {
        validateHierarchyConfig(corrupted);
        return ""; // still valid: acceptable
    } catch (const ConfigError &) {
        return ""; // rejected with the right category
    } catch (const SimError &err) {
        return formatErrorMessage(
            "validation bug: mutation '%s' escaped with %s error "
            "instead of ConfigError: %s",
            mutation.c_str(), errorCategoryName(err.category()),
            err.what());
    } catch (const std::exception &err) {
        return formatErrorMessage(
            "validation bug: mutation '%s' escaped with untyped "
            "exception: %s",
            mutation.c_str(), err.what());
    }
}

// ------------------------- canonical points for detector coverage

CommonConfig
coverageCommon()
{
    CommonConfig c{};
    c.issueHz = 1'000'000'000;
    c.l1BlockBytes = 32;
    c.l1SizeBytes = 1024;
    c.l1Assoc = 2;
    c.tlb.entries = 16;
    c.tlb.assoc = 0;
    c.tlb.lruReplacement = false;
    c.dramPageBytes = 4096;
    return c;
}

FuzzPoint
coveragePoint(HierarchyConfig hier)
{
    FuzzPoint point;
    point.hier = std::move(hier);
    // Small run with several quantum boundaries: the injector fires
    // at the first boundary, the later audits (or the oracle replay)
    // see the corruption.
    point.sim.maxRefs = 6000;
    point.sim.quantumRefs = 1500;
    point.sim.insertSwitchTrace = true;
    point.sim.watchdogRefBudget =
        point.sim.maxRefs * 20 + 10'000'000;
    return point;
}

FuzzPoint
coveragePagedUniform(bool switch_on_miss)
{
    PagedConfig pc{};
    pc.common = coverageCommon();
    pc.pager.pageBytes = 512;
    pc.pager.baseSramBytes = 64 * 1024;
    pc.pager.tagBytesPerBlock = 0;
    pc.pager.repl = PageReplKind::Clock;
    pc.switchOnMiss = switch_on_miss;
    return coveragePoint(HierarchyConfig(pc));
}

FuzzPoint
coveragePagedPerPid()
{
    PagedConfig pc{};
    pc.common = coverageCommon();
    pc.pager.pageBytes = 512;
    pc.pager.baseSramBytes = 64 * 1024;
    pc.pager.tagBytesPerBlock = 0;
    pc.pager.defaultPageBytes = 1024;
    pc.pager.pageBytesByPid[2] = 2048;
    pc.pager.pageBytesByPid[5] = 512;
    return coveragePoint(HierarchyConfig(pc));
}

FuzzPoint
coverageConventional()
{
    ConventionalConfig cc{};
    cc.common = coverageCommon();
    cc.l2BlockBytes = 64;
    cc.l2SizeBytes = 32 * 1024;
    cc.l2Assoc = 2;
    cc.l2Style = ConventionalConfig::L2Style::SetAssoc;
    cc.l2Repl = ReplPolicy::LRU;
    cc.victimEntries = 0;
    return coveragePoint(HierarchyConfig(cc));
}

/** The config family each fault kind can corrupt. */
FuzzPoint
coveragePointFor(ModelFault kind)
{
    switch (kind) {
      case ModelFault::L2TagFlip:
      case ModelFault::DirAlias:
        return coverageConventional();
      case ModelFault::VarOwnerDrop:
        return coveragePagedPerPid();
      case ModelFault::SchedBlock:
        return coveragePagedUniform(true);
      default:
        return coveragePagedUniform(false);
    }
}

} // namespace

void
ensureDirectories(const std::string &path)
{
    std::string prefix;
    for (std::size_t i = 0; i <= path.size(); ++i) {
        if (i < path.size() && path[i] != '/')
            continue;
        prefix = path.substr(0, i);
        if (prefix.empty() || prefix == ".")
            continue;
        if (mkdir(prefix.c_str(), 0777) != 0 && errno != EEXIST)
            throw IoError("cannot create directory '%s': %s",
                          prefix.c_str(), strerror(errno));
    }
    if (!path.empty() && path.back() != '/') {
        if (mkdir(path.c_str(), 0777) != 0 && errno != EEXIST)
            throw IoError("cannot create directory '%s': %s",
                          path.c_str(), strerror(errno));
    }
}

FuzzCampaignResult
runFuzzCampaign(const FuzzOptions &options)
{
    FuzzCampaignResult result;
    auto start = std::chrono::steady_clock::now();

    if (!options.corpusDir.empty()) {
        int failing = replayReproDir(options.corpusDir,
                                     options.verbose);
        // Count is informational here; each failing repro already
        // registered a finding line via replayReproDir's return.
        if (failing > 0)
            result.findings.push_back(formatErrorMessage(
                "%d committed repro(s) under '%s' still fail",
                failing, options.corpusDir.c_str()));
        result.corpusReplayed = 1;
    }

    std::uint64_t target = options.points;
    if (target == 0 && options.budgetSeconds <= 0)
        target = 25;

    Rng rng(options.seed);
    for (std::uint64_t index = 0;; ++index) {
        if (target != 0 && result.pointsRun >= target)
            break;
        if (options.budgetSeconds > 0 &&
            secondsSince(start) >= options.budgetSeconds)
            break;

        FuzzPoint point =
            generatePoint(rng, options.seed, index, &result.gen);
        point.faultSpec = options.faultSpec;

        if (options.hostileEvery != 0 &&
            index % options.hostileEvery == 0) {
            ++result.hostileProbes;
            std::string finding = hostileProbe(rng, point);
            if (!finding.empty())
                result.findings.push_back(finding);
        }

        PropertyReport report = checkPoint(point);
        ++result.pointsRun;
        if (options.verbose)
            std::printf("fuzz: point %llu [%s] %s\n",
                        static_cast<unsigned long long>(index),
                        oracleModeName(report.oracleMode),
                        report.ok() ? "ok" : "FAIL");

        if (report.ok())
            continue;

        ShrinkOptions shrink_options;
        shrink_options.maxEvaluations = options.shrinkEvaluations;
        ShrinkResult shrunk = shrinkPoint(point, shrink_options);

        ensureDirectories(options.outDir);
        std::string path = formatErrorMessage(
            "%s/repro_seed%llu_point%llu.json",
            options.outDir.c_str(),
            static_cast<unsigned long long>(options.seed),
            static_cast<unsigned long long>(index));
        saveFuzzPoint(shrunk.point, path);
        result.reproPaths.push_back(path);
        result.findings.push_back(formatErrorMessage(
            "point %llu failed (%u shrink steps kept the failure, "
            "repro %s):\n%s",
            static_cast<unsigned long long>(index), shrunk.accepted,
            path.c_str(), shrunk.failure.c_str()));
    }
    return result;
}

int
replayRepro(const std::string &path, bool verbose)
{
    FuzzPoint point = loadFuzzPoint(path);
    PropertyReport report = checkPoint(point);
    if (verbose)
        std::printf("replay: %s [%s] %s\n", path.c_str(),
                    oracleModeName(report.oracleMode),
                    report.ok() ? "ok" : "FAIL");
    if (!report.ok() && verbose)
        std::printf("%s\n", report.summary().c_str());
    return report.ok() ? 0 : 1;
}

int
replayReproDir(const std::string &dir, bool verbose)
{
    DIR *handle = opendir(dir.c_str());
    if (handle == nullptr)
        throw IoError("cannot open repro directory '%s': %s",
                      dir.c_str(), strerror(errno));
    std::vector<std::string> files;
    while (const dirent *entry = readdir(handle)) {
        std::string name = entry->d_name;
        if (name.size() > 5 &&
            name.compare(name.size() - 5, 5, ".json") == 0)
            files.push_back(dir + "/" + name);
    }
    closedir(handle);
    std::sort(files.begin(), files.end());

    int failing = 0;
    for (const std::string &file : files)
        failing += replayRepro(file, verbose);
    if (verbose)
        std::printf("replay: %zu repro(s), %d failing\n",
                    files.size(), failing);
    return failing;
}

std::vector<CoverageOutcome>
runDetectorCoverage(bool verbose)
{
    constexpr ModelFault kinds[] = {
        ModelFault::L1TagFlip,   ModelFault::L2TagFlip,
        ModelFault::TlbFrameXor, ModelFault::IptUnlink,
        ModelFault::StaleDirty,  ModelFault::LeakFrame,
        ModelFault::DirAlias,    ModelFault::VarOwnerDrop,
        ModelFault::SchedBlock,  ModelFault::SkewCycles,
        ModelFault::TransCacheStale,
        ModelFault::StalePrivateCopy,
    };

    std::vector<CoverageOutcome> outcomes;
    for (ModelFault kind : kinds) {
        CoverageOutcome outcome;
        outcome.kind = kind;
        FuzzPoint point = coveragePointFor(kind);
        point.faultSpec = modelFaultName(kind);

        // Detector 1: audits on the injected run.  Paranoid level
        // (auditing after every miss that reached the L2/SRAM) so a
        // transient corruption is examined before natural eviction
        // or remapping repairs it.
        SimConfig audited = point.sim;
        audited.auditLevel = AuditLevel::Paranoid;
        audited.faultPlan = point.faultSpec;
        try {
            simulateSystem(point.hier, audited);
            outcome.detail = "audits ran clean; ";
        } catch (const AuditError &err) {
            outcome.auditCaught = true;
            outcome.detail = formatErrorMessage(
                "audit caught '%s'; ", err.firstInvariant().c_str());
        } catch (const SimError &err) {
            outcome.detail = formatErrorMessage(
                "audited run raised %s error; ",
                errorCategoryName(err.category()));
        }

        // Detector 1b: direct injection plus an immediate audit.  The
        // transient kinds (cache tag flips, stale dirty bits) self-heal
        // — natural eviction or frame remapping repairs the corrupted
        // entry before the next scheduled audit examines it — so the
        // in-run detector above can legitimately stay clean.  Auditing
        // the corrupted state directly, the way a crash-dump checker
        // would, is the honest detection tier for them.
        if (!outcome.auditCaught) {
            try {
                std::unique_ptr<Hierarchy> hier =
                    makeHierarchy(point.hier);
                SimConfig warm = point.sim;
                if (point.hier.family ==
                    HierarchyConfig::Family::Paged)
                    warm.switchOnMiss =
                        point.hier.paged.switchOnMiss;
                Simulator(*hier, makeWorkload(point.workloadSalt),
                          warm)
                    .run();
                FaultInjector injector(
                    parseFaultPlan(point.faultSpec));
                if (injector.apply(*hier)) {
                    Auditor auditor(AuditLevel::Boundaries);
                    auditor.auditHierarchy(*hier,
                                           "detector coverage");
                    outcome.detail += "post-injection audit ran "
                                      "clean; ";
                } else {
                    outcome.detail +=
                        "fault inapplicable to warm state; ";
                }
            } catch (const AuditError &err) {
                outcome.auditCaught = true;
                outcome.detail += formatErrorMessage(
                    "post-injection audit caught '%s'; ",
                    err.firstInvariant().c_str());
            } catch (const SimError &err) {
                outcome.detail += formatErrorMessage(
                    "post-injection tier raised %s error; ",
                    errorCategoryName(err.category()));
            }
        }

        // Detector 2: the differential oracle, audits off.  Restrict
        // the suite to the oracle so a detection is attributable.
        PropertyOptions oracle_only;
        oracle_only.determinism = false;
        oracle_only.degeneracy = false;
        oracle_only.sweepHarness = false;
        oracle_only.audit = false;
        oracle_only.observability = false;
        PropertyReport report = checkPoint(point, oracle_only);
        if (!report.ok()) {
            outcome.oracleCaught = true;
            outcome.detail += "oracle flagged the run";
        } else {
            outcome.detail += "oracle saw nothing";
        }

        if (verbose)
            std::printf("coverage: %-14s audit=%d oracle=%d (%s)\n",
                        modelFaultName(kind),
                        outcome.auditCaught ? 1 : 0,
                        outcome.oracleCaught ? 1 : 0,
                        outcome.detail.c_str());
        outcomes.push_back(std::move(outcome));
    }
    return outcomes;
}

} // namespace rampage
