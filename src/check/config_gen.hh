/**
 * @file
 * Seeded random design-point generation for the differential fuzzer.
 *
 * generatePoint() draws a *valid* FuzzPoint: every hierarchy family
 * (conventional set-associative and column-associative L2s, victim
 * caches, RAMpage uniform and per-pid page-size policies, switch-on-
 * miss), every cache/TLB geometry knob, all five page-replacement
 * policies, and small simulation scales tuned so a full metamorphic
 * property suite runs in well under a second per point.  Candidates
 * are drawn, cross-field constraints are pre-solved where cheap (the
 * per-pid window-clock capacity bound, the standby-list bound), and
 * the result is pushed through validateHierarchyConfig(); rejected
 * candidates are counted and resampled, which exercises the
 * validation path with realistic near-miss configurations on every
 * fuzzing run.
 *
 * mutateHostile() is the adversarial half: it takes a valid point and
 * corrupts one configuration field with a hostile value (zero,
 * non-power-of-two, absurdly large, cross-field incompatible).  The
 * contract under test is that validation *rejects with ConfigError or
 * accepts* — any other exception or a crash is a validation bug.
 */

#ifndef RAMPAGE_CHECK_CONFIG_GEN_HH
#define RAMPAGE_CHECK_CONFIG_GEN_HH

#include <cstdint>
#include <string>

#include "check/repro.hh"
#include "util/random.hh"

namespace rampage
{

/** Generation statistics (validation-rejection accounting). */
struct GenStats
{
    std::uint64_t candidates = 0; ///< candidates drawn
    std::uint64_t rejected = 0;   ///< rejected by validation
};

/**
 * Draw one valid design point.  `seed`/`index` are recorded in the
 * point for provenance; the caller owns the Rng so a fuzzing campaign
 * is one deterministic stream.
 * @throws InternalError if no valid candidate emerges in 256 draws
 *         (would indicate a generator/validator disagreement).
 */
FuzzPoint generatePoint(Rng &rng, std::uint64_t seed,
                        std::uint64_t index,
                        GenStats *stats = nullptr);

/**
 * Corrupt one configuration field of `config` with a hostile value.
 * @return a short description of the mutation (for diagnostics).
 */
std::string mutateHostile(Rng &rng, HierarchyConfig &config);

} // namespace rampage

#endif // RAMPAGE_CHECK_CONFIG_GEN_HH
