#include "check/config_gen.hh"

#include <algorithm>

#include "os/page_store.hh"
#include "util/bitops.hh"
#include "util/error.hh"

namespace rampage
{

namespace
{

/** Pick one element of a small list. */
template <typename T, std::size_t N>
T
pick(Rng &rng, const T (&options)[N])
{
    return options[rng.below(N)];
}

CommonConfig
drawCommon(Rng &rng)
{
    CommonConfig c{};
    constexpr std::uint64_t rates[] = {200'000'000, 1'000'000'000,
                                       4'000'000'000};
    c.issueHz = pick(rng, rates);

    constexpr std::uint64_t l1_blocks[] = {16, 32, 64};
    c.l1BlockBytes = pick(rng, l1_blocks);
    // 16..256 blocks -> 256 B .. 16 KB; small caches keep the
    // property suite fast while exercising real contention.
    c.l1SizeBytes = c.l1BlockBytes << (4 + rng.below(5));
    constexpr unsigned l1_ways[] = {1, 1, 2, 4};
    c.l1Assoc = pick(rng, l1_ways);

    c.tlb.entries = 1u << rng.below(8); // 1..128
    if (rng.chance(0.5)) {
        c.tlb.assoc = 0; // fully associative (the paper's shape)
    } else {
        unsigned ways = 1u << rng.below(4);
        c.tlb.assoc = std::min(ways, c.tlb.entries);
    }
    c.tlb.lruReplacement = rng.chance(0.5);

    c.dramKind = rng.chance(0.25) ? CommonConfig::DramKind::Sdram
                                  : CommonConfig::DramKind::DirectRambus;
    constexpr std::uint64_t dram_pages[] = {2048, 4096, 8192};
    c.dramPageBytes = pick(rng, dram_pages);
    return c;
}

ConventionalConfig
drawConventional(Rng &rng, const CommonConfig &common)
{
    ConventionalConfig cc{};
    cc.common = common;
    constexpr std::uint64_t l2_blocks[] = {64, 128, 256};
    cc.l2BlockBytes = std::max(pick(rng, l2_blocks),
                               common.l1BlockBytes);
    // 64..2048 blocks -> 4 KB .. 512 KB.
    cc.l2SizeBytes = cc.l2BlockBytes << (6 + rng.below(6));
    constexpr unsigned l2_ways[] = {1, 1, 2, 4};
    cc.l2Assoc = pick(rng, l2_ways);
    constexpr ReplPolicy repls[] = {ReplPolicy::LRU, ReplPolicy::Random,
                                    ReplPolicy::FIFO};
    cc.l2Repl = pick(rng, repls);
    if (rng.chance(0.25)) {
        cc.l2Style = ConventionalConfig::L2Style::ColumnAssoc;
        cc.victimEntries = 0; // rejected behind a column-assoc L2
    } else {
        cc.l2Style = ConventionalConfig::L2Style::SetAssoc;
        constexpr unsigned victims[] = {0, 0, 4, 8};
        cc.victimEntries = pick(rng, victims);
    }
    return cc;
}

/**
 * Probe a pager geometry for its real frame counts.  The capacity
 * math (reclaimed tag bytes, OS reserve sized to the residency
 * table) lives in the PageStore constructor; rather than replicate
 * it here and drift, construct a throwaway uniform store and ask.
 */
bool
probePagerFrames(const PageStoreParams &base, std::uint64_t &frames,
                 std::uint64_t &os_frames)
{
    PageStoreParams probe = base;
    probe.defaultPageBytes = 0;
    probe.pageBytesByPid.clear();
    probe.repl = PageReplKind::Clock;
    try {
        PageStore store(probe);
        frames = store.totalFrames();
        os_frames = store.osFrames();
        return true;
    } catch (const ConfigError &) {
        return false;
    }
}

PagedConfig
drawPaged(Rng &rng, const CommonConfig &common)
{
    PagedConfig pc{};
    pc.common = common;
    PageStoreParams &pg = pc.pager;

    // Frame size within [l1Block, dramPage].
    std::uint64_t min_page = std::max<std::uint64_t>(
        common.l1BlockBytes, 128);
    std::uint64_t page = min_page << rng.below(4);
    pg.pageBytes = std::min(page, common.dramPageBytes);
    // 32..512 frames of cache-equivalent capacity.
    pg.baseSramBytes = pg.pageBytes << (5 + rng.below(5));
    constexpr std::uint64_t tag_bytes[] = {0, 4, 8};
    pg.tagBytesPerBlock = pick(rng, tag_bytes);

    std::uint64_t frames = 0, os_frames = 0;
    bool probed = probePagerFrames(pg, frames, os_frames);
    std::uint64_t evictable =
        probed && frames > os_frames ? frames - os_frames : 0;

    bool per_pid = rng.chance(0.4);
    if (per_pid && probed && evictable >= 8) {
        // Largest page (in frames) the window clock can host: the
        // first window starts at nOsFrames rounded up to k, so
        // divCeil(os, k)*k + k <= frames must hold for every k.
        auto window_fits = [&](std::uint64_t k) {
            if (k == 0 || pg.pageBytes * k > common.dramPageBytes)
                return false;
            std::uint64_t first = divCeil(os_frames, k) * k;
            return first + k <= frames;
        };
        auto draw_frames = [&]() {
            std::uint64_t k = std::uint64_t{1} << rng.below(4);
            while (k > 1 && !window_fits(k))
                k >>= 1;
            return window_fits(k) ? k : std::uint64_t{1};
        };
        pg.defaultPageBytes = pg.pageBytes * draw_frames();
        unsigned n_special = static_cast<unsigned>(rng.below(5));
        for (unsigned i = 0; i < n_special; ++i) {
            Pid pid = static_cast<Pid>(rng.below(18));
            pg.pageBytesByPid[pid] = pg.pageBytes * draw_frames();
        }
    } else {
        constexpr PageReplKind repls[] = {
            PageReplKind::Clock, PageReplKind::Clock,
            PageReplKind::Fifo, PageReplKind::Random,
            PageReplKind::Lru, PageReplKind::Standby};
        pg.repl = pick(rng, repls);
        if (pg.repl == PageReplKind::Standby) {
            // Standby keeps its list strictly inside the evictable
            // frames; fall back to clock when too cramped.
            if (evictable >= 4)
                pg.standbyPages = 1 + rng.below(
                    std::min<std::uint64_t>(evictable - 2, 16));
            else
                pg.repl = PageReplKind::Clock;
        }
    }

    pc.switchOnMiss = rng.chance(0.25);
    return pc;
}

} // namespace

FuzzPoint
generatePoint(Rng &rng, std::uint64_t seed, std::uint64_t index,
              GenStats *stats)
{
    for (int attempt = 0; attempt < 256; ++attempt) {
        if (stats)
            ++stats->candidates;
        FuzzPoint point;
        point.generatorSeed = seed;
        point.pointIndex = index;

        CommonConfig common = drawCommon(rng);
        if (rng.chance(0.45))
            point.hier = drawConventional(rng, common);
        else
            point.hier = drawPaged(rng, common);

        point.sim.maxRefs = 2000 * (1 + rng.below(10));
        point.sim.quantumRefs = std::max<std::uint64_t>(
            500, point.sim.maxRefs / (1 + rng.below(8)));
        point.sim.insertSwitchTrace = !rng.chance(0.2);
        point.sim.watchdogRefBudget =
            point.sim.maxRefs * 20 + 10'000'000;
        point.workloadSalt = rng.next() & 0xffff;

        try {
            validateHierarchyConfig(point.hier);
            return point;
        } catch (const ConfigError &) {
            if (stats)
                ++stats->rejected;
        }
    }
    throw InternalError(
        "fuzz generator: no valid candidate in 256 draws for seed "
        "%llu index %llu — generator and validator disagree",
        static_cast<unsigned long long>(seed),
        static_cast<unsigned long long>(index));
}

std::string
mutateHostile(Rng &rng, HierarchyConfig &config)
{
    CommonConfig &c = config.common();
    bool conventional =
        config.family == HierarchyConfig::Family::Conventional;
    std::uint64_t huge = std::uint64_t{1} << 62;

    switch (rng.below(conventional ? 10 : 16)) {
      case 0:
        c.l1BlockBytes = 48;
        return "l1BlockBytes non-power-of-two (48)";
      case 1:
        c.l1BlockBytes = 0;
        return "l1BlockBytes zero";
      case 2:
        c.l1SizeBytes = c.l1BlockBytes * 5 + 1;
        return "l1SizeBytes not a multiple of the block";
      case 3:
        c.l1Assoc = 1u << 30;
        return "l1Assoc exceeds the block count";
      case 4:
        c.tlb.entries = 0;
        return "tlb.entries zero";
      case 5:
        c.tlb.entries = 64;
        c.tlb.assoc = 3;
        return "tlb.assoc does not divide the entries";
      case 6:
        c.tlb.entries = 48;
        c.tlb.assoc = 4;
        return "tlb set count not a power of two";
      case 7:
        if (conventional) {
            config.conventional.l2BlockBytes = c.l1BlockBytes / 2;
            return "l2BlockBytes smaller than the L1 block";
        }
        config.paged.pager.pageBytes = c.l1BlockBytes / 2;
        return "pager pageBytes smaller than the L1 block";
      case 8:
        if (conventional) {
            config.conventional.l2SizeBytes =
                config.conventional.l2BlockBytes * 7 + 3;
            return "l2SizeBytes not a multiple of the block";
        }
        config.paged.pager.baseSramBytes =
            config.paged.pager.pageBytes * 3 + 1;
        return "pager baseSramBytes not a multiple of the page";
      case 9:
        if (conventional) {
            config.conventional.l2Style =
                ConventionalConfig::L2Style::ColumnAssoc;
            config.conventional.victimEntries = 4;
            return "victim cache behind a column-associative L2";
        }
        config.paged.pager.pageBytes = 384;
        return "pager pageBytes non-power-of-two (384)";
      case 10:
        config.paged.pager.pageBytes = c.dramPageBytes * 2;
        return "pager pageBytes larger than the DRAM page";
      case 11:
        config.paged.pager.defaultPageBytes =
            config.paged.pager.pageBytes * 3;
        return "per-pid defaultPageBytes non-power-of-two multiple";
      case 12:
        config.paged.pager.defaultPageBytes =
            std::max<std::uint64_t>(config.paged.pager.pageBytes / 2,
                                    1);
        return "per-pid defaultPageBytes below the base frame";
      case 13:
        config.paged.pager.osFixedBytes = huge;
        return "pager OS reserve consumes the whole SRAM";
      case 14:
        config.paged.pager.repl = PageReplKind::Standby;
        config.paged.pager.standbyPages = huge;
        return "standbyPages exceeds the evictable frames";
      case 15:
        config.paged.pager.osVirtBase =
            c.handlerLayout.codeBase + 0x100;
        return "pager OS region not at the handler code base";
    }
    return "no mutation";
}

} // namespace rampage
