/**
 * @file
 * The differential-fuzzing campaign driver behind `rampage_fuzz`.
 *
 * A campaign is a deterministic loop over one seeded Rng stream:
 * generate a valid design point (check/config_gen.hh), run the
 * metamorphic property suite (check/properties.hh), and — every few
 * points — corrupt a copy of the configuration with a hostile
 * mutation and assert that validation rejects it with ConfigError
 * (any other escape is a validation bug and a campaign finding).  A
 * failing point is shrunk (check/shrink.hh) and written as a JSON
 * repro under the output directory for `--fuzz-replay` and for
 * committing to tests/corpus/.
 *
 * The detector-coverage meta-check (runDetectorCoverage) closes the
 * loop on the audit/oracle safety net: for every injectable model
 * fault it builds a canonical point where the fault applies, injects
 * it, and requires that the audits (AuditError) or the differential
 * oracle / property suite catches the corruption.  A fault no
 * detector sees would mean a whole class of real bugs could slip
 * through CI silently.
 */

#ifndef RAMPAGE_CHECK_FUZZ_DRIVER_HH
#define RAMPAGE_CHECK_FUZZ_DRIVER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "check/config_gen.hh"
#include "check/properties.hh"
#include "core/fault_injection.hh"

namespace rampage
{

/** Campaign knobs (the `rampage_fuzz` CLI maps onto this). */
struct FuzzOptions
{
    std::uint64_t seed = 1;
    /** Points to fuzz; 0 = keep going until the time budget ends. */
    std::uint64_t points = 0;
    /** Wall-clock budget in seconds; 0 = no time limit. */
    double budgetSeconds = 0;
    /** Replay every *.json under this directory before fuzzing. */
    std::string corpusDir;
    /** Where failing repros (and campaign notes) are written. */
    std::string outDir = "results/fuzz";
    /** Fault spec injected into every generated point (tests). */
    std::string faultSpec;
    /** Property-suite evaluation budget per shrink. */
    unsigned shrinkEvaluations = 200;
    /** Run a hostile-mutation validation probe every N points. */
    unsigned hostileEvery = 4;
    /** Print per-point progress lines. */
    bool verbose = false;
};

/** What a campaign did. */
struct FuzzCampaignResult
{
    std::uint64_t pointsRun = 0;
    std::uint64_t corpusReplayed = 0;
    std::uint64_t hostileProbes = 0;
    GenStats gen;
    /** Repro files written for shrunk failures. */
    std::vector<std::string> reproPaths;
    /** Failure descriptions (property or validation findings). */
    std::vector<std::string> findings;

    bool ok() const { return findings.empty(); }
};

/** Run a fuzzing campaign.  Deterministic for a given options set. */
FuzzCampaignResult runFuzzCampaign(const FuzzOptions &options);

/**
 * Replay one JSON repro through the property suite.
 * @retval 0 the point now passes; 1 it still fails (the failure
 *         summary is printed); throws SimError on an unreadable file.
 */
int replayRepro(const std::string &path, bool verbose = true);

/**
 * Replay every *.json under `dir` (sorted by name).
 * @return the number of repros that still fail.
 */
int replayReproDir(const std::string &dir, bool verbose = true);

/** One fault kind's detection outcome. */
struct CoverageOutcome
{
    ModelFault kind = ModelFault::None;
    bool auditCaught = false;  ///< boundary audits raised AuditError
    bool oracleCaught = false; ///< suite w/o audits flagged the run
    std::string detail;

    bool caught() const { return auditCaught || oracleCaught; }
};

/**
 * The detector-coverage meta-check: inject every model fault into a
 * canonical point where it applies and record which safety net
 * catches it.  Every kind must be caught by at least one.
 */
std::vector<CoverageOutcome> runDetectorCoverage(bool verbose = false);

/** Create `path` (and parents) as directories; throws IoError. */
void ensureDirectories(const std::string &path);

} // namespace rampage

#endif // RAMPAGE_CHECK_FUZZ_DRIVER_HH
