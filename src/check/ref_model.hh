/**
 * @file
 * The differential-fuzzing reference oracle.
 *
 * RefModel answers one question: does the composed engine's frozen
 * StatsSnapshot agree with an *independently computed* functional
 * model of the same run?  The oracle replays the identical reference
 * stream (its own makeWorkload() instance, seeded identically)
 * through small purpose-written replicas of the functional state
 * machines — TLB, split L1, SRAM page store with all five
 * replacement policies — and counts hits, misses, faults,
 * translations and DRAM transactions without any of the timing
 * machinery (no cycle accounting, no DRAM pricing, no observability,
 * no audits).  A disagreement on any count is a model bug in one of
 * the two implementations.
 *
 * Oracle contract (what is shared, what is independent):
 *  - Shared substrate, by design: the Rng (identical seeding is the
 *    point), HandlerTraces (the synthesized handler reference stream
 *    is an *input* to both models), makeWorkload() (likewise), and
 *    the InvertedPageTable (pure lookup structure whose probe stream
 *    feeds the handler synthesis).
 *  - Independent, re-implemented here: cache/TLB lookup and
 *    replacement, page-store placement/replacement/eviction for both
 *    page-size policies, the fault/translation sequencing, and the
 *    simulation driver loop.
 *
 * Coverage tiers (OracleReport::Mode):
 *  - FullReplay: paged hierarchies with blocking faults — every
 *    functional counter is predicted exactly.
 *  - TlbReplay: conventional hierarchies — the TLB stream is
 *    predicted exactly (translation is dir-backed and fault-free);
 *    cache counters are checked through accounting identities.
 *  - Identities: paged switch-on-miss runs — the interleaving is
 *    timing-coupled, so only the cross-counter conservation
 *    identities are checked.
 * Timing counters (cycles, picoseconds, bandwidth formulas) are out
 * of the oracle's scope in every mode.
 */

#ifndef RAMPAGE_CHECK_REF_MODEL_HH
#define RAMPAGE_CHECK_REF_MODEL_HH

#include <string>
#include <vector>

#include "check/repro.hh"
#include "stats/registry.hh"

namespace rampage
{

/** Outcome of one oracle cross-check. */
struct OracleReport
{
    enum class Mode
    {
        FullReplay, ///< every functional counter predicted exactly
        TlbReplay,  ///< TLB exact + accounting identities
        Identities, ///< conservation identities only
    };

    Mode mode = Mode::Identities;
    /** Human-readable disagreements; empty means the check passed. */
    std::vector<std::string> mismatches;

    bool ok() const { return mismatches.empty(); }
};

const char *oracleModeName(OracleReport::Mode mode);

/**
 * Cross-check an engine run's snapshot against the reference model.
 * `stats` is SimResult::stats from simulating exactly `point` (same
 * hierarchy config, sim scale and workload salt, no fault injection
 * — an injected fault is *supposed* to make this fail).
 */
OracleReport crossCheckOracle(const FuzzPoint &point,
                              const StatsSnapshot &stats);

} // namespace rampage

#endif // RAMPAGE_CHECK_REF_MODEL_HH
