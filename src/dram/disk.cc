#include "dram/disk.hh"

#include "util/logging.hh"

namespace rampage
{

Disk::Disk(const DiskConfig &config) : cfg(config)
{
    RAMPAGE_ASSERT(cfg.bytesPerSecond > 0, "disk rate must be positive");
}

Tick
Disk::readPs(std::uint64_t bytes) const
{
    double stream_ps = static_cast<double>(bytes) / cfg.bytesPerSecond *
                       static_cast<double>(psPerSec);
    return cfg.latencyPs + static_cast<Tick>(stream_ps + 0.5);
}

Tick
Disk::writePs(std::uint64_t bytes) const
{
    return readPs(bytes);
}

double
Disk::peakBandwidth() const
{
    return cfg.bytesPerSecond;
}

} // namespace rampage
