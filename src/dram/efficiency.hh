/**
 * @file
 * The paper's Table 1: bandwidth efficiency of Direct Rambus (with and
 * without pipelining) versus a disk across transfer sizes, plus the
 * §3.5 "instructions lost per transfer" illustration.
 */

#ifndef RAMPAGE_DRAM_EFFICIENCY_HH
#define RAMPAGE_DRAM_EFFICIENCY_HH

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace rampage
{

/** One Table 1 row. */
struct EfficiencyRow
{
    std::uint64_t bytes;          ///< transfer unit
    double rambusEfficiency;      ///< non-pipelined Direct Rambus
    double rambusPipelined;       ///< pipelined Direct Rambus (§6.3)
    double diskEfficiency;        ///< 10 ms / 40 MB/s disk
};

/**
 * Compute Table 1 for the given transfer sizes (defaults to powers of
 * four from 2 B to 4 MB, the range the paper's discussion spans).
 */
std::vector<EfficiencyRow>
computeEfficiencyTable(const std::vector<std::uint64_t> &sizes = {});

/**
 * Instructions lost to one transfer of `bytes` at `issue_hz` — the
 * paper's example: a 4 KB disk transfer costs ~10 M instructions at
 * 1 GHz, the same Direct Rambus transfer ~2,600.
 */
double instructionsPerTransfer(Tick transfer_ps, std::uint64_t issue_hz);

} // namespace rampage

#endif // RAMPAGE_DRAM_EFFICIENCY_HH
