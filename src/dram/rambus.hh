/**
 * @file
 * Direct Rambus timing model (paper §3.3, §4.3).
 *
 * The paper's device: a 2-byte-wide channel clocked at 1.25 ns per
 * transfer beat, with 50 ns of latency before the first datum of a
 * transaction.  The headline results use the *non-pipelined* model
 * (each transaction pays the full 50 ns); the pipelined mode — listed
 * as future work in §6.3 — overlaps the access latency of consecutive
 * transactions so a queue of requests approaches the channel's peak
 * bandwidth (the paper quotes a theoretical 95 % of peak on 2-byte
 * units).
 */

#ifndef RAMPAGE_DRAM_RAMBUS_HH
#define RAMPAGE_DRAM_RAMBUS_HH

#include "dram/dram_model.hh"

namespace rampage
{

/** Configuration of a Direct Rambus channel. */
struct RambusConfig
{
    /** Latency before the first datum of a transaction. */
    Tick accessLatencyPs = 50 * psPerNs;
    /** Picoseconds per transfer beat. */
    Tick beatPs = 1250;
    /** Bytes moved per beat (Direct Rambus: a 2-byte bus). */
    std::uint64_t bytesPerBeat = 2;
    /**
     * Parallel Rambus channels.  §3.3: "It is also possible to have
     * multiple Rambus channels to increase bandwidth, though latency
     * is not improved" — channels multiply the per-beat width, not
     * reduce the 50 ns access.
     */
    unsigned channels = 1;
    /**
     * Number of transactions whose access latency may overlap.  1
     * models the paper's headline (non-pipelined) configuration; >1
     * enables the §6.3 future-work pipelined mode.
     */
    unsigned pipelineDepth = 1;
};

/**
 * Direct Rambus channel.  readPs()/writePs() price a single isolated
 * transaction; burstPs() prices a back-to-back queue of transactions
 * under the configured pipeline depth.
 */
class DirectRambus : public DramModel
{
  public:
    explicit DirectRambus(const RambusConfig &config = RambusConfig{});

    Tick readPs(std::uint64_t bytes) const override;
    Tick writePs(std::uint64_t bytes) const override;
    double peakBandwidth() const override;
    std::string name() const override;

    /** Time to stream `bytes` once the transaction is open. */
    Tick streamPs(std::uint64_t bytes) const;

    /**
     * Total time for `count` back-to-back transactions of `bytes`
     * each.  With pipelineDepth 1 this is count * readPs(bytes); with
     * a deeper pipeline the access latencies of up to depth-1 trailing
     * transactions hide behind the data streaming of earlier ones.
     */
    Tick burstPs(std::uint64_t bytes, std::uint64_t count) const;

    const RambusConfig &config() const { return cfg; }

  private:
    RambusConfig cfg;
};

} // namespace rampage

#endif // RAMPAGE_DRAM_RAMBUS_HH
