/**
 * @file
 * Abstract timing interface for the DRAM level of the hierarchy.
 *
 * The paper models DRAM purely by transaction timing (latency plus a
 * streaming rate); capacity is infinite (no misses to disk).  Concrete
 * models are Direct Rambus (the paper's device, §4.3) and SDRAM (the
 * §3.3 comparison point).
 */

#ifndef RAMPAGE_DRAM_DRAM_MODEL_HH
#define RAMPAGE_DRAM_DRAM_MODEL_HH

#include <cstdint>
#include <string>

#include "util/types.hh"

namespace rampage
{

/** Timing model of one DRAM transaction stream. */
class DramModel
{
  public:
    virtual ~DramModel() = default;

    /** Time to read `bytes` contiguous bytes in one transaction. */
    virtual Tick readPs(std::uint64_t bytes) const = 0;

    /** Time to write `bytes` contiguous bytes in one transaction. */
    virtual Tick writePs(std::uint64_t bytes) const = 0;

    /** Peak streaming bandwidth in bytes per second. */
    virtual double peakBandwidth() const = 0;

    /** Human-readable model name. */
    virtual std::string name() const = 0;

    /**
     * Fraction of peak bandwidth achieved by a transaction of the
     * given size (the paper's Table 1 "efficiency" metric).
     */
    double efficiency(std::uint64_t bytes) const;
};

} // namespace rampage

#endif // RAMPAGE_DRAM_DRAM_MODEL_HH
