#include "dram/efficiency.hh"

#include "dram/disk.hh"
#include "dram/rambus.hh"

namespace rampage
{

double
DramModel::efficiency(std::uint64_t bytes) const
{
    if (bytes == 0)
        return 0.0;
    double ideal_ps = static_cast<double>(bytes) / peakBandwidth() *
                      static_cast<double>(psPerSec);
    double actual_ps = static_cast<double>(readPs(bytes));
    return actual_ps == 0.0 ? 0.0 : ideal_ps / actual_ps;
}

std::vector<EfficiencyRow>
computeEfficiencyTable(const std::vector<std::uint64_t> &sizes)
{
    std::vector<std::uint64_t> bytes = sizes;
    if (bytes.empty()) {
        for (std::uint64_t b = 2; b <= 4 * mib; b *= 4)
            bytes.push_back(b);
    }

    DirectRambus plain;
    RambusConfig piped_cfg;
    // Deep enough that latency fully hides behind streaming: the §6.3
    // theoretical mode.  Efficiency of a *single* transaction is
    // unchanged; pipelining matters for queued transactions, so the
    // pipelined column reports the steady-state per-transaction
    // efficiency of a long burst.
    piped_cfg.pipelineDepth = 64;
    DirectRambus piped(piped_cfg);
    Disk disk;

    std::vector<EfficiencyRow> rows;
    rows.reserve(bytes.size());
    for (std::uint64_t b : bytes) {
        EfficiencyRow row{};
        row.bytes = b;
        row.rambusEfficiency = plain.efficiency(b);
        // Steady-state: price a long burst and divide by its ideal.
        const std::uint64_t burst = 1024;
        double ideal_ps = static_cast<double>(b) * burst /
                          piped.peakBandwidth() *
                          static_cast<double>(psPerSec);
        double actual_ps = static_cast<double>(piped.burstPs(b, burst));
        row.rambusPipelined = actual_ps == 0.0 ? 0.0 : ideal_ps / actual_ps;
        row.diskEfficiency = disk.efficiency(b);
        rows.push_back(row);
    }
    return rows;
}

double
instructionsPerTransfer(Tick transfer_ps, std::uint64_t issue_hz)
{
    return static_cast<double>(transfer_ps) / psPerSec *
           static_cast<double>(issue_hz);
}

} // namespace rampage
