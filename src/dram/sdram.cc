#include "dram/sdram.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace rampage
{

Sdram::Sdram(const SdramConfig &config) : cfg(config)
{
    RAMPAGE_ASSERT(cfg.busBytes > 0, "bus width must be positive");
    RAMPAGE_ASSERT(cfg.busCyclePs > 0, "bus cycle must be positive");
}

Tick
Sdram::readPs(std::uint64_t bytes) const
{
    return cfg.accessLatencyPs + divCeil(bytes, cfg.busBytes) * cfg.busCyclePs;
}

Tick
Sdram::writePs(std::uint64_t bytes) const
{
    return readPs(bytes);
}

double
Sdram::peakBandwidth() const
{
    return static_cast<double>(cfg.busBytes) /
           (static_cast<double>(cfg.busCyclePs) / psPerSec);
}

} // namespace rampage
