#include "dram/rambus.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace rampage
{

DirectRambus::DirectRambus(const RambusConfig &config) : cfg(config)
{
    RAMPAGE_ASSERT(cfg.bytesPerBeat > 0, "bus must move bytes per beat");
    RAMPAGE_ASSERT(cfg.beatPs > 0, "beat time must be positive");
    RAMPAGE_ASSERT(cfg.pipelineDepth > 0, "pipeline depth must be >= 1");
    RAMPAGE_ASSERT(cfg.channels > 0, "at least one channel required");
}

Tick
DirectRambus::streamPs(std::uint64_t bytes) const
{
    // Multiple channels stripe the transfer: beats run in parallel.
    return divCeil(bytes, cfg.bytesPerBeat * cfg.channels) * cfg.beatPs;
}

Tick
DirectRambus::readPs(std::uint64_t bytes) const
{
    return cfg.accessLatencyPs + streamPs(bytes);
}

Tick
DirectRambus::writePs(std::uint64_t bytes) const
{
    // The paper draws no read/write timing distinction (§4.3).
    return readPs(bytes);
}

double
DirectRambus::peakBandwidth() const
{
    return static_cast<double>(cfg.bytesPerBeat * cfg.channels) /
           (static_cast<double>(cfg.beatPs) / psPerSec);
}

std::string
DirectRambus::name() const
{
    return cfg.pipelineDepth > 1 ? "DirectRambus(pipelined)"
                                 : "DirectRambus";
}

Tick
DirectRambus::burstPs(std::uint64_t bytes, std::uint64_t count) const
{
    if (count == 0)
        return 0;
    if (cfg.pipelineDepth <= 1)
        return count * readPs(bytes);

    // With pipelining, a later transaction's access latency overlaps
    // the data beats of the transactions ahead of it, limited by the
    // channel occupancy: data beats serialize on the 2-byte bus, so
    // the channel is busy for count * streamPs(bytes) plus whatever
    // access latency could not be hidden behind earlier streaming.
    Tick stream = streamPs(bytes);
    Tick total_stream = count * stream;
    // The first transaction's latency is always exposed.  Each later
    // transaction hides min(latency, data already streaming ahead of
    // it).  With unbounded depth everything but the first latency
    // hides once stream*(k) >= latency; with bounded depth at most
    // depth-1 requests can be outstanding, capping the overlap window
    // to (depth-1)*stream per transaction.
    Tick overlap_window = static_cast<Tick>(cfg.pipelineDepth - 1) * stream;
    Tick exposed_per_txn = cfg.accessLatencyPs > overlap_window
                               ? cfg.accessLatencyPs - overlap_window
                               : 0;
    return cfg.accessLatencyPs + total_stream +
           (count - 1) * exposed_per_txn;
}

} // namespace rampage
