/**
 * @file
 * Disk timing model used only for the paper's Table 1 comparison
 * (§3.5): 10 ms latency, 40 MB/s streaming.  It exists to quantify the
 * paper's argument that DRAM shares disk's property of being far more
 * efficient at large transfer units.
 */

#ifndef RAMPAGE_DRAM_DISK_HH
#define RAMPAGE_DRAM_DISK_HH

#include "dram/dram_model.hh"

namespace rampage
{

/** Configuration of the Table 1 disk. */
struct DiskConfig
{
    /** Positioning latency (paper: 10 ms). */
    Tick latencyPs = 10 * psPerMs;
    /** Streaming rate in bytes per second (paper: 40 MB/s, decimal). */
    double bytesPerSecond = 40e6;
};

/** Simple latency + streaming-rate disk. */
class Disk : public DramModel
{
  public:
    explicit Disk(const DiskConfig &config = DiskConfig{});

    Tick readPs(std::uint64_t bytes) const override;
    Tick writePs(std::uint64_t bytes) const override;
    double peakBandwidth() const override;
    std::string name() const override { return "Disk"; }

  private:
    DiskConfig cfg;
};

} // namespace rampage

#endif // RAMPAGE_DRAM_DISK_HH
