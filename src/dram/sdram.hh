/**
 * @file
 * SDRAM timing model (paper §3.3 comparison point): a wide synchronous
 * bus with an initial access delay, after which transfers proceed at
 * bus speed.  The paper's example — a 128-bit bus at 10 ns with 50 ns
 * initial latency — delivers the same 1.6 GB/s peak as Direct Rambus.
 */

#ifndef RAMPAGE_DRAM_SDRAM_HH
#define RAMPAGE_DRAM_SDRAM_HH

#include "dram/dram_model.hh"

namespace rampage
{

/** Configuration of an SDRAM memory system. */
struct SdramConfig
{
    /** Initial access delay (paper example: 50 ns). */
    Tick accessLatencyPs = 50 * psPerNs;
    /** Bus cycle time (paper example: 10 ns). */
    Tick busCyclePs = 10 * psPerNs;
    /** Bus width in bytes (paper example: 128 bits = 16 bytes). */
    std::uint64_t busBytes = 16;
};

/** Wide synchronous DRAM channel. */
class Sdram : public DramModel
{
  public:
    explicit Sdram(const SdramConfig &config = SdramConfig{});

    Tick readPs(std::uint64_t bytes) const override;
    Tick writePs(std::uint64_t bytes) const override;
    double peakBandwidth() const override;
    std::string name() const override { return "SDRAM"; }

    const SdramConfig &config() const { return cfg; }

  private:
    SdramConfig cfg;
};

} // namespace rampage

#endif // RAMPAGE_DRAM_SDRAM_HH
