#include "obs/interval_stats.hh"

#include <cerrno>
#include <cstring>

#include "stats/histogram.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace rampage
{

IntervalStatsWriter::IntervalStatsWriter(const StatsRegistry *registry,
                                         std::string path,
                                         std::uint64_t interval_refs)
    : reg(registry), outPath(std::move(path)),
      intervalRefs(interval_refs ? interval_refs : 1),
      nextBoundary(intervalRefs)
{
}

IntervalStatsWriter::~IntervalStatsWriter()
{
    if (out)
        std::fclose(out);
}

void
IntervalStatsWriter::sample(std::uint64_t refs_executed,
                            std::uint64_t now_ps)
{
    StatsSnapshot current = reg->snapshot();
    writeLine(refs_executed, now_ps, current);
    previous = std::move(current);
    lastSampledRefs = refs_executed;
    while (nextBoundary <= refs_executed)
        nextBoundary += intervalRefs;
}

void
IntervalStatsWriter::finish(std::uint64_t refs_executed,
                            std::uint64_t now_ps)
{
    // Final partial epoch, so delta sums always equal the end-of-run
    // snapshot.  Skip only if the last boundary landed exactly here.
    if (refs_executed > lastSampledRefs || epochCount == 0)
        sample(refs_executed, now_ps);
    if (out) {
        std::fclose(out);
        out = nullptr;
    }
}

void
IntervalStatsWriter::writeLine(std::uint64_t refs_executed,
                               std::uint64_t now_ps,
                               const StatsSnapshot &current)
{
    if (writeFailed)
        return;
    if (!out) {
        out = std::fopen(outPath.c_str(), "w");
        if (!out) {
            warnFailure("open");
            return;
        }
    }

    JsonValue line = JsonValue::object();
    line.set("epoch", JsonValue::integer(epochCount + 1));
    line.set("refs", JsonValue::integer(refs_executed - lastSampledRefs));
    line.set("refs_total", JsonValue::integer(refs_executed));
    line.set("sim_ns",
             JsonValue::number(static_cast<double>(now_ps) / 1000.0));

    JsonValue stats = JsonValue::object();
    for (const StatsSnapshot::Entry &entry : current.entries()) {
        const StatsSnapshot::Entry *prev = previous.find(entry.name);
        switch (entry.kind) {
          case StatsSnapshot::Kind::Counter: {
            std::uint64_t before = prev ? prev->counter : 0;
            stats.set(entry.name,
                      JsonValue::integer(entry.counter - before));
            break;
          }
          case StatsSnapshot::Kind::Value:
            // Formulas (ratios, bandwidths) are reported absolute: a
            // delta of a ratio has no meaning.
            stats.set(entry.name, JsonValue::number(entry.value));
            break;
          case StatsSnapshot::Kind::Histogram: {
            std::vector<std::uint64_t> delta = entry.buckets;
            std::uint64_t samples = entry.samples;
            std::uint64_t sum = entry.sum;
            if (prev) {
                for (std::size_t i = 0;
                     i < prev->buckets.size() && i < delta.size(); ++i)
                    delta[i] -= prev->buckets[i];
                samples -= prev->samples;
                sum -= prev->sum;
            }
            JsonValue hist = JsonValue::object();
            hist.set("count", JsonValue::integer(samples));
            hist.set("sum", JsonValue::integer(sum));
            hist.set("mean",
                     JsonValue::number(
                         samples == 0 ? 0.0
                                      : static_cast<double>(sum) /
                                            static_cast<double>(samples)));
            hist.set("p50", JsonValue::integer(
                                log2BucketsPercentile(delta, 0.50)));
            hist.set("p95", JsonValue::integer(
                                log2BucketsPercentile(delta, 0.95)));
            hist.set("p99", JsonValue::integer(
                                log2BucketsPercentile(delta, 0.99)));
            stats.set(entry.name, std::move(hist));
            break;
          }
        }
    }
    line.set("stats", std::move(stats));

    std::string text = line.dump(0); // JSONL: one compact line per epoch
    text += '\n';
    // One write + flush per epoch: a killed run leaves a valid JSONL
    // prefix, never a torn line.
    if (std::fwrite(text.data(), 1, text.size(), out) != text.size() ||
        std::fflush(out) != 0) {
        warnFailure("write");
        return;
    }
    ++epochCount;
}

void
IntervalStatsWriter::warnFailure(const char *what)
{
    warnOnce("interval-stats: cannot %s '%s': %s — time series lost "
             "[io]",
             what, outPath.c_str(), std::strerror(errno));
    writeFailed = true;
    if (out) {
        std::fclose(out);
        out = nullptr;
    }
}

} // namespace rampage
