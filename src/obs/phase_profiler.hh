/**
 * @file
 * Host-side phase profiling for the sweep pipeline.
 *
 * Scoped wall-clock timers attribute where *host* time goes across a
 * campaign — synthetic trace generation, simulation proper, integrity
 * audits, checkpoint-manifest I/O, and the --isolate IPC round-trip —
 * so the optimization work the ROADMAP targets starts from measured
 * hot spots, not guesses.
 *
 * Two accumulators run in parallel:
 *  - a thread-local one, reset at the start of each sweep-point
 *    attempt and harvested into that point's outcome
 *    (PointOutcome::phaseSeconds), which survives the --isolate pipe;
 *  - a process-global one (atomic nanosecond counters) feeding the
 *    sweep heartbeat line and the benches' "phases" JSON block, which
 *    run_benches.sh rolls into BENCH_core.json.
 *
 * Profiling is always on: a steady_clock read pair per phase is
 * nanoseconds against the milliseconds-to-seconds phases it brackets,
 * and everything lands on stderr or in JSON files, so golden stdout is
 * untouched.
 */

#ifndef RAMPAGE_OBS_PHASE_PROFILER_HH
#define RAMPAGE_OBS_PHASE_PROFILER_HH

#include <array>
#include <chrono>
#include <cstdint>
#include <string>

namespace rampage
{

/** The sweep-pipeline phases host time is attributed to. */
enum class SweepPhase : std::uint8_t
{
    TraceGen,   ///< synthetic reference-trace generation
    Simulate,   ///< Simulator::run proper
    Audit,      ///< model-integrity audits
    Checkpoint, ///< checkpoint-manifest load/append
    Ipc,        ///< --isolate pipe encode/drain/decode
};

/** Number of SweepPhase values (array sizing). */
constexpr std::size_t sweepPhaseCount = 5;

/** Stable snake_case phase name ("trace_gen", "simulate", ...). */
const char *sweepPhaseName(SweepPhase phase);

/** Per-phase wall-clock totals, seconds, indexed by SweepPhase. */
using PhaseSeconds = std::array<double, sweepPhaseCount>;

/** Charge `seconds` of wall-clock to a phase (thread + global). */
void phaseRecord(SweepPhase phase, double seconds);

/** This thread's accumulated phase totals since phaseThreadReset(). */
PhaseSeconds phaseThreadTotals();

/** Zero this thread's accumulator (sweep does this per attempt). */
void phaseThreadReset();

/** Process-wide phase totals since start (or phaseGlobalReset()). */
PhaseSeconds phaseGlobalTotals();

/** Zero the process-wide accumulator (tests). */
void phaseGlobalReset();

/**
 * Merge a harvested per-point total back into the process-global
 * accumulator — how the parent credits work a forked --isolate child
 * measured on the far side of the pipe.
 */
void phaseGlobalAdd(const PhaseSeconds &seconds);

/**
 * One-line human summary of the global totals for the sweep heartbeat:
 * "trace_gen 0.4s, simulate 11.2s, audit 0.8s, ...".  Phases with no
 * time recorded are omitted; "" when nothing has been recorded.
 */
std::string phaseGlobalSummary();

/** RAII timer: charges its scope's wall-clock to one phase. */
class ScopedPhaseTimer
{
  public:
    explicit ScopedPhaseTimer(SweepPhase phase)
        : ph(phase), start(std::chrono::steady_clock::now())
    {
    }

    ~ScopedPhaseTimer()
    {
        std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        phaseRecord(ph, elapsed.count());
    }

    ScopedPhaseTimer(const ScopedPhaseTimer &) = delete;
    ScopedPhaseTimer &operator=(const ScopedPhaseTimer &) = delete;

  private:
    SweepPhase ph;
    std::chrono::steady_clock::time_point start;
};

} // namespace rampage

#endif // RAMPAGE_OBS_PHASE_PROFILER_HH
