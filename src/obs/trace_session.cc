#include "obs/trace_session.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/logging.hh"

namespace rampage
{

namespace
{

thread_local TraceSession *threadSession = nullptr;

/**
 * Chrome "tid" for a track.  Stable small integers so event order in
 * the viewer matches the memory hierarchy top-down.
 */
int
trackId(TraceEventKind kind)
{
    switch (kind) {
      case TraceEventKind::L2Miss:
        return 1;
      case TraceEventKind::TlbFill:
      case TraceEventKind::TlbFlush:
        return 2;
      case TraceEventKind::PageFault:
        return 3;
      case TraceEventKind::DramTx:
        return 4;
      case TraceEventKind::ContextSwitch:
      case TraceEventKind::ProcessSwitch:
        return 5;
    }
    return 0;
}

} // namespace

const char *
traceEventKindName(TraceEventKind kind)
{
    switch (kind) {
      case TraceEventKind::L2Miss:
        return "l2_miss";
      case TraceEventKind::PageFault:
        return "page_fault";
      case TraceEventKind::TlbFill:
        return "tlb_fill";
      case TraceEventKind::TlbFlush:
        return "tlb_flush";
      case TraceEventKind::ContextSwitch:
        return "context_switch";
      case TraceEventKind::DramTx:
        return "dram_tx";
      case TraceEventKind::ProcessSwitch:
        return "process_switch";
    }
    return "unknown";
}

const char *
traceEventTrack(TraceEventKind kind)
{
    switch (kind) {
      case TraceEventKind::L2Miss:
        return "l2";
      case TraceEventKind::TlbFill:
      case TraceEventKind::TlbFlush:
        return "tlb";
      case TraceEventKind::PageFault:
        return "pager";
      case TraceEventKind::DramTx:
        return "dram";
      case TraceEventKind::ContextSwitch:
      case TraceEventKind::ProcessSwitch:
        return "sched";
    }
    return "unknown";
}

TraceSession::TraceSession(std::size_t capacity)
    : cap(capacity ? capacity : 1)
{
    ring.reserve(cap < 4096 ? cap : 4096);
}

void
TraceSession::push(const TraceEvent &event)
{
    ++emittedCount;
    if (ring.size() < cap) {
        ring.push_back(event);
        return;
    }
    // Full: overwrite the oldest so the tail of the run survives, and
    // account for the loss.
    ring[head] = event;
    head = (head + 1) % cap;
    ++droppedCount;
}

bool
TraceSession::writeChromeTrace(const std::string &path) const
{
    std::string tmp = path + ".tmp";
    std::FILE *out = std::fopen(tmp.c_str(), "w");
    if (!out) {
        warnOnce("trace: cannot open '%s': %s — timeline lost [io]",
                 tmp.c_str(), std::strerror(errno));
        return false;
    }

    std::fputs("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n", out);

    // Metadata events name the process and the per-component tracks.
    std::fputs("{\"ph\":\"M\",\"pid\":1,\"tid\":0,"
               "\"name\":\"process_name\","
               "\"args\":{\"name\":\"rampage-sim\"}}",
               out);
    const TraceEventKind track_kinds[] = {
        TraceEventKind::L2Miss, TraceEventKind::TlbFill,
        TraceEventKind::PageFault, TraceEventKind::DramTx,
        TraceEventKind::ProcessSwitch};
    for (TraceEventKind kind : track_kinds) {
        std::fprintf(out,
                     ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
                     "\"name\":\"thread_name\","
                     "\"args\":{\"name\":\"%s\"}}",
                     trackId(kind), traceEventTrack(kind));
    }

    // Ring order: oldest first.  Before wrap the ring is ring[0..n);
    // after wrap the oldest retained event sits at `head`.
    std::size_t n = ring.size();
    for (std::size_t i = 0; i < n; ++i) {
        const TraceEvent &event =
            ring[(n == cap) ? (head + i) % cap : i];
        double ts_ns = static_cast<double>(event.tsPs) / 1000.0;
        if (event.durPs > 0) {
            double dur_ns = static_cast<double>(event.durPs) / 1000.0;
            std::fprintf(out,
                         ",\n{\"ph\":\"X\",\"pid\":1,\"tid\":%d,"
                         "\"ts\":%.3f,\"dur\":%.3f,\"name\":\"%s\","
                         "\"cat\":\"%s\",\"args\":{\"proc\":%u,"
                         "\"value\":%llu}}",
                         trackId(event.kind), ts_ns, dur_ns,
                         traceEventKindName(event.kind),
                         traceEventTrack(event.kind),
                         static_cast<unsigned>(event.pid),
                         static_cast<unsigned long long>(event.arg));
        } else {
            std::fprintf(out,
                         ",\n{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,"
                         "\"tid\":%d,\"ts\":%.3f,\"name\":\"%s\","
                         "\"cat\":\"%s\",\"args\":{\"proc\":%u,"
                         "\"value\":%llu}}",
                         trackId(event.kind), ts_ns,
                         traceEventKindName(event.kind),
                         traceEventTrack(event.kind),
                         static_cast<unsigned>(event.pid),
                         static_cast<unsigned long long>(event.arg));
        }
    }

    std::fprintf(out,
                 "\n],\"otherData\":{\"emitted\":%llu,"
                 "\"dropped\":%llu}}\n",
                 static_cast<unsigned long long>(emittedCount),
                 static_cast<unsigned long long>(droppedCount));

    bool write_failed = std::ferror(out) != 0;
    if (std::fclose(out) != 0)
        write_failed = true;
    if (write_failed) {
        warnOnce("trace: write to '%s' failed: %s — timeline lost [io]",
                 tmp.c_str(), std::strerror(errno));
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        warnOnce("trace: cannot rename '%s' into place: %s — timeline "
                 "lost [io]",
                 path.c_str(), std::strerror(errno));
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

TraceSession *
activeTraceSession()
{
    return threadSession;
}

void
setActiveTraceSession(TraceSession *session)
{
    threadSession = session;
}

} // namespace rampage
