#include "obs/phase_profiler.hh"

#include <atomic>
#include <cstdio>

namespace rampage
{

namespace
{

/**
 * Global totals as atomic nanosecond counters: fetch_add is the whole
 * synchronization story, so worker threads never contend on a lock.
 */
std::atomic<std::uint64_t> globalNanos[sweepPhaseCount];

thread_local double threadSeconds[sweepPhaseCount];

} // namespace

const char *
sweepPhaseName(SweepPhase phase)
{
    switch (phase) {
      case SweepPhase::TraceGen:
        return "trace_gen";
      case SweepPhase::Simulate:
        return "simulate";
      case SweepPhase::Audit:
        return "audit";
      case SweepPhase::Checkpoint:
        return "checkpoint";
      case SweepPhase::Ipc:
        return "ipc";
    }
    return "unknown";
}

void
phaseRecord(SweepPhase phase, double seconds)
{
    if (seconds < 0)
        return;
    std::size_t idx = static_cast<std::size_t>(phase);
    threadSeconds[idx] += seconds;
    globalNanos[idx].fetch_add(
        static_cast<std::uint64_t>(seconds * 1e9),
        std::memory_order_relaxed);
}

PhaseSeconds
phaseThreadTotals()
{
    PhaseSeconds out{};
    for (std::size_t i = 0; i < sweepPhaseCount; ++i)
        out[i] = threadSeconds[i];
    return out;
}

void
phaseThreadReset()
{
    for (double &seconds : threadSeconds)
        seconds = 0.0;
}

PhaseSeconds
phaseGlobalTotals()
{
    PhaseSeconds out{};
    for (std::size_t i = 0; i < sweepPhaseCount; ++i)
        out[i] = static_cast<double>(
                     globalNanos[i].load(std::memory_order_relaxed)) /
                 1e9;
    return out;
}

void
phaseGlobalReset()
{
    for (std::atomic<std::uint64_t> &nanos : globalNanos)
        nanos.store(0, std::memory_order_relaxed);
}

void
phaseGlobalAdd(const PhaseSeconds &seconds)
{
    for (std::size_t i = 0; i < sweepPhaseCount; ++i) {
        if (seconds[i] <= 0)
            continue;
        globalNanos[i].fetch_add(
            static_cast<std::uint64_t>(seconds[i] * 1e9),
            std::memory_order_relaxed);
    }
}

std::string
phaseGlobalSummary()
{
    PhaseSeconds totals = phaseGlobalTotals();
    std::string out;
    char piece[64];
    for (std::size_t i = 0; i < sweepPhaseCount; ++i) {
        if (totals[i] <= 0)
            continue;
        std::snprintf(piece, sizeof(piece), "%s%s %.1fs",
                      out.empty() ? "" : ", ",
                      sweepPhaseName(static_cast<SweepPhase>(i)),
                      totals[i]);
        out += piece;
    }
    return out;
}

} // namespace rampage
