#include "obs/obs_config.hh"

#include <atomic>
#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "util/error.hh"

namespace rampage
{

namespace
{

const char *
envOrNull(const char *name)
{
    const char *value = std::getenv(name);
    return (value && *value) ? value : nullptr;
}

/** Strict unsigned parse (mirrors the sweep knobs'). */
std::uint64_t
parseObsCount(const char *origin, const char *text)
{
    if (!std::isdigit(static_cast<unsigned char>(text[0])))
        throw ConfigError("%s: expected an unsigned integer, got '%s'",
                          origin, text);
    errno = 0;
    char *end = nullptr;
    unsigned long long value = std::strtoull(text, &end, 10);
    if (errno == ERANGE)
        throw ConfigError("%s: value '%s' is out of range", origin,
                          text);
    if (end == text || *end != '\0')
        throw ConfigError(
            "%s: trailing junk after the number in '%s'", origin, text);
    return value;
}

std::string traceOutOverride;
std::uint64_t statsIntervalOverride = 0;
std::string fileBaseOverride;

thread_local std::string threadPointLabel;

/** Sequence for runs outside a labeled sweep point. */
std::atomic<std::uint64_t> runSequence{0};

} // namespace

std::uint64_t
parseStatsInterval(const std::string &text, const char *origin)
{
    std::uint64_t refs = parseObsCount(origin, text.c_str());
    if (refs == 0)
        throw ConfigError("%s: interval must be a positive number of "
                          "references, got '%s'",
                          origin, text.c_str());
    return refs;
}

std::size_t
parseTraceRingCapacity(const std::string &text, const char *origin)
{
    std::uint64_t events = parseObsCount(origin, text.c_str());
    if (events == 0)
        throw ConfigError(
            "%s: ring capacity must be positive, got '%s'", origin,
            text.c_str());
    return static_cast<std::size_t>(events);
}

ObsSettings
resolveObsSettings()
{
    ObsSettings obs;
    if (!traceOutOverride.empty())
        obs.traceOutBase = traceOutOverride;
    else if (const char *env = envOrNull("RAMPAGE_TRACE_OUT"))
        obs.traceOutBase = env;

    if (statsIntervalOverride > 0)
        obs.statsIntervalRefs = statsIntervalOverride;
    else if (const char *env = envOrNull("RAMPAGE_STATS_INTERVAL"))
        obs.statsIntervalRefs =
            parseStatsInterval(env, "RAMPAGE_STATS_INTERVAL");

    if (!obs.traceOutBase.empty())
        obs.intervalOutBase = obs.traceOutBase;
    else if (!fileBaseOverride.empty())
        obs.intervalOutBase = fileBaseOverride;
    else
        obs.intervalOutBase = "rampage";

    if (const char *env = envOrNull("RAMPAGE_TRACE_RING"))
        obs.traceRingCapacity =
            parseTraceRingCapacity(env, "RAMPAGE_TRACE_RING");
    return obs;
}

void
setTraceOutOverride(const std::string &base)
{
    traceOutOverride = base;
}

void
setStatsIntervalOverride(std::uint64_t refs)
{
    statsIntervalOverride = refs;
}

void
setObsFileBaseOverride(const std::string &base)
{
    fileBaseOverride = base;
}

void
setObsPointLabel(const std::string &label)
{
    threadPointLabel = label;
}

const std::string &
obsPointLabel()
{
    return threadPointLabel;
}

std::string
obsRunFilePath(const std::string &base, const char *suffix)
{
    std::string label = threadPointLabel;
    if (label.empty())
        label = "run" + std::to_string(
                            runSequence.fetch_add(1,
                                                  std::memory_order_relaxed));
    for (char &c : label) {
        bool ok = std::isalnum(static_cast<unsigned char>(c)) ||
                  c == '.' || c == '_' || c == '-';
        if (!ok)
            c = '_';
    }
    return base + "." + label + suffix;
}

} // namespace rampage
