/**
 * @file
 * Interval statistics: epoch-based sampling of a StatsRegistry into a
 * JSON-lines time series.
 *
 * With --stats-interval=<refs> the Simulator asks the writer to
 * sample every N benchmark references.  Each epoch line carries the
 * *delta* since the previous sample for counters and histograms
 * (bucketwise), and the current absolute value for formulas (a ratio's
 * delta is meaningless) — so summing a counter's deltas over all
 * epochs reproduces the final snapshot exactly, which the obs CI
 * check enforces.  Histogram deltas carry count/sum/mean plus
 * p50/p95/p99 log2-bucket estimates (see stats/histogram.hh).
 *
 * Crash-safety is per line: every epoch is one write()+flush of a
 * complete JSON object, so a run killed mid-campaign (--isolate
 * children included) leaves a valid JSONL prefix rather than a torn
 * file.  Write failures degrade to warnOnce naming the file
 * (ErrorCategory::Io convention) — telemetry loss must never fail the
 * simulation.
 */

#ifndef RAMPAGE_OBS_INTERVAL_STATS_HH
#define RAMPAGE_OBS_INTERVAL_STATS_HH

#include <cstdint>
#include <cstdio>
#include <string>

#include "stats/registry.hh"

namespace rampage
{

/** Streams per-epoch StatsRegistry delta snapshots as JSON lines. */
class IntervalStatsWriter
{
  public:
    /**
     * @param registry  live registry to sample (must outlive writer)
     * @param path      JSONL output path (opened lazily)
     * @param interval_refs  benchmark references per epoch (> 0)
     */
    IntervalStatsWriter(const StatsRegistry *registry, std::string path,
                        std::uint64_t interval_refs);
    ~IntervalStatsWriter();

    IntervalStatsWriter(const IntervalStatsWriter &) = delete;
    IntervalStatsWriter &operator=(const IntervalStatsWriter &) = delete;

    /**
     * Called once per simulated reference; samples an epoch whenever
     * the interval boundary is crossed.  Cheap when not at a
     * boundary: one compare.
     */
    void
    maybeSample(std::uint64_t refs_executed, std::uint64_t now_ps)
    {
        if (refs_executed >= nextBoundary)
            sample(refs_executed, now_ps);
    }

    /**
     * Flush the final (possibly partial) epoch and close the file.
     * After this, the per-epoch counter deltas sum to the registry's
     * final values.
     */
    void finish(std::uint64_t refs_executed, std::uint64_t now_ps);

    /** Epoch lines written so far. */
    std::uint64_t epochs() const { return epochCount; }

    /** True once any write has failed (file abandoned). */
    bool failed() const { return writeFailed; }

    /** The output path (for SimResult bookkeeping). */
    const std::string &path() const { return outPath; }

  private:
    void sample(std::uint64_t refs_executed, std::uint64_t now_ps);
    void writeLine(std::uint64_t refs_executed, std::uint64_t now_ps,
                   const StatsSnapshot &current);
    void warnFailure(const char *what);

    const StatsRegistry *reg;
    std::string outPath;
    std::uint64_t intervalRefs;
    std::uint64_t nextBoundary;
    std::uint64_t lastSampledRefs = 0;
    std::uint64_t epochCount = 0;
    StatsSnapshot previous;
    std::FILE *out = nullptr;
    bool writeFailed = false;
};

} // namespace rampage

#endif // RAMPAGE_OBS_INTERVAL_STATS_HH
