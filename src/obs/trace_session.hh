/**
 * @file
 * Simulated-time event tracing.
 *
 * A TraceSession collects typed events — L2 misses, page faults, TLB
 * fills and flushes, DRAM transactions, context switches — stamped
 * with *simulated* time, buffered in a bounded ring, and written out
 * as Chrome trace-event JSON that Perfetto loads directly: one track
 * per component (l2 / tlb / pager / dram / sched), durations from the
 * model's own picosecond accounting.
 *
 * Components do not see the session type.  They emit through the
 * RAMPAGE_TRACE_EVENT macro, which loads a thread-local active-session
 * pointer and does nothing when no session is installed — one TLS load
 * and a predictable branch on the hot path, and the whole macro
 * compiles away under -DRAMPAGE_NO_OBS.  The Simulator installs the
 * session for the duration of a run (ObsScope) and advances its
 * simulated clock, so emitters never need to know "now".  Thread-local
 * installation is what makes tracing compose with --jobs: concurrent
 * sweep workers each trace into their own session and file.
 *
 * Timestamp convention: the Chrome JSON "ts"/"dur" fields carry
 * simulated *nanoseconds* (model picoseconds / 1000, fractional), and
 * the file sets displayTimeUnit "ns".  Tools that assume the Chrome
 * default of microseconds will simply show values 1000x larger — the
 * relative timeline, which is what matters here, is unaffected.
 *
 * The ring keeps the *newest* `capacity` events: once full, each new
 * event overwrites the oldest and increments the drop count, which the
 * Simulator surfaces as `sim.trace.dropped` so a truncated timeline is
 * always visible in the stats. Files are written to "<path>.tmp" and
 * renamed into place, so readers (and crashed --isolate children)
 * never observe a torn trace.
 */

#ifndef RAMPAGE_OBS_TRACE_SESSION_HH
#define RAMPAGE_OBS_TRACE_SESSION_HH

#include <cstdint>
#include <string>
#include <vector>

namespace rampage
{

/** Typed events a component can put on the timeline. */
enum class TraceEventKind : std::uint8_t
{
    L2Miss,        ///< L2 lookup missed (arg: block address)
    PageFault,     ///< pager fault + fetch (arg: virtual page number)
    TlbFill,       ///< TLB insert after a walk (arg: virtual page)
    TlbFlush,      ///< TLB entry invalidated (arg: virtual page)
    ContextSwitch, ///< OS context-switch trace ran (arg: handler refs)
    DramTx,        ///< DRAM transaction (arg: bytes; pid: 1 = write)
    ProcessSwitch, ///< scheduler moved to another process (arg: new pid)
};

/** Number of TraceEventKind values (array sizing). */
constexpr std::size_t traceEventKindCount = 7;

/** Stable lower-case event name ("l2_miss", "page_fault", ...). */
const char *traceEventKindName(TraceEventKind kind);

/**
 * Component track an event renders under in the trace viewer
 * (Chrome "tid" + thread_name metadata).
 */
const char *traceEventTrack(TraceEventKind kind);

/** One timeline event (16-byte payload + timestamps). */
struct TraceEvent
{
    std::uint64_t tsPs = 0;  ///< simulated start time, picoseconds
    std::uint64_t durPs = 0; ///< simulated duration; 0 = instant
    std::uint64_t arg = 0;   ///< kind-specific argument (see enum)
    std::uint16_t pid = 0;   ///< process the event charges
    TraceEventKind kind = TraceEventKind::L2Miss;
};

/**
 * A bounded ring of timeline events for one simulation run, plus the
 * Chrome-JSON writer.  Not thread-safe: one session belongs to one
 * simulating thread (the thread-local installation enforces this).
 */
class TraceSession
{
  public:
    explicit TraceSession(std::size_t capacity);

    /** Advance the simulated clock events are stamped with. */
    void setNow(std::uint64_t now_ps) { nowPs = now_ps; }

    /** Current simulated time (ps). */
    std::uint64_t now() const { return nowPs; }

    /** Record an event starting at the current simulated time. */
    void
    emit(TraceEventKind kind, std::uint64_t dur_ps, std::uint64_t arg,
         std::uint16_t pid)
    {
        TraceEvent event;
        event.tsPs = nowPs;
        event.durPs = dur_ps;
        event.arg = arg;
        event.pid = pid;
        event.kind = kind;
        push(event);
    }

    /** Events emitted over the session's lifetime (kept + dropped). */
    std::uint64_t emitted() const { return emittedCount; }

    /** Events overwritten because the ring was full. */
    std::uint64_t dropped() const { return droppedCount; }

    /** Events currently held (<= capacity). */
    std::size_t size() const { return ring.size(); }

    /** Ring capacity in events. */
    std::size_t capacity() const { return cap; }

    /**
     * Write the retained events as Chrome trace-event JSON via
     * tmp-file + rename.  A filesystem failure is routed through
     * warnOnce naming the file (ErrorCategory::Io convention — the
     * run itself must not fail because telemetry could not land) and
     * reported by returning false.
     */
    bool writeChromeTrace(const std::string &path) const;

  private:
    void push(const TraceEvent &event);

    std::vector<TraceEvent> ring;
    std::size_t cap;
    std::size_t head = 0; ///< next slot to overwrite once full
    std::uint64_t nowPs = 0;
    std::uint64_t emittedCount = 0;
    std::uint64_t droppedCount = 0;
};

/** The calling thread's installed session; nullptr when tracing is off. */
TraceSession *activeTraceSession();

/** Install (or clear, with nullptr) the calling thread's session. */
void setActiveTraceSession(TraceSession *session);

} // namespace rampage

/**
 * Hot-path emission seam.  Evaluates its arguments only when a session
 * is installed on this thread; compiles to nothing entirely under
 * -DRAMPAGE_NO_OBS.
 */
#ifdef RAMPAGE_NO_OBS
#define RAMPAGE_TRACE_EVENT(kind, dur_ps, arg, pid)                        \
    do {                                                                   \
    } while (0)
#else
#define RAMPAGE_TRACE_EVENT(kind, dur_ps, arg, pid)                        \
    do {                                                                   \
        ::rampage::TraceSession *session_ =                                \
            ::rampage::activeTraceSession();                               \
        if (session_) {                                                    \
            session_->emit(::rampage::TraceEventKind::kind, (dur_ps),      \
                           (arg), (pid));                                  \
        }                                                                  \
    } while (0)
#endif

#endif // RAMPAGE_OBS_TRACE_SESSION_HH
