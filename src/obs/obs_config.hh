/**
 * @file
 * Runtime configuration for the timeline-observability layer
 * (src/obs/): which of the three facilities are on, where their files
 * go, and how per-point output files are named.
 *
 * Everything here is OFF by default and side-effect-free when off —
 * an un-instrumented run is byte-identical to a pre-obs build.  The
 * knobs mirror the sweep knobs' resolution order: an explicit CLI
 * override (the benches' --trace-out / --stats-interval flags,
 * installed via set*Override()), then the environment
 * (RAMPAGE_TRACE_OUT / RAMPAGE_STATS_INTERVAL / RAMPAGE_TRACE_RING,
 * strictly parsed), then disabled.
 *
 * Output files are *per simulation run*: a sweep campaign with
 * tracing on produces one trace file and one interval file per point,
 * named after the point id (SweepRunner installs the id as the
 * calling thread's obs label before running the body, so the scheme
 * composes with --jobs worker threads and --isolate forked children
 * alike).  Runs outside a sweep fall back to a process-wide sequence
 * number.
 */

#ifndef RAMPAGE_OBS_OBS_CONFIG_HH
#define RAMPAGE_OBS_OBS_CONFIG_HH

#include <cstdint>
#include <string>

namespace rampage
{

/** Default trace-ring capacity (events) when none is configured. */
constexpr std::size_t defaultTraceRingCapacity = 1u << 18;

/** Resolved observability settings for one simulation run. */
struct ObsSettings
{
    /** Trace-file base path; "" disables event tracing. */
    std::string traceOutBase;
    /** Benchmark refs per interval-stats epoch; 0 disables. */
    std::uint64_t statsIntervalRefs = 0;
    /**
     * Interval-file base path.  Defaults to traceOutBase when tracing
     * is on, else to the setObsFileBaseOverride() value (benchMain
     * derives one from --json), else "rampage".
     */
    std::string intervalOutBase;
    /** Trace-ring capacity in events (drops are counted beyond it). */
    std::size_t traceRingCapacity = defaultTraceRingCapacity;
};

/**
 * Resolve the observability knobs: CLI overrides first, then
 * RAMPAGE_TRACE_OUT / RAMPAGE_STATS_INTERVAL / RAMPAGE_TRACE_RING,
 * then off.  defaultSimConfig()/armedSimConfig() call this so every
 * bench and example picks the knobs up without new plumbing.
 */
ObsSettings resolveObsSettings();

/**
 * Parse an interval length in references ("50000") with the sweep
 * knobs' strict validation (no signs, no trailing junk, nonzero),
 * naming `origin` in the ConfigError.
 */
std::uint64_t parseStatsInterval(const std::string &text,
                                 const char *origin = "--stats-interval");

/**
 * Parse a trace-ring capacity in events (nonzero) with the same
 * strict validation, naming `origin` in the ConfigError.
 */
std::size_t parseTraceRingCapacity(const std::string &text,
                                   const char *origin =
                                       "RAMPAGE_TRACE_RING");

/** CLI override for the trace base path; "" clears it (tests). */
void setTraceOutOverride(const std::string &base);

/** CLI override for the interval length; 0 clears it (tests). */
void setStatsIntervalOverride(std::uint64_t refs);

/**
 * Fallback base path for interval files when tracing is off (benches
 * derive it from the --json path); "" clears it.
 */
void setObsFileBaseOverride(const std::string &base);

/**
 * Label the calling thread's simulation runs for output-file naming
 * (SweepRunner sets the point id; "" reverts to sequence numbering).
 * Thread-local, so concurrent workers never share a label.
 */
void setObsPointLabel(const std::string &label);

/** The calling thread's current obs label ("" when unset). */
const std::string &obsPointLabel();

/** RAII label scope: installs on construction, clears on exit. */
struct ObsPointLabelScope
{
    explicit ObsPointLabelScope(const std::string &label)
    {
        setObsPointLabel(label);
    }
    ~ObsPointLabelScope() { setObsPointLabel(""); }
};

/**
 * Per-run output path: `base` + "." + the sanitized thread label (or
 * "runNNN" from a process-wide counter when unlabeled) + `suffix`.
 * Sanitization maps every character outside [A-Za-z0-9._-] to '_',
 * so sweep point ids like "rampage/1KB" become safe file names.
 */
std::string obsRunFilePath(const std::string &base, const char *suffix);

} // namespace rampage

#endif // RAMPAGE_OBS_OBS_CONFIG_HH
