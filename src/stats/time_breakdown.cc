#include "stats/time_breakdown.hh"

#include <cstdio>

namespace rampage
{

Tick
TimeBreakdown::total() const
{
    Tick sum = 0;
    for (Tick t : ticks)
        sum += t;
    return sum;
}

double
TimeBreakdown::fraction(TimeLevel level) const
{
    Tick sum = total();
    if (sum == 0)
        return 0.0;
    return static_cast<double>(at(level)) / static_cast<double>(sum);
}

TimeBreakdown &
TimeBreakdown::operator+=(const TimeBreakdown &other)
{
    for (std::size_t i = 0; i < numTimeLevels; ++i)
        ticks[i] += other.ticks[i];
    return *this;
}

std::string
TimeBreakdown::render(const std::string &l2_name) const
{
    std::string out;
    char buf[64];
    for (std::size_t i = 0; i < numTimeLevels; ++i) {
        auto level = static_cast<TimeLevel>(i);
        std::snprintf(buf, sizeof(buf), "%s=%.1f%% ",
                      timeLevelName(level, l2_name).c_str(),
                      100.0 * fraction(level));
        out += buf;
    }
    return out;
}

void
TimeBreakdown::reset()
{
    ticks.fill(0);
}

std::string
timeLevelName(TimeLevel level, const std::string &l2_name)
{
    switch (level) {
      case TimeLevel::L1I:
        return "L1i";
      case TimeLevel::L1D:
        return "L1d";
      case TimeLevel::L2:
        return l2_name;
      case TimeLevel::Dram:
        return "DRAM";
    }
    return "?";
}

} // namespace rampage
