#include "stats/table.hh"

#include <cstdarg>
#include <cstdio>

namespace rampage
{

void
TextTable::setHeader(std::vector<std::string> cells)
{
    header = std::move(cells);
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    rows.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    // Compute per-column widths over header + all rows.
    std::vector<std::size_t> widths;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            if (cells[i].size() > widths[i])
                widths[i] = cells[i].size();
    };
    grow(header);
    for (const auto &row : rows)
        grow(row);

    std::string out;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            out += cells[i];
            if (i + 1 < cells.size())
                out.append(widths[i] - cells[i].size() + 2, ' ');
        }
        out += '\n';
    };
    if (!header.empty()) {
        emit(header);
        std::size_t total = 0;
        for (std::size_t i = 0; i < widths.size(); ++i)
            total += widths[i] + (i + 1 < widths.size() ? 2 : 0);
        out.append(total, '-');
        out += '\n';
    }
    for (const auto &row : rows)
        emit(row);
    return out;
}

std::string
TextTable::renderCsv() const
{
    std::string out;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            out += cells[i];
            if (i + 1 < cells.size())
                out += ',';
        }
        out += '\n';
    };
    if (!header.empty())
        emit(header);
    for (const auto &row : rows)
        emit(row);
    return out;
}

std::string
cellf(const char *fmt, ...)
{
    char buf[128];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    return buf;
}

} // namespace rampage
