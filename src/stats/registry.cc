#include "stats/registry.hh"

#include <algorithm>
#include <cstdio>

#include "util/error.hh"
#include "util/glob.hh"

namespace rampage
{

// ----------------------------------------------------------- snapshot

void
StatsSnapshot::addCounter(const std::string &name,
                          const std::string &desc, std::uint64_t value)
{
    Entry entry;
    entry.name = name;
    entry.desc = desc;
    entry.kind = Kind::Counter;
    entry.counter = value;
    items.push_back(std::move(entry));
}

void
StatsSnapshot::addValue(const std::string &name, const std::string &desc,
                        double value)
{
    Entry entry;
    entry.name = name;
    entry.desc = desc;
    entry.kind = Kind::Value;
    entry.value = value;
    items.push_back(std::move(entry));
}

void
StatsSnapshot::addEntry(Entry entry)
{
    items.push_back(std::move(entry));
}

void
StatsSnapshot::append(const StatsSnapshot &other)
{
    items.insert(items.end(), other.items.begin(), other.items.end());
}

const StatsSnapshot::Entry *
StatsSnapshot::find(const std::string &name) const
{
    for (const Entry &entry : items)
        if (entry.name == name)
            return &entry;
    return nullptr;
}

StatsSnapshot
StatsSnapshot::filter(const std::string &pattern) const
{
    StatsSnapshot out;
    for (const Entry &entry : items)
        if (globMatch(pattern, entry.name))
            out.items.push_back(entry);
    return out;
}

JsonValue
StatsSnapshot::toJson() const
{
    JsonValue out = JsonValue::object();
    for (const Entry &entry : items) {
        switch (entry.kind) {
          case Kind::Counter:
            out.set(entry.name, JsonValue::integer(entry.counter));
            break;
          case Kind::Value:
            out.set(entry.name, JsonValue::number(entry.value));
            break;
          case Kind::Histogram: {
            JsonValue hist = JsonValue::object();
            hist.set("count", JsonValue::integer(entry.samples));
            hist.set("samples", JsonValue::integer(entry.samples));
            hist.set("sum", JsonValue::integer(entry.sum));
            hist.set("mean",
                     JsonValue::number(
                         entry.samples == 0
                             ? 0.0
                             : static_cast<double>(entry.sum) /
                                   static_cast<double>(entry.samples)));
            hist.set("p50",
                     JsonValue::integer(
                         log2BucketsPercentile(entry.buckets, 0.50)));
            hist.set("p95",
                     JsonValue::integer(
                         log2BucketsPercentile(entry.buckets, 0.95)));
            hist.set("p99",
                     JsonValue::integer(
                         log2BucketsPercentile(entry.buckets, 0.99)));
            JsonValue buckets = JsonValue::array();
            for (std::uint64_t count : entry.buckets)
                buckets.push(JsonValue::integer(count));
            hist.set("log2_buckets", std::move(buckets));
            out.set(entry.name, std::move(hist));
            break;
          }
        }
    }
    return out;
}

std::string
StatsSnapshot::toText() const
{
    std::size_t width = 0;
    for (const Entry &entry : items)
        width = std::max(width, entry.name.size());

    std::string out;
    char line[256];
    for (const Entry &entry : items) {
        int pad = static_cast<int>(width);
        switch (entry.kind) {
          case Kind::Counter:
            std::snprintf(line, sizeof(line), "%-*s %20llu  # %s\n",
                          pad, entry.name.c_str(),
                          static_cast<unsigned long long>(entry.counter),
                          entry.desc.c_str());
            out += line;
            break;
          case Kind::Value:
            std::snprintf(line, sizeof(line), "%-*s %20.6f  # %s\n",
                          pad, entry.name.c_str(), entry.value,
                          entry.desc.c_str());
            out += line;
            break;
          case Kind::Histogram:
            std::snprintf(line, sizeof(line),
                          "%-*s %12llu samples, sum %llu  # %s\n", pad,
                          entry.name.c_str(),
                          static_cast<unsigned long long>(entry.samples),
                          static_cast<unsigned long long>(entry.sum),
                          entry.desc.c_str());
            out += line;
            break;
        }
    }
    return out;
}

// ----------------------------------------------------------- registry

void
StatsRegistry::checkNewName(const std::string &name) const
{
    if (name.empty())
        throw InternalError("stats registry: empty stat name");
    if (has(name))
        throw InternalError(
            "stats registry: duplicate stat name '%s'", name.c_str());
}

void
StatsRegistry::addCounter(const std::string &name,
                          const std::string &desc,
                          const std::uint64_t *value)
{
    checkNewName(name);
    Stat stat;
    stat.name = name;
    stat.desc = desc;
    stat.kind = StatsSnapshot::Kind::Counter;
    stat.counter = value;
    stats.push_back(std::move(stat));
}

void
StatsRegistry::addFormula(const std::string &name,
                          const std::string &desc,
                          std::function<double()> eval)
{
    checkNewName(name);
    Stat stat;
    stat.name = name;
    stat.desc = desc;
    stat.kind = StatsSnapshot::Kind::Value;
    stat.eval = std::move(eval);
    stats.push_back(std::move(stat));
}

void
StatsRegistry::addHistogram(const std::string &name,
                            const std::string &desc,
                            const Log2Histogram *histogram)
{
    checkNewName(name);
    Stat stat;
    stat.name = name;
    stat.desc = desc;
    stat.kind = StatsSnapshot::Kind::Histogram;
    stat.histogram = histogram;
    stats.push_back(std::move(stat));
}

bool
StatsRegistry::has(const std::string &name) const
{
    for (const Stat &stat : stats)
        if (stat.name == name)
            return true;
    return false;
}

StatsSnapshot
StatsRegistry::snapshot() const
{
    StatsSnapshot snap;
    snap.items.reserve(stats.size());
    for (const Stat &stat : stats) {
        StatsSnapshot::Entry entry;
        entry.name = stat.name;
        entry.desc = stat.desc;
        entry.kind = stat.kind;
        switch (stat.kind) {
          case StatsSnapshot::Kind::Counter:
            entry.counter = *stat.counter;
            break;
          case StatsSnapshot::Kind::Value:
            entry.value = stat.eval();
            break;
          case StatsSnapshot::Kind::Histogram:
            entry.buckets = stat.histogram->rawBuckets();
            entry.samples = stat.histogram->samples();
            entry.sum = stat.histogram->sum();
            break;
        }
        snap.items.push_back(std::move(entry));
    }
    return snap;
}

std::string
StatsRegistry::dumpText() const
{
    return snapshot().toText();
}

std::string
StatsRegistry::dumpJson() const
{
    return snapshot().toJson().dump();
}

} // namespace rampage
