#include "stats/histogram.hh"

#include <algorithm>
#include <cstdio>

#include "util/bitops.hh"

namespace rampage
{

namespace
{

std::size_t
bucketIndex(std::uint64_t value)
{
    return value == 0 ? 0 : floorLog2(value);
}

} // namespace

void
Log2Histogram::add(std::uint64_t value, std::uint64_t weight)
{
    std::size_t idx = bucketIndex(value);
    if (idx >= buckets.size())
        buckets.resize(idx + 1, 0);
    buckets[idx] += weight;
    totalSamples += weight;
    totalSum += value * weight;
}

double
Log2Histogram::mean() const
{
    if (totalSamples == 0)
        return 0.0;
    return static_cast<double>(totalSum) /
           static_cast<double>(totalSamples);
}

std::uint64_t
Log2Histogram::bucketFor(std::uint64_t value) const
{
    std::size_t idx = bucketIndex(value);
    return idx < buckets.size() ? buckets[idx] : 0;
}

std::uint64_t
Log2Histogram::percentileUpperBound(double fraction) const
{
    return log2BucketsPercentile(buckets, fraction);
}

std::uint64_t
log2BucketsPercentile(const std::vector<std::uint64_t> &buckets,
                      double fraction)
{
    std::uint64_t total = 0;
    for (std::uint64_t count : buckets)
        total += count;
    if (total == 0)
        return 0;
    fraction = std::min(1.0, std::max(fraction, 0.0));
    // Round up: the 50th percentile of {1,1} is still inside bucket 0.
    std::uint64_t target = static_cast<std::uint64_t>(
        fraction * static_cast<double>(total));
    if (target == 0)
        target = 1;
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        cumulative += buckets[i];
        if (cumulative >= target)
            return i == 0 ? 1 : (std::uint64_t{1} << (i + 1)) - 1;
    }
    return (std::uint64_t{1} << buckets.size()) - 1;
}

std::string
Log2Histogram::render() const
{
    std::string out;
    char line[96];
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        if (buckets[i] == 0)
            continue;
        std::uint64_t lo = i == 0 ? 0 : (std::uint64_t{1} << i);
        std::uint64_t hi = (std::uint64_t{1} << (i + 1)) - 1;
        std::snprintf(line, sizeof(line), "%12llu - %12llu: %llu\n",
                      static_cast<unsigned long long>(lo),
                      static_cast<unsigned long long>(hi),
                      static_cast<unsigned long long>(buckets[i]));
        out += line;
    }
    return out;
}

void
Log2Histogram::reset()
{
    buckets.clear();
    totalSamples = 0;
    totalSum = 0;
}

void
RunningStats::add(double value)
{
    if (n == 0) {
        lo = hi = value;
    } else {
        lo = std::min(lo, value);
        hi = std::max(hi, value);
    }
    sum += value;
    ++n;
}

double
RunningStats::min() const
{
    return n == 0 ? 0.0 : lo;
}

double
RunningStats::max() const
{
    return n == 0 ? 0.0 : hi;
}

double
RunningStats::mean() const
{
    return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

void
RunningStats::reset()
{
    n = 0;
    sum = 0.0;
    lo = hi = 0.0;
}

} // namespace rampage
