/**
 * @file
 * Simple statistics containers: a power-of-two-bucketed histogram and a
 * running scalar summary (count/min/max/mean).  Used to characterise
 * DRAM transaction sizes, handler lengths and synthetic-trace locality.
 */

#ifndef RAMPAGE_STATS_HISTOGRAM_HH
#define RAMPAGE_STATS_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace rampage
{

/**
 * Histogram over log2-sized buckets: bucket i counts samples in
 * [2^i, 2^(i+1)), with bucket 0 also holding sample value 0.
 */
class Log2Histogram
{
  public:
    /** Record one sample. */
    void add(std::uint64_t value, std::uint64_t weight = 1);

    /** Total number of samples recorded (sum of weights). */
    std::uint64_t samples() const { return totalSamples; }

    /** Sum of all sample values (weighted). */
    std::uint64_t sum() const { return totalSum; }

    /** Weighted mean of samples; 0 when empty. */
    double mean() const;

    /** Count in the bucket containing `value`. */
    std::uint64_t bucketFor(std::uint64_t value) const;

    /**
     * Upper bound of the bucket at which the cumulative sample count
     * first reaches `fraction` (0 < fraction <= 1) of all samples —
     * i.e. an upper estimate of that percentile given log2 bucketing.
     * Returns 0 for an empty histogram; fraction is clamped to (0, 1].
     */
    std::uint64_t percentileUpperBound(double fraction) const;

    /** Number of allocated buckets. */
    std::size_t bucketCount() const { return buckets.size(); }

    /** Raw bucket counts, index = floor(log2(value)) (0 for value 0). */
    const std::vector<std::uint64_t> &rawBuckets() const { return buckets; }

    /** Render as "lo-hi: count" lines for reports. */
    std::string render() const;

    /** Discard all samples. */
    void reset();

  private:
    std::vector<std::uint64_t> buckets;
    std::uint64_t totalSamples = 0;
    std::uint64_t totalSum = 0;
};

/**
 * Percentile upper bound over raw log2 bucket counts, for callers
 * holding frozen buckets rather than a live histogram (StatsSnapshot
 * entries, interval deltas).  Same estimate as
 * Log2Histogram::percentileUpperBound: the top of the bucket where the
 * cumulative count first reaches `fraction` of all samples.  Returns 0
 * when the buckets are empty.
 */
std::uint64_t
log2BucketsPercentile(const std::vector<std::uint64_t> &buckets,
                      double fraction);

/** Running min/max/mean/count summary of a scalar statistic. */
class RunningStats
{
  public:
    void add(double value);

    std::uint64_t count() const { return n; }
    double min() const;
    double max() const;
    double mean() const;
    double total() const { return sum; }

    void reset();

  private:
    std::uint64_t n = 0;
    double sum = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

} // namespace rampage

#endif // RAMPAGE_STATS_HISTOGRAM_HH
